//! The paper's core experiment at laptop scale: gradient-variance decay
//! for all six initialization strategies, with fitted decay rates and the
//! improvement table.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p plateau-core --example variance_scan
//! ```

use plateau_core::init::InitStrategy;
use plateau_core::variance::{variance_scan, VarianceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = VarianceConfig {
        qubit_counts: vec![2, 4, 6, 8],
        layers: 40,
        n_circuits: 80,
        ..VarianceConfig::default()
    };
    println!(
        "scanning {} qubit counts × {} strategies × {} circuits ({} layers each)…",
        config.qubit_counts.len(),
        InitStrategy::PAPER_SET.len(),
        config.n_circuits,
        config.layers
    );

    let scan = variance_scan(&config, &InitStrategy::PAPER_SET)?;

    println!("\nVar[∂C/∂θ_last] by qubit count:");
    print!("{:<16}", "strategy");
    for q in &config.qubit_counts {
        print!("{:>12}", format!("q={q}"));
    }
    println!();
    for curve in &scan.curves {
        print!("{:<16}", curve.strategy.name());
        for p in &curve.points {
            print!("{:>12.3e}", p.variance);
        }
        println!();
    }

    println!("\nfitted decay rates (Var ∝ e^{{b·q}}):");
    for curve in &scan.curves {
        let fit = curve.decay_fit()?;
        println!(
            "  {:<16} b = {:+.4}  (R² = {:.3})",
            curve.strategy.name(),
            fit.rate,
            fit.r_squared
        );
    }

    println!("\nimprovement vs random initialization:");
    for imp in scan.improvements_vs(InitStrategy::Random)? {
        println!(
            "  {:<16} {:+6.1}%",
            imp.strategy.name(),
            imp.improvement_percent
        );
    }
    println!("\n(paper reports ≈62% for Xavier, 32% He, 28% LeCun, 26% Orthogonal");
    println!(" at 200 circuits per cell — run the plateau-bench binaries for full scale)");
    Ok(())
}
