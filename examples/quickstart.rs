//! Quickstart: build a PQC, initialize it two ways, and watch the barren
//! plateau appear and disappear.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p plateau-core --example quickstart
//! ```

use plateau_core::ansatz::training_ansatz;
use plateau_core::cost::CostKind;
use plateau_core::init::{FanMode, InitStrategy};
use plateau_core::optim::Adam;
use plateau_core::train::train;
use plateau_grad::{Adjoint, GradientEngine};
use plateau_rng::rngs::StdRng;
use plateau_rng::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the paper's training ansatz: 6 qubits, 4 layers of
    //    RX·RY per qubit followed by a CZ entangling chain.
    let ansatz = training_ansatz(6, 4)?;
    println!(
        "ansatz: {} qubits, {} gates, {} trainable parameters",
        ansatz.shape.n_qubits(),
        ansatz.circuit.gate_count(),
        ansatz.circuit.n_params()
    );

    // 2. The identity-learning cost of the paper (Eq. 4): C = 1 − p(|0…0⟩).
    let cost = CostKind::Global.observable(6);

    // 3. Initialize the parameters two ways and compare gradient health.
    let mut rng = StdRng::seed_from_u64(7);
    for strategy in [InitStrategy::Random, InitStrategy::XavierNormal] {
        let theta = strategy.sample_params(&ansatz.shape, FanMode::Qubits, &mut rng)?;
        let grad = Adjoint.gradient(&ansatz.circuit, &theta, &cost)?;
        let grad_norm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
        println!("{strategy}: initial |∇C| = {grad_norm:.4}");
    }

    // 4. Train with Adam (lr = 0.1, as in the paper) from a Xavier start.
    let theta0 =
        InitStrategy::XavierNormal.sample_params(&ansatz.shape, FanMode::Qubits, &mut rng)?;
    let mut adam = Adam::new(0.1)?;
    let history = train(&ansatz.circuit, &cost, theta0, &mut adam, 50)?;
    println!(
        "training: C dropped from {:.4} to {:.6} in 50 Adam iterations",
        history.initial_loss(),
        history.final_loss()
    );
    assert!(history.final_loss() < history.initial_loss());

    Ok(())
}
