//! Reproduce the paper's training analysis (Fig 5b/5c) at reduced width:
//! learn the identity function with every initialization strategy and both
//! optimizers, printing the loss trajectories.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p plateau-core --example train_identity
//! ```

use plateau_core::ansatz::training_ansatz;
use plateau_core::cost::CostKind;
use plateau_core::init::{FanMode, InitStrategy};
use plateau_core::optim::{Adam, GradientDescent, Optimizer};
use plateau_core::train::train;
use plateau_rng::rngs::StdRng;
use plateau_rng::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_qubits = 6;
    let layers = 5;
    let iterations = 50;
    let ansatz = training_ansatz(n_qubits, layers)?;
    let cost = CostKind::Global.observable(n_qubits);
    println!(
        "identity task: {n_qubits} qubits, {layers} layers, {} params, {iterations} iterations",
        ansatz.circuit.n_params()
    );

    for optimizer_name in ["gradient_descent", "adam"] {
        println!("\n=== optimizer: {optimizer_name} (lr = 0.1) ===");
        println!("{:<16}{:>12}{:>12}{:>14}", "strategy", "initial C", "final C", "iters to 0.1");
        for strategy in InitStrategy::PAPER_SET {
            let mut rng = StdRng::seed_from_u64(11 + strategy.name().len() as u64);
            let theta0 = strategy.sample_params(&ansatz.shape, FanMode::Qubits, &mut rng)?;
            let mut opt: Box<dyn Optimizer> = match optimizer_name {
                "adam" => Box::new(Adam::new(0.1)?),
                _ => Box::new(GradientDescent::new(0.1)?),
            };
            let hist = train(&ansatz.circuit, &cost, theta0, opt.as_mut(), iterations)?;
            let reach = hist
                .iterations_to_reach(0.1)
                .map(|i| i.to_string())
                .unwrap_or_else(|| "never".into());
            println!(
                "{:<16}{:>12.4}{:>12.6}{:>14}",
                strategy.name(),
                hist.initial_loss(),
                hist.final_loss(),
                reach
            );
        }
    }
    println!("\n(the paper's ordering: Xavier variants fastest, He/LeCun/Orthogonal");
    println!(" close behind, random trapped on the plateau)");
    Ok(())
}
