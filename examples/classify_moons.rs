//! The "QML" of the paper's title end-to-end: train a data re-uploading
//! variational classifier on the two-moons benchmark under each
//! initialization strategy and compare test accuracy at a fixed budget.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p plateau-qml --example classify_moons
//! ```

use plateau_core::init::{FanMode, InitStrategy};
use plateau_core::optim::Adam;
use plateau_qml::classifier::Classifier;
use plateau_qml::dataset::{train_test_split, two_moons};
use plateau_rng::rngs::StdRng;
use plateau_rng::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut data_rng = StdRng::seed_from_u64(42);
    let data = two_moons(120, 0.05, &mut data_rng);
    let (train, test) = train_test_split(data, 0.75);
    let model = Classifier::new(3, 3, 2)?;
    println!(
        "two-moons: {} train / {} test samples; model: 3 qubits × 3 re-uploading layers ({} weights)",
        train.len(),
        test.len(),
        model.n_weights()
    );
    println!("{:<16}{:>12}{:>12}{:>12}", "strategy", "loss_0", "loss_end", "test acc");
    for strategy in InitStrategy::PAPER_SET {
        let mut rng = StdRng::seed_from_u64(7);
        let w0 = model.init_weights(strategy, FanMode::TensorShape, &mut rng)?;
        let mut adam = Adam::new(0.1)?;
        let fit = model.fit(w0, &train, &mut adam, 60)?;
        let acc = model.accuracy(&fit.weights, &test)?;
        println!(
            "{:<16}{:>12.4}{:>12.4}{:>11.1}%",
            strategy.name(),
            fit.losses[0],
            fit.losses.last().expect("non-empty"),
            100.0 * acc
        );
    }
    println!("\n(at this shallow width every strategy can learn the moons; the");
    println!(" initialization gap grows with circuit width exactly as in Fig 5)");
    Ok(())
}
