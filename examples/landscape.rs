//! Visualize the barren plateau the way the paper's Fig 1 does: print an
//! ASCII heat map of the cost surface over two parameters for growing
//! qubit counts and watch it flatten.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p plateau-core --example landscape
//! ```

use plateau_core::ansatz::training_ansatz;
use plateau_core::cost::CostKind;
use plateau_core::init::{FanMode, InitStrategy};
use plateau_core::landscape::{landscape_grid, LandscapeConfig};
use plateau_rng::rngs::StdRng;
use plateau_rng::SeedableRng;

const SHADES: &[u8] = b" .:-=+*#%@";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = LandscapeConfig::default().with_resolution(21)?;
    for n_qubits in [2usize, 5, 8] {
        let ansatz = training_ansatz(n_qubits, 20)?;
        let mut rng = StdRng::seed_from_u64(5);
        let base =
            InitStrategy::Random.sample_params(&ansatz.shape, FanMode::Qubits, &mut rng)?;
        let n = ansatz.circuit.n_params();
        let grid = landscape_grid(
            &ansatz.circuit,
            &CostKind::Global.observable(n_qubits),
            &base,
            n - 2,
            n - 1,
            &config,
        )?;

        println!(
            "\n{n_qubits} qubits — cost over (θ_a, θ_b) ∈ [−π, π]², amplitude {:.4}",
            grid.amplitude()
        );
        // Shade by absolute cost so flattening is visible across panels.
        for row in &grid.values {
            let line: String = row
                .iter()
                .map(|&v| {
                    let idx = (v.clamp(0.0, 1.0) * (SHADES.len() - 1) as f64).round() as usize;
                    SHADES[idx] as char
                })
                .collect();
            println!("  {line}");
        }
    }
    println!("\n(denser = higher cost; as qubits increase the panel saturates at '@'");
    println!(" with vanishing contrast — the barren plateau of the paper's Fig 1)");
    Ok(())
}
