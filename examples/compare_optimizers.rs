//! Beyond the paper: how much does the *optimizer* matter relative to the
//! *initialization*? Trains the identity task from a Xavier start and from
//! a random start with five optimizers each.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p plateau-core --example compare_optimizers
//! ```

use plateau_core::ansatz::training_ansatz;
use plateau_core::cost::CostKind;
use plateau_core::init::{FanMode, InitStrategy};
use plateau_core::optim::{Adam, AdaGrad, GradientDescent, Momentum, Optimizer, RmsProp};
use plateau_core::train::train;
use plateau_rng::rngs::StdRng;
use plateau_rng::SeedableRng;

fn optimizers() -> Result<Vec<Box<dyn Optimizer>>, plateau_core::CoreError> {
    Ok(vec![
        Box::new(GradientDescent::new(0.1)?),
        Box::new(Momentum::new(0.05, 0.9)?),
        Box::new(Adam::new(0.1)?),
        Box::new(RmsProp::new(0.01)?),
        Box::new(AdaGrad::new(0.1)?),
    ])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_qubits = 6;
    let ansatz = training_ansatz(n_qubits, 4)?;
    let cost = CostKind::Global.observable(n_qubits);

    for strategy in [InitStrategy::XavierNormal, InitStrategy::Random] {
        println!("\n=== initialization: {strategy} ===");
        println!("{:<18}{:>12}{:>12}", "optimizer", "initial C", "final C");
        let mut rng = StdRng::seed_from_u64(23);
        let theta0 = strategy.sample_params(&ansatz.shape, FanMode::Qubits, &mut rng)?;
        for mut opt in optimizers()? {
            let hist = train(&ansatz.circuit, &cost, theta0.clone(), opt.as_mut(), 50)?;
            println!(
                "{:<18}{:>12.4}{:>12.6}",
                opt.name(),
                hist.initial_loss(),
                hist.final_loss()
            );
        }
    }
    println!("\n(the point: no optimizer rescues a random start on the plateau —");
    println!(" initialization, not optimizer choice, is the decisive factor)");
    Ok(())
}
