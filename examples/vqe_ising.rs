//! Beyond the identity task: the paper's initialization strategies on a
//! *physics* problem — VQE ground-state search for the transverse-field
//! Ising chain, scored against exact diagonalization.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p plateau-vqe --example vqe_ising
//! ```

use plateau_core::init::InitStrategy;
use plateau_vqe::hamiltonian::transverse_field_ising;
use plateau_vqe::solver::{solve, VqeConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_qubits = 6;
    let h = transverse_field_ising(n_qubits, 1.0, 1.0)?;
    let cfg = VqeConfig {
        layers: 4,
        iterations: 120,
        seed: 11,
        ..VqeConfig::default()
    };
    println!("TFIM chain: {n_qubits} sites, J = h = 1 (critical point)");
    println!("{:<16}{:>14}{:>14}{:>12}", "strategy", "E_vqe", "E_exact", "rel. err");
    for strategy in InitStrategy::PAPER_SET {
        let r = solve(&h, strategy, &cfg)?;
        println!(
            "{:<16}{:>14.6}{:>14.6}{:>11.2}%",
            strategy.name(),
            r.energy(),
            r.exact_energy,
            100.0 * r.relative_error()?
        );
    }
    println!("\n(the bounded initializers reach chemical-accuracy-scale errors within");
    println!(" the budget; the random start is held back by its flat landscape)");
    Ok(())
}
