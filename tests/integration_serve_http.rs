//! e2e HTTP round-trips against a real listening socket: every endpoint
//! with JSON and QASM bodies, structured 400s, oversized-body rejection,
//! keep-alive vs `Connection: close`, and `/metrics` scraping.

#[path = "serve_common.rs"]
mod serve_common;

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use plateau_obs::json::Json;
use plateau_serve::{
    CircuitSpec, ObservableSpec, Request, ServeConfig, Server, SimulateRequest,
};
use serve_common::{get, parse_response, post, roundtrip_raw};

fn start(cfg: ServeConfig) -> Server {
    Server::start(cfg).expect("bind ephemeral port")
}

fn ring_spec(n: usize) -> CircuitSpec {
    let mut c = plateau_sim::Circuit::new(n).unwrap();
    for q in 0..n {
        c.ry(q).unwrap();
    }
    for q in 0..n - 1 {
        c.cz(q, q + 1).unwrap();
    }
    CircuitSpec::from_circuit(&c)
}

fn simulate_body(n: usize, seed: u64, shots: u64) -> String {
    Request::Simulate(SimulateRequest {
        circuit: ring_spec(n),
        params: (0..n).map(|i| 0.3 + 0.1 * i as f64).collect(),
        observable: ObservableSpec::Global,
        seed,
        shots,
    })
    .serialize()
}

#[test]
fn simulate_json_and_qasm_forms_agree() {
    let server = start(ServeConfig::default());
    let addr = server.addr();

    let ops = post(addr, "/simulate", &simulate_body(3, 1, 0));
    assert_eq!(ops.status, 200, "{}", ops.body);
    assert_eq!(ops.header("Content-Type"), Some("application/json"));

    // The same circuit as OpenQASM text with the parameters baked in.
    let circuit = ring_spec(3).build().unwrap();
    let params: Vec<f64> = (0..3).map(|i| 0.3 + 0.1 * i as f64).collect();
    let qasm = plateau_sim::qasm::to_qasm(&circuit, &params).unwrap();
    let body = Json::obj([
        ("circuit", Json::obj([("qasm", Json::str(qasm))])),
        ("observable", Json::str("global")),
    ])
    .to_string();
    let via_qasm = post(addr, "/simulate", &body);
    assert_eq!(via_qasm.status, 200, "{}", via_qasm.body);

    let expectation_of = |r: &serve_common::Response| -> f64 {
        Json::parse(&r.body).unwrap().as_obj().unwrap()[0].1.as_f64().unwrap()
    };
    assert!(
        (expectation_of(&ops) - expectation_of(&via_qasm)).abs() < 1e-12,
        "op-list and QASM forms must compute the same expectation"
    );
    server.shutdown();
}

#[test]
fn gradient_variance_scan_and_train_round_trip() {
    let server = start(ServeConfig::default());
    let addr = server.addr();

    let grad_body = format!(
        "{{\"circuit\":{},\"params\":[0.2,0.5],\"observable\":\"local\",\"engine\":\"adjoint\",\"seed\":0}}",
        ring_spec(2).to_json()
    );
    let grad = post(addr, "/gradient", &grad_body);
    assert_eq!(grad.status, 200, "{}", grad.body);
    let parsed = Json::parse(&grad.body).unwrap();
    let grads = parsed.as_obj().unwrap()[1].1.as_arr().unwrap();
    assert_eq!(grads.len(), 2);

    let scan = post(
        addr,
        "/variance-scan",
        r#"{"qubits":[2,3],"layers":3,"circuits":6,"strategies":["random","zero"],"cost":"global","ansatz":"random","seed":9}"#,
    );
    assert_eq!(scan.status, 200, "{}", scan.body);
    let curves = Json::parse(&scan.body).unwrap().as_obj().unwrap()[0]
        .1
        .as_arr()
        .unwrap()
        .len();
    assert_eq!(curves, 2);

    let train = post(
        addr,
        "/train",
        r#"{"qubits":2,"layers":1,"iterations":3,"strategy":"xavier_normal","optimizer":"adam","lr":0.1,"fan":"tensor","seed":4}"#,
    );
    assert_eq!(train.status, 200, "{}", train.body);
    let obj = Json::parse(&train.body).unwrap();
    let losses = obj.as_obj().unwrap()[2].1.as_arr().unwrap();
    assert_eq!(losses.len(), 4, "initial + 3 iterations");
    server.shutdown();
}

#[test]
fn malformed_requests_get_structured_400s() {
    let server = start(ServeConfig::default());
    let addr = server.addr();

    let cases = [
        ("/simulate", "{this is not json"),
        ("/simulate", r#"{"circuit":{"qubits":1,"ops":[{"gate":"warp","qubits":[0]}]},"observable":"global"}"#),
        ("/simulate", r#"{"circuit":{"qubits":1,"ops":[]},"observable":"global","unknown_field":1}"#),
        ("/gradient", r#"{"circuit":{"qubits":1,"ops":[]},"observable":"global","engine":"psychic"}"#),
        ("/train", r#"{"qubits":2,"layers":1,"iterations":0}"#),
        ("/simulate", r#"{"circuit":{"qubits":2,"ops":[{"gate":"ry","qubits":[0]}]},"params":[0.1,0.2,0.3],"observable":"global"}"#),
    ];
    for (path, body) in cases {
        let r = post(addr, path, body);
        assert_eq!(r.status, 400, "{path} {body} → {}", r.body);
        let parsed = Json::parse(&r.body).expect("error body is JSON");
        let err = parsed.as_obj().unwrap();
        assert_eq!(err[0].0, "error", "{}", r.body);
        let inner = err[0].1.as_obj().unwrap();
        assert_eq!(inner[0].0, "code");
        assert_eq!(inner[1].0, "message");
    }

    // Unknown endpoint and wrong method are structured too.
    assert_eq!(post(addr, "/frobnicate", "{}").status, 404);
    assert_eq!(get(addr, "/simulate").status, 405);
    server.shutdown();
}

#[test]
fn oversized_bodies_are_rejected_with_413() {
    let server = start(ServeConfig {
        max_body: 2048,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    let huge = format!(
        "{{\"circuit\":{{\"qubits\":1,\"ops\":[]}},\"observable\":\"global\",\"seed\":{}}}",
        "1".repeat(4096)
    );
    let r = post(addr, "/simulate", &huge);
    assert_eq!(r.status, 413, "{}", r.body);
    assert!(r.body.contains("\"error\""), "{}", r.body);

    // At the limit still works.
    let ok = post(addr, "/simulate", &simulate_body(2, 0, 0));
    assert_eq!(ok.status, 200);
    server.shutdown();
}

#[test]
fn garbage_framing_closes_with_400() {
    let server = start(ServeConfig::default());
    let addr = server.addr();
    let r = roundtrip_raw(addr, b"NONSENSE\r\n\r\n");
    assert_eq!(r.status, 400);
    let r = roundtrip_raw(addr, b"GET / HTTP/3.0\r\nHost: x\r\n\r\n");
    assert_eq!(r.status, 400);
    server.shutdown();
}

#[test]
fn keep_alive_serves_many_requests_on_one_socket() {
    let server = start(ServeConfig::default());
    let addr = server.addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let body = simulate_body(2, 3, 0);

    let read_one = |stream: &mut TcpStream, buf: &mut Vec<u8>| -> serve_common::Response {
        let mut chunk = [0u8; 4096];
        loop {
            // Try to parse what we have; read more on a torn prefix.
            if buf.windows(4).any(|w| w == b"\r\n\r\n") {
                let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n").unwrap();
                let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
                if let Some(len_line) = head
                    .split("\r\n")
                    .find(|l| l.to_ascii_lowercase().starts_with("content-length"))
                {
                    let len: usize = len_line.split(':').nth(1).unwrap().trim().parse().unwrap();
                    if buf.len() >= head_end + 4 + len {
                        let (resp, consumed) = parse_response(buf);
                        buf.drain(..consumed);
                        return resp;
                    }
                }
            }
            let n = stream.read(&mut chunk).expect("read");
            assert!(n > 0, "peer closed mid-response");
            buf.extend_from_slice(&chunk[..n]);
        }
    };

    let mut buf = Vec::new();
    for i in 0..3 {
        let raw = format!(
            "POST /simulate HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(raw.as_bytes()).unwrap();
        let r = read_one(&mut stream, &mut buf);
        assert_eq!(r.status, 200, "request {i} on the shared socket");
        assert_eq!(r.header("Connection"), Some("keep-alive"));
    }

    // Final request asks to close; the server honors it with EOF.
    let raw = format!(
        "POST /simulate HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).unwrap();
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    buf.extend_from_slice(&rest);
    let (r, consumed) = parse_response(&buf);
    assert_eq!(r.status, 200);
    assert_eq!(r.header("Connection"), Some("close"));
    assert_eq!(consumed, buf.len());
    server.shutdown();
}

#[test]
fn healthz_and_metrics_report_service_state() {
    let server = start(ServeConfig::default());
    let addr = server.addr();

    let health = get(addr, "/healthz");
    assert_eq!(health.status, 200);
    let parsed = Json::parse(&health.body).unwrap();
    let obj = parsed.as_obj().unwrap();
    assert_eq!(obj[0].1.as_str(), Some("ok"));
    assert_eq!(obj[1].1, Json::Bool(false), "not draining");

    // Drive a few requests, then scrape.
    let sent = 4;
    for i in 0..sent {
        assert_eq!(post(addr, "/simulate", &simulate_body(2, i, 0)).status, 200);
    }
    let metrics = get(addr, "/metrics");
    assert_eq!(metrics.status, 200);
    let snap = Json::parse(&metrics.body).unwrap();
    let counters = snap
        .as_obj()
        .unwrap()
        .iter()
        .find(|(k, _)| k == "counters")
        .expect("counters section")
        .1
        .as_obj()
        .unwrap()
        .to_vec();
    let count_of = |name: &str| -> f64 {
        counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_f64().unwrap())
            .unwrap_or(0.0)
    };
    // The registry is process-global (other tests' servers write to it
    // too), so assert a floor, not equality — exact-count matching is
    // the single-tenant load_gate's job.
    assert!(
        count_of("serve.requests.simulate") >= sent as f64,
        "simulate counter below this test's own traffic: {}",
        count_of("serve.requests.simulate")
    );
    assert!(count_of("serve.responses.2xx") >= sent as f64);
    server.shutdown();
}
