//! End-to-end checks of the paper's central claim at reduced scale: the
//! bounded classical initializers slow the exponential decay of gradient
//! variance relative to the random baseline.

use plateau_core::init::InitStrategy;
use plateau_core::variance::{variance_scan, VarianceConfig};

fn scan_config(layers: usize, n_circuits: usize) -> VarianceConfig {
    VarianceConfig {
        qubit_counts: vec![2, 4, 6],
        layers,
        n_circuits,
        ..VarianceConfig::default()
    }
}

#[test]
fn random_baseline_shows_exponential_decay() {
    let scan = variance_scan(&scan_config(25, 60), &[InitStrategy::Random]).expect("scan");
    let curve = &scan.curves[0];
    // Monotone decreasing variance across qubit counts.
    for w in curve.points.windows(2) {
        assert!(
            w[0].variance > w[1].variance,
            "variance should fall with qubits: {} vs {}",
            w[0].variance,
            w[1].variance
        );
    }
    let fit = curve.decay_fit().expect("fit");
    assert!(fit.rate < -0.3, "decay rate {} should be clearly negative", fit.rate);
    assert!(fit.r_squared > 0.8, "exponential fit quality {}", fit.r_squared);
}

#[test]
fn every_paper_strategy_beats_random() {
    let scan = variance_scan(&scan_config(25, 60), &InitStrategy::PAPER_SET).expect("scan");
    let improvements = scan
        .improvements_vs(InitStrategy::Random)
        .expect("improvement table");
    assert_eq!(improvements.len(), 5);
    for imp in &improvements {
        assert!(
            imp.improvement_percent > 0.0,
            "{} should improve on random, got {:.1}%",
            imp.strategy,
            imp.improvement_percent
        );
    }
}

#[test]
fn xavier_gradient_magnitudes_exceed_random_at_largest_width() {
    let scan = variance_scan(
        &scan_config(25, 60),
        &[InitStrategy::Random, InitStrategy::XavierNormal],
    )
    .expect("scan");
    let rand_curve = scan.curve_of(InitStrategy::Random).expect("random");
    let xav_curve = scan.curve_of(InitStrategy::XavierNormal).expect("xavier");
    let q_max_idx = rand_curve.points.len() - 1;
    assert!(
        xav_curve.points[q_max_idx].variance > rand_curve.points[q_max_idx].variance,
        "at the largest width Xavier should retain more gradient variance"
    );
}

#[test]
fn paired_circuit_structure_across_strategies() {
    // The harness reuses circuit structures across strategies: with the
    // Zero strategy every gradient is exactly 0 (identity circuit at the
    // global minimum), regardless of the random gate pattern.
    let scan = variance_scan(&scan_config(10, 8), &[InitStrategy::Zero]).expect("scan");
    for p in &scan.curves[0].points {
        for g in &p.gradients {
            assert!(g.abs() < 1e-12, "zero init must sit at the stationary point");
        }
    }
}

#[test]
fn variance_magnitudes_are_physical() {
    // C ∈ [0, 1] and the two-term shift rule bound |∂C| ≤ 1, so
    // Var ≤ 1. Also all variances must be strictly positive for random.
    let scan = variance_scan(&scan_config(15, 40), &[InitStrategy::Random]).expect("scan");
    for p in &scan.curves[0].points {
        assert!(p.variance > 0.0);
        assert!(p.variance < 1.0);
        for g in &p.gradients {
            assert!(g.abs() <= 1.0 + 1e-9);
        }
    }
}
