//! Shared raw-socket HTTP client for the serve integration suites.
//!
//! Deliberately *not* built on `plateau_serve::http` — the tests should
//! exercise the server through an independent implementation of the
//! protocol, so a bug that is symmetric in the server's parser and
//! serializer cannot hide.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl Response {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Parses one response off the front of `bytes`, returning it and the
/// number of bytes consumed. Panics on torn or malformed responses —
/// that is the failure the concurrency tests are hunting.
pub fn parse_response(bytes: &[u8]) -> (Response, usize) {
    let head_end = bytes
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head must be complete");
    let head = std::str::from_utf8(&bytes[..head_end]).expect("head is ASCII");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    assert!(
        status_line.starts_with("HTTP/1.1 "),
        "bad status line: {status_line:?}"
    );
    let status: u16 = status_line[9..12].parse().expect("numeric status");
    let headers: Vec<(String, String)> = lines
        .map(|l| {
            let (k, v) = l.split_once(':').expect("header colon");
            (k.trim().to_string(), v.trim().to_string())
        })
        .collect();
    let len: usize = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .map(|(_, v)| v.parse().expect("numeric content-length"))
        .expect("every serve response carries Content-Length");
    let body_start = head_end + 4;
    assert!(
        bytes.len() >= body_start + len,
        "torn response: head promises {len} body bytes, got {}",
        bytes.len() - body_start
    );
    let body = std::str::from_utf8(&bytes[body_start..body_start + len])
        .expect("body is UTF-8")
        .to_string();
    (
        Response {
            status,
            headers,
            body,
        },
        body_start + len,
    )
}

/// Opens a connection, sends `raw`, reads to EOF, and parses exactly one
/// response (asserting nothing trails it).
pub fn roundtrip_raw(addr: SocketAddr, raw: &[u8]) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(raw).expect("send");
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("read");
    let (response, consumed) = parse_response(&buf);
    assert_eq!(consumed, buf.len(), "unexpected bytes after the response");
    response
}

/// `POST path` with a JSON body on a fresh `Connection: close` socket.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> Response {
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    roundtrip_raw(addr, raw.as_bytes())
}

/// `GET path` on a fresh `Connection: close` socket.
pub fn get(addr: SocketAddr, path: &str) -> Response {
    let raw = format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n");
    roundtrip_raw(addr, raw.as_bytes())
}
