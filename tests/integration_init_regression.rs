//! Golden-vector regression tests for the parameter initializers.
//!
//! The workspace's determinism story rests on the in-repo `plateau-rng`
//! stream: every figure, scan, and training run is reproducible from a
//! seed. These tests pin the exact draws each `InitStrategy` produces for
//! one fixed seed and shape, so any accidental change to the generator,
//! the seed-expansion scheme, the distribution transforms, or the
//! initializers' consumption order of the stream shows up as a test
//! failure rather than as silently shifted experiment outputs.
//!
//! Goldens were computed from this crate at the commit that introduced
//! `plateau-rng` (xoshiro256++ seeded via splitmix64). If a deliberate
//! RNG change invalidates them, regenerate by printing the draws below
//! and reviewing the diff of every experiment output alongside.

use plateau_core::init::{FanMode, InitStrategy, LayerShape};
use plateau_rng::{rngs::StdRng, SeedableRng};

const SEED: u64 = 0x1717;

/// Shape used by every golden: 4 qubits, 8 params/layer, 2 layers.
fn shape() -> LayerShape {
    LayerShape::new(4, 8, 2).expect("valid shape")
}

fn draw(strategy: InitStrategy) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(SEED);
    strategy
        .sample_params(&shape(), FanMode::Qubits, &mut rng)
        .expect("sample")
}

fn assert_head_and_sum(strategy: InitStrategy, head: &[f64], sum: f64) {
    let theta = draw(strategy);
    assert_eq!(theta.len(), 16);
    for (i, (got, want)) in theta.iter().zip(head.iter()).enumerate() {
        assert!(
            (got - want).abs() < 1e-12,
            "{strategy:?} draw {i}: got {got:?}, pinned {want:?}"
        );
    }
    let got_sum: f64 = theta.iter().sum();
    assert!(
        (got_sum - sum).abs() < 1e-12,
        "{strategy:?} sum: got {got_sum:?}, pinned {sum:?}"
    );
}

#[test]
fn random_draws_are_pinned() {
    assert_head_and_sum(
        InitStrategy::Random,
        &[
            0.09130172320258244,
            3.7209302021729562,
            0.992654851295627,
            0.5001731195372388,
            4.9994276030064615,
            0.24558652715338317,
        ],
        35.426554633315206,
    );
}

#[test]
fn xavier_normal_draws_are_pinned() {
    assert_head_and_sum(
        InitStrategy::XavierNormal,
        &[
            -0.07159073094762339,
            0.25730237363168884,
            0.8643535123229453,
            -0.14692758390687738,
            0.13470407252894334,
            0.12219128375900207,
        ],
        0.5830711868696261,
    );
}

#[test]
fn xavier_uniform_draws_are_pinned() {
    assert_head_and_sum(
        InitStrategy::XavierUniform,
        &[
            -0.8408567646827456,
            0.15970276536836203,
            -0.592385752434488,
            -0.7281454570273698,
            0.5121390452689465,
            -0.7983259294114643,
        ],
        -4.0905648432582975,
    );
}

#[test]
fn he_draws_are_pinned() {
    assert_head_and_sum(
        InitStrategy::He,
        &[
            -0.10124458264633227,
            0.36388050642072384,
            1.2223804598119294,
            -0.2077869818478169,
            0.19050032627732075,
            0.17280457069576005,
        ],
        0.8245871803000029,
    );
}

#[test]
fn lecun_draws_are_pinned() {
    assert_head_and_sum(
        InitStrategy::LeCun,
        &[
            -0.07159073094762339,
            0.25730237363168884,
            0.8643535123229453,
            -0.14692758390687738,
            0.13470407252894334,
            0.12219128375900207,
        ],
        0.5830711868696261,
    );
}

#[test]
fn orthogonal_draws_are_pinned() {
    assert_head_and_sum(
        InitStrategy::Orthogonal { gain: 1.0 },
        &[
            -0.062247228306057334,
            0.156364337434647,
            0.7891963914317679,
            -0.15981983739458955,
            0.41678289527710466,
            0.17896120992059844,
        ],
        1.4656714579681998,
    );
}

#[test]
fn xavier_normal_coincides_with_lecun_under_qubit_fans() {
    // With fan_in = fan_out = q, Xavier-normal's Var = 2/(2q) equals
    // LeCun's Var = 1/q, so identical seeds give identical draws — the
    // coincidence the init module documents. Pinning it here makes any
    // divergence (e.g. a changed stream-consumption order) loud.
    assert_eq!(draw(InitStrategy::XavierNormal), draw(InitStrategy::LeCun));
}

#[test]
fn draws_are_deterministic_per_seed() {
    for strategy in InitStrategy::PAPER_SET {
        assert_eq!(draw(strategy), draw(strategy), "{strategy:?}");
    }
}

#[test]
fn distinct_seeds_give_distinct_draws() {
    let a = draw(InitStrategy::XavierNormal);
    let mut rng = StdRng::seed_from_u64(SEED + 1);
    let b = InitStrategy::XavierNormal
        .sample_params(&shape(), FanMode::Qubits, &mut rng)
        .expect("sample");
    assert_ne!(a, b);
}
