//! Integration tests for the extension systems: QNG, SPSA, mitigation
//! baselines, noise channels, entanglement analysis, and two-qubit
//! rotation ansätze — each exercised through the same public API the
//! ablation benches use.

use plateau_core::analysis::{average_entanglement, expressibility_kl};
use plateau_core::ansatz::training_ansatz;
use plateau_core::cost::CostKind;
use plateau_core::init::{FanMode, InitStrategy};
use plateau_core::mitigation::{identity_block_ansatz, identity_block_params, train_layerwise};
use plateau_core::optim::{Adam, Optimizer};
use plateau_core::qng::{train_qng, QngConfig};
use plateau_core::spsa::{train_spsa, SpsaConfig};
use plateau_core::train::train;
use plateau_grad::{Adjoint, GradientEngine, ParameterShift};
use plateau_sim::{Circuit, NoiseModel, Observable};
use plateau_rng::rngs::StdRng;
use plateau_rng::SeedableRng;

#[test]
fn qng_and_adam_both_solve_the_identity_task() {
    let a = training_ansatz(4, 2).expect("ansatz");
    let obs = CostKind::Global.observable(4);
    let mut rng = StdRng::seed_from_u64(0);
    let theta0 = InitStrategy::XavierNormal
        .sample_params(&a.shape, FanMode::TensorShape, &mut rng)
        .expect("init");

    let qng = train_qng(&a.circuit, &obs, theta0.clone(), &QngConfig::default(), 30)
        .expect("qng");
    let mut adam = Adam::new(0.1).expect("adam");
    let plain = train(&a.circuit, &obs, theta0, &mut adam, 30).expect("adam train");

    assert!(qng.final_loss() < 0.05, "qng final {}", qng.final_loss());
    assert!(plain.final_loss() < 0.05, "adam final {}", plain.final_loss());
}

#[test]
fn spsa_tracks_exact_gradient_methods_on_smooth_task() {
    let a = training_ansatz(3, 2).expect("ansatz");
    let obs = CostKind::Global.observable(3);
    let mut rng = StdRng::seed_from_u64(1);
    let theta0 = InitStrategy::LeCun
        .sample_params(&a.shape, FanMode::Qubits, &mut rng)
        .expect("init");
    let hist = train_spsa(&a.circuit, &obs, theta0, &SpsaConfig::default(), 400, &mut rng)
        .expect("spsa");
    // SPSA is stochastic and slower per iteration quality than exact
    // gradients; require a solid reduction rather than near-exact solution.
    assert!(
        hist.final_loss() < 0.3 * hist.initial_loss(),
        "spsa {} → {}",
        hist.initial_loss(),
        hist.final_loss()
    );
}

#[test]
fn identity_block_circuit_trains_on_identity_task() {
    // Identity-block init prepares RY(π/4)^⊗n|0⟩ (prep layer), so the
    // identity task starts at a nontrivial cost and must train down.
    let ib = identity_block_ansatz(4, 2, 1).expect("ansatz");
    let obs = CostKind::Global.observable(4);
    let mut rng = StdRng::seed_from_u64(2);
    let theta0 = identity_block_params(&ib, &mut rng).expect("init");
    let initial = plateau_grad::expectation(&ib.circuit, &theta0, &obs).expect("cost");
    assert!(initial > 0.1, "prep layer should displace the start: {initial}");
    let mut adam = Adam::new(0.1).expect("adam");
    let hist = train(&ib.circuit, &obs, theta0, &mut adam, 40).expect("train");
    assert!(hist.final_loss() < 0.05, "final {}", hist.final_loss());
}

#[test]
fn layerwise_matches_or_beats_plain_gd_from_random_start() {
    let a = training_ansatz(5, 3).expect("ansatz");
    let obs = CostKind::Global.observable(5);
    let mut rng = StdRng::seed_from_u64(3);
    let theta0 = InitStrategy::Random
        .sample_params(&a.shape, FanMode::Qubits, &mut rng)
        .expect("init");
    let layered = train_layerwise(
        &a,
        &obs,
        theta0.clone(),
        &mut || Box::new(Adam::new(0.1).expect("adam")) as Box<dyn Optimizer>,
        15,
    )
    .expect("layerwise");
    assert!(layered.final_loss() < layered.initial_loss());
}

#[test]
fn noise_floor_rises_with_channel_strength_on_trained_circuit() {
    let a = training_ansatz(3, 2).expect("ansatz");
    let obs = CostKind::Global.observable(3);
    let mut rng = StdRng::seed_from_u64(4);
    let theta0 = InitStrategy::XavierNormal
        .sample_params(&a.shape, FanMode::Qubits, &mut rng)
        .expect("init");
    let mut adam = Adam::new(0.1).expect("adam");
    let hist = train(&a.circuit, &obs, theta0, &mut adam, 40).expect("train");

    let mut floors = Vec::new();
    for p in [0.0, 0.02, 0.1] {
        let noise = NoiseModel::depolarizing(p).expect("noise");
        let mut traj_rng = StdRng::seed_from_u64(5);
        floors.push(
            noise
                .expectation(&a.circuit, hist.final_params(), &obs, 800, &mut traj_rng)
                .expect("noisy cost"),
        );
    }
    assert!(floors[0] < 0.05, "noiseless trained cost {}", floors[0]);
    assert!(floors[1] > floors[0]);
    assert!(floors[2] > floors[1]);
}

#[test]
fn entanglement_and_expressibility_rank_consistently_with_variance() {
    // The mechanism chain: lower entanglement/expressibility ⇒ shallower
    // variance decay. Random must rank highest on both diagnostics.
    let a = training_ansatz(4, 4).expect("ansatz");
    let mut worst_q = f64::NEG_INFINITY;
    let mut random_q = 0.0;
    for strategy in InitStrategy::PAPER_SET {
        let q = average_entanglement(&a, strategy, FanMode::TensorShape, 12, 6).expect("Q");
        if strategy == InitStrategy::Random {
            random_q = q;
        }
        worst_q = worst_q.max(q);
    }
    assert!(
        (random_q - worst_q).abs() < 1e-12,
        "random should maximize entanglement: {random_q} vs max {worst_q}"
    );

    let kl_random =
        expressibility_kl(&a, InitStrategy::Random, FanMode::TensorShape, 200, 16, 6)
            .expect("kl");
    let kl_xavier =
        expressibility_kl(&a, InitStrategy::XavierNormal, FanMode::TensorShape, 200, 16, 6)
            .expect("kl");
    assert!(kl_random < kl_xavier);
}

#[test]
fn two_qubit_rotation_ansatz_full_stack() {
    // An RZZ-entangled ansatz exercised through gradients and training —
    // the parameterized-entangler path end-to-end.
    let n = 3;
    let mut c = Circuit::new(n).expect("circuit");
    for q in 0..n {
        c.ry(q).expect("ry");
    }
    for q in 0..n - 1 {
        c.rzz(q, q + 1).expect("rzz");
    }
    for q in 0..n {
        c.rx(q).expect("rx");
    }
    let obs = Observable::global_cost(n);
    let params: Vec<f64> = (0..c.n_params()).map(|i| 0.2 + 0.1 * i as f64).collect();

    let adj = Adjoint.gradient(&c, &params, &obs).expect("adjoint");
    let shift = ParameterShift.gradient(&c, &params, &obs).expect("shift");
    for (a, s) in adj.iter().zip(shift.iter()) {
        assert!((a - s).abs() < 1e-10);
    }

    let mut adam = Adam::new(0.1).expect("adam");
    let hist = train(&c, &obs, params, &mut adam, 40).expect("train");
    assert!(hist.final_loss() < 0.05, "final {}", hist.final_loss());
}
