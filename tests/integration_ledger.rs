//! Acceptance test for the experiment ledger closing the loop on the
//! paper's claim: two fixed-seed variance scans — the uniform baseline
//! and a reduced-domain initializer — are registered in the run ledger,
//! loaded back through the `obs runs` comparison machinery, and the
//! fitted per-qubit decay slopes reproduce the qualitative ordering
//! (random decays strictly faster than the bounded start).

use plateau_core::init::InitStrategy;
use plateau_core::variance::{variance_scan, VarianceConfig};
use plateau_obs::runs::{Ledger, RunComparison};

#[test]
fn ledger_comparison_reproduces_variance_decay_ordering() {
    let _guard = plateau_obs::test_lock();
    let dir = std::env::temp_dir().join(format!(
        "plateau_ledger_ordering_{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    plateau_obs::set_ledger_dir(Some(&dir));

    // Reduced-scale version of the paper's sweep (Fig. 3): same circuit
    // ensemble per strategy thanks to the shared master seed.
    let cfg = VarianceConfig {
        qubit_counts: vec![2, 4, 6],
        layers: 25,
        n_circuits: 60,
        seed: 11,
        ..VarianceConfig::default()
    };
    let uniform = variance_scan(&cfg, &[InitStrategy::Random]).expect("uniform scan");
    let reduced = variance_scan(&cfg, &[InitStrategy::XavierUniform]).expect("reduced scan");

    plateau_obs::set_ledger_dir(None);

    // Both scans registered, in order, with their decay-rate metrics.
    let ledger = Ledger::load(&dir).expect("ledger loads");
    assert!(ledger.warnings.is_empty(), "{:?}", ledger.warnings);
    assert_eq!(ledger.runs.len(), 2);
    let (a, b) = (&ledger.runs[0], &ledger.runs[1]);
    assert_eq!(a.command, "variance");
    assert_eq!(b.command, "variance");

    let cmp = RunComparison::of(a, b);
    let slope_uniform = cmp
        .slope_a("random")
        .expect("fitted decay slope for the uniform run");
    let slope_reduced = cmp
        .slope_b("xavier_uniform")
        .expect("fitted decay slope for the reduced-domain run");

    // The paper's qualitative ordering: both variances decay with width,
    // but the uniform baseline decays strictly faster (more negative
    // log-slope) than the reduced-domain initializer.
    assert!(slope_uniform < 0.0, "uniform slope {slope_uniform}");
    assert!(
        slope_uniform < slope_reduced,
        "uniform {slope_uniform} should decay faster than reduced-domain {slope_reduced}"
    );

    // The same ordering is visible in the registered decay-rate metrics,
    // and they agree with the in-memory scan fits.
    let rate = |r: &plateau_obs::runs::RunEntry, name: &str| {
        r.metrics
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("metric {name} missing"))
    };
    let rate_uniform = rate(a, "decay_rate_random");
    let rate_reduced = rate(b, "decay_rate_xavier_uniform");
    assert!(rate_uniform < rate_reduced);
    let fit_uniform = uniform.curves[0].decay_fit().expect("uniform fit");
    let fit_reduced = reduced.curves[0].decay_fit().expect("reduced fit");
    assert!((rate_uniform - fit_uniform.rate).abs() < 1e-12);
    assert!((rate_reduced - fit_reduced.rate).abs() < 1e-12);

    // The rendered report and SVG are well-formed artifacts.
    let report = cmp.render();
    assert!(report.contains("exponential decay"), "report:\n{report}");
    let svg = cmp.to_svg();
    assert!(svg.starts_with("<?xml") && svg.trim_end().ends_with("</svg>"));

    std::fs::remove_dir_all(&dir).ok();
}
