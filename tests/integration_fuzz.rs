//! Cross-crate acceptance for the differential fuzzing harness, driven
//! entirely through `plateau-fuzz`'s public API: a clean campaign over
//! the full engine matrix, the mutation self-test (detection + shrink +
//! replay from a written artifact), and two oracle properties the fuzz
//! generator makes cheap to state — tr(ρO) = ⟨ψ|O|ψ⟩ on noiseless
//! random circuits, and pass-pipeline invariance of the full unitary.

use plateau_fuzz::{
    check_pair, random_case, replay, run, EnginePair, FuzzConfig, MAX_FUZZ_QUBITS,
    SMALL_ORACLE_QUBITS,
};
use plateau_rng::rngs::StdRng;
use plateau_rng::{derive_seed, SeedableRng};
use plateau_sim::{circuit_unitary, passes, DensityMatrix};

#[test]
fn public_api_campaign_is_clean_across_the_engine_matrix() {
    let config = FuzzConfig {
        cases: plateau_rng::check::cases(60),
        seed: 0xfeed,
        max_qubits: MAX_FUZZ_QUBITS,
        artifact_dir: None,
        mutate: false,
    };
    let report = run(&config);
    assert!(
        report.clean(),
        "divergences on a clean tree: {:#?}",
        report.mismatches
    );
    // Every pair in the matrix must have executed at least once, and the
    // observed deltas must sit inside their documented tolerances.
    for pair in EnginePair::ALL {
        let stats = report
            .stats
            .get(pair.name())
            .unwrap_or_else(|| panic!("pair {pair} never ran"));
        assert!(stats.comparisons > 0, "pair {pair} never ran");
        assert!(
            stats.max_delta <= pair.tolerance(),
            "pair {pair}: max delta {:e} exceeds tolerance {:e}",
            stats.max_delta,
            pair.tolerance()
        );
    }
}

#[test]
fn mutation_self_test_shrinks_and_replays_from_disk() {
    let dir = std::env::temp_dir().join(format!(
        "plateau-integration-fuzz-{}",
        std::process::id()
    ));
    let config = FuzzConfig {
        cases: 40,
        seed: 0xfeed,
        max_qubits: 5,
        artifact_dir: Some(dir.clone()),
        mutate: true,
    };
    let report = run(&config);
    assert!(
        !report.mismatches.is_empty(),
        "the deliberately broken kernel must be detected"
    );
    let smallest = report
        .mismatches
        .iter()
        .map(|m| m.shrunk.gate_count())
        .min()
        .unwrap();
    assert!(
        smallest <= 8,
        "shrinking stalled: smallest reproducer has {smallest} gates"
    );

    // Both injected bugs — the off-by-one kernel and the wrong-order
    // fusion merge — must be caught independently.
    for pair in [EnginePair::MutatedVsSerial, EnginePair::FusedMutatedVsSerial] {
        assert!(
            report.mismatches.iter().any(|m| m.pair == pair),
            "{pair} was never caught"
        );
    }

    // Round-trip a reproducer through disk: replay must rebuild the exact
    // engine pair and still observe the divergence.
    let found = report
        .mismatches
        .iter()
        .find(|m| m.artifact.is_some() && m.pair == EnginePair::MutatedVsSerial)
        .expect("artifacts enabled, so at least one must be written");
    let outcome = replay(found.artifact.as_deref().unwrap()).expect("artifact parses");
    assert_eq!(outcome.artifact.pair, EnginePair::MutatedVsSerial);
    assert!(
        outcome.mismatch.is_some(),
        "the injected bug must reproduce from its artifact"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn density_matrix_expectation_matches_statevector_on_random_circuits() {
    // tr(ρO) = ⟨ψ|O|ψ⟩ for ρ = |ψ⟩⟨ψ|: the mixed-state engine run on
    // noiseless random circuits must agree with the pure-state engine for
    // every observable family the generator emits (including PauliSum,
    // the family that exposed the normalization-check bug in
    // `PauliString::apply`).
    for index in 0..plateau_rng::check::cases(40) as u64 {
        let mut rng = StdRng::seed_from_u64(derive_seed(0xd0, index, 0, 0));
        let case = random_case(&mut rng, SMALL_ORACLE_QUBITS);
        let (circuit, params) = case.build().expect("generated cases are valid");
        let obs = case.observable().expect("generated observables are valid");

        let state = circuit.run(&params).expect("statevector run");
        let pure = obs.expectation(&state).expect("pure expectation");

        let mut rho = DensityMatrix::zero(case.n_qubits);
        rho.apply_circuit(&circuit, &params).expect("density run");
        let mixed = rho.expectation(&obs).expect("mixed expectation");

        assert!(
            (pure - mixed).abs() < 1e-9,
            "case {index}: tr(rho O) = {mixed} but <psi|O|psi> = {pure}"
        );
    }
}

#[test]
fn pass_pipeline_preserves_the_full_unitary_on_random_circuits() {
    for index in 0..plateau_rng::check::cases(40) as u64 {
        let mut rng = StdRng::seed_from_u64(derive_seed(0xb1, index, 0, 0));
        let case = random_case(&mut rng, SMALL_ORACLE_QUBITS);
        let (circuit, params) = case.build().expect("generated cases are valid");
        let simplified = passes::simplify(&circuit);
        assert!(
            simplified.gate_count() <= circuit.gate_count(),
            "simplify must never grow a circuit"
        );

        let raw = circuit_unitary(&circuit, &params).expect("raw unitary");
        let opt = circuit_unitary(&simplified, &params).expect("optimized unitary");
        assert_eq!(raw.rows(), opt.rows());
        let mut delta = 0.0f64;
        for r in 0..raw.rows() {
            for c in 0..raw.cols() {
                delta = delta.max((raw[(r, c)] - opt[(r, c)]).norm());
            }
        }
        assert!(
            delta < 1e-9,
            "case {index}: pass pipeline moved the unitary by {delta:e}"
        );
    }
}

#[test]
fn check_pair_rejects_nothing_on_a_seeded_tour_of_every_pair() {
    // A direct tour of `check_pair` outside the runner: every applicable
    // pair, on a fresh seed stream, must report agreement with headroom.
    for index in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(derive_seed(0xc2, index, 0, 0));
        let case = random_case(&mut rng, 4);
        for pair in EnginePair::ALL {
            if !pair.applies(&case) {
                continue;
            }
            match check_pair(pair, &case) {
                Ok(delta) => assert!(
                    delta <= pair.tolerance(),
                    "case {index} pair {pair}: delta {delta:e}"
                ),
                Err(m) => panic!("case {index} pair {pair} diverged: {m:?}"),
            }
        }
    }
}
