//! Concurrency and backpressure: N parallel clients against a 1-worker
//! server with a tiny queue. Every request must either succeed (200) or
//! be cleanly rejected (503 + `Retry-After`); the queue-depth gauge must
//! never exceed the configured bound; and graceful shutdown must drain
//! in-flight jobs — no torn responses, ever.

#[path = "serve_common.rs"]
mod serve_common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use plateau_serve::{ServeConfig, Server};
use serve_common::post;

/// A request slow enough (tens of ms) to pile the queue up.
const SLOW_SCAN: &str = r#"{"qubits":[5],"layers":20,"circuits":24,"strategies":["random"],"cost":"global","ansatz":"training","seed":3}"#;

#[test]
fn flood_yields_only_200s_and_clean_503s_within_queue_bound() {
    const QUEUE: usize = 2;
    const CLIENTS: usize = 12;
    let server = Server::start(ServeConfig {
        workers: 1,
        queue_capacity: QUEUE,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr();
    let server = Arc::new(server);

    // Watch the queue-depth gauge from a side thread during the flood.
    let stop = Arc::new(AtomicBool::new(false));
    let watcher = {
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut max_seen = 0usize;
            while !stop.load(Ordering::Relaxed) {
                max_seen = max_seen.max(server.queue_depth());
                std::thread::sleep(Duration::from_micros(200));
            }
            max_seen
        })
    };

    let clients: Vec<_> = (0..CLIENTS)
        .map(|_| {
            std::thread::spawn(move || {
                let r = post(addr, "/variance-scan", SLOW_SCAN);
                (r.status, r.header("Retry-After").map(str::to_string), r.body)
            })
        })
        .collect();
    let outcomes: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    stop.store(true, Ordering::Relaxed);
    let max_depth = watcher.join().unwrap();

    let ok = outcomes.iter().filter(|(s, _, _)| *s == 200).count();
    let rejected = outcomes.iter().filter(|(s, _, _)| *s == 503).count();
    assert_eq!(
        ok + rejected,
        CLIENTS,
        "statuses other than 200/503 appeared: {:?}",
        outcomes.iter().map(|(s, _, _)| s).collect::<Vec<_>>()
    );
    // With 12 clients racing a 1-worker/2-slot server, some must land in
    // the queue; every 200 body must be complete and parseable.
    assert!(ok >= 1, "at least the in-flight request must succeed");
    for (status, retry_after, body) in &outcomes {
        if *status == 503 {
            assert_eq!(retry_after.as_deref(), Some("1"), "503 without Retry-After");
            assert!(body.contains("overloaded"), "{body}");
        } else {
            let parsed = plateau_obs::json::Json::parse(body).expect("complete JSON body");
            assert!(parsed.as_obj().unwrap()[0].0 == "strategies", "{body}");
        }
    }
    assert!(
        max_depth <= QUEUE,
        "queue depth {max_depth} exceeded its bound {QUEUE}"
    );

    Arc::try_unwrap(server).ok().expect("sole owner").shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_work() {
    let server = Server::start(ServeConfig {
        workers: 1,
        queue_capacity: 8,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr();

    // Six clients enqueue slow jobs, then the server shuts down while
    // most are still queued.
    let clients: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let r = post(addr, "/variance-scan", SLOW_SCAN);
                (r.status, r.body)
            })
        })
        .collect();
    // Let the requests reach the queue before draining.
    std::thread::sleep(Duration::from_millis(150));
    server.shutdown();

    // Every accepted client still gets a COMPLETE response: either its
    // result (the drain promise) or a clean shutting-down 503 for
    // requests that arrived after the queue closed. `post` panics on a
    // torn response, so joining cleanly is itself the assertion.
    for c in clients {
        let (status, body) = c.join().expect("client saw a complete response");
        assert!(
            status == 200 || status == 503,
            "unexpected status {status}: {body}"
        );
        if status == 200 {
            plateau_obs::json::Json::parse(&body).expect("drained response is whole JSON");
        } else {
            assert!(body.contains("shutting_down") || body.contains("overloaded"), "{body}");
        }
    }

    // The listener is gone.
    assert!(
        std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(300)).is_err(),
        "socket still accepting after shutdown"
    );
}
