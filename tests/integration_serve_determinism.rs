//! Determinism property: the same request body (same seed) returns a
//! bit-identical response body across `PLATEAU_THREADS` ∈ {1, 2, 4} and
//! across cold vs LRU-warm compiled-cache hits.
//!
//! Everything runs inside ONE `#[test]` — the thread-count sweep mutates
//! the process-wide `PLATEAU_THREADS` variable, which must not race
//! other tests in this binary.

#[path = "serve_common.rs"]
mod serve_common;

use plateau_serve::{ServeConfig, Server};
use serve_common::post;

fn bodies() -> Vec<(&'static str, String)> {
    let ring = {
        let mut c = plateau_sim::Circuit::new(4).unwrap();
        for q in 0..4 {
            c.ry(q).unwrap();
            c.rx(q).unwrap();
        }
        for q in 0..3 {
            c.cz(q, q + 1).unwrap();
        }
        plateau_serve::CircuitSpec::from_circuit(&c).to_json().to_string()
    };
    vec![
        (
            "/simulate",
            format!(
                "{{\"circuit\":{ring},\"params\":[0.3,-0.7,1.1,0.2,0.9,-0.4,0.5,0.8],\
                 \"observable\":\"global\",\"seed\":1234,\"shots\":500}}"
            ),
        ),
        (
            "/gradient",
            format!(
                "{{\"circuit\":{ring},\"params\":[0.3,-0.7,1.1,0.2,0.9,-0.4,0.5,0.8],\
                 \"observable\":\"local\",\"engine\":\"adjoint\",\"seed\":7}}"
            ),
        ),
        (
            "/variance-scan",
            r#"{"qubits":[2,4],"layers":5,"circuits":16,"strategies":["random","xavier_uniform"],"cost":"global","ansatz":"training","seed":42}"#.to_string(),
        ),
        (
            "/train",
            r#"{"qubits":3,"layers":2,"iterations":5,"strategy":"he","optimizer":"adam","lr":0.1,"fan":"tensor","seed":11}"#.to_string(),
        ),
    ]
}

#[test]
fn responses_are_bit_identical_across_threads_and_cache_state() {
    let server = Server::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr();
    let prior_threads = std::env::var("PLATEAU_THREADS").ok();

    for (path, body) in bodies() {
        // Reference response: cold cache, 1 thread.
        std::env::set_var("PLATEAU_THREADS", "1");
        server.cache().clear();
        let reference = post(addr, path, &body);
        assert_eq!(reference.status, 200, "{path}: {}", reference.body);
        if path == "/simulate" || path == "/gradient" {
            assert_eq!(
                reference.header("X-Plateau-Cache"),
                Some("miss"),
                "{path} after a cache clear must be cold"
            );
        }

        // Warm hit, same thread count: identical body, hit header.
        let warm = post(addr, path, &body);
        assert_eq!(
            warm.body, reference.body,
            "{path}: warm cache changed the body"
        );
        if path == "/simulate" || path == "/gradient" {
            assert_eq!(warm.header("X-Plateau-Cache"), Some("hit"));
        }

        // Thread-count sweep, cold and warm each time.
        for threads in ["2", "4"] {
            std::env::set_var("PLATEAU_THREADS", threads);
            server.cache().clear();
            let cold = post(addr, path, &body);
            assert_eq!(
                cold.body, reference.body,
                "{path}: PLATEAU_THREADS={threads} cold body diverged"
            );
            let warm = post(addr, path, &body);
            assert_eq!(
                warm.body, reference.body,
                "{path}: PLATEAU_THREADS={threads} warm body diverged"
            );
        }
    }

    match prior_threads {
        Some(v) => std::env::set_var("PLATEAU_THREADS", v),
        None => std::env::remove_var("PLATEAU_THREADS"),
    }
    server.shutdown();
}
