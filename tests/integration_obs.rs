//! Cross-crate observability integration: exact counter totals through the
//! thread pool, analytic gate-count verification around a variance scan,
//! a JSONL round-trip through the in-repo JSON parser, and the trace
//! profiler pipeline (record → reconstruct → aggregate → diff) against
//! both a live run and the committed golden fixture.
//!
//! The obs registry is process-global, so every test serializes on
//! [`plateau_obs::test_lock`] and works with snapshot *deltas*.

use plateau_core::init::InitStrategy;
use plateau_core::variance::{variance_scan, GradEngineKind, VarianceConfig};
use plateau_obs::analyze::{Analysis, Trace, TraceError};
use plateau_obs::json::Json;

/// Path of the committed golden trace (relative to this crate's manifest,
/// which lives in `crates/core`).
const GOLDEN_TRACE: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/fixtures/golden_trace.jsonl");

fn counter_value(name: &str) -> u64 {
    plateau_obs::snapshot().counter(name).unwrap_or(0)
}

#[test]
fn par_task_counter_is_exact_across_thread_counts() {
    let _guard = plateau_obs::test_lock();
    plateau_obs::set_metrics_enabled(true);
    for threads in ["1", "4", "8"] {
        std::env::set_var("PLATEAU_THREADS", threads);
        let before = counter_value("par.tasks");
        let batches_before = counter_value("par.batches");
        let out = plateau_par::par_map_indexed(97, |i| i * i);
        assert_eq!(out.len(), 97);
        // Every item is claimed and executed exactly once, regardless of
        // how many workers raced for the queue.
        assert_eq!(counter_value("par.tasks") - before, 97, "threads={threads}");
        assert_eq!(counter_value("par.batches") - batches_before, 1);
        let workers = plateau_obs::snapshot().gauge("par.workers").unwrap();
        assert!(workers >= 1.0 && workers <= threads.parse::<f64>().unwrap());
        // The timing histogram saw the same 97 tasks.
        let hist = plateau_obs::snapshot();
        assert!(hist.histogram("par.task_ns").unwrap().count >= 97);
    }
    std::env::remove_var("PLATEAU_THREADS");
    plateau_obs::set_metrics_enabled(false);
}

#[test]
fn variance_scan_gate_counters_match_analytic_counts() {
    let _guard = plateau_obs::test_lock();
    plateau_obs::set_metrics_enabled(true);
    plateau_obs::metrics::reset();
    // The analytic per-gate counts below assume gate-by-gate execution;
    // pin fusion off so the suite also passes under PLATEAU_SIM_FUSE=1.
    plateau_sim::set_fuse(false);

    let qubits = [2usize, 3];
    let (circuits, layers) = (4usize, 5usize);
    let cfg = VarianceConfig {
        qubit_counts: qubits.to_vec(),
        layers,
        n_circuits: circuits,
        // The analytic counts below assume the parameter-shift rule; the
        // scan's default engine is Adjoint.
        engine: GradEngineKind::ParameterShift,
        ..VarianceConfig::default()
    };
    variance_scan(&cfg, &[InitStrategy::Random]).unwrap();

    let snap = plateau_obs::snapshot();
    // Each gradient sample is a two-term parameter shift: 2 circuit
    // executions. The variance ansatz applies one rotation per qubit per
    // layer and a CZ chain of (q − 1) fixed gates per layer.
    let evals: u64 = 2 * circuits as u64 * qubits.len() as u64;
    let rot: u64 = qubits.iter().map(|&q| (2 * circuits * layers * q) as u64).sum();
    let fixed: u64 = qubits.iter().map(|&q| (2 * circuits * layers * (q - 1)) as u64).sum();
    assert_eq!(snap.counter("grad.expectation_evals"), Some(evals));
    assert_eq!(snap.counter("grad.executions.parameter_shift"), Some(evals));
    assert_eq!(snap.counter("sim.gate.rotation"), Some(rot));
    assert_eq!(snap.counter("sim.gate.fixed"), Some(fixed));
    assert_eq!(
        snap.counter("core.variance.cells"),
        Some(qubits.len() as u64)
    );
    // Each two-term partial routes its pair of shifted evaluations
    // through one batched-executor scratch state: one allocation per
    // *partial* (two executions), with the second execution reusing the
    // scratch in place.
    assert_eq!(snap.counter("sim.state.allocations"), Some(evals / 2));
    assert_eq!(snap.counter("sim.state.reuses"), Some(evals));

    plateau_sim::reset_fuse();
    plateau_obs::metrics::reset();
    plateau_obs::set_metrics_enabled(false);
}

#[test]
fn sim_parallel_counters_are_exact() {
    let _guard = plateau_obs::test_lock();
    plateau_obs::set_metrics_enabled(true);
    plateau_obs::metrics::reset();
    std::env::set_var("PLATEAU_THREADS", "2");
    plateau_sim::set_par_threshold(0);

    // On a 6-qubit state every kernel family has plenty of whole blocks,
    // so each parallel dispatch splits into exactly `t` contiguous chunks
    // where `t = worker_count` (1 on a single-core machine, else 2 under
    // the PLATEAU_THREADS=2 cap above).
    let t = plateau_par::worker_count(usize::MAX) as u64;
    use plateau_sim::{RotationGate, State, TwoQubitRotationGate};
    let mut s = State::zero(6);
    s.apply_rotation(RotationGate::Rx, 0, 0.3).unwrap();
    s.apply_cz(0, 1).unwrap();
    s.apply_controlled_rotation(RotationGate::Rz, 1, 0, 0.7).unwrap();
    s.apply_two_qubit_rotation(TwoQubitRotationGate::Rxx, 1, 0, 0.2).unwrap();

    let snap = plateau_obs::snapshot();
    assert_eq!(snap.counter("sim.par.kernels"), Some(4));
    assert_eq!(snap.counter("sim.par.chunks"), Some(4 * t));

    plateau_sim::reset_par_threshold();
    std::env::remove_var("PLATEAU_THREADS");
    plateau_obs::metrics::reset();
    plateau_obs::set_metrics_enabled(false);
}

#[test]
fn adjoint_executes_constant_circuits_per_gradient() {
    let _guard = plateau_obs::test_lock();
    plateau_obs::set_metrics_enabled(true);

    use plateau_core::ansatz::training_ansatz;
    use plateau_core::cost::CostKind;
    use plateau_grad::{Adjoint, GradientEngine, ParameterShift};

    let a = training_ansatz(3, 2).unwrap();
    let obs = CostKind::Global.observable(3);
    let params = vec![0.1; a.circuit.n_params()];

    let adj_before = counter_value("grad.executions.adjoint");
    Adjoint.gradient(&a.circuit, &params, &obs).unwrap();
    // Forward run + backward sweep: 2, independent of the 12 parameters.
    assert_eq!(counter_value("grad.executions.adjoint") - adj_before, 2);

    let shift_before = counter_value("grad.executions.parameter_shift");
    ParameterShift.gradient(&a.circuit, &params, &obs).unwrap();
    // The shift rule pays 2 executions per parameter.
    assert_eq!(
        counter_value("grad.executions.parameter_shift") - shift_before,
        2 * a.circuit.n_params() as u64
    );

    plateau_obs::set_metrics_enabled(false);
}

#[test]
fn fused_run_emits_exact_compression_counters() {
    let _guard = plateau_obs::test_lock();
    plateau_obs::set_metrics_enabled(true);
    plateau_obs::metrics::reset();
    plateau_sim::set_fuse(true);

    use plateau_core::ansatz::training_ansatz;
    use plateau_core::cost::CostKind;
    use plateau_grad::{expectation, Adjoint, GradientEngine};

    // The paper's training configuration (§IV-D): width 10, depth 5.
    // Per layer the ansatz is RX·RY on each wire plus a CZ chain, so one
    // compile sees layers × (3q − 1) input gates and — per the fusion
    // contract pinned in `plateau_sim::fuse` — emits one merged per-wire
    // block per qubit plus one diagonal CZ-chain superkernel per layer.
    let (q, layers) = (10usize, 5usize);
    let a = training_ansatz(q, layers).unwrap();
    let obs = CostKind::Global.observable(q);
    let params = vec![0.1; a.circuit.n_params()];

    // Two independent entries into the fused hot path, one compile each:
    // a bare cost evaluation and an adjoint gradient.
    expectation(&a.circuit, &params, &obs).unwrap();
    Adjoint.gradient(&a.circuit, &params, &obs).unwrap();

    let snap = plateau_obs::snapshot();
    let compiles = 2u64;
    let gates_in = (layers * (3 * q - 1)) as u64;
    let gates_out = (layers * (q + 1)) as u64;
    assert_eq!(snap.counter("sim.fuse.gates_in"), Some(compiles * gates_in));
    assert_eq!(snap.counter("sim.fuse.gates_out"), Some(compiles * gates_out));
    assert_eq!(
        snap.counter("sim.fuse.superkernels"),
        Some(compiles * layers as u64)
    );
    // Fused segments bypass the per-gate kernels entirely, so the
    // gate-by-gate counters must stay silent.
    assert_eq!(snap.counter("sim.gate.rotation"), None);
    assert_eq!(snap.counter("sim.gate.fixed"), None);

    plateau_sim::reset_fuse();
    plateau_obs::metrics::reset();
    plateau_obs::set_metrics_enabled(false);
}

#[test]
fn jsonl_records_round_trip_through_the_parser() {
    let _guard = plateau_obs::test_lock();
    plateau_obs::metrics::reset();
    let path = std::env::temp_dir().join(format!(
        "plateau-obs-integration-{}.jsonl",
        std::process::id()
    ));
    plateau_obs::init(None, Some(&path)).unwrap();

    plateau_obs::emit_manifest(
        "integration-test",
        vec![("layers".to_string(), Json::str("5"))],
        Some(42),
    );
    {
        let _span = plateau_obs::span!("outer_work", q = 3usize);
        plateau_obs::counter!("test.obs.round_trip").add(7);
        plateau_obs::event!(
            plateau_obs::Level::Warn,
            "synthetic_event",
            grad_norm = 1.5e-5
        );
    }
    plateau_obs::finish_run();
    plateau_obs::set_metrics_enabled(false);

    let raw = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let records: Vec<Json> = raw
        .lines()
        .map(|l| Json::parse(l).expect("every JSONL line parses"))
        .collect();
    assert!(records.len() >= 4, "manifest + event + span + metrics");

    let kind = |r: &Json| r.get("type").and_then(|t| t.as_str().map(String::from));
    let manifest = &records[0];
    assert_eq!(kind(manifest).as_deref(), Some("manifest"));
    assert_eq!(
        manifest.get("command").unwrap().as_str().unwrap(),
        "integration-test"
    );
    assert_eq!(manifest.get("seed").unwrap().as_f64().unwrap(), 42.0);

    let event = records
        .iter()
        .find(|r| kind(r).as_deref() == Some("event"))
        .expect("event record");
    assert_eq!(event.get("name").unwrap().as_str().unwrap(), "synthetic_event");

    let span = records
        .iter()
        .find(|r| kind(r).as_deref() == Some("span"))
        .expect("span record");
    assert_eq!(span.get("name").unwrap().as_str().unwrap(), "outer_work");
    assert!(span.get("duration_ns").unwrap().as_f64().unwrap() >= 0.0);

    let metrics = records
        .iter()
        .find(|r| kind(r).as_deref() == Some("metrics"))
        .expect("metrics snapshot record");
    assert_eq!(
        metrics
            .get("counters")
            .and_then(|c| c.get("test.obs.round_trip"))
            .and_then(|v| v.as_f64()),
        Some(7.0)
    );
}

#[test]
fn live_trace_carries_span_ids_and_reconstructs_exactly() {
    let _guard = plateau_obs::test_lock();
    plateau_obs::metrics::reset();
    // The span forest below is pinned exactly (scan → cells, nothing
    // else); fused kernels add sim.fuse.* spans, so pin fusion off to
    // keep this test meaningful under PLATEAU_SIM_FUSE=1.
    plateau_sim::set_fuse(false);
    let path = std::env::temp_dir().join(format!(
        "plateau-obs-profile-{}.jsonl",
        std::process::id()
    ));
    plateau_obs::init(None, Some(&path)).unwrap();

    let qubits = [2usize, 3];
    let cfg = VarianceConfig {
        qubit_counts: qubits.to_vec(),
        layers: 4,
        n_circuits: 3,
        ..VarianceConfig::default()
    };
    let strategies = [InitStrategy::Random, InitStrategy::He];
    variance_scan(&cfg, &strategies).unwrap();
    plateau_obs::finish_run();
    plateau_obs::set_metrics_enabled(false);

    let trace = Trace::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert!(trace.warnings.is_empty(), "{:?}", trace.warnings);

    // Every span got a nonzero monotonic id, and every cell's parent link
    // points at the enclosing scan span.
    assert!(trace.spans.iter().all(|s| s.id != 0));
    let scan = trace
        .spans
        .iter()
        .position(|s| s.name == "variance_scan")
        .expect("scan span recorded");
    let cells: Vec<_> = trace
        .spans
        .iter()
        .filter(|s| s.name == "variance_cell")
        .collect();
    assert_eq!(cells.len(), qubits.len() * strategies.len());
    assert!(cells.iter().all(|c| c.parent == Some(trace.spans[scan].id)));
    assert_eq!(trace.roots, vec![scan]);
    assert_eq!(trace.spans[scan].children.len(), cells.len());

    // Aggregation: the scan's wall time is the whole trace; its self time
    // excludes every cell.
    let a = Analysis::of(&trace);
    assert_eq!(a.span_count, 1 + cells.len() as u64);
    let scan_stats = a.stats.iter().find(|s| s.name == "variance_scan").unwrap();
    assert_eq!(scan_stats.total_ns, trace.total_wall_ns());
    let cell_total: u64 = cells.iter().map(|c| c.duration_ns).sum();
    assert_eq!(
        scan_stats.self_ns,
        scan_stats.total_ns.saturating_sub(cell_total)
    );
    let report = a.render_report(0);
    for needle in ["variance_cell", "p50", "p90", "p99", "self%"] {
        assert!(report.contains(needle), "missing {needle:?} in:\n{report}");
    }
    plateau_sim::reset_fuse();
}

#[test]
fn golden_fixture_analysis_is_pinned() {
    let trace = Trace::read(std::path::Path::new(GOLDEN_TRACE)).unwrap();
    assert!(trace.warnings.is_empty());
    assert_eq!(
        trace.command.as_deref(),
        Some("plateau variance --qubits 2 --circuits 2 --layers 3")
    );
    assert_eq!(trace.git.as_deref(), Some("golden00"));
    assert_eq!(trace.events, 1);
    assert_eq!(trace.total_wall_ns(), 5000);
    assert_eq!(trace.max_depth(), 2);

    let a = Analysis::of(&trace);
    // Ranked by self time: the four cells (4700 ns) beat the scan (300 ns).
    assert_eq!(a.stats[0].name, "variance_cell");
    assert_eq!(a.stats[0].count, 4);
    assert_eq!(a.stats[0].self_ns, 4700);
    assert_eq!((a.stats[0].min_ns, a.stats[0].max_ns), (1000, 1400));
    assert_eq!(a.stats[0].mean_ns, 1175.0);
    assert_eq!(
        (a.stats[0].p50_ns, a.stats[0].p90_ns, a.stats[0].p99_ns),
        (1100, 1400, 1400)
    );
    assert_eq!(a.stats[1].name, "variance_scan");
    assert_eq!(a.stats[1].self_ns, 300);

    // Collapsed stacks and the flamegraph agree with the pinned tree.
    assert_eq!(
        plateau_obs::flame::collapsed_stacks(&trace),
        "variance_scan 300\nvariance_scan;variance_cell 4700\n"
    );
    let svg = plateau_obs::flame::flamegraph_svg(&trace, "golden");
    assert!(svg.starts_with("<?xml"));
    assert!(svg.trim_end().ends_with("</svg>"));
    // Synthetic all + scan + 4 cells.
    assert_eq!(svg.matches("<g>").count(), 6);

    // A trace diffed against its own baseline passes at any threshold.
    let doc = a.to_baseline_json();
    let base = plateau_obs::analyze::baseline_entries(&doc).unwrap();
    let report = plateau_obs::diff::diff_entries(&base, &(&a).into(), 0.01);
    assert_eq!(report.regressions(), 0);
    assert!(report.render().contains("# PASS"));
}

#[test]
fn malformed_trace_files_fail_loudly_but_tolerate_crash_truncation() {
    let dir = std::env::temp_dir();
    let write = |tag: &str, body: &str| {
        let p = dir.join(format!("plateau-obs-bad-{}-{tag}.jsonl", std::process::id()));
        std::fs::write(&p, body).unwrap();
        p
    };
    let ok_line =
        r#"{"type":"span","name":"ok","id":1,"parent":null,"duration_ns":10,"depth":0,"fields":{}}"#;

    // Corruption mid-file is a hard error naming the line.
    let corrupt = write("corrupt", &format!("{ok_line}\nnot json\n{ok_line}\n"));
    match Trace::read(&corrupt) {
        Err(TraceError::Malformed { line, .. }) => assert_eq!(line, 2),
        other => panic!("expected Malformed, got {other:?}"),
    }

    // A torn final line (crash mid-write) degrades to a warning.
    let torn = write("torn", &format!("{ok_line}\n{{\"type\":\"span\",\"na"));
    let trace = Trace::read(&torn).unwrap();
    assert_eq!(trace.spans.len(), 1);
    assert!(trace.warnings.iter().any(|w| w.contains("truncated final line")));

    // Empty and span-free traces are distinct, graceful errors.
    let empty = write("empty", "");
    assert!(matches!(Trace::read(&empty), Err(TraceError::Empty(_))));
    let spanless = write("spanless", "{\"type\":\"metrics\",\"counters\":{}}\n");
    assert!(matches!(Trace::read(&spanless), Err(TraceError::Empty(_))));

    for p in [corrupt, torn, empty, spanless] {
        std::fs::remove_file(p).ok();
    }
}
