//! Cross-crate observability integration: exact counter totals through the
//! thread pool, analytic gate-count verification around a variance scan,
//! and a JSONL round-trip through the in-repo JSON parser.
//!
//! The obs registry is process-global, so every test serializes on
//! [`plateau_obs::test_lock`] and works with snapshot *deltas*.

use plateau_core::init::InitStrategy;
use plateau_core::variance::{variance_scan, VarianceConfig};
use plateau_obs::json::Json;

fn counter_value(name: &str) -> u64 {
    plateau_obs::snapshot().counter(name).unwrap_or(0)
}

#[test]
fn par_task_counter_is_exact_across_thread_counts() {
    let _guard = plateau_obs::test_lock();
    plateau_obs::set_metrics_enabled(true);
    for threads in ["1", "4", "8"] {
        std::env::set_var("PLATEAU_THREADS", threads);
        let before = counter_value("par.tasks");
        let batches_before = counter_value("par.batches");
        let out = plateau_par::par_map_indexed(97, |i| i * i);
        assert_eq!(out.len(), 97);
        // Every item is claimed and executed exactly once, regardless of
        // how many workers raced for the queue.
        assert_eq!(counter_value("par.tasks") - before, 97, "threads={threads}");
        assert_eq!(counter_value("par.batches") - batches_before, 1);
        let workers = plateau_obs::snapshot().gauge("par.workers").unwrap();
        assert!(workers >= 1.0 && workers <= threads.parse::<f64>().unwrap());
        // The timing histogram saw the same 97 tasks.
        let hist = plateau_obs::snapshot();
        assert!(hist.histogram("par.task_ns").unwrap().count >= 97);
    }
    std::env::remove_var("PLATEAU_THREADS");
    plateau_obs::set_metrics_enabled(false);
}

#[test]
fn variance_scan_gate_counters_match_analytic_counts() {
    let _guard = plateau_obs::test_lock();
    plateau_obs::set_metrics_enabled(true);
    plateau_obs::metrics::reset();

    let qubits = [2usize, 3];
    let (circuits, layers) = (4usize, 5usize);
    let cfg = VarianceConfig {
        qubit_counts: qubits.to_vec(),
        layers,
        n_circuits: circuits,
        ..VarianceConfig::default()
    };
    variance_scan(&cfg, &[InitStrategy::Random]).unwrap();

    let snap = plateau_obs::snapshot();
    // Each gradient sample is a two-term parameter shift: 2 circuit
    // executions. The variance ansatz applies one rotation per qubit per
    // layer and a CZ chain of (q − 1) fixed gates per layer.
    let evals: u64 = 2 * circuits as u64 * qubits.len() as u64;
    let rot: u64 = qubits.iter().map(|&q| (2 * circuits * layers * q) as u64).sum();
    let fixed: u64 = qubits.iter().map(|&q| (2 * circuits * layers * (q - 1)) as u64).sum();
    assert_eq!(snap.counter("grad.expectation_evals"), Some(evals));
    assert_eq!(snap.counter("grad.executions.parameter_shift"), Some(evals));
    assert_eq!(snap.counter("sim.gate.rotation"), Some(rot));
    assert_eq!(snap.counter("sim.gate.fixed"), Some(fixed));
    assert_eq!(
        snap.counter("core.variance.cells"),
        Some(qubits.len() as u64)
    );
    // One statevector allocation per circuit execution.
    assert_eq!(snap.counter("sim.state.allocations"), Some(evals));

    plateau_obs::metrics::reset();
    plateau_obs::set_metrics_enabled(false);
}

#[test]
fn adjoint_executes_constant_circuits_per_gradient() {
    let _guard = plateau_obs::test_lock();
    plateau_obs::set_metrics_enabled(true);

    use plateau_core::ansatz::training_ansatz;
    use plateau_core::cost::CostKind;
    use plateau_grad::{Adjoint, GradientEngine, ParameterShift};

    let a = training_ansatz(3, 2).unwrap();
    let obs = CostKind::Global.observable(3);
    let params = vec![0.1; a.circuit.n_params()];

    let adj_before = counter_value("grad.executions.adjoint");
    Adjoint.gradient(&a.circuit, &params, &obs).unwrap();
    // Forward run + backward sweep: 2, independent of the 12 parameters.
    assert_eq!(counter_value("grad.executions.adjoint") - adj_before, 2);

    let shift_before = counter_value("grad.executions.parameter_shift");
    ParameterShift.gradient(&a.circuit, &params, &obs).unwrap();
    // The shift rule pays 2 executions per parameter.
    assert_eq!(
        counter_value("grad.executions.parameter_shift") - shift_before,
        2 * a.circuit.n_params() as u64
    );

    plateau_obs::set_metrics_enabled(false);
}

#[test]
fn jsonl_records_round_trip_through_the_parser() {
    let _guard = plateau_obs::test_lock();
    plateau_obs::metrics::reset();
    let path = std::env::temp_dir().join(format!(
        "plateau-obs-integration-{}.jsonl",
        std::process::id()
    ));
    plateau_obs::init(None, Some(&path)).unwrap();

    plateau_obs::emit_manifest(
        "integration-test",
        vec![("layers".to_string(), Json::str("5"))],
        Some(42),
    );
    {
        let _span = plateau_obs::span!("outer_work", q = 3usize);
        plateau_obs::counter!("test.obs.round_trip").add(7);
        plateau_obs::event!(
            plateau_obs::Level::Warn,
            "synthetic_event",
            grad_norm = 1.5e-5
        );
    }
    plateau_obs::finish_run();
    plateau_obs::set_metrics_enabled(false);

    let raw = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let records: Vec<Json> = raw
        .lines()
        .map(|l| Json::parse(l).expect("every JSONL line parses"))
        .collect();
    assert!(records.len() >= 4, "manifest + event + span + metrics");

    let kind = |r: &Json| r.get("type").and_then(|t| t.as_str().map(String::from));
    let manifest = &records[0];
    assert_eq!(kind(manifest).as_deref(), Some("manifest"));
    assert_eq!(
        manifest.get("command").unwrap().as_str().unwrap(),
        "integration-test"
    );
    assert_eq!(manifest.get("seed").unwrap().as_f64().unwrap(), 42.0);

    let event = records
        .iter()
        .find(|r| kind(r).as_deref() == Some("event"))
        .expect("event record");
    assert_eq!(event.get("name").unwrap().as_str().unwrap(), "synthetic_event");

    let span = records
        .iter()
        .find(|r| kind(r).as_deref() == Some("span"))
        .expect("span record");
    assert_eq!(span.get("name").unwrap().as_str().unwrap(), "outer_work");
    assert!(span.get("duration_ns").unwrap().as_f64().unwrap() >= 0.0);

    let metrics = records
        .iter()
        .find(|r| kind(r).as_deref() == Some("metrics"))
        .expect("metrics snapshot record");
    assert_eq!(
        metrics
            .get("counters")
            .and_then(|c| c.get("test.obs.round_trip"))
            .and_then(|v| v.as_f64()),
        Some(7.0)
    );
}
