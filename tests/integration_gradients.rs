//! Cross-engine gradient agreement on the paper's ansätze, including
//! property-based tests: adjoint ≡ parameter-shift ≡ finite differences
//! for arbitrary angles.

use plateau_core::ansatz::{training_ansatz, variance_ansatz};
use plateau_core::cost::CostKind;
use plateau_grad::{Adjoint, FiniteDifference, GradientEngine, ParameterShift};
use plateau_rng::check::{forall, DEFAULT_CASES};
use plateau_rng::rngs::StdRng;
use plateau_rng::{prop_assert, prop_assert_eq, Rng, SeedableRng};

#[test]
fn engines_agree_on_training_ansatz() {
    let ansatz = training_ansatz(4, 3).expect("ansatz");
    let params: Vec<f64> = (0..ansatz.circuit.n_params())
        .map(|i| ((i * 37 % 19) as f64) * 0.3 - 2.0)
        .collect();
    for cost in [CostKind::Global, CostKind::Local] {
        let obs = cost.observable(4);
        let adj = Adjoint.gradient(&ansatz.circuit, &params, &obs).expect("adjoint");
        let shift = ParameterShift
            .gradient(&ansatz.circuit, &params, &obs)
            .expect("shift");
        let fd = FiniteDifference::default()
            .gradient(&ansatz.circuit, &params, &obs)
            .expect("fd");
        for i in 0..params.len() {
            assert!((adj[i] - shift[i]).abs() < 1e-10, "{cost} adj vs shift at {i}");
            assert!((adj[i] - fd[i]).abs() < 1e-6, "{cost} adj vs fd at {i}");
        }
    }
}

#[test]
fn engines_agree_on_random_variance_circuits() {
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let ansatz = variance_ansatz(3, 5, &mut rng).expect("ansatz");
        let params: Vec<f64> = (0..ansatz.circuit.n_params())
            .map(|i| ((seed as f64) + i as f64 * 0.71).sin() * 3.0)
            .collect();
        let obs = CostKind::Global.observable(3);
        let adj = Adjoint.gradient(&ansatz.circuit, &params, &obs).expect("adjoint");
        let shift = ParameterShift
            .gradient(&ansatz.circuit, &params, &obs)
            .expect("shift");
        for (a, s) in adj.iter().zip(shift.iter()) {
            assert!((a - s).abs() < 1e-10, "seed {seed}: {a} vs {s}");
        }
    }
}

#[test]
fn partial_last_is_consistent_across_engines() {
    let mut rng = StdRng::seed_from_u64(9);
    let ansatz = variance_ansatz(4, 6, &mut rng).expect("ansatz");
    let params: Vec<f64> = (0..ansatz.circuit.n_params())
        .map(|i| (i as f64 * 1.3).cos() * 2.0)
        .collect();
    let obs = CostKind::Global.observable(4);
    let a = Adjoint.partial_last(&ansatz.circuit, &params, &obs).expect("adjoint");
    let s = ParameterShift
        .partial_last(&ansatz.circuit, &params, &obs)
        .expect("shift");
    let f = FiniteDifference::default()
        .partial_last(&ansatz.circuit, &params, &obs)
        .expect("fd");
    assert!((a - s).abs() < 1e-10);
    assert!((a - f).abs() < 1e-6);
}

/// For arbitrary angle vectors on a 3-qubit, 2-layer training ansatz,
/// the exact engines agree to near machine precision and the gradient
/// obeys the parameter-shift trigonometric structure (bounded by 1).
#[test]
fn gradients_agree_for_arbitrary_angles() {
    forall(
        0x67726164,
        DEFAULT_CASES,
        |rng| -> Vec<f64> { (0..12).map(|_| rng.gen_range(-6.0..6.0)).collect() },
        |raw| {
            let ansatz = training_ansatz(3, 1).expect("ansatz");
            prop_assert_eq!(ansatz.circuit.n_params(), 6);
            let params: Vec<f64> = raw.iter().copied().take(6).collect();
            let obs = CostKind::Global.observable(3);
            let adj = Adjoint.gradient(&ansatz.circuit, &params, &obs).expect("adjoint");
            let shift = ParameterShift.gradient(&ansatz.circuit, &params, &obs).expect("shift");
            for (a, s) in adj.iter().zip(shift.iter()) {
                prop_assert!((a - s).abs() < 1e-9);
                // Cost is in [0,1]; a single π/2-shift rule bounds |∂C| by 1.
                prop_assert!(a.abs() <= 1.0 + 1e-9);
            }
            Ok(())
        },
    );
}

/// Gradients are 2π-periodic in every parameter.
#[test]
fn gradient_is_two_pi_periodic() {
    forall(
        0x706572,
        DEFAULT_CASES,
        |rng| {
            let raw: Vec<f64> = (0..6).map(|_| rng.gen_range(-3.0..3.0)).collect();
            let which = rng.gen_range(0..6usize);
            (raw, which)
        },
        |(raw, which)| {
            let ansatz = training_ansatz(3, 1).expect("ansatz");
            let obs = CostKind::Global.observable(3);
            let params: Vec<f64> = raw.clone();
            let mut shifted = raw.clone();
            shifted[*which] += 2.0 * std::f64::consts::PI;
            let g1 = Adjoint.gradient(&ansatz.circuit, &params, &obs).expect("g1");
            let g2 = Adjoint.gradient(&ansatz.circuit, &shifted, &obs).expect("g2");
            for (a, b) in g1.iter().zip(g2.iter()) {
                prop_assert!((a - b).abs() < 1e-9);
            }
            Ok(())
        },
    );
}
