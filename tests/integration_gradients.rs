//! Cross-engine gradient agreement on the paper's ansätze, including
//! property-based tests: adjoint ≡ parameter-shift ≡ finite differences
//! for arbitrary angles.

use plateau_core::ansatz::{training_ansatz, variance_ansatz};
use plateau_core::cost::CostKind;
use plateau_grad::{Adjoint, FiniteDifference, GradientEngine, ParameterShift};
use plateau_rng::check::{forall, DEFAULT_CASES};
use plateau_rng::rngs::StdRng;
use plateau_rng::{prop_assert, prop_assert_eq, Rng, SeedableRng};

#[test]
fn engines_agree_on_training_ansatz() {
    let ansatz = training_ansatz(4, 3).expect("ansatz");
    let params: Vec<f64> = (0..ansatz.circuit.n_params())
        .map(|i| ((i * 37 % 19) as f64) * 0.3 - 2.0)
        .collect();
    for cost in [CostKind::Global, CostKind::Local] {
        let obs = cost.observable(4);
        let adj = Adjoint.gradient(&ansatz.circuit, &params, &obs).expect("adjoint");
        let shift = ParameterShift
            .gradient(&ansatz.circuit, &params, &obs)
            .expect("shift");
        let fd = FiniteDifference::default()
            .gradient(&ansatz.circuit, &params, &obs)
            .expect("fd");
        for i in 0..params.len() {
            assert!((adj[i] - shift[i]).abs() < 1e-10, "{cost} adj vs shift at {i}");
            assert!((adj[i] - fd[i]).abs() < 1e-6, "{cost} adj vs fd at {i}");
        }
    }
}

#[test]
fn engines_agree_on_random_variance_circuits() {
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let ansatz = variance_ansatz(3, 5, &mut rng).expect("ansatz");
        let params: Vec<f64> = (0..ansatz.circuit.n_params())
            .map(|i| ((seed as f64) + i as f64 * 0.71).sin() * 3.0)
            .collect();
        let obs = CostKind::Global.observable(3);
        let adj = Adjoint.gradient(&ansatz.circuit, &params, &obs).expect("adjoint");
        let shift = ParameterShift
            .gradient(&ansatz.circuit, &params, &obs)
            .expect("shift");
        for (a, s) in adj.iter().zip(shift.iter()) {
            assert!((a - s).abs() < 1e-10, "seed {seed}: {a} vs {s}");
        }
    }
}

#[test]
fn partial_last_is_consistent_across_engines() {
    let mut rng = StdRng::seed_from_u64(9);
    let ansatz = variance_ansatz(4, 6, &mut rng).expect("ansatz");
    let params: Vec<f64> = (0..ansatz.circuit.n_params())
        .map(|i| (i as f64 * 1.3).cos() * 2.0)
        .collect();
    let obs = CostKind::Global.observable(4);
    let a = Adjoint.partial_last(&ansatz.circuit, &params, &obs).expect("adjoint");
    let s = ParameterShift
        .partial_last(&ansatz.circuit, &params, &obs)
        .expect("shift");
    let f = FiniteDifference::default()
        .partial_last(&ansatz.circuit, &params, &obs)
        .expect("fd");
    assert!((a - s).abs() < 1e-10);
    assert!((a - f).abs() < 1e-6);
}

/// For arbitrary angle vectors on a 3-qubit, 2-layer training ansatz,
/// the exact engines agree to near machine precision and the gradient
/// obeys the parameter-shift trigonometric structure (bounded by 1).
#[test]
fn gradients_agree_for_arbitrary_angles() {
    forall(
        0x67726164,
        DEFAULT_CASES,
        |rng| -> Vec<f64> { (0..12).map(|_| rng.gen_range(-6.0..6.0)).collect() },
        |raw| {
            let ansatz = training_ansatz(3, 1).expect("ansatz");
            prop_assert_eq!(ansatz.circuit.n_params(), 6);
            let params: Vec<f64> = raw.iter().copied().take(6).collect();
            let obs = CostKind::Global.observable(3);
            let adj = Adjoint.gradient(&ansatz.circuit, &params, &obs).expect("adjoint");
            let shift = ParameterShift.gradient(&ansatz.circuit, &params, &obs).expect("shift");
            for (a, s) in adj.iter().zip(shift.iter()) {
                prop_assert!((a - s).abs() < 1e-9);
                // Cost is in [0,1]; a single π/2-shift rule bounds |∂C| by 1.
                prop_assert!(a.abs() <= 1.0 + 1e-9);
            }
            Ok(())
        },
    );
}

/// Serializes the tests that toggle the process-global fusion knob, so
/// they cannot race each other (the knob is per-process, the test binary
/// runs tests on multiple threads).
static FUSE_GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Regression pin for adjoint differentiation over fused circuits: on
/// the paper's Fig 5b training configuration (scaled to a debug-build
/// size), the fused adjoint gradient must match gate-by-gate
/// parameter-shift values to 1e-10 for both cost functions.
#[test]
fn fused_adjoint_matches_parameter_shift_on_fig5b_ansatz() {
    let _guard = FUSE_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    let ansatz = training_ansatz(6, 4).expect("ansatz");
    let params: Vec<f64> = (0..ansatz.circuit.n_params())
        .map(|i| ((i * 41 % 23) as f64) * 0.27 - 2.9)
        .collect();
    for cost in [CostKind::Global, CostKind::Local] {
        let obs = cost.observable(6);
        // Parameter-shift reference with fusion off.
        plateau_sim::set_fuse(false);
        let shift = ParameterShift
            .gradient(&ansatz.circuit, &params, &obs)
            .expect("shift");
        // Adjoint over the compiled circuit with fusion on.
        plateau_sim::set_fuse(true);
        let fused = Adjoint.gradient(&ansatz.circuit, &params, &obs).expect("fused adjoint");
        plateau_sim::reset_fuse();
        for i in 0..params.len() {
            assert!(
                (fused[i] - shift[i]).abs() < 1e-10,
                "{cost} param {i}: fused {} vs shift {}",
                fused[i],
                shift[i]
            );
        }
    }
}

/// The paper's headline artifacts — variance-scan curves and the
/// `BarrenPlateauAlarm` event stream during training — must be stable
/// when fusion is toggled at a fixed seed: same alarm iterations, and
/// variances equal to within the fused kernels' reassociation slack.
#[test]
fn variance_scan_and_plateau_alarm_are_stable_under_fusion() {
    let _guard = FUSE_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    use plateau_core::init::InitStrategy;
    use plateau_core::optim::GradientDescent;
    use plateau_core::train::{train_with_alarm, BarrenPlateauAlarm};
    use plateau_core::variance::{variance_scan, VarianceConfig};

    let cfg = VarianceConfig {
        qubit_counts: vec![2, 3],
        layers: 4,
        n_circuits: 6,
        seed: 0xf0e5,
        ..VarianceConfig::default()
    };
    let strategies = [InitStrategy::Random, InitStrategy::He];

    let run_scan = || {
        variance_scan(&cfg, &strategies)
            .expect("scan")
            .curves
            .iter()
            .flat_map(|c| c.points.iter().map(|p| p.variance))
            .collect::<Vec<f64>>()
    };
    let run_training = || {
        let ansatz = training_ansatz(4, 3).expect("ansatz");
        let obs = CostKind::Global.observable(4);
        // Angles big enough to wander through flat regions and trip the
        // alarm deterministically.
        let theta0: Vec<f64> = (0..ansatz.circuit.n_params())
            .map(|i| ((i * 13 % 7) as f64) * 0.4 - 1.1)
            .collect();
        let mut opt = GradientDescent::new(0.05).expect("optimizer");
        let alarm = BarrenPlateauAlarm::default();
        train_with_alarm(&ansatz.circuit, &obs, theta0, &mut opt, 12, &Adjoint, &alarm)
            .expect("training")
    };

    plateau_sim::set_fuse(false);
    let raw_vars = run_scan();
    let raw_hist = run_training();
    plateau_sim::set_fuse(true);
    let fused_vars = run_scan();
    let fused_hist = run_training();
    plateau_sim::reset_fuse();

    assert_eq!(raw_vars.len(), fused_vars.len());
    for (r, f) in raw_vars.iter().zip(&fused_vars) {
        // Same seed → same circuits → identical statistics up to the
        // fused kernels' floating-point reassociation.
        assert!(
            (r - f).abs() <= 1e-12 * r.abs().max(1.0),
            "variance drifted under fusion: {r} vs {f}"
        );
    }
    // Alarm decisions are thresholded bits: the event stream (which
    // iterations fired) must be *identical*; the recorded norms may only
    // differ by reassociation slack.
    let raw_alarms = raw_hist.plateau_alarms();
    let fused_alarms = fused_hist.plateau_alarms();
    assert_eq!(
        raw_alarms.iter().map(|a| a.iteration).collect::<Vec<_>>(),
        fused_alarms.iter().map(|a| a.iteration).collect::<Vec<_>>()
    );
    for (r, f) in raw_alarms.iter().zip(fused_alarms) {
        assert!((r.grad_norm - f.grad_norm).abs() <= 1e-12);
    }
    for (r, f) in raw_hist.losses().iter().zip(fused_hist.losses()) {
        assert!((r - f).abs() <= 1e-12 * r.abs().max(1.0));
    }
}

/// Gradients are 2π-periodic in every parameter.
#[test]
fn gradient_is_two_pi_periodic() {
    forall(
        0x706572,
        DEFAULT_CASES,
        |rng| {
            let raw: Vec<f64> = (0..6).map(|_| rng.gen_range(-3.0..3.0)).collect();
            let which = rng.gen_range(0..6usize);
            (raw, which)
        },
        |(raw, which)| {
            let ansatz = training_ansatz(3, 1).expect("ansatz");
            let obs = CostKind::Global.observable(3);
            let params: Vec<f64> = raw.clone();
            let mut shifted = raw.clone();
            shifted[*which] += 2.0 * std::f64::consts::PI;
            let g1 = Adjoint.gradient(&ansatz.circuit, &params, &obs).expect("g1");
            let g2 = Adjoint.gradient(&ansatz.circuit, &shifted, &obs).expect("g2");
            for (a, b) in g1.iter().zip(g2.iter()) {
                prop_assert!((a - b).abs() < 1e-9);
            }
            Ok(())
        },
    );
}
