//! Property-based invariants spanning the whole stack, driven by
//! randomly generated circuits (seeded `forall` over 64 cases).

use plateau_core::ansatz::training_ansatz;
use plateau_rng::check::{forall, vec_of, DEFAULT_CASES};
use plateau_rng::rngs::StdRng;
use plateau_rng::{prop_assert, Rng};
use plateau_sim::{
    diagram, passes, qasm, Circuit, DensityMatrix, Observable, PauliString, RotationGate, State,
};

/// A compact randomly generated op-choice encoding: (kind, qubit, angle).
fn build_circuit(n_qubits: usize, choices: &[(u8, usize, f64)]) -> Circuit {
    let mut c = Circuit::new(n_qubits).expect("register");
    for (kind, raw_q, angle) in choices {
        let q = raw_q % n_qubits;
        let q2 = (q + 1) % n_qubits;
        match kind % 8 {
            0 => {
                c.push_rotation_const(RotationGate::Rx, q, *angle).unwrap();
            }
            1 => {
                c.push_rotation_const(RotationGate::Ry, q, *angle).unwrap();
            }
            2 => {
                c.push_rotation_const(RotationGate::Rz, q, *angle).unwrap();
            }
            3 => {
                c.h(q).unwrap();
            }
            4 => {
                if n_qubits > 1 {
                    c.cz(q, q2).unwrap();
                }
            }
            5 => {
                if n_qubits > 1 {
                    c.cx(q, q2).unwrap();
                }
            }
            6 => {
                if n_qubits > 1 {
                    c.rzz(q, q2).unwrap();
                    c.bind_last_param(*angle).unwrap();
                }
            }
            _ => {
                c.x(q).unwrap();
            }
        }
    }
    c
}

fn gen_choices(rng: &mut StdRng, len: std::ops::Range<usize>) -> Vec<(u8, usize, f64)> {
    vec_of(rng, len, |r| {
        (
            r.gen_range(0..8u64) as u8,
            r.gen_range(0..4usize),
            r.gen_range(-3.2..3.2),
        )
    })
}

/// Unitarity: every generated circuit preserves the norm.
#[test]
fn circuits_preserve_norm() {
    forall(0x6e6f726d, DEFAULT_CASES, |rng| gen_choices(rng, 1..30), |choices| {
        let c = build_circuit(3, choices);
        let s = c.run(&[]).expect("run");
        prop_assert!((s.norm() - 1.0).abs() < 1e-9);
        Ok(())
    });
}

/// Reversibility: U†U|0⟩ = |0⟩ exactly.
#[test]
fn inverse_run_round_trips() {
    forall(0x696e76, DEFAULT_CASES, |rng| gen_choices(rng, 1..25), |choices| {
        let c = build_circuit(3, choices);
        let mut s = c.run(&[]).expect("run");
        c.run_inverse_on(&mut s, &[]).expect("inverse");
        prop_assert!((s.probability_all_zeros() - 1.0).abs() < 1e-9);
        Ok(())
    });
}

/// Cost bounds: the projector costs live in [0, 1]; Pauli strings in
/// [−1, 1].
#[test]
fn observable_bounds() {
    forall(0x6f6273, DEFAULT_CASES, |rng| gen_choices(rng, 1..25), |choices| {
        let c = build_circuit(3, choices);
        let s = c.run(&[]).expect("run");
        for obs in [Observable::global_cost(3), Observable::local_cost(3)] {
            let e = obs.expectation(&s).expect("expectation");
            prop_assert!((-1e-10..=1.0 + 1e-10).contains(&e), "{e}");
        }
        let z = Observable::pauli(PauliString::parse("ZZI").unwrap()).unwrap();
        let e = z.expectation(&s).expect("pauli expectation");
        prop_assert!(e.abs() <= 1.0 + 1e-10);
        Ok(())
    });
}

/// QASM round trip: export → parse → identical state.
#[test]
fn qasm_round_trip() {
    forall(0x7161736d, DEFAULT_CASES, |rng| gen_choices(rng, 1..20), |choices| {
        let c = build_circuit(3, choices);
        let text = qasm::to_qasm(&c, &[]).expect("export");
        let back = qasm::from_qasm(&text).expect("import");
        let s1 = c.run(&[]).expect("run original");
        let s2 = back.run(&[]).expect("run imported");
        prop_assert!((s1.fidelity(&s2).expect("fidelity") - 1.0).abs() < 1e-9);
        Ok(())
    });
}

/// Simplification preserves the prepared state.
#[test]
fn simplify_preserves_state() {
    forall(0x73696d70, DEFAULT_CASES, |rng| gen_choices(rng, 1..25), |choices| {
        let c = build_circuit(3, choices);
        let s = passes::simplify(&c);
        prop_assert!(s.gate_count() <= c.gate_count());
        let s1 = c.run(&[]).expect("run original");
        let s2 = s.run(&[]).expect("run simplified");
        prop_assert!((s1.fidelity(&s2).expect("fidelity") - 1.0).abs() < 1e-9);
        Ok(())
    });
}

/// Density-matrix evolution agrees with pure-state evolution.
#[test]
fn density_matrix_matches_pure() {
    forall(0x646d, DEFAULT_CASES, |rng| gen_choices(rng, 1..12), |choices| {
        let c = build_circuit(2, choices);
        let pure = c.run(&[]).expect("run");
        let expected = DensityMatrix::from_pure(&pure);
        let mut dm = DensityMatrix::zero(2);
        dm.apply_circuit(&c, &[]).expect("dm run");
        prop_assert!(dm.matrix().max_abs_diff(expected.matrix()) < 1e-9);
        prop_assert!((dm.purity() - 1.0).abs() < 1e-9);
        Ok(())
    });
}

/// The diagram renderer never panics and mentions every wire.
#[test]
fn diagram_total() {
    forall(0x64696167, DEFAULT_CASES, |rng| gen_choices(rng, 0..20), |choices| {
        let c = build_circuit(4, choices);
        let art = diagram::draw(&c);
        for q in 0..4 {
            let label = format!("q{q}:");
            prop_assert!(art.contains(&label), "missing wire label {}", label);
        }
        Ok(())
    });
}

/// Fidelity is symmetric and bounded for arbitrary preparations.
#[test]
fn fidelity_symmetry() {
    forall(
        0x666964,
        DEFAULT_CASES,
        |rng| (gen_choices(rng, 1..12), gen_choices(rng, 1..12)),
        |(a, b)| {
            let ca = build_circuit(3, a);
            let cb = build_circuit(3, b);
            let sa = ca.run(&[]).expect("run a");
            let sb = cb.run(&[]).expect("run b");
            let fab = sa.fidelity(&sb).expect("fab");
            let fba = sb.fidelity(&sa).expect("fba");
            prop_assert!((fab - fba).abs() < 1e-10);
            prop_assert!((-1e-10..=1.0 + 1e-10).contains(&fab));
            Ok(())
        },
    );
}

#[test]
fn training_ansatz_qasm_export_is_importable_at_scale() {
    // The paper's 10-qubit, 5-layer ansatz exports and re-imports exactly.
    let ansatz = training_ansatz(10, 5).expect("ansatz");
    let params: Vec<f64> = (0..ansatz.circuit.n_params())
        .map(|i| (i as f64 * 0.37).sin() * 2.0)
        .collect();
    let text = qasm::to_qasm(&ansatz.circuit, &params).expect("export");
    assert_eq!(text.lines().filter(|l| l.starts_with("rx") || l.starts_with("ry")).count(), 100);
    let back = qasm::from_qasm(&text).expect("import");
    let s1 = ansatz.circuit.run(&params).expect("run");
    let s2 = back.run(&[]).expect("run imported");
    assert!((s1.fidelity(&s2).expect("fidelity") - 1.0).abs() < 1e-10);
}

#[test]
fn state_tensor_structure_under_partial_trace() {
    // Preparing q0 and q1 independently then tracing one out returns the
    // other's pure reduced state.
    let mut c = Circuit::new(2).expect("circuit");
    c.push_rotation_const(RotationGate::Ry, 0, 0.8).unwrap();
    c.push_rotation_const(RotationGate::Ry, 1, -1.3).unwrap();
    let s = c.run(&[]).expect("run");
    let rho0 = plateau_sim::reduced_density_matrix(&s, &[0]).expect("trace");
    assert!((plateau_sim::purity(&rho0) - 1.0).abs() < 1e-10);
    // ⟨0|ρ|0⟩ = cos²(0.4).
    assert!((rho0[(0, 0)].re - 0.4f64.cos().powi(2)).abs() < 1e-10);
}

#[test]
fn noise_model_determinism_with_fixed_seed() {
    use plateau_sim::NoiseModel;
    use plateau_rng::rngs::StdRng;
    use plateau_rng::SeedableRng;
    let mut c = Circuit::new(2).expect("circuit");
    c.rx(0).unwrap().cz(0, 1).unwrap();
    let noise = NoiseModel::depolarizing(0.1).expect("noise");
    let obs = Observable::global_cost(2);
    let run = || {
        let mut rng = StdRng::seed_from_u64(99);
        noise
            .expectation(&c, &[0.4], &obs, 200, &mut rng)
            .expect("noisy expectation")
    };
    assert_eq!(run(), run());
}

#[test]
fn sampled_counts_sum_to_shots() {
    use plateau_rng::rngs::StdRng;
    use plateau_rng::SeedableRng;
    let mut s = State::zero(3);
    s.apply_fixed(plateau_sim::FixedGate::H, &[0]).unwrap();
    s.apply_fixed(plateau_sim::FixedGate::H, &[2]).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let counts = plateau_sim::sample_counts(&s, 5000, &mut rng);
    assert_eq!(counts.values().sum::<usize>(), 5000);
    // Outcomes with qubit 1 set are impossible.
    for idx in counts.keys() {
        assert_eq!(idx & 0b010, 0);
    }
}
