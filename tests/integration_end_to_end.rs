//! Whole-pipeline smoke tests: every public stage of the reproduction
//! chained together exactly as the bench binaries use them, at miniature
//! scale, plus cross-cutting invariants (determinism, landscape flattening,
//! sampling consistency).

use plateau_core::ansatz::training_ansatz;
use plateau_core::cost::CostKind;
use plateau_core::init::{FanMode, InitStrategy};
use plateau_core::landscape::{landscape_grid, LandscapeConfig};
use plateau_core::optim::Adam;
use plateau_core::train::train;
use plateau_core::variance::{variance_scan, VarianceConfig};
use plateau_sim::{estimate_expectation, Observable};
use plateau_rng::rngs::StdRng;
use plateau_rng::SeedableRng;

#[test]
fn full_pipeline_variance_to_training() {
    // 1. Variance scan at miniature scale.
    let config = VarianceConfig {
        qubit_counts: vec![2, 4],
        layers: 10,
        n_circuits: 24,
        ..VarianceConfig::default()
    };
    let scan = variance_scan(
        &config,
        &[InitStrategy::Random, InitStrategy::XavierNormal],
    )
    .expect("scan");
    let imps = scan.improvements_vs(InitStrategy::Random).expect("table");
    assert_eq!(imps.len(), 1);

    // 2. Train the winning strategy.
    let ansatz = training_ansatz(4, 3).expect("ansatz");
    let mut rng = StdRng::seed_from_u64(5);
    let theta0 = InitStrategy::XavierNormal
        .sample_params(&ansatz.shape, FanMode::Qubits, &mut rng)
        .expect("init");
    let mut adam = Adam::new(0.1).expect("adam");
    let hist = train(
        &ansatz.circuit,
        &CostKind::Global.observable(4),
        theta0,
        &mut adam,
        30,
    )
    .expect("train");
    assert!(hist.final_loss() < hist.initial_loss());

    // 3. Landscape scan bracketing the trained solution. The window's
    // endpoints are the two trained coordinates themselves, so the trained
    // point is a grid node and the window's minimum cannot exceed it.
    let n = ansatz.circuit.n_params();
    let (ta, tb) = (hist.final_params()[n - 2], hist.final_params()[n - 1]);
    let cfg = LandscapeConfig {
        min: ta.min(tb),
        max: ta.max(tb).max(ta.min(tb) + 1e-6),
        resolution: 7,
    };
    let grid = landscape_grid(
        &ansatz.circuit,
        &CostKind::Global.observable(4),
        hist.final_params(),
        n - 2,
        n - 1,
        &cfg,
    )
    .expect("landscape");
    assert!(grid.min_value() <= hist.final_loss() + 1e-9);
}

#[test]
fn deterministic_end_to_end() {
    let run_once = || {
        let config = VarianceConfig {
            qubit_counts: vec![3],
            layers: 8,
            n_circuits: 12,
            ..VarianceConfig::default()
        };
        let scan = variance_scan(&config, &[InitStrategy::He]).expect("scan");
        scan.curves[0].points[0].variance
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn analytic_and_sampled_costs_agree_after_training() {
    // Train, then confirm the exact cost matches a high-shot estimate —
    // ties the sampling stack to the analytic stack.
    let ansatz = training_ansatz(3, 2).expect("ansatz");
    let mut rng = StdRng::seed_from_u64(6);
    let theta0 = InitStrategy::LeCun
        .sample_params(&ansatz.shape, FanMode::Qubits, &mut rng)
        .expect("init");
    let obs = CostKind::Global.observable(3);
    let mut adam = Adam::new(0.1).expect("adam");
    let hist = train(&ansatz.circuit, &obs, theta0, &mut adam, 20).expect("train");

    let state = ansatz.circuit.run(hist.final_params()).expect("run");
    let exact = obs.expectation(&state).expect("exact");
    let mut shot_rng = StdRng::seed_from_u64(7);
    let sampled =
        estimate_expectation(&state, &obs, 40_000, &mut shot_rng).expect("diagonal observable");
    assert!(
        (exact - sampled).abs() < 0.01,
        "analytic {exact} vs sampled {sampled}"
    );
}

#[test]
fn landscape_flattens_with_width_under_random_init() {
    // The Fig 1 effect as an assertion.
    let cfg = LandscapeConfig::default().with_resolution(7).expect("cfg");
    let amplitude_at = |q: usize| {
        let ansatz = training_ansatz(q, 10).expect("ansatz");
        let mut rng = StdRng::seed_from_u64(8);
        let base = InitStrategy::Random
            .sample_params(&ansatz.shape, FanMode::Qubits, &mut rng)
            .expect("init");
        let n = ansatz.circuit.n_params();
        landscape_grid(
            &ansatz.circuit,
            &CostKind::Global.observable(q),
            &base,
            n - 2,
            n - 1,
            &cfg,
        )
        .expect("grid")
        .amplitude()
    };
    let small = amplitude_at(2);
    let large = amplitude_at(7);
    assert!(
        large < small,
        "landscape amplitude should shrink: q=2 → {small:.3}, q=7 → {large:.3}"
    );
}

#[test]
fn local_cost_keeps_larger_gradients_than_global() {
    // Cerezo et al.'s contrast, at fixed random initialization.
    let make = |cost: CostKind| VarianceConfig {
        qubit_counts: vec![2, 4, 6],
        layers: 20,
        n_circuits: 40,
        cost,
        ..VarianceConfig::default()
    };
    let global = variance_scan(&make(CostKind::Global), &[InitStrategy::Random]).expect("g");
    let local = variance_scan(&make(CostKind::Local), &[InitStrategy::Random]).expect("l");
    let g_fit = global.curves[0].decay_fit().expect("fit g");
    let l_fit = local.curves[0].decay_fit().expect("fit l");
    assert!(
        l_fit.rate > g_fit.rate,
        "local cost should decay slower: local {} vs global {}",
        l_fit.rate,
        g_fit.rate
    );
}

#[test]
fn observable_mismatch_is_caught_across_the_stack() {
    let ansatz = training_ansatz(3, 1).expect("ansatz");
    let wrong_obs = Observable::global_cost(4);
    let params = vec![0.0; ansatz.circuit.n_params()];
    let mut adam = Adam::new(0.1).expect("adam");
    assert!(train(&ansatz.circuit, &wrong_obs, params, &mut adam, 1).is_err());
}
