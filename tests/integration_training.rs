//! End-to-end training checks mirroring the paper's Fig 5b/5c at reduced
//! width: bounded initializations train the identity task; random
//! initialization stalls on the plateau.

use plateau_core::ansatz::training_ansatz;
use plateau_core::cost::CostKind;
use plateau_core::init::{FanMode, InitStrategy};
use plateau_core::optim::{Adam, GradientDescent, Optimizer};
use plateau_core::train::train;
use plateau_rng::rngs::StdRng;
use plateau_rng::SeedableRng;

fn trained_final_loss(
    n_qubits: usize,
    strategy: InitStrategy,
    optimizer: &mut dyn Optimizer,
    seed: u64,
) -> (f64, f64) {
    let ansatz = training_ansatz(n_qubits, 5).expect("ansatz");
    let mut rng = StdRng::seed_from_u64(seed);
    let theta0 = strategy
        .sample_params(&ansatz.shape, FanMode::Qubits, &mut rng)
        .expect("init");
    let obs = CostKind::Global.observable(n_qubits);
    let hist = train(&ansatz.circuit, &obs, theta0, optimizer, 50).expect("train");
    (hist.initial_loss(), hist.final_loss())
}

#[test]
fn xavier_trains_identity_with_adam() {
    let mut adam = Adam::new(0.1).expect("adam");
    let (initial, fin) = trained_final_loss(6, InitStrategy::XavierNormal, &mut adam, 1);
    assert!(initial > 0.01, "xavier does not start solved: {initial}");
    assert!(fin < 0.02, "xavier+adam should nearly solve: {fin}");
}

#[test]
fn xavier_trains_identity_with_gd() {
    let mut gd = GradientDescent::new(0.1).expect("gd");
    let (initial, fin) = trained_final_loss(6, InitStrategy::XavierNormal, &mut gd, 2);
    assert!(fin < initial * 0.5, "gd should at least halve the cost: {initial} → {fin}");
}

#[test]
fn bounded_inits_beat_random_with_adam() {
    // Average over a few seeds: random starts near C ≈ 1 with tiny
    // gradients, so after 50 iterations it must remain far worse than any
    // bounded strategy.
    let avg_final = |strategy: InitStrategy| -> f64 {
        let mut total = 0.0;
        for seed in 0..3u64 {
            let mut adam = Adam::new(0.1).expect("adam");
            total += trained_final_loss(6, strategy, &mut adam, 10 + seed).1;
        }
        total / 3.0
    };
    let random = avg_final(InitStrategy::Random);
    for strategy in [
        InitStrategy::XavierNormal,
        InitStrategy::XavierUniform,
        InitStrategy::He,
        InitStrategy::LeCun,
        InitStrategy::Orthogonal { gain: 1.0 },
    ] {
        let fin = avg_final(strategy);
        assert!(
            fin < random,
            "{strategy} ({fin:.4}) should beat random ({random:.4})"
        );
    }
}

#[test]
fn random_init_starts_on_plateau_at_moderate_width() {
    // The defining symptom: the initial gradient norm under random init is
    // orders of magnitude below the Xavier one at the same width.
    use plateau_grad::{Adjoint, GradientEngine};
    let n = 8;
    let ansatz = training_ansatz(n, 5).expect("ansatz");
    let obs = CostKind::Global.observable(n);
    let norm_for = |strategy: InitStrategy, seed: u64| -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let theta = strategy
            .sample_params(&ansatz.shape, FanMode::Qubits, &mut rng)
            .expect("init");
        let g = Adjoint.gradient(&ansatz.circuit, &theta, &obs).expect("grad");
        g.iter().map(|x| x * x).sum::<f64>().sqrt()
    };
    // Average over seeds to damp outliers.
    let avg = |s: InitStrategy| (0..4).map(|k| norm_for(s, 40 + k)).sum::<f64>() / 4.0;
    let random = avg(InitStrategy::Random);
    let xavier = avg(InitStrategy::XavierNormal);
    assert!(
        xavier > 5.0 * random,
        "xavier grad norm {xavier:.2e} should dwarf random {random:.2e}"
    );
}

#[test]
fn loss_is_monotone_under_small_step_gd_near_solution() {
    // With a Xavier start (near identity) and a conservative step size the
    // loss sequence should be non-increasing.
    let ansatz = training_ansatz(4, 3).expect("ansatz");
    let mut rng = StdRng::seed_from_u64(3);
    let theta0 = InitStrategy::XavierNormal
        .sample_params(&ansatz.shape, FanMode::Qubits, &mut rng)
        .expect("init");
    let obs = CostKind::Global.observable(4);
    let mut gd = GradientDescent::new(0.02).expect("gd");
    let hist = train(&ansatz.circuit, &obs, theta0, &mut gd, 30).expect("train");
    for w in hist.losses().windows(2) {
        assert!(w[1] <= w[0] + 1e-9, "loss increased: {} → {}", w[0], w[1]);
    }
}
