//! Cross-crate oracle tests: the statevector kernels against the
//! independent full-unitary construction, on the exact ansätze the paper's
//! experiments use.

use plateau_core::ansatz::{training_ansatz, variance_ansatz};
use plateau_linalg::CMatrix;
use plateau_sim::{circuit_unitary, Observable, State};
use plateau_rng::rngs::StdRng;
use plateau_rng::{Rng, SeedableRng};

fn random_params(n: usize, rng: &mut StdRng) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect()
}

#[test]
fn training_ansatz_unitary_matches_kernels_across_sizes() {
    let mut rng = StdRng::seed_from_u64(1);
    for (q, layers) in [(2usize, 3usize), (3, 2), (4, 2), (5, 1)] {
        let ansatz = training_ansatz(q, layers).expect("ansatz");
        let params = random_params(ansatz.circuit.n_params(), &mut rng);

        let via_kernel = ansatz.circuit.run(&params).expect("kernel run");
        let u = circuit_unitary(&ansatz.circuit, &params).expect("unitary");
        assert!(u.is_unitary(1e-10), "q={q} unitary check");
        let mut via_matrix = State::zero(q);
        via_matrix.apply_matrix(&u).expect("matrix apply");

        let fid = via_kernel.fidelity(&via_matrix).expect("fidelity");
        assert!((fid - 1.0).abs() < 1e-10, "q={q}: fidelity {fid}");
    }
}

#[test]
fn variance_ansatz_unitary_matches_kernels() {
    let mut rng = StdRng::seed_from_u64(2);
    for seed in 0..5u64 {
        let mut circ_rng = StdRng::seed_from_u64(seed);
        let ansatz = variance_ansatz(4, 4, &mut circ_rng).expect("ansatz");
        let params = random_params(ansatz.circuit.n_params(), &mut rng);

        let via_kernel = ansatz.circuit.run(&params).expect("kernel run");
        let u = circuit_unitary(&ansatz.circuit, &params).expect("unitary");
        let mut via_matrix = State::zero(4);
        via_matrix.apply_matrix(&u).expect("matrix apply");
        let fid = via_kernel.fidelity(&via_matrix).expect("fidelity");
        assert!((fid - 1.0).abs() < 1e-10, "seed {seed}: fidelity {fid}");
    }
}

#[test]
fn expectation_matches_dense_quadratic_form() {
    // ⟨ψ|H|ψ⟩ computed by the simulator vs the dense matrix quadratic form.
    let mut rng = StdRng::seed_from_u64(3);
    let ansatz = training_ansatz(3, 2).expect("ansatz");
    let params = random_params(ansatz.circuit.n_params(), &mut rng);
    let state = ansatz.circuit.run(&params).expect("run");

    for obs in [
        Observable::global_cost(3),
        Observable::local_cost(3),
        Observable::zero_projector(3),
    ] {
        let fast = obs.expectation(&state).expect("expectation");
        let h: CMatrix = obs.matrix();
        let hv = h.matvec(state.amplitudes());
        let slow: f64 = state
            .amplitudes()
            .iter()
            .zip(hv.iter())
            .map(|(a, b)| (a.conj() * *b).re)
            .sum();
        assert!((fast - slow).abs() < 1e-10, "{obs}: {fast} vs {slow}");
    }
}

#[test]
fn inverse_circuit_gives_identity_unitary() {
    let mut rng = StdRng::seed_from_u64(4);
    let ansatz = training_ansatz(3, 2).expect("ansatz");
    let params = random_params(ansatz.circuit.n_params(), &mut rng);

    // Run forward then inverse on a random-ish state; must round-trip.
    let mut state = ansatz.circuit.run(&params).expect("forward");
    ansatz
        .circuit
        .run_inverse_on(&mut state, &params)
        .expect("inverse");
    assert!((state.probability_all_zeros() - 1.0).abs() < 1e-10);
}

#[test]
fn global_phase_invariance_of_costs() {
    // Multiplying the state by a phase cannot change any cost operator.
    let ansatz = training_ansatz(2, 1).expect("ansatz");
    let params = vec![0.4, -0.7, 1.1, 0.2];
    let state = ansatz.circuit.run(&params).expect("run");
    let phased = State::from_amplitudes(
        state
            .amplitudes()
            .iter()
            .map(|a| *a * plateau_linalg::C64::cis(0.83))
            .collect(),
    )
    .expect("phased state");
    for obs in [Observable::global_cost(2), Observable::local_cost(2)] {
        let a = obs.expectation(&state).expect("e1");
        let b = obs.expectation(&phased).expect("e2");
        assert!((a - b).abs() < 1e-12);
    }
}
