#!/usr/bin/env bash
# Regenerates every figure and ablation of the paper at full scale,
# capturing each report under results/. Expect a few minutes on a
# laptop-class CPU. Set PLATEAU_SCALE=quick for a seconds-scale smoke run.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace

mkdir -p results
BINARIES=(
    fig1_landscape
    fig5a_variance
    table_improvements
    fig5b_train_gd
    fig5c_train_adam
    ablation_cost_locality
    ablation_depth
    ablation_beta_init
    ablation_shots
    ablation_fan_mode
    ablation_noise
    ablation_mitigation
    ablation_entanglement
    ablation_theory
    ablation_hessian
    ablation_vqe
    ablation_fisher
)
for bin in "${BINARIES[@]}"; do
    echo "=== ${bin} ==="
    "./target/release/${bin}" | tee "results/${bin}.csv"
done

echo "All reports written to results/."
