#!/usr/bin/env bash
# Tier-1 CI gate: hermetic build + full test suite, fully offline.
#
# The workspace has a zero-dependency policy (DESIGN.md §6): every crate in
# the graph must be one of ours. This script fails if the build needs the
# network, if any test fails, or if the dependency tree picks up anything
# that is not a plateau-* crate.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo build --release --offline ==="
cargo build --release --workspace --offline

echo "=== cargo test -q --offline ==="
cargo test -q --workspace --offline

echo "=== cargo test with forced-parallel sim kernels ==="
# Drive the statevector kernels down their chunked multi-threaded paths on
# every test, whatever the qubit count; results must be bit-identical to
# the serial run above (DESIGN.md §9).
PLATEAU_SIM_PAR_THRESHOLD=0 cargo test -q --workspace --offline

echo "=== cargo test with gate fusion forced on ==="
# Run the whole suite through the fusion compiler (DESIGN.md §11): every
# gradient-layer evaluation compiles circuits into fused segments. Tests
# that pin exact per-gate counters or span forests opt back out with
# set_fuse(false).
PLATEAU_SIM_FUSE=1 cargo test -q --workspace --offline

echo "=== zero-dependency policy check ==="
violations=$(cargo tree --workspace --offline --prefix none \
    | awk '{print $1}' | sort -u | grep -v '^plateau-' || true)
if [[ -n "${violations}" ]]; then
    echo "non-plateau crates in the dependency graph:" >&2
    echo "${violations}" >&2
    exit 1
fi
echo "dependency graph is plateau-* only."

echo "=== observability overhead gate ==="
# With every subscriber disabled, the metrics snapshot must be empty and
# the variance-harness medians must sit inside the recorded baseline
# envelope (benchmarks/BENCH_variance_harness.json). PLATEAU_PERF also
# appends each median to the persistent perf ledger (target/obs/perf.jsonl)
# for the trend-regression gate below.
PLATEAU_PERF=target/obs \
    cargo run -q --release --offline -p plateau-bench --bin obs_overhead_gate

echo "=== obs trace regression gate (fusion on) ==="
# Record a fresh trace of the canonical gate workload (kept in lock-step
# with crates/bench/src/bin/obs_trace_baseline.rs) and diff it against the
# committed baseline. The workload runs under PLATEAU_SIM_FUSE=1 — the
# production configuration — so the span forest includes the fused-kernel
# spans the baseline pins. Structure (new/vanished spans, call counts)
# compares exactly; wall time uses a generous relative threshold because
# the baseline was recorded on a different machine. Re-record with
# `cargo run -p plateau-bench --bin obs_trace_baseline` after intentional
# changes to the workload or the span instrumentation.
trace="$(mktemp -u).jsonl"
PLATEAU_SIM_FUSE=1 cargo run -q --release --offline -p plateau-cli -- variance \
    --qubits 2,3 --circuits 8 --layers 10 --metrics-out "${trace}" > /dev/null
cargo run -q --release --offline -p plateau-cli -- obs diff \
    benchmarks/OBS_trace_baseline.json "${trace}" \
    --threshold "${PLATEAU_TRACE_THRESHOLD:-4.0}"
rm -f "${trace}"

echo "=== telemetry overhead gate ==="
# The training loop's gradient-dynamics telemetry: with the knobs off it
# must be allocation-free (exact parity with the plain train baseline,
# counted through a wrapping allocator), and with series recording on the
# wall-time cost must stay under PLATEAU_TELEMETRY_OVERHEAD_FACTOR
# (default 1.02, i.e. < 2%).
cargo run -q --release --offline -p plateau-bench --bin telemetry_overhead_gate

echo "=== experiment ledger smoke gate ==="
# Register two tiny fixed-seed training runs with different initializers
# in a scratch ledger, then drive the full read side: the ledger record
# and its series must parse, and `obs runs list/compare` must succeed and
# render an SVG. The comparison plot is kept under target/ci-artifacts/.
ledger_dir="$(mktemp -d)"
cargo run -q --release --offline -p plateau-cli -- train \
    --qubits 3 --layers 2 --iterations 10 --strategy random --seed 1 \
    --ledger "${ledger_dir}" > /dev/null
cargo run -q --release --offline -p plateau-cli -- train \
    --qubits 3 --layers 2 --iterations 10 --strategy xavier_uniform --seed 1 \
    --ledger "${ledger_dir}" > /dev/null
records=$(wc -l < "${ledger_dir}/ledger.jsonl")
if [[ "${records}" -ne 2 ]]; then
    echo "ledger smoke: expected 2 run records, found ${records}" >&2
    exit 1
fi
series_files=$(ls "${ledger_dir}"/runs/*.jsonl | wc -l)
if [[ "${series_files}" -ne 2 ]]; then
    echo "ledger smoke: expected 2 series files, found ${series_files}" >&2
    exit 1
fi
cargo run -q --release --offline -p plateau-cli -- obs runs list \
    --dir "${ledger_dir}" > /dev/null
mkdir -p target/ci-artifacts
cargo run -q --release --offline -p plateau-cli -- obs runs compare \
    --dir "${ledger_dir}" --svg target/ci-artifacts/ledger_compare.svg
grep -q "</svg>" target/ci-artifacts/ledger_compare.svg
rm -rf "${ledger_dir}"

echo "=== differential fuzz smoke gate ==="
# A fixed-seed campaign over the full engine matrix (DESIGN.md §10):
# serial vs parallel kernels, statevector vs unitary vs density matrix,
# raw vs pass-optimized, fused vs raw, QASM round-trip, and three
# gradient engines. Any divergence fails the gate and leaves a shrunk
# reproducer under target/fuzz/ (replay with `plateau fuzz --replay
# <file>`). The mutation self-test then proves the harness still detects
# — and shrinks — both deliberately broken engines (the off-by-one
# kernel and the wrong-order fusion merge).
cargo run -q --release --offline -p plateau-cli -- fuzz \
    --cases "${PLATEAU_FUZZ_CASES:-500}" --seed 0xfeed
cargo run -q --release --offline -p plateau-cli -- fuzz \
    --cases 40 --seed 0xfeed --mutate true --artifacts "$(mktemp -d)"

echo "=== sim parallel + fusion speedup gates ==="
# The 10-qubit 5-layer parameter-shift training step, serial vs pooled vs
# fused: on multi-core machines the parallel median must at least break
# even (tolerance PLATEAU_SIM_PAR_TOL, default 1.10), and on any machine
# the fused median must beat raw serial by at least PLATEAU_SIM_FUSE_TOL
# (default 2.0). Recorded baseline lives in
# benchmarks/BENCH_sim_parallel.json (re-record with --record).
PLATEAU_PERF=target/obs \
    cargo run -q --release --offline -p plateau-bench --bin sim_parallel_gate

echo "=== batch throughput gate ==="
# The 200-member 10-qubit/5-layer ensemble sweep, fusion on: the batched
# executor (compile once, per-worker scratch statevectors) vs the old
# one-expectation-per-member loop. The serial comparison gates on any
# machine (batched must never lose; PLATEAU_BATCH_SERIAL_TOL, default
# 1.10); on multi-core machines the pooled sweep must additionally clear
# PLATEAU_BATCH_TOL (default 3.0) in circuits/sec. Recorded baseline
# lives in benchmarks/BENCH_batch_throughput.json (re-record with
# --record).
PLATEAU_PERF=target/obs \
    cargo run -q --release --offline -p plateau-bench --bin batch_throughput_gate

echo "=== serve smoke gate ==="
# The HTTP service end to end (DESIGN.md §15): load_gate boots an
# in-process server on an ephemeral port and fires a fixed-seed 200-request
# burst (simulate/gradient/variance-scan/train mix) over raw sockets. The
# gate fails on any non-2xx, on a /metrics scrape whose per-endpoint
# request counters are not EXACTLY the schedule, on any torn or non-200/503
# response from the 1-worker/1-slot backpressure probe, and unless the
# cold /simulate median (cache cleared per request: QASM parse + build +
# fusion compile repaid every time) exceeds the LRU-warm median by
# PLATEAU_SERVE_CACHE_TOL (default 1.2). Burst p50/p90/p99 land in the
# bench JSON; medians flow into the perf ledger. Recorded baseline lives
# in benchmarks/BENCH_serve.json (re-record with --record).
PLATEAU_PERF=target/obs \
    cargo run -q --release --offline -p plateau-bench --bin load_gate

echo "=== perf ledger trend-regression gate ==="
# The harness-driven gate bins above appended one record per benchmark to
# the append-only perf ledger. First self-test the gate on a scratch copy:
# replaying the recorded history as-is must pass, and injecting an
# order-of-magnitude slowdown into the latest record of one bench must
# exit nonzero. Then gate for real: once a bench has >= 2 recorded runs,
# its latest median must stay within PLATEAU_PERF_THRESHOLD (default
# +25%) of the median of its own history — drift is measured against this
# machine's recorded past. On a fresh checkout every bench is skipped
# (single record) and the frozen benchmarks/BENCH_*.json envelopes above
# remain the only comparison, so the first run still gates.
perf_dir=target/obs
scratch="$(mktemp -d)"
cp "${perf_dir}/perf.jsonl" "${scratch}/perf.jsonl"
cargo run -q --release --offline -p plateau-cli -- obs perf regress \
    --dir "${scratch}" > /dev/null
sed -n '$p' "${scratch}/perf.jsonl" | sed 's/"median_ns":/"median_ns":10/' \
    >> "${scratch}/perf.jsonl"
if cargo run -q --release --offline -p plateau-cli -- obs perf regress \
    --dir "${scratch}" > /dev/null 2>&1; then
    echo "perf regress self-test: injected slowdown was not caught" >&2
    exit 1
fi
rm -rf "${scratch}"
cargo run -q --release --offline -p plateau-cli -- obs perf regress \
    --dir "${perf_dir}" --threshold "${PLATEAU_PERF_THRESHOLD:-0.25}"
mkdir -p target/ci-artifacts
cargo run -q --release --offline -p plateau-cli -- obs perf trend \
    --dir "${perf_dir}" --svg target/ci-artifacts/perf_trend.svg > /dev/null
grep -q "</svg>" target/ci-artifacts/perf_trend.svg

echo "CI gate passed."
