#!/usr/bin/env bash
# Tier-1 CI gate: hermetic build + full test suite, fully offline.
#
# The workspace has a zero-dependency policy (DESIGN.md §6): every crate in
# the graph must be one of ours. This script fails if the build needs the
# network, if any test fails, or if the dependency tree picks up anything
# that is not a plateau-* crate.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo build --release --offline ==="
cargo build --release --workspace --offline

echo "=== cargo test -q --offline ==="
cargo test -q --workspace --offline

echo "=== zero-dependency policy check ==="
violations=$(cargo tree --workspace --offline --prefix none \
    | awk '{print $1}' | sort -u | grep -v '^plateau-' || true)
if [[ -n "${violations}" ]]; then
    echo "non-plateau crates in the dependency graph:" >&2
    echo "${violations}" >&2
    exit 1
fi
echo "dependency graph is plateau-* only."

echo "=== observability overhead gate ==="
# With every subscriber disabled, the metrics snapshot must be empty and
# the variance-harness medians must sit inside the recorded baseline
# envelope (benchmarks/BENCH_variance_harness.json).
cargo run -q --release --offline -p plateau-bench --bin obs_overhead_gate

echo "CI gate passed."
