//! Circuit simplification passes.
//!
//! Deep HEA circuits accumulate trivially removable structure — adjacent
//! self-inverse entanglers, zero-angle rotations, mergeable same-axis
//! rotations. These passes shrink gate count without changing semantics,
//! which matters both for simulation throughput (the variance harness runs
//! hundreds of thousands of circuit executions) and as a correctness
//! exercise: every pass carries a property test that the full unitary is
//! preserved.
//!
//! Free (trainable) parameters are never merged or dropped — passes only
//! touch gates whose angles are bound constants, so a simplified circuit
//! keeps exactly the same trainable-parameter indices.
//!
//! # Examples
//!
//! ```
//! use plateau_sim::{passes::simplify, Circuit, RotationGate};
//!
//! let mut c = Circuit::new(2)?;
//! c.cz(0, 1)?.cz(0, 1)?; // cancels
//! c.push_rotation_const(RotationGate::Rx, 0, 0.3)?;
//! c.push_rotation_const(RotationGate::Rx, 0, 0.4)?; // merges
//! c.push_rotation_const(RotationGate::Ry, 1, 0.0)?; // drops
//! let simplified = simplify(&c);
//! assert_eq!(simplified.gate_count(), 1);
//! # Ok::<(), plateau_sim::SimError>(())
//! ```

use crate::circuit::{Circuit, Op, Param};

/// Returns `true` when the op is a bound rotation with angle exactly zero
/// (identity gate).
fn is_zero_rotation(op: &Op) -> bool {
    match op {
        Op::Rotation {
            param: Param::Bound(a),
            ..
        }
        | Op::ControlledRotation {
            param: Param::Bound(a),
            ..
        }
        | Op::TwoQubitRotation {
            param: Param::Bound(a),
            ..
        } => *a == 0.0,
        _ => false,
    }
}

/// Attempts to merge two adjacent ops into one (or into nothing).
/// Returns `Some(replacement)` when the pair can be replaced by
/// `replacement` ops.
fn merge_pair(a: &Op, b: &Op) -> Option<Vec<Op>> {
    match (a, b) {
        // Adjacent identical self-inverse fixed gates cancel.
        (
            Op::Fixed { gate: g1, qubits: q1 },
            Op::Fixed { gate: g2, qubits: q2 },
        ) if g1 == g2 && q1 == q2 && g1.is_self_inverse() => Some(vec![]),
        // Same-axis bound rotations on the same qubit add their angles.
        (
            Op::Rotation {
                gate: g1,
                qubit: t1,
                param: Param::Bound(a1),
            },
            Op::Rotation {
                gate: g2,
                qubit: t2,
                param: Param::Bound(a2),
            },
        ) if g1 == g2 && t1 == t2 => Some(vec![Op::Rotation {
            gate: *g1,
            qubit: *t1,
            param: Param::Bound(a1 + a2),
        }]),
        // Same-axis bound two-qubit rotations on the same pair add.
        (
            Op::TwoQubitRotation {
                gate: g1,
                first: f1,
                second: s1,
                param: Param::Bound(a1),
            },
            Op::TwoQubitRotation {
                gate: g2,
                first: f2,
                second: s2,
                param: Param::Bound(a2),
            },
        ) if g1 == g2 && f1 == f2 && s1 == s2 => Some(vec![Op::TwoQubitRotation {
            gate: *g1,
            first: *f1,
            second: *s1,
            param: Param::Bound(a1 + a2),
        }]),
        _ => None,
    }
}

/// Simplifies a circuit by iterating three rewrites to a fixed point:
///
/// 1. drop bound rotations with angle exactly zero;
/// 2. cancel adjacent identical self-inverse fixed gates (CZ·CZ, X·X, …);
/// 3. merge adjacent same-axis bound rotations on identical operands.
///
/// Trainable parameters and their indices are preserved exactly.
pub fn simplify(circuit: &Circuit) -> Circuit {
    let mut ops: Vec<Op> = circuit
        .ops()
        .iter()
        .filter(|op| !is_zero_rotation(op))
        .cloned()
        .collect();

    loop {
        let mut changed = false;
        let mut out: Vec<Op> = Vec::with_capacity(ops.len());
        let mut i = 0;
        while i < ops.len() {
            if i + 1 < ops.len() {
                if let Some(replacement) = merge_pair(&ops[i], &ops[i + 1]) {
                    out.extend(replacement);
                    i += 2;
                    changed = true;
                    continue;
                }
            }
            out.push(ops[i].clone());
            i += 1;
        }
        // Dropping zero rotations can cascade after merges produce them.
        let before = out.len();
        out.retain(|op| !is_zero_rotation(op));
        changed |= out.len() != before;

        ops = out;
        if !changed {
            break;
        }
    }

    Circuit::from_parts(circuit.n_qubits(), ops, circuit.n_params())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::{FixedGate, RotationGate};
    use crate::unitary::circuit_unitary;
    use plateau_rng::check::{forall, vec_of};
    use plateau_rng::{prop_assert, prop_assert_eq, Rng};

    fn assert_equivalent(original: &Circuit, simplified: &Circuit, params: &[f64]) {
        let u1 = circuit_unitary(original, params).unwrap();
        let u2 = circuit_unitary(simplified, params).unwrap();
        assert!(
            u1.approx_eq(&u2, 1e-10),
            "simplification changed semantics"
        );
    }

    #[test]
    fn cancels_adjacent_cz_pairs() {
        let mut c = Circuit::new(3).unwrap();
        c.cz(0, 1).unwrap().cz(0, 1).unwrap().cz(1, 2).unwrap();
        let s = simplify(&c);
        assert_eq!(s.gate_count(), 1);
        assert_equivalent(&c, &s, &[]);
    }

    #[test]
    fn merges_bound_rotations() {
        let mut c = Circuit::new(1).unwrap();
        c.push_rotation_const(RotationGate::Rz, 0, 0.3).unwrap();
        c.push_rotation_const(RotationGate::Rz, 0, 0.5).unwrap();
        c.push_rotation_const(RotationGate::Rz, 0, -0.8).unwrap();
        let s = simplify(&c);
        // 0.3 + 0.5 merge to 0.8, then with −0.8 merge to 0 and drop.
        assert_eq!(s.gate_count(), 0);
        assert_equivalent(&c, &s, &[]);
    }

    #[test]
    fn preserves_free_parameters() {
        let mut c = Circuit::new(2).unwrap();
        c.rx(0).unwrap(); // free param 0
        c.cz(0, 1).unwrap().cz(0, 1).unwrap();
        c.ry(1).unwrap(); // free param 1
        let s = simplify(&c);
        assert_eq!(s.n_params(), 2);
        assert_eq!(s.gate_count(), 2);
        assert_equivalent(&c, &s, &[0.7, -0.3]);
    }

    #[test]
    fn does_not_merge_free_rotations() {
        let mut c = Circuit::new(1).unwrap();
        c.rx(0).unwrap().rx(0).unwrap();
        let s = simplify(&c);
        assert_eq!(s.gate_count(), 2);
        assert_eq!(s.n_params(), 2);
    }

    #[test]
    fn drops_zero_rotations_of_every_kind() {
        let mut c = Circuit::new(2).unwrap();
        c.push_rotation_const(RotationGate::Rx, 0, 0.0).unwrap();
        c.push_controlled_rotation(RotationGate::Ry, 0, 1).unwrap();
        c.bind_last_param(0.0).unwrap();
        c.rzz(0, 1).unwrap();
        c.bind_last_param(0.0).unwrap();
        let s = simplify(&c);
        assert_eq!(s.gate_count(), 0);
    }

    #[test]
    fn cascading_cancellation() {
        // X · (CZ · CZ) · X — inner pair cancels, outer pair becomes
        // adjacent and cancels on the next sweep.
        let mut c = Circuit::new(2).unwrap();
        c.x(0).unwrap().cz(0, 1).unwrap().cz(0, 1).unwrap().x(0).unwrap();
        let s = simplify(&c);
        assert_eq!(s.gate_count(), 0);
        assert_equivalent(&c, &s, &[]);
    }

    #[test]
    fn leaves_non_adjacent_structure_alone() {
        let mut c = Circuit::new(2).unwrap();
        c.cz(0, 1).unwrap().x(0).unwrap().cz(0, 1).unwrap();
        let s = simplify(&c);
        assert_eq!(s.gate_count(), 3);
        assert_equivalent(&c, &s, &[]);
    }

    #[test]
    fn does_not_cancel_non_self_inverse_gates() {
        let mut c = Circuit::new(1).unwrap();
        c.push_fixed(FixedGate::S, &[0]).unwrap();
        c.push_fixed(FixedGate::S, &[0]).unwrap();
        let s = simplify(&c);
        assert_eq!(s.gate_count(), 2); // S·S = Z, not I
        assert_equivalent(&c, &s, &[]);
    }

    /// Random 3-qubit circuits with a mix of bound rotations, free
    /// rotations, and fixed gates keep their unitary under
    /// simplification.
    #[test]
    fn simplify_preserves_unitary() {
        forall(
            0x70617373,
            64,
            |rng| {
                vec_of(rng, 1..25, |rng| {
                    (
                        rng.gen_range(0..6usize),
                        rng.gen_range(0..3usize),
                        rng.gen_range(-3.0..3.0),
                    )
                })
            },
            |choices| {
                let mut c = Circuit::new(3).unwrap();
                for (kind, qubit, angle) in choices {
                    let q = *qubit;
                    match kind {
                        0 => { c.push_rotation_const(RotationGate::Rx, q, *angle).unwrap(); }
                        1 => { c.push_rotation_const(RotationGate::Rz, q, *angle).unwrap(); }
                        2 => { c.rx(q).unwrap(); }
                        3 => { c.cz(q, (q + 1) % 3).unwrap(); }
                        4 => { c.x(q).unwrap(); }
                        _ => { c.h(q).unwrap(); }
                    }
                }
                let params: Vec<f64> = (0..c.n_params()).map(|i| 0.1 * i as f64 - 0.5).collect();
                let s = simplify(&c);
                prop_assert!(s.gate_count() <= c.gate_count());
                prop_assert_eq!(s.n_params(), c.n_params());
                let u1 = circuit_unitary(&c, &params).unwrap();
                let u2 = circuit_unitary(&s, &params).unwrap();
                prop_assert!(u1.approx_eq(&u2, 1e-9));
                Ok(())
            },
        );
    }
}
