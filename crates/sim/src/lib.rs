//! # plateau-sim
//!
//! A dense statevector quantum-circuit simulator — the substrate replacing
//! PennyLane's `default.qubit` device in this reproduction of the DATE 2024
//! barren-plateau initialization paper.
//!
//! Layers:
//!
//! - [`gate`]: gate definitions and matrices ([`FixedGate`],
//!   [`RotationGate`]) including derivative entries for adjoint
//!   differentiation.
//! - [`state`]: the statevector ([`State`]) with index-arithmetic kernels
//!   (general single-qubit, controlled, and a CZ diagonal fast path).
//! - [`circuit`]: the circuit IR ([`Circuit`], [`Op`], [`Param`]) with
//!   sequential free-parameter allocation and forward/inverse execution.
//! - [`observable`]: Hermitian cost operators ([`Observable`],
//!   [`PauliString`]) — notably the paper's global cost
//!   `I − |0…0⟩⟨0…0|` and the local cost of Cerezo et al.
//! - [`unitary`]: an independent full-matrix oracle ([`circuit_unitary`])
//!   for cross-validating the kernels.
//! - [`sampling`]: finite-shot measurement for the shot-noise ablation.
//! - [`parallel`]: chunked multi-threaded kernel variants engaged above
//!   the `PLATEAU_SIM_PAR_THRESHOLD` qubit count (default 14), bitwise
//!   identical to the serial loops regardless of worker count.
//! - [`fuse`]: the gate-fusion compiler ([`compile`], [`CompiledCircuit`])
//!   — merges adjacent-gate runs into 2×2/4×4 blocks and whole-layer
//!   diagonal superkernels, gated by the `PLATEAU_SIM_FUSE` knob
//!   ([`fuse_enabled`]).
//!
//! Qubit ordering is little-endian throughout: qubit `k` is bit `k` of the
//! amplitude index.
//!
//! # Examples
//!
//! Build one layer of the paper's hardware-efficient ansatz and evaluate
//! the global cost:
//!
//! ```
//! use plateau_sim::{Circuit, Observable};
//!
//! let n = 4;
//! let mut c = Circuit::new(n)?;
//! for q in 0..n {
//!     c.rx(q)?;
//!     c.ry(q)?;
//! }
//! for q in 0..n - 1 {
//!     c.cz(q, q + 1)?;
//! }
//!
//! let params = vec![0.1; c.n_params()];
//! let state = c.run(&params)?;
//! let cost = Observable::global_cost(n).expectation(&state)?;
//! assert!(cost > 0.0 && cost < 1.0);
//! # Ok::<(), plateau_sim::SimError>(())
//! ```

// Index-based loops are the clearer idiom for the dense numeric kernels
// in this crate; the iterator rewrites clippy suggests obscure the math.
#![allow(clippy::needless_range_loop)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circuit;
pub mod density;
pub mod diagram;
pub mod error;
pub mod fuse;
pub mod gate;
pub mod mixed;
pub mod noise;
pub mod observable;
pub mod parallel;
pub mod passes;
pub mod qasm;
pub mod sampling;
pub mod state;
pub mod unitary;

pub use circuit::{Circuit, Op, Param};
pub use density::{meyer_wallach, purity, reduced_density_matrix, von_neumann_entropy};
pub use error::SimError;
pub use fuse::{
    compile, fuse_enabled, reset_fuse, set_fuse, CompiledCircuit, Segment,
    SUPERKERNEL_MAX_QUBITS,
};
pub use gate::{FixedGate, RotationGate, TwoQubitRotationGate};
pub use mixed::{amplitude_damping_kraus, depolarizing_kraus, phase_flip_kraus, DensityMatrix};
pub use noise::NoiseModel;
pub use observable::{Observable, Pauli, PauliString};
pub use parallel::{
    par_threshold, reset_par_threshold, set_par_threshold, DEFAULT_PAR_THRESHOLD,
};
pub use sampling::{estimate_expectation, estimate_probability, sample_counts, sample_index};
pub use state::{State, MAX_QUBITS};
pub use unitary::{circuit_unitary, op_matrix};
