//! Reduced density matrices and entanglement measures.
//!
//! Barren plateaus are intimately tied to how entangled the circuit makes
//! the register (random deep circuits approach maximal bipartite
//! entanglement, which is exactly the 2-design regime where gradients
//! vanish). This module provides the partial trace, purity, von Neumann
//! entropy, and the Meyer–Wallach global-entanglement measure `Q` used by
//! the entanglement ablation in `plateau-core`.
//!
//! # Examples
//!
//! ```
//! use plateau_sim::{meyer_wallach, FixedGate, State};
//!
//! // Product states have Q = 0; a Bell pair has Q = 1.
//! let product = State::zero(2);
//! assert!(meyer_wallach(&product)?.abs() < 1e-12);
//!
//! let mut bell = State::zero(2);
//! bell.apply_fixed(FixedGate::H, &[0])?;
//! bell.apply_fixed(FixedGate::Cx, &[0, 1])?;
//! assert!((meyer_wallach(&bell)? - 1.0).abs() < 1e-12);
//! # Ok::<(), plateau_sim::SimError>(())
//! ```

use crate::error::SimError;
use crate::state::State;
use plateau_linalg::{eigh, CMatrix, C64};

/// Computes the reduced density matrix over `keep` (ascending, distinct
/// qubit indices), tracing out every other qubit.
///
/// The returned matrix has dimension `2^keep.len()`, with `keep[0]` as the
/// **lowest** bit of the reduced index (preserving the little-endian
/// convention).
///
/// # Errors
///
/// Returns [`SimError::QubitOutOfRange`] for invalid indices and
/// [`SimError::DuplicateQubits`] for repeats or an empty/unsorted list.
pub fn reduced_density_matrix(state: &State, keep: &[usize]) -> Result<CMatrix, SimError> {
    let n = state.n_qubits();
    if keep.is_empty() || keep.len() > n {
        return Err(SimError::DuplicateQubits { qubit: 0 });
    }
    for w in keep.windows(2) {
        if w[1] <= w[0] {
            return Err(SimError::DuplicateQubits { qubit: w[1] });
        }
    }
    for &q in keep {
        if q >= n {
            return Err(SimError::QubitOutOfRange { qubit: q, n_qubits: n });
        }
    }

    let k = keep.len();
    let kept_dim = 1usize << k;
    let rest: Vec<usize> = (0..n).filter(|q| !keep.contains(q)).collect();
    let rest_dim = 1usize << rest.len();

    // Scatter a compact index over the chosen qubit positions.
    let scatter = |compact: usize, positions: &[usize]| -> usize {
        let mut out = 0usize;
        for (bit, &pos) in positions.iter().enumerate() {
            if compact & (1 << bit) != 0 {
                out |= 1 << pos;
            }
        }
        out
    };

    let amps = state.amplitudes();
    let mut rho = CMatrix::zeros(kept_dim, kept_dim);
    for a in 0..kept_dim {
        let a_bits = scatter(a, keep);
        for b in 0..kept_dim {
            let b_bits = scatter(b, keep);
            let mut acc = C64::ZERO;
            for e in 0..rest_dim {
                let e_bits = scatter(e, &rest);
                acc += amps[a_bits | e_bits] * amps[b_bits | e_bits].conj();
            }
            rho[(a, b)] = acc;
        }
    }
    Ok(rho)
}

/// Purity `Tr(ρ²)` of a density matrix. 1 for pure states, `1/d` for the
/// maximally mixed state of dimension `d`.
///
/// # Panics
///
/// Panics if `rho` is not square.
pub fn purity(rho: &CMatrix) -> f64 {
    assert!(rho.is_square(), "density matrix must be square");
    let sq = rho * rho;
    sq.trace().re
}

/// Von Neumann entropy `S(ρ) = −Tr(ρ ln ρ)` in nats, computed through the
/// eigenvalues of `ρ`.
///
/// # Errors
///
/// Returns [`SimError::DimensionMismatch`] when the eigendecomposition
/// fails (non-Hermitian input).
pub fn von_neumann_entropy(rho: &CMatrix) -> Result<f64, SimError> {
    let eig = eigh(rho, 1e-9, 200).map_err(|_| SimError::DimensionMismatch {
        expected: rho.rows(),
        found: rho.cols(),
    })?;
    let mut s = 0.0;
    for lam in eig.values {
        if lam > 1e-12 {
            s -= lam * lam.ln();
        }
    }
    Ok(s)
}

/// Meyer–Wallach global entanglement `Q ∈ [0, 1]`:
/// `Q = 2 (1 − (1/n) Σ_q Tr ρ_q²)` where `ρ_q` is each single-qubit
/// reduced state. 0 for product states, 1 when every qubit is maximally
/// mixed (e.g. GHZ states).
///
/// # Errors
///
/// Propagates partial-trace errors (none occur for valid states).
pub fn meyer_wallach(state: &State) -> Result<f64, SimError> {
    let n = state.n_qubits();
    let mut purity_sum = 0.0;
    for q in 0..n {
        let rho = reduced_density_matrix(state, &[q])?;
        purity_sum += purity(&rho);
    }
    Ok(2.0 * (1.0 - purity_sum / n as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::{FixedGate, RotationGate};

    const TOL: f64 = 1e-10;

    fn bell() -> State {
        let mut s = State::zero(2);
        s.apply_fixed(FixedGate::H, &[0]).unwrap();
        s.apply_fixed(FixedGate::Cx, &[0, 1]).unwrap();
        s
    }

    fn ghz(n: usize) -> State {
        let mut s = State::zero(n);
        s.apply_fixed(FixedGate::H, &[0]).unwrap();
        for q in 1..n {
            s.apply_fixed(FixedGate::Cx, &[0, q]).unwrap();
        }
        s
    }

    #[test]
    fn reduced_state_of_product_is_pure() {
        let mut s = State::zero(2);
        s.apply_rotation(RotationGate::Ry, 0, 0.7).unwrap();
        let rho = reduced_density_matrix(&s, &[0]).unwrap();
        assert!((purity(&rho) - 1.0).abs() < TOL);
        assert!((rho.trace().re - 1.0).abs() < TOL);
        assert!(rho.is_hermitian(TOL));
    }

    #[test]
    fn reduced_state_of_bell_is_maximally_mixed() {
        let rho = reduced_density_matrix(&bell(), &[0]).unwrap();
        assert!((rho[(0, 0)].re - 0.5).abs() < TOL);
        assert!((rho[(1, 1)].re - 0.5).abs() < TOL);
        assert!(rho[(0, 1)].norm() < TOL);
        assert!((purity(&rho) - 0.5).abs() < TOL);
    }

    #[test]
    fn keeping_all_qubits_gives_projector() {
        let s = bell();
        let rho = reduced_density_matrix(&s, &[0, 1]).unwrap();
        assert!((purity(&rho) - 1.0).abs() < TOL);
        // ρ = |ψ⟩⟨ψ| → Tr ρ = 1.
        assert!((rho.trace().re - 1.0).abs() < TOL);
    }

    #[test]
    fn partial_trace_of_ghz_middle_qubit() {
        let s = ghz(3);
        let rho = reduced_density_matrix(&s, &[1]).unwrap();
        assert!((purity(&rho) - 0.5).abs() < TOL);
        // Two-qubit marginal of GHZ is a classical mixture of |00⟩,|11⟩.
        let rho2 = reduced_density_matrix(&s, &[0, 2]).unwrap();
        assert!((rho2[(0, 0)].re - 0.5).abs() < TOL);
        assert!((rho2[(3, 3)].re - 0.5).abs() < TOL);
        assert!(rho2[(0, 3)].norm() < TOL, "GHZ marginal has no coherence");
    }

    #[test]
    fn entropy_values() {
        // Pure: S = 0. Maximally mixed 1-qubit: S = ln 2.
        let pure = reduced_density_matrix(&State::zero(2), &[0]).unwrap();
        assert!(von_neumann_entropy(&pure).unwrap().abs() < 1e-8);
        let mixed = reduced_density_matrix(&bell(), &[0]).unwrap();
        assert!((von_neumann_entropy(&mixed).unwrap() - 2f64.ln()).abs() < 1e-8);
    }

    #[test]
    fn meyer_wallach_landmarks() {
        assert!(meyer_wallach(&State::zero(4)).unwrap().abs() < TOL);
        assert!((meyer_wallach(&bell()).unwrap() - 1.0).abs() < TOL);
        assert!((meyer_wallach(&ghz(4)).unwrap() - 1.0).abs() < TOL);
        // A partially-rotated two-qubit state sits strictly between.
        let mut s = State::zero(2);
        s.apply_rotation(RotationGate::Ry, 0, 0.8).unwrap();
        s.apply_cz(0, 1).unwrap();
        let q = meyer_wallach(&s).unwrap();
        assert!((0.0..=1.0).contains(&q));
    }

    #[test]
    fn w_state_meyer_wallach() {
        // |W⟩ = (|001⟩+|010⟩+|100⟩)/√3 has Q = 8/9.
        let inv = 1.0 / 3f64.sqrt();
        let mut amps = vec![C64::ZERO; 8];
        amps[1] = C64::real(inv);
        amps[2] = C64::real(inv);
        amps[4] = C64::real(inv);
        let w = State::from_amplitudes(amps).unwrap();
        assert!((meyer_wallach(&w).unwrap() - 8.0 / 9.0).abs() < 1e-10);
    }

    #[test]
    fn error_paths() {
        let s = State::zero(3);
        assert!(reduced_density_matrix(&s, &[]).is_err());
        assert!(reduced_density_matrix(&s, &[5]).is_err());
        assert!(reduced_density_matrix(&s, &[1, 1]).is_err());
        assert!(reduced_density_matrix(&s, &[2, 0]).is_err()); // unsorted
    }

    #[test]
    #[should_panic(expected = "square")]
    fn purity_rejects_rectangular() {
        let _ = purity(&CMatrix::zeros(2, 3));
    }
}
