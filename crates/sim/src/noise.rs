//! Pauli noise channels via Monte-Carlo trajectories.
//!
//! The paper's experiments are noiseless; real NISQ devices are not, and
//! noise itself induces plateaus (noise-induced barren plateaus, Wang et
//! al. 2021). This module adds a trajectory sampler: after every gate of a
//! circuit, each operand qubit suffers an independent Pauli error with the
//! channel's probabilities. Averaging expectation values over trajectories
//! converges to the density-matrix channel result, without paying the
//! `4^n` cost of a density-matrix simulator.
//!
//! # Examples
//!
//! ```
//! use plateau_sim::{Circuit, NoiseModel, Observable};
//! use plateau_rng::{rngs::StdRng, SeedableRng};
//!
//! let mut c = Circuit::new(2)?;
//! c.rx(0)?.ry(1)?.cz(0, 1)?;
//! let noise = NoiseModel::depolarizing(0.02)?;
//! let obs = Observable::global_cost(2);
//! let mut rng = StdRng::seed_from_u64(0);
//! let noisy = noise.expectation(&c, &[0.0, 0.0], &obs, 400, &mut rng)?;
//! // Noise lifts the perfectly-solved cost strictly above zero.
//! assert!(noisy > 0.0);
//! # Ok::<(), plateau_sim::SimError>(())
//! ```

use crate::circuit::Circuit;
use crate::error::SimError;
use crate::observable::Observable;
use crate::state::State;
use plateau_rng::Rng;

/// A single-qubit Pauli error channel applied after every gate to each of
/// the gate's operand qubits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Probability of an X error.
    pub p_x: f64,
    /// Probability of a Y error.
    pub p_y: f64,
    /// Probability of a Z error.
    pub p_z: f64,
}

impl NoiseModel {
    /// A symmetric depolarizing channel of total strength `p`
    /// (each Pauli with probability `p/3`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotNormalized`] when `p ∉ [0, 1]`.
    pub fn depolarizing(p: f64) -> Result<NoiseModel, SimError> {
        NoiseModel::new(p / 3.0, p / 3.0, p / 3.0)
    }

    /// A pure bit-flip channel.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotNormalized`] when `p ∉ [0, 1]`.
    pub fn bit_flip(p: f64) -> Result<NoiseModel, SimError> {
        NoiseModel::new(p, 0.0, 0.0)
    }

    /// A pure phase-flip (dephasing) channel.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotNormalized`] when `p ∉ [0, 1]`.
    pub fn phase_flip(p: f64) -> Result<NoiseModel, SimError> {
        NoiseModel::new(0.0, 0.0, p)
    }

    /// A general Pauli channel.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotNormalized`] when any probability is
    /// negative or the total exceeds 1.
    pub fn new(p_x: f64, p_y: f64, p_z: f64) -> Result<NoiseModel, SimError> {
        let total = p_x + p_y + p_z;
        let valid = p_x >= 0.0 && p_y >= 0.0 && p_z >= 0.0 && total <= 1.0 + 1e-12;
        if !valid || !total.is_finite() {
            return Err(SimError::NotNormalized { norm: total });
        }
        Ok(NoiseModel { p_x, p_y, p_z })
    }

    /// Total error probability per qubit per gate.
    pub fn total_error_probability(&self) -> f64 {
        self.p_x + self.p_y + self.p_z
    }

    /// Samples one Pauli error (or none) for a single qubit location.
    fn sample_error<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<PauliError> {
        let u: f64 = rng.gen();
        if u < self.p_x {
            Some(PauliError::X)
        } else if u < self.p_x + self.p_y {
            Some(PauliError::Y)
        } else if u < self.p_x + self.p_y + self.p_z {
            Some(PauliError::Z)
        } else {
            None
        }
    }

    /// Runs one noisy trajectory: the circuit with random Pauli errors
    /// injected after every gate on its operand qubits.
    ///
    /// # Errors
    ///
    /// Propagates parameter and operand validity errors.
    pub fn run_trajectory<R: Rng + ?Sized>(
        &self,
        circuit: &Circuit,
        params: &[f64],
        rng: &mut R,
    ) -> Result<State, SimError> {
        circuit.check_params(params)?;
        let mut state = State::zero(circuit.n_qubits());
        for op in circuit.ops() {
            op.apply(&mut state, params)?;
            for q in op.qubits() {
                if let Some(err) = self.sample_error(rng) {
                    err.apply(&mut state, q)?;
                }
            }
        }
        Ok(state)
    }

    /// Trajectory-averaged expectation value over `trajectories` samples.
    ///
    /// Statistical error scales as `1/√trajectories`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WrongParamCount`] for bad parameters and
    /// [`SimError::ObservableMismatch`] for a mismatched observable;
    /// `trajectories == 0` yields [`SimError::DimensionMismatch`].
    pub fn expectation<R: Rng + ?Sized>(
        &self,
        circuit: &Circuit,
        params: &[f64],
        obs: &Observable,
        trajectories: usize,
        rng: &mut R,
    ) -> Result<f64, SimError> {
        if trajectories == 0 {
            return Err(SimError::DimensionMismatch {
                expected: 1,
                found: 0,
            });
        }
        let mut total = 0.0;
        for _ in 0..trajectories {
            let state = self.run_trajectory(circuit, params, rng)?;
            total += obs.expectation(&state)?;
        }
        Ok(total / trajectories as f64)
    }
}

#[derive(Debug, Clone, Copy)]
enum PauliError {
    X,
    Y,
    Z,
}

impl PauliError {
    fn apply(self, state: &mut State, qubit: usize) -> Result<(), SimError> {
        match self {
            PauliError::X => state.apply_fixed(crate::gate::FixedGate::X, &[qubit]),
            PauliError::Y => state.apply_fixed(crate::gate::FixedGate::Y, &[qubit]),
            PauliError::Z => state.apply_fixed(crate::gate::FixedGate::Z, &[qubit]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plateau_rng::rngs::StdRng;
    use plateau_rng::SeedableRng;

    fn trivial_circuit(n: usize) -> Circuit {
        let mut c = Circuit::new(n).unwrap();
        for q in 0..n {
            c.rx(q).unwrap();
        }
        c
    }

    #[test]
    fn constructors_validate() {
        assert!(NoiseModel::depolarizing(0.1).is_ok());
        assert!(NoiseModel::depolarizing(-0.1).is_err());
        assert!(NoiseModel::new(0.5, 0.4, 0.3).is_err());
        assert!(NoiseModel::new(f64::NAN, 0.0, 0.0).is_err());
        assert!(NoiseModel::bit_flip(1.0).is_ok());
        assert_eq!(
            NoiseModel::phase_flip(0.25).unwrap().total_error_probability(),
            0.25
        );
    }

    #[test]
    fn zero_noise_is_exact() {
        let c = trivial_circuit(2);
        let noise = NoiseModel::depolarizing(0.0).unwrap();
        let obs = Observable::global_cost(2);
        let params = [0.4, 0.9];
        let mut rng = StdRng::seed_from_u64(0);
        let noisy = noise.expectation(&c, &params, &obs, 10, &mut rng).unwrap();
        let exact = obs.expectation(&c.run(&params).unwrap()).unwrap();
        assert!((noisy - exact).abs() < 1e-12);
    }

    #[test]
    fn bit_flip_on_identity_circuit_analytic() {
        // One RX(0) gate on |0⟩ at θ=0, bit-flip prob p after it:
        // cost = 1 − p0 = p exactly.
        let mut c = Circuit::new(1).unwrap();
        c.rx(0).unwrap();
        let p = 0.3;
        let noise = NoiseModel::bit_flip(p).unwrap();
        let obs = Observable::global_cost(1);
        let mut rng = StdRng::seed_from_u64(1);
        let noisy = noise.expectation(&c, &[0.0], &obs, 40_000, &mut rng).unwrap();
        assert!((noisy - p).abs() < 0.01, "measured {noisy}, expected {p}");
    }

    #[test]
    fn phase_flip_does_not_disturb_computational_basis() {
        // Z errors are invisible to diagonal observables on basis states.
        let mut c = Circuit::new(2).unwrap();
        c.rx(0).unwrap().rx(1).unwrap();
        let noise = NoiseModel::phase_flip(0.5).unwrap();
        let obs = Observable::global_cost(2);
        let mut rng = StdRng::seed_from_u64(2);
        let noisy = noise
            .expectation(&c, &[0.0, 0.0], &obs, 500, &mut rng)
            .unwrap();
        assert!(noisy.abs() < 1e-12);
    }

    #[test]
    fn depolarizing_noise_degrades_solution() {
        // A solved identity circuit picks up cost proportional to noise.
        let c = trivial_circuit(3);
        let obs = Observable::global_cost(3);
        let mut rng = StdRng::seed_from_u64(3);
        let weak = NoiseModel::depolarizing(0.01)
            .unwrap()
            .expectation(&c, &[0.0; 3], &obs, 4000, &mut rng)
            .unwrap();
        let strong = NoiseModel::depolarizing(0.2)
            .unwrap()
            .expectation(&c, &[0.0; 3], &obs, 4000, &mut rng)
            .unwrap();
        assert!(weak > 0.0);
        assert!(strong > weak);
    }

    #[test]
    fn trajectories_preserve_normalization() {
        let c = trivial_circuit(3);
        let noise = NoiseModel::depolarizing(0.3).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            let s = noise.run_trajectory(&c, &[0.1, 0.2, 0.3], &mut rng).unwrap();
            assert!((s.norm() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn error_paths() {
        let c = trivial_circuit(1);
        let noise = NoiseModel::depolarizing(0.1).unwrap();
        let obs = Observable::global_cost(1);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(noise.expectation(&c, &[], &obs, 10, &mut rng).is_err());
        assert!(noise.expectation(&c, &[0.1], &obs, 0, &mut rng).is_err());
        let wrong_obs = Observable::global_cost(2);
        assert!(noise.expectation(&c, &[0.1], &wrong_obs, 10, &mut rng).is_err());
    }
}
