//! Hermitian observables: Pauli strings, weighted Pauli sums, and the
//! projector-based cost operators of the paper.
//!
//! The paper's training objective (Eq. 4) is the **global cost**
//! `C = ⟨ψ| (I − |0…0⟩⟨0…0|) |ψ⟩ = 1 − p(|0…0⟩)`, and its related-work
//! discussion (§II-d, Cerezo et al.) contrasts it with the **local cost**
//! `C = ⟨ψ| (I − (1/n) Σ_j |0⟩⟨0|_j ⊗ I) |ψ⟩`. Both are first-class here,
//! alongside general Pauli-sum observables used for cross-validation.
//!
//! # Examples
//!
//! ```
//! use plateau_sim::{Observable, State};
//!
//! let cost = Observable::global_cost(3);
//! let zero = State::zero(3);
//! assert!(cost.expectation(&zero)?.abs() < 1e-12); // already solved
//!
//! let one = State::basis(3, 7);
//! assert!((cost.expectation(&one)? - 1.0).abs() < 1e-12); // orthogonal
//! # Ok::<(), plateau_sim::SimError>(())
//! ```

use crate::error::SimError;
use crate::state::State;
use plateau_linalg::{CMatrix, C64};
use std::fmt;

/// A single-qubit Pauli operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Pauli::I => "I",
            Pauli::X => "X",
            Pauli::Y => "Y",
            Pauli::Z => "Z",
        })
    }
}

/// A tensor product of single-qubit Paulis over an `n`-qubit register.
///
/// Index `k` of the inner vector is the Pauli on qubit `k` (little-endian,
/// matching [`State`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PauliString {
    paulis: Vec<Pauli>,
}

impl PauliString {
    /// Builds a Pauli string from per-qubit operators.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] when `paulis` is empty.
    pub fn new(paulis: Vec<Pauli>) -> Result<PauliString, SimError> {
        if paulis.is_empty() {
            return Err(SimError::DimensionMismatch {
                expected: 1,
                found: 0,
            });
        }
        Ok(PauliString { paulis })
    }

    /// The identity string over `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn identity(n: usize) -> PauliString {
        assert!(n > 0, "qubit count must be nonzero");
        PauliString {
            paulis: vec![Pauli::I; n],
        }
    }

    /// A single Pauli `p` on `qubit`, identity elsewhere.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] when `qubit >= n`.
    pub fn single(n: usize, qubit: usize, p: Pauli) -> Result<PauliString, SimError> {
        if qubit >= n {
            return Err(SimError::QubitOutOfRange { qubit, n_qubits: n });
        }
        let mut paulis = vec![Pauli::I; n];
        paulis[qubit] = p;
        PauliString::new(paulis)
    }

    /// Parses a string like `"ZZI"` or `"IXY"`.
    ///
    /// The **leftmost** character is the **highest** qubit, mirroring ket
    /// notation `|q_{n-1} … q_0⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] for an empty string and
    /// [`SimError::WrongArity`] for an unknown character.
    pub fn parse(s: &str) -> Result<PauliString, SimError> {
        let mut paulis = Vec::with_capacity(s.len());
        for ch in s.chars().rev() {
            paulis.push(match ch {
                'I' | 'i' => Pauli::I,
                'X' | 'x' => Pauli::X,
                'Y' | 'y' => Pauli::Y,
                'Z' | 'z' => Pauli::Z,
                other => {
                    return Err(SimError::WrongArity {
                        gate: format!("pauli '{other}'"),
                        expected: 0,
                        found: 0,
                    })
                }
            });
        }
        PauliString::new(paulis)
    }

    /// Number of qubits the string covers.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.paulis.len()
    }

    /// The Pauli on `qubit`.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range.
    #[inline]
    pub fn pauli(&self, qubit: usize) -> Pauli {
        self.paulis[qubit]
    }

    /// Number of non-identity factors (the string's *weight* / locality).
    pub fn weight(&self) -> usize {
        self.paulis.iter().filter(|p| **p != Pauli::I).count()
    }

    /// Applies the string to a state, producing `P|ψ⟩`.
    ///
    /// Pauli strings are signed permutations of the computational basis:
    /// X/Y factors toggle bits, Y and Z contribute phases.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ObservableMismatch`] when the qubit counts
    /// differ.
    pub fn apply(&self, state: &State) -> Result<State, SimError> {
        if state.n_qubits() != self.n_qubits() {
            return Err(SimError::ObservableMismatch {
                observable_qubits: self.n_qubits(),
                state_qubits: state.n_qubits(),
            });
        }
        let mut flip_mask = 0usize;
        let mut z_mask = 0usize; // qubits contributing (-1)^bit
        let mut y_mask = 0usize;
        for (q, p) in self.paulis.iter().enumerate() {
            match p {
                Pauli::I => {}
                Pauli::X => flip_mask |= 1 << q,
                Pauli::Y => {
                    flip_mask |= 1 << q;
                    y_mask |= 1 << q;
                }
                Pauli::Z => z_mask |= 1 << q,
            }
        }
        let n_y = y_mask.count_ones() as usize;
        // Global factor from Y = i·X·Z decomposition: each Y contributes a
        // factor i together with an X flip and a Z phase; acting on basis
        // state |b⟩: Y|0⟩ = i|1⟩, Y|1⟩ = -i|0⟩ →
        // P|b⟩ = i^{n_y} · (-1)^{popcount(b & (z_mask|y_mask))} |b ^ flip_mask⟩.
        let i_pow = match n_y % 4 {
            0 => C64::ONE,
            1 => C64::I,
            2 => -C64::ONE,
            _ => -C64::I,
        };
        let phase_mask = z_mask | y_mask;
        let src = state.amplitudes();
        let mut out = vec![C64::ZERO; src.len()];
        for (b, amp) in src.iter().enumerate() {
            let sign = if (b & phase_mask).count_ones().is_multiple_of(2) {
                1.0
            } else {
                -1.0
            };
            out[b ^ flip_mask] = *amp * i_pow * sign;
        }
        // P is a signed permutation, so it preserves the input's norm
        // exactly — but the input need not be normalized: the density-
        // matrix engine applies Pauli strings to raw matrix columns and
        // the adjoint engine to tangent vectors. Skip the normalization
        // check rather than reject those callers.
        State::from_amplitudes_unnormalized(out)
    }

    /// Expectation value `⟨ψ|P|ψ⟩` (real because P is Hermitian).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ObservableMismatch`] when the qubit counts
    /// differ.
    pub fn expectation(&self, state: &State) -> Result<f64, SimError> {
        let applied = self.apply(state)?;
        Ok(state.inner(&applied)?.re)
    }

    /// Dense matrix of the string (oracle path, `2^n × 2^n`).
    pub fn matrix(&self) -> CMatrix {
        let single = |p: Pauli| -> CMatrix {
            let o = C64::ZERO;
            let l = C64::ONE;
            let i = C64::I;
            match p {
                Pauli::I => CMatrix::identity(2),
                Pauli::X => CMatrix::from_rows(&[&[o, l], &[l, o]]),
                Pauli::Y => CMatrix::from_rows(&[&[o, -i], &[i, o]]),
                Pauli::Z => CMatrix::from_rows(&[&[l, o], &[o, -l]]),
            }
        };
        // Highest qubit is the leftmost kron factor.
        let mut m = single(self.paulis[self.paulis.len() - 1]);
        for q in (0..self.paulis.len() - 1).rev() {
            m = m.kron(&single(self.paulis[q]));
        }
        m
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in self.paulis.iter().rev() {
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

/// A Hermitian observable usable as a cost operator.
#[derive(Debug, Clone, PartialEq)]
pub enum Observable {
    /// A real-weighted sum of Pauli strings `Σ_k c_k P_k`.
    PauliSum {
        /// Number of qubits all strings cover.
        n_qubits: usize,
        /// `(coefficient, string)` pairs.
        terms: Vec<(f64, PauliString)>,
    },
    /// The projector `|0…0⟩⟨0…0|`.
    ZeroProjector {
        /// Register size.
        n_qubits: usize,
    },
    /// The paper's global cost operator `I − |0…0⟩⟨0…0|` (Eq. 4):
    /// expectation `1 − p(|0…0⟩)`.
    GlobalCost {
        /// Register size.
        n_qubits: usize,
    },
    /// The local cost operator `I − (1/n) Σ_j |0⟩⟨0|_j`:
    /// expectation `1 − (1/n) Σ_j p(qubit j = 0)`.
    LocalCost {
        /// Register size.
        n_qubits: usize,
    },
}

impl Observable {
    /// Builds a Pauli-sum observable.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] for an empty term list and
    /// [`SimError::ObservableMismatch`] when term sizes disagree.
    pub fn pauli_sum(terms: Vec<(f64, PauliString)>) -> Result<Observable, SimError> {
        let n_qubits = terms
            .first()
            .map(|(_, p)| p.n_qubits())
            .ok_or(SimError::DimensionMismatch {
                expected: 1,
                found: 0,
            })?;
        for (_, p) in &terms {
            if p.n_qubits() != n_qubits {
                return Err(SimError::ObservableMismatch {
                    observable_qubits: p.n_qubits(),
                    state_qubits: n_qubits,
                });
            }
        }
        Ok(Observable::PauliSum { n_qubits, terms })
    }

    /// A single Pauli string with unit coefficient.
    ///
    /// # Errors
    ///
    /// Never fails for a valid [`PauliString`]; result type kept for
    /// signature consistency.
    pub fn pauli(p: PauliString) -> Result<Observable, SimError> {
        Observable::pauli_sum(vec![(1.0, p)])
    }

    /// The projector `|0…0⟩⟨0…0|` over `n` qubits.
    pub fn zero_projector(n_qubits: usize) -> Observable {
        Observable::ZeroProjector { n_qubits }
    }

    /// The paper's global cost operator (Eq. 4).
    pub fn global_cost(n_qubits: usize) -> Observable {
        Observable::GlobalCost { n_qubits }
    }

    /// The local cost operator of Cerezo et al. (paper §II-d).
    pub fn local_cost(n_qubits: usize) -> Observable {
        Observable::LocalCost { n_qubits }
    }

    /// Number of qubits the observable covers.
    pub fn n_qubits(&self) -> usize {
        match self {
            Observable::PauliSum { n_qubits, .. }
            | Observable::ZeroProjector { n_qubits }
            | Observable::GlobalCost { n_qubits }
            | Observable::LocalCost { n_qubits } => *n_qubits,
        }
    }

    fn check_state(&self, state: &State) -> Result<(), SimError> {
        if state.n_qubits() != self.n_qubits() {
            Err(SimError::ObservableMismatch {
                observable_qubits: self.n_qubits(),
                state_qubits: state.n_qubits(),
            })
        } else {
            Ok(())
        }
    }

    /// Expectation value `⟨ψ|H|ψ⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ObservableMismatch`] when the qubit counts
    /// differ.
    pub fn expectation(&self, state: &State) -> Result<f64, SimError> {
        self.check_state(state)?;
        match self {
            Observable::PauliSum { terms, .. } => {
                let mut total = 0.0;
                for (c, p) in terms {
                    total += c * p.expectation(state)?;
                }
                Ok(total)
            }
            Observable::ZeroProjector { .. } => Ok(state.probability_all_zeros()),
            Observable::GlobalCost { .. } => Ok(1.0 - state.probability_all_zeros()),
            Observable::LocalCost { n_qubits } => {
                let mut acc = 0.0;
                for q in 0..*n_qubits {
                    acc += state.probability_qubit_zero(q)?;
                }
                Ok(1.0 - acc / *n_qubits as f64)
            }
        }
    }

    /// Applies the observable to a state: returns the (generally
    /// unnormalized) vector `H|ψ⟩` as a raw amplitude buffer. Used by the
    /// adjoint differentiation engine.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ObservableMismatch`] when the qubit counts
    /// differ.
    pub fn apply_raw(&self, state: &State) -> Result<Vec<C64>, SimError> {
        self.check_state(state)?;
        let amps = state.amplitudes();
        match self {
            Observable::PauliSum { terms, .. } => {
                let mut acc = vec![C64::ZERO; amps.len()];
                for (c, p) in terms {
                    let applied = p.apply(state)?;
                    for (a, b) in acc.iter_mut().zip(applied.amplitudes()) {
                        *a += *b * *c;
                    }
                }
                Ok(acc)
            }
            Observable::ZeroProjector { .. } => {
                let mut out = vec![C64::ZERO; amps.len()];
                out[0] = amps[0];
                Ok(out)
            }
            Observable::GlobalCost { .. } => {
                let mut out = amps.to_vec();
                out[0] = C64::ZERO;
                Ok(out)
            }
            Observable::LocalCost { n_qubits } => {
                let n = *n_qubits as f64;
                let mut out = amps.to_vec();
                for (i, a) in out.iter_mut().enumerate() {
                    // (I - (1/n) Σ_j |0><0|_j)|b⟩ = (1 - z(b)/n)|b⟩ where
                    // z(b) = number of zero bits of b among the n qubits.
                    let zeros = *n_qubits - (i.count_ones() as usize);
                    *a *= 1.0 - zeros as f64 / n;
                }
                Ok(out)
            }
        }
    }

    /// Dense matrix of the observable (oracle path).
    pub fn matrix(&self) -> CMatrix {
        let n = self.n_qubits();
        let dim = 1usize << n;
        match self {
            Observable::PauliSum { terms, .. } => {
                let mut acc = CMatrix::zeros(dim, dim);
                for (c, p) in terms {
                    acc = &acc + &p.matrix().scale(C64::real(*c));
                }
                acc
            }
            Observable::ZeroProjector { .. } => {
                let mut m = CMatrix::zeros(dim, dim);
                m[(0, 0)] = C64::ONE;
                m
            }
            Observable::GlobalCost { .. } => {
                let mut m = CMatrix::identity(dim);
                m[(0, 0)] = C64::ZERO;
                m
            }
            Observable::LocalCost { n_qubits } => {
                let mut m = CMatrix::zeros(dim, dim);
                for b in 0..dim {
                    let zeros = *n_qubits - (b.count_ones() as usize);
                    m[(b, b)] = C64::real(1.0 - zeros as f64 / *n_qubits as f64);
                }
                m
            }
        }
    }
}

impl fmt::Display for Observable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Observable::PauliSum { terms, .. } => {
                for (k, (c, p)) in terms.iter().enumerate() {
                    if k > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{c}·{p}")?;
                }
                Ok(())
            }
            Observable::ZeroProjector { n_qubits } => write!(f, "|0^{n_qubits}⟩⟨0^{n_qubits}|"),
            Observable::GlobalCost { n_qubits } => {
                write!(f, "I − |0^{n_qubits}⟩⟨0^{n_qubits}|")
            }
            Observable::LocalCost { n_qubits } => {
                write!(f, "I − (1/{n_qubits})Σ|0⟩⟨0|_j")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::FixedGate;

    const TOL: f64 = 1e-12;

    #[test]
    fn pauli_string_construction() {
        let p = PauliString::parse("ZIX").unwrap();
        assert_eq!(p.n_qubits(), 3);
        // Leftmost char = highest qubit.
        assert_eq!(p.pauli(2), Pauli::Z);
        assert_eq!(p.pauli(1), Pauli::I);
        assert_eq!(p.pauli(0), Pauli::X);
        assert_eq!(p.weight(), 2);
        assert_eq!(p.to_string(), "ZIX");
        assert!(PauliString::parse("").is_err());
        assert!(PauliString::parse("ZQ").is_err());
    }

    #[test]
    fn single_and_identity_constructors() {
        let id = PauliString::identity(4);
        assert_eq!(id.weight(), 0);
        let z1 = PauliString::single(4, 1, Pauli::Z).unwrap();
        assert_eq!(z1.pauli(1), Pauli::Z);
        assert_eq!(z1.weight(), 1);
        assert!(PauliString::single(4, 9, Pauli::Z).is_err());
    }

    #[test]
    fn z_expectation_on_basis_states() {
        let z0 = PauliString::single(2, 0, Pauli::Z).unwrap();
        assert!((z0.expectation(&State::zero(2)).unwrap() - 1.0).abs() < TOL);
        assert!((z0.expectation(&State::basis(2, 1)).unwrap() + 1.0).abs() < TOL);
        assert!((z0.expectation(&State::basis(2, 2)).unwrap() - 1.0).abs() < TOL);
    }

    #[test]
    fn x_expectation_on_plus_state() {
        let mut s = State::zero(1);
        s.apply_fixed(FixedGate::H, &[0]).unwrap();
        let x = PauliString::single(1, 0, Pauli::X).unwrap();
        assert!((x.expectation(&s).unwrap() - 1.0).abs() < TOL);
    }

    #[test]
    fn y_apply_on_basis_states() {
        // Y|0> = i|1>, Y|1> = -i|0>
        let y = PauliString::single(1, 0, Pauli::Y).unwrap();
        let applied = y.apply(&State::zero(1)).unwrap();
        assert!(applied.amplitudes()[1].approx_eq(C64::I, TOL));
        let applied = y.apply(&State::basis(1, 1)).unwrap();
        assert!(applied.amplitudes()[0].approx_eq(-C64::I, TOL));
    }

    #[test]
    fn pauli_apply_matches_matrix_oracle() {
        for s in ["XYZ", "ZZI", "YYX", "IZY", "XIX"] {
            let p = PauliString::parse(s).unwrap();
            let mut state = State::zero(3);
            // Entangle a bit for a nontrivial state.
            state.apply_fixed(FixedGate::H, &[0]).unwrap();
            state.apply_fixed(FixedGate::Cx, &[0, 1]).unwrap();
            state
                .apply_rotation(crate::gate::RotationGate::Ry, 2, 0.9)
                .unwrap();

            let via_kernel = p.apply(&state).unwrap();
            let mut via_matrix = state.clone();
            via_matrix.apply_matrix(&p.matrix()).unwrap();
            for (a, b) in via_kernel
                .amplitudes()
                .iter()
                .zip(via_matrix.amplitudes())
            {
                assert!(a.approx_eq(*b, 1e-10), "{s}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn pauli_strings_are_involutions() {
        let p = PauliString::parse("XYZY").unwrap();
        let mut s = State::zero(4);
        s.apply_fixed(FixedGate::H, &[2]).unwrap();
        let twice = p.apply(&p.apply(&s).unwrap()).unwrap();
        assert!((twice.fidelity(&s).unwrap() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn global_cost_on_known_states() {
        let cost = Observable::global_cost(2);
        assert!(cost.expectation(&State::zero(2)).unwrap().abs() < TOL);
        assert!((cost.expectation(&State::basis(2, 3)).unwrap() - 1.0).abs() < TOL);
        // Uniform superposition: p0 = 1/4 → cost 3/4.
        let mut s = State::zero(2);
        s.apply_fixed(FixedGate::H, &[0]).unwrap();
        s.apply_fixed(FixedGate::H, &[1]).unwrap();
        assert!((cost.expectation(&s).unwrap() - 0.75).abs() < TOL);
    }

    #[test]
    fn local_cost_on_known_states() {
        let cost = Observable::local_cost(2);
        assert!(cost.expectation(&State::zero(2)).unwrap().abs() < TOL);
        assert!((cost.expectation(&State::basis(2, 3)).unwrap() - 1.0).abs() < TOL);
        // |01⟩: one qubit correct → cost 1/2.
        assert!((cost.expectation(&State::basis(2, 1)).unwrap() - 0.5).abs() < TOL);
    }

    #[test]
    fn local_cost_is_bounded_by_global() {
        // For any state, local ≤ global (projector dominance).
        let mut s = State::zero(3);
        s.apply_fixed(FixedGate::H, &[0]).unwrap();
        s.apply_fixed(FixedGate::Cx, &[0, 1]).unwrap();
        let local = Observable::local_cost(3).expectation(&s).unwrap();
        let global = Observable::global_cost(3).expectation(&s).unwrap();
        assert!(local <= global + TOL);
    }

    #[test]
    fn zero_projector_is_complement_of_global_cost() {
        let mut s = State::zero(2);
        s.apply_fixed(FixedGate::H, &[0]).unwrap();
        let proj = Observable::zero_projector(2).expectation(&s).unwrap();
        let cost = Observable::global_cost(2).expectation(&s).unwrap();
        assert!((proj + cost - 1.0).abs() < TOL);
    }

    #[test]
    fn apply_raw_matches_matrix_for_cost_operators() {
        let mut s = State::zero(3);
        s.apply_fixed(FixedGate::H, &[0]).unwrap();
        s.apply_fixed(FixedGate::Cx, &[0, 2]).unwrap();
        for obs in [
            Observable::global_cost(3),
            Observable::local_cost(3),
            Observable::zero_projector(3),
            Observable::pauli(PauliString::parse("ZIZ").unwrap()).unwrap(),
        ] {
            let raw = obs.apply_raw(&s).unwrap();
            let expected = obs.matrix().matvec(s.amplitudes());
            for (a, b) in raw.iter().zip(expected.iter()) {
                assert!(a.approx_eq(*b, 1e-10), "{obs}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn expectation_via_apply_raw_is_consistent() {
        let mut s = State::zero(2);
        s.apply_fixed(FixedGate::H, &[0]).unwrap();
        s.apply_fixed(FixedGate::Cz, &[0, 1]).unwrap();
        for obs in [
            Observable::global_cost(2),
            Observable::local_cost(2),
            Observable::zero_projector(2),
        ] {
            let raw = obs.apply_raw(&s).unwrap();
            let ip: C64 = s
                .amplitudes()
                .iter()
                .zip(raw.iter())
                .map(|(a, b)| a.conj() * *b)
                .sum();
            assert!((ip.re - obs.expectation(&s).unwrap()).abs() < 1e-10);
            assert!(ip.im.abs() < 1e-10, "Hermitian expectation must be real");
        }
    }

    #[test]
    fn pauli_sum_combines_terms() {
        // H = 0.5·ZI + 0.5·IZ on |00⟩ → 1.0
        let obs = Observable::pauli_sum(vec![
            (0.5, PauliString::parse("ZI").unwrap()),
            (0.5, PauliString::parse("IZ").unwrap()),
        ])
        .unwrap();
        assert!((obs.expectation(&State::zero(2)).unwrap() - 1.0).abs() < TOL);
        assert!((obs.expectation(&State::basis(2, 3)).unwrap() + 1.0).abs() < TOL);
        assert!(obs.expectation(&State::basis(2, 1)).unwrap().abs() < TOL);
    }

    #[test]
    fn pauli_sum_validation() {
        assert!(Observable::pauli_sum(vec![]).is_err());
        let bad = Observable::pauli_sum(vec![
            (1.0, PauliString::identity(2)),
            (1.0, PauliString::identity(3)),
        ]);
        assert!(bad.is_err());
    }

    #[test]
    fn observable_rejects_wrong_state_size() {
        let obs = Observable::global_cost(3);
        assert!(obs.expectation(&State::zero(2)).is_err());
        assert!(obs.apply_raw(&State::zero(2)).is_err());
    }

    #[test]
    fn display_renders() {
        assert_eq!(Pauli::X.to_string(), "X");
        assert!(Observable::global_cost(2).to_string().contains('I'));
        assert!(!Observable::local_cost(2).to_string().is_empty());
        let obs = Observable::pauli(PauliString::parse("XY").unwrap()).unwrap();
        assert!(obs.to_string().contains("XY"));
    }
}
