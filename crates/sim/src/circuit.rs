//! Circuit intermediate representation: an ordered list of gate operations
//! with free (trainable) and bound (constant) parameters.
//!
//! A [`Circuit`] is built once and executed many times with different
//! parameter vectors — exactly the pattern of the paper's experiments,
//! where one ansatz is re-evaluated under six different initializations.
//!
//! # Examples
//!
//! ```
//! use plateau_sim::{Circuit, Observable};
//!
//! // A 2-qubit, 1-layer slice of the paper's training ansatz (Eq. 3):
//! // RX, RY on every qubit, then a CZ chain.
//! let mut c = Circuit::new(2)?;
//! c.rx(0)?.ry(0)?.rx(1)?.ry(1)?.cz(0, 1)?;
//! assert_eq!(c.n_params(), 4);
//! assert_eq!(c.gate_count(), 5);
//!
//! // At all-zero angles every rotation is the identity, so the global cost
//! // C = 1 − p(|00⟩) is exactly zero.
//! let cost = Observable::global_cost(2);
//! let state = c.run(&[0.0; 4])?;
//! assert!(cost.expectation(&state)?.abs() < 1e-12);
//! # Ok::<(), plateau_sim::SimError>(())
//! ```

use crate::error::SimError;
use crate::gate::{FixedGate, RotationGate, TwoQubitRotationGate};
use crate::state::{State, MAX_QUBITS};

/// A parameter slot of a rotation gate: either a trainable index into the
/// circuit's parameter vector, or a constant angle baked into the circuit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Param {
    /// Trainable parameter: index into the vector passed to
    /// [`Circuit::run`].
    Free(usize),
    /// Constant angle.
    Bound(f64),
}

impl Param {
    /// Resolves the angle against a parameter vector.
    #[inline]
    pub fn angle(self, params: &[f64]) -> f64 {
        match self {
            Param::Free(i) => params[i],
            Param::Bound(v) => v,
        }
    }

    /// The free-parameter index, if any.
    #[inline]
    pub fn free_index(self) -> Option<usize> {
        match self {
            Param::Free(i) => Some(i),
            Param::Bound(_) => None,
        }
    }
}

/// One operation in a circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// A parameter-free gate on one or two qubits (first operand is the
    /// control for controlled gates).
    Fixed {
        /// The gate.
        gate: FixedGate,
        /// Operand qubits (length = gate arity).
        qubits: Vec<usize>,
    },
    /// A single-qubit rotation.
    Rotation {
        /// The rotation family.
        gate: RotationGate,
        /// Target qubit.
        qubit: usize,
        /// Angle source.
        param: Param,
    },
    /// A controlled single-qubit rotation.
    ControlledRotation {
        /// The rotation family.
        gate: RotationGate,
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
        /// Angle source.
        param: Param,
    },
    /// A two-qubit Pauli-product rotation (RXX/RYY/RZZ).
    TwoQubitRotation {
        /// The rotation family.
        gate: TwoQubitRotationGate,
        /// First operand (high bit of the composite basis index).
        first: usize,
        /// Second operand.
        second: usize,
        /// Angle source.
        param: Param,
    },
}

impl Op {
    /// Bumps the per-kind `sim.gate.*` application counter. One relaxed
    /// atomic load + branch when metrics are disabled.
    #[inline]
    fn count_application(&self) {
        match self {
            Op::Fixed { .. } => plateau_obs::counter!("sim.gate.fixed").inc(),
            Op::Rotation { .. } => plateau_obs::counter!("sim.gate.rotation").inc(),
            Op::ControlledRotation { .. } => {
                plateau_obs::counter!("sim.gate.controlled_rotation").inc()
            }
            Op::TwoQubitRotation { .. } => {
                plateau_obs::counter!("sim.gate.two_qubit_rotation").inc()
            }
        }
    }

    /// Applies the operation to a state.
    ///
    /// # Errors
    ///
    /// Propagates qubit-validity errors from the kernels.
    pub fn apply(&self, state: &mut State, params: &[f64]) -> Result<(), SimError> {
        self.count_application();
        match self {
            Op::Fixed { gate, qubits } => state.apply_fixed(*gate, qubits),
            Op::Rotation { gate, qubit, param } => {
                state.apply_rotation(*gate, *qubit, param.angle(params))
            }
            Op::ControlledRotation {
                gate,
                control,
                target,
                param,
            } => state.apply_controlled_rotation(*gate, *control, *target, param.angle(params)),
            Op::TwoQubitRotation {
                gate,
                first,
                second,
                param,
            } => state.apply_two_qubit_rotation(*gate, *first, *second, param.angle(params)),
        }
    }

    /// Applies the inverse of the operation to a state (used by the adjoint
    /// differentiation sweep).
    ///
    /// # Errors
    ///
    /// Propagates qubit-validity errors from the kernels.
    pub fn apply_inverse(&self, state: &mut State, params: &[f64]) -> Result<(), SimError> {
        plateau_obs::counter!("sim.gate.inverse_applications").inc();
        match self {
            Op::Fixed { gate, qubits } => {
                if let Some(inv) = gate.inverse() {
                    state.apply_fixed(inv, qubits)
                } else {
                    // √X and friends: apply the dagger matrix directly.
                    let m = gate.inverse_matrix();
                    debug_assert_eq!(gate.arity(), 1);
                    state.apply_single(qubits[0], &[m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]])
                }
            }
            Op::Rotation { gate, qubit, param } => {
                state.apply_rotation(*gate, *qubit, -param.angle(params))
            }
            Op::ControlledRotation {
                gate,
                control,
                target,
                param,
            } => state.apply_controlled_rotation(*gate, *control, *target, -param.angle(params)),
            Op::TwoQubitRotation {
                gate,
                first,
                second,
                param,
            } => state.apply_two_qubit_rotation(*gate, *first, *second, -param.angle(params)),
        }
    }

    /// Applies `∂G/∂θ` (the derivative of the gate with respect to its own
    /// angle) to a state. Only meaningful for parameterized operations;
    /// returns an error for fixed gates.
    ///
    /// Note the result is **not** a normalized quantum state — it is the
    /// tangent vector used inside adjoint differentiation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WrongArity`] for fixed gates, and
    /// qubit-validity errors from the kernels.
    pub fn apply_derivative(&self, state: &mut State, params: &[f64]) -> Result<(), SimError> {
        plateau_obs::counter!("sim.gate.derivative_applications").inc();
        match self {
            Op::Fixed { gate, .. } => Err(SimError::WrongArity {
                gate: gate.to_string(),
                expected: 1,
                found: 0,
            }),
            Op::Rotation { gate, qubit, param } => {
                state.apply_single(*qubit, &gate.derivative_entries(param.angle(params)))
            }
            Op::ControlledRotation {
                gate,
                control,
                target,
                param,
            } => {
                // d/dθ [|0⟩⟨0|⊗I + |1⟩⟨1|⊗R(θ)] = |1⟩⟨1| ⊗ dR/dθ:
                // the control-0 block is annihilated, not preserved.
                state.project_qubit(*control, true)?;
                state.apply_controlled_single(
                    *control,
                    *target,
                    &gate.derivative_entries(param.angle(params)),
                )
            }
            Op::TwoQubitRotation {
                gate,
                first,
                second,
                param,
            } => state.apply_two(*first, *second, &gate.derivative_entries(param.angle(params))),
        }
    }

    /// The free-parameter index this op trains, if any.
    pub fn free_param(&self) -> Option<usize> {
        match self {
            Op::Fixed { .. } => None,
            Op::Rotation { param, .. }
            | Op::ControlledRotation { param, .. }
            | Op::TwoQubitRotation { param, .. } => param.free_index(),
        }
    }

    /// Operand qubits of the op, in order.
    pub fn qubits(&self) -> Vec<usize> {
        match self {
            Op::Fixed { qubits, .. } => qubits.clone(),
            Op::Rotation { qubit, .. } => vec![*qubit],
            Op::ControlledRotation { control, target, .. } => vec![*control, *target],
            Op::TwoQubitRotation { first, second, .. } => vec![*first, *second],
        }
    }
}

/// A quantum circuit: a fixed qubit count, an ordered op list, and a count
/// of free parameters.
///
/// Free parameters are allocated sequentially by the builder methods
/// ([`Circuit::rx`] etc.), so parameter index `k` belongs to the `k`-th
/// parameterized gate appended — which makes "the last parameter" of the
/// paper's variance analysis simply index `n_params − 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    n_qubits: usize,
    ops: Vec<Op>,
    n_params: usize,
}

impl Circuit {
    /// Creates an empty circuit over `n_qubits`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] when `n_qubits` is zero or
    /// exceeds [`MAX_QUBITS`].
    pub fn new(n_qubits: usize) -> Result<Circuit, SimError> {
        if n_qubits == 0 || n_qubits > MAX_QUBITS {
            return Err(SimError::QubitOutOfRange {
                qubit: n_qubits,
                n_qubits: MAX_QUBITS,
            });
        }
        Ok(Circuit {
            n_qubits,
            ops: Vec::new(),
            n_params: 0,
        })
    }

    /// Internal constructor for passes that rewrite the op list while
    /// preserving the parameter space (`n_params` stays authoritative even
    /// if some free indices are no longer referenced).
    pub(crate) fn from_parts(n_qubits: usize, ops: Vec<Op>, n_params: usize) -> Circuit {
        Circuit {
            n_qubits,
            ops,
            n_params,
        }
    }

    /// Number of qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of free (trainable) parameters.
    #[inline]
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// Total gate count.
    #[inline]
    pub fn gate_count(&self) -> usize {
        self.ops.len()
    }

    /// Read-only view of the op list.
    #[inline]
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    fn check_qubit(&self, q: usize) -> Result<(), SimError> {
        if q >= self.n_qubits {
            Err(SimError::QubitOutOfRange {
                qubit: q,
                n_qubits: self.n_qubits,
            })
        } else {
            Ok(())
        }
    }

    fn check_pair(&self, a: usize, b: usize) -> Result<(), SimError> {
        self.check_qubit(a)?;
        self.check_qubit(b)?;
        if a == b {
            return Err(SimError::DuplicateQubits { qubit: a });
        }
        Ok(())
    }

    /// Appends a fixed gate.
    ///
    /// # Errors
    ///
    /// Returns arity/qubit-validity errors.
    pub fn push_fixed(&mut self, gate: FixedGate, qubits: &[usize]) -> Result<&mut Self, SimError> {
        if qubits.len() != gate.arity() {
            return Err(SimError::WrongArity {
                gate: gate.to_string(),
                expected: gate.arity(),
                found: qubits.len(),
            });
        }
        match qubits {
            [q] => self.check_qubit(*q)?,
            [a, b] => self.check_pair(*a, *b)?,
            _ => unreachable!("arity is 1 or 2"),
        }
        self.ops.push(Op::Fixed {
            gate,
            qubits: qubits.to_vec(),
        });
        Ok(self)
    }

    /// Appends a rotation gate bound to a **new** free parameter and
    /// returns the builder for chaining. The allocated parameter index is
    /// `n_params() - 1` immediately after the call.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for an invalid qubit.
    pub fn push_rotation(
        &mut self,
        gate: RotationGate,
        qubit: usize,
    ) -> Result<&mut Self, SimError> {
        self.check_qubit(qubit)?;
        let param = Param::Free(self.n_params);
        self.n_params += 1;
        self.ops.push(Op::Rotation { gate, qubit, param });
        Ok(self)
    }

    /// Appends a rotation gate with a constant angle (no trainable
    /// parameter).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for an invalid qubit.
    pub fn push_rotation_const(
        &mut self,
        gate: RotationGate,
        qubit: usize,
        angle: f64,
    ) -> Result<&mut Self, SimError> {
        self.check_qubit(qubit)?;
        self.ops.push(Op::Rotation {
            gate,
            qubit,
            param: Param::Bound(angle),
        });
        Ok(self)
    }

    /// Appends a controlled rotation bound to a new free parameter.
    ///
    /// # Errors
    ///
    /// Returns qubit-validity errors.
    pub fn push_controlled_rotation(
        &mut self,
        gate: RotationGate,
        control: usize,
        target: usize,
    ) -> Result<&mut Self, SimError> {
        self.check_pair(control, target)?;
        let param = Param::Free(self.n_params);
        self.n_params += 1;
        self.ops.push(Op::ControlledRotation {
            gate,
            control,
            target,
            param,
        });
        Ok(self)
    }

    /// Appends a two-qubit Pauli-product rotation bound to a new free
    /// parameter.
    ///
    /// # Errors
    ///
    /// Returns qubit-validity errors.
    pub fn push_two_qubit_rotation(
        &mut self,
        gate: TwoQubitRotationGate,
        first: usize,
        second: usize,
    ) -> Result<&mut Self, SimError> {
        self.check_pair(first, second)?;
        let param = Param::Free(self.n_params);
        self.n_params += 1;
        self.ops.push(Op::TwoQubitRotation {
            gate,
            first,
            second,
            param,
        });
        Ok(self)
    }

    /// Converts the most recently appended parameterized op's **free**
    /// parameter into a bound constant angle, releasing its parameter slot
    /// (used by the QASM importer and by ansatz builders that freeze
    /// specific gates).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ParamOutOfRange`] when the circuit is empty,
    /// the last op is not parameterized, or its parameter is already
    /// bound.
    pub fn bind_last_param(&mut self, angle: f64) -> Result<&mut Self, SimError> {
        let expected = self.n_params.checked_sub(1);
        let last = self.ops.last_mut();
        match (last, expected) {
            (Some(op), Some(idx)) if op.free_param() == Some(idx) => {
                match op {
                    Op::Rotation { param, .. }
                    | Op::ControlledRotation { param, .. }
                    | Op::TwoQubitRotation { param, .. } => *param = Param::Bound(angle),
                    Op::Fixed { .. } => unreachable!("free_param ruled this out"),
                }
                self.n_params = idx;
                Ok(self)
            }
            _ => Err(SimError::ParamOutOfRange {
                index: self.n_params,
                n_params: self.n_params,
            }),
        }
    }

    // --- convenience builders -------------------------------------------

    /// Appends a Hadamard.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for an invalid qubit.
    pub fn h(&mut self, q: usize) -> Result<&mut Self, SimError> {
        self.push_fixed(FixedGate::H, &[q])
    }

    /// Appends a Pauli-X.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for an invalid qubit.
    pub fn x(&mut self, q: usize) -> Result<&mut Self, SimError> {
        self.push_fixed(FixedGate::X, &[q])
    }

    /// Appends a Pauli-Y.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for an invalid qubit.
    pub fn y(&mut self, q: usize) -> Result<&mut Self, SimError> {
        self.push_fixed(FixedGate::Y, &[q])
    }

    /// Appends a Pauli-Z.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for an invalid qubit.
    pub fn z(&mut self, q: usize) -> Result<&mut Self, SimError> {
        self.push_fixed(FixedGate::Z, &[q])
    }

    /// Appends a trainable RX rotation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for an invalid qubit.
    pub fn rx(&mut self, q: usize) -> Result<&mut Self, SimError> {
        self.push_rotation(RotationGate::Rx, q)
    }

    /// Appends a trainable RY rotation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for an invalid qubit.
    pub fn ry(&mut self, q: usize) -> Result<&mut Self, SimError> {
        self.push_rotation(RotationGate::Ry, q)
    }

    /// Appends a trainable RZ rotation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for an invalid qubit.
    pub fn rz(&mut self, q: usize) -> Result<&mut Self, SimError> {
        self.push_rotation(RotationGate::Rz, q)
    }

    /// Appends a trainable RXX rotation.
    ///
    /// # Errors
    ///
    /// Returns qubit-validity errors.
    pub fn rxx(&mut self, a: usize, b: usize) -> Result<&mut Self, SimError> {
        self.push_two_qubit_rotation(TwoQubitRotationGate::Rxx, a, b)
    }

    /// Appends a trainable RYY rotation.
    ///
    /// # Errors
    ///
    /// Returns qubit-validity errors.
    pub fn ryy(&mut self, a: usize, b: usize) -> Result<&mut Self, SimError> {
        self.push_two_qubit_rotation(TwoQubitRotationGate::Ryy, a, b)
    }

    /// Appends a trainable RZZ rotation.
    ///
    /// # Errors
    ///
    /// Returns qubit-validity errors.
    pub fn rzz(&mut self, a: usize, b: usize) -> Result<&mut Self, SimError> {
        self.push_two_qubit_rotation(TwoQubitRotationGate::Rzz, a, b)
    }

    /// Appends a CZ gate.
    ///
    /// # Errors
    ///
    /// Returns qubit-validity errors.
    pub fn cz(&mut self, a: usize, b: usize) -> Result<&mut Self, SimError> {
        self.push_fixed(FixedGate::Cz, &[a, b])
    }

    /// Appends a CNOT gate.
    ///
    /// # Errors
    ///
    /// Returns qubit-validity errors.
    pub fn cx(&mut self, control: usize, target: usize) -> Result<&mut Self, SimError> {
        self.push_fixed(FixedGate::Cx, &[control, target])
    }

    // --- execution --------------------------------------------------------

    /// Validates a parameter vector against the circuit.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WrongParamCount`] on length mismatch.
    pub fn check_params(&self, params: &[f64]) -> Result<(), SimError> {
        if params.len() != self.n_params {
            return Err(SimError::WrongParamCount {
                expected: self.n_params,
                found: params.len(),
            });
        }
        Ok(())
    }

    /// Runs the circuit on `|0…0⟩` and returns the final state.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WrongParamCount`] on a parameter-length mismatch.
    pub fn run(&self, params: &[f64]) -> Result<State, SimError> {
        let mut state = State::zero(self.n_qubits);
        self.run_on(&mut state, params)?;
        Ok(state)
    }

    /// Runs the circuit on `|0…0⟩` **into** an existing state, resetting
    /// it in place first — [`Circuit::run`] without the allocation.
    ///
    /// This is the scratch-reuse entry point for batched evaluation: the
    /// caller owns one statevector per worker and sweeps many parameter
    /// vectors through it. The result is identical to [`Circuit::run`]
    /// for the same parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WrongParamCount`] on a parameter-length mismatch
    /// or [`SimError::DimensionMismatch`] when the state size differs.
    pub fn run_into(&self, state: &mut State, params: &[f64]) -> Result<(), SimError> {
        self.check_params(params)?;
        if state.n_qubits() != self.n_qubits {
            return Err(SimError::DimensionMismatch {
                expected: 1 << self.n_qubits,
                found: state.dim(),
            });
        }
        state.reset_zero();
        for op in &self.ops {
            op.apply(state, params)?;
        }
        Ok(())
    }

    /// Runs the circuit on an existing state in place.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WrongParamCount`] on a parameter-length mismatch
    /// or [`SimError::DimensionMismatch`] when the state size differs.
    pub fn run_on(&self, state: &mut State, params: &[f64]) -> Result<(), SimError> {
        self.check_params(params)?;
        if state.n_qubits() != self.n_qubits {
            return Err(SimError::DimensionMismatch {
                expected: 1 << self.n_qubits,
                found: state.dim(),
            });
        }
        for op in &self.ops {
            op.apply(state, params)?;
        }
        Ok(())
    }

    /// Runs the **inverse** circuit on an existing state in place.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Circuit::run_on`].
    pub fn run_inverse_on(&self, state: &mut State, params: &[f64]) -> Result<(), SimError> {
        self.check_params(params)?;
        if state.n_qubits() != self.n_qubits {
            return Err(SimError::DimensionMismatch {
                expected: 1 << self.n_qubits,
                found: state.dim(),
            });
        }
        for op in self.ops.iter().rev() {
            op.apply_inverse(state, params)?;
        }
        Ok(())
    }

    /// Appends all ops of `other` to this circuit, re-indexing `other`'s
    /// free parameters to follow this circuit's.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] when qubit counts differ.
    pub fn extend_with(&mut self, other: &Circuit) -> Result<&mut Self, SimError> {
        if other.n_qubits != self.n_qubits {
            return Err(SimError::DimensionMismatch {
                expected: 1 << self.n_qubits,
                found: 1 << other.n_qubits,
            });
        }
        let offset = self.n_params;
        for op in &other.ops {
            let shifted = match op {
                Op::Rotation {
                    gate,
                    qubit,
                    param: Param::Free(i),
                } => Op::Rotation {
                    gate: *gate,
                    qubit: *qubit,
                    param: Param::Free(i + offset),
                },
                Op::ControlledRotation {
                    gate,
                    control,
                    target,
                    param: Param::Free(i),
                } => Op::ControlledRotation {
                    gate: *gate,
                    control: *control,
                    target: *target,
                    param: Param::Free(i + offset),
                },
                Op::TwoQubitRotation {
                    gate,
                    first,
                    second,
                    param: Param::Free(i),
                } => Op::TwoQubitRotation {
                    gate: *gate,
                    first: *first,
                    second: *second,
                    param: Param::Free(i + offset),
                },
                other_op => other_op.clone(),
            };
            self.ops.push(shifted);
        }
        self.n_params += other.n_params;
        Ok(self)
    }

    /// Index of the op that owns free parameter `index`, or `None` when the
    /// index is unused (should not happen for builder-constructed circuits).
    pub fn op_of_param(&self, index: usize) -> Option<usize> {
        self.ops.iter().position(|op| op.free_param() == Some(index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plateau_linalg::C64;
    use std::f64::consts::PI;

    #[test]
    fn builder_allocates_sequential_params() {
        let mut c = Circuit::new(3).unwrap();
        c.rx(0).unwrap().ry(1).unwrap().rz(2).unwrap();
        assert_eq!(c.n_params(), 3);
        assert_eq!(c.ops()[0].free_param(), Some(0));
        assert_eq!(c.ops()[1].free_param(), Some(1));
        assert_eq!(c.ops()[2].free_param(), Some(2));
        assert_eq!(c.op_of_param(2), Some(2));
        assert_eq!(c.op_of_param(5), None);
    }

    #[test]
    fn const_rotations_do_not_allocate() {
        let mut c = Circuit::new(1).unwrap();
        c.push_rotation_const(RotationGate::Rx, 0, 0.5).unwrap();
        assert_eq!(c.n_params(), 0);
        assert_eq!(c.gate_count(), 1);
    }

    #[test]
    fn run_validates_param_count() {
        let mut c = Circuit::new(1).unwrap();
        c.rx(0).unwrap();
        assert!(matches!(
            c.run(&[]),
            Err(SimError::WrongParamCount { expected: 1, found: 0 })
        ));
        assert!(c.run(&[0.3]).is_ok());
    }

    #[test]
    fn identity_circuit_preserves_zero_state() {
        let mut c = Circuit::new(2).unwrap();
        c.rx(0).unwrap().ry(1).unwrap().cz(0, 1).unwrap();
        let s = c.run(&[0.0, 0.0]).unwrap();
        assert!((s.probability_all_zeros() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_run_undoes_forward_run() {
        let mut c = Circuit::new(3).unwrap();
        c.h(0).unwrap();
        c.rx(0).unwrap().ry(1).unwrap().rz(2).unwrap();
        c.cz(0, 1).unwrap().cz(1, 2).unwrap();
        c.push_fixed(FixedGate::Sx, &[1]).unwrap();
        c.push_fixed(FixedGate::T, &[2]).unwrap();
        let params = [0.4, -1.2, 2.2];
        let mut s = c.run(&params).unwrap();
        c.run_inverse_on(&mut s, &params).unwrap();
        assert!((s.probability_all_zeros() - 1.0).abs() < 1e-10);
        assert!(s.amplitudes()[0].approx_eq(C64::ONE, 1e-10));
    }

    #[test]
    fn extend_with_reindexes_params() {
        let mut a = Circuit::new(2).unwrap();
        a.rx(0).unwrap();
        let mut b = Circuit::new(2).unwrap();
        b.ry(1).unwrap();
        a.extend_with(&b).unwrap();
        assert_eq!(a.n_params(), 2);
        assert_eq!(a.ops()[1].free_param(), Some(1));

        let wrong = Circuit::new(3).unwrap();
        assert!(a.extend_with(&wrong).is_err());
    }

    #[test]
    fn run_on_rejects_wrong_state_size() {
        let mut c = Circuit::new(2).unwrap();
        c.rx(0).unwrap();
        let mut s = State::zero(3);
        assert!(c.run_on(&mut s, &[0.1]).is_err());
    }

    #[test]
    fn builder_rejects_bad_qubits() {
        let mut c = Circuit::new(2).unwrap();
        assert!(c.rx(2).is_err());
        assert!(c.cz(0, 0).is_err());
        assert!(c.cz(0, 5).is_err());
        assert!(c.push_fixed(FixedGate::Cz, &[0]).is_err());
        assert!(Circuit::new(0).is_err());
        assert!(Circuit::new(MAX_QUBITS + 1).is_err());
    }

    #[test]
    fn x_gate_via_circuit() {
        let mut c = Circuit::new(1).unwrap();
        c.x(0).unwrap();
        let s = c.run(&[]).unwrap();
        assert!((s.probabilities()[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rx_pi_flips_through_circuit() {
        let mut c = Circuit::new(1).unwrap();
        c.rx(0).unwrap();
        let s = c.run(&[PI]).unwrap();
        assert!((s.probabilities()[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn controlled_rotation_builder() {
        let mut c = Circuit::new(2).unwrap();
        c.x(0).unwrap();
        c.push_controlled_rotation(RotationGate::Ry, 0, 1).unwrap();
        assert_eq!(c.n_params(), 1);
        let s = c.run(&[PI]).unwrap();
        // control set, RY(π) maps target |0⟩ → |1⟩.
        assert!((s.probabilities()[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn op_derivative_rejects_fixed_gate() {
        let op = Op::Fixed {
            gate: FixedGate::H,
            qubits: vec![0],
        };
        let mut s = State::zero(1);
        assert!(op.apply_derivative(&mut s, &[]).is_err());
    }

    #[test]
    fn op_qubits_lists_operands() {
        let op = Op::ControlledRotation {
            gate: RotationGate::Rz,
            control: 2,
            target: 0,
            param: Param::Bound(0.1),
        };
        assert_eq!(op.qubits(), vec![2, 0]);
    }

    #[test]
    fn param_resolution() {
        assert_eq!(Param::Free(1).angle(&[5.0, 7.0]), 7.0);
        assert_eq!(Param::Bound(2.5).angle(&[5.0]), 2.5);
        assert_eq!(Param::Free(0).free_index(), Some(0));
        assert_eq!(Param::Bound(0.0).free_index(), None);
    }

    #[test]
    fn paper_training_ansatz_gate_and_param_counts() {
        // Paper §IV-D: 10 qubits, 5 layers, RX+RY per qubit + CZ chain
        // → 145 gates, 100 parameters.
        let n = 10;
        let layers = 5;
        let mut c = Circuit::new(n).unwrap();
        for _ in 0..layers {
            for q in 0..n {
                c.rx(q).unwrap();
                c.ry(q).unwrap();
            }
            for q in 0..n - 1 {
                c.cz(q, q + 1).unwrap();
            }
        }
        assert_eq!(c.gate_count(), 145);
        assert_eq!(c.n_params(), 100);
    }
}
