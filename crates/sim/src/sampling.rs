//! Finite-shot measurement sampling.
//!
//! The paper's experiments run in PennyLane's *analytic* mode (exact
//! expectation values); real hardware only offers finite shot budgets. This
//! module provides computational-basis sampling and shot-based estimators
//! so the A4 ablation can ask: *at what shot count does shot noise swamp
//! the barren-plateau gradient signal?*
//!
//! # Examples
//!
//! ```
//! use plateau_sim::{sample_counts, FixedGate, State};
//! use plateau_rng::{rngs::StdRng, SeedableRng};
//!
//! let mut psi = State::zero(2);
//! psi.apply_fixed(FixedGate::H, &[0])?;
//! psi.apply_fixed(FixedGate::Cx, &[0, 1])?;
//!
//! let mut rng = StdRng::seed_from_u64(3);
//! let counts = sample_counts(&psi, 4000, &mut rng);
//! // A Bell state only ever yields |00⟩ and |11⟩.
//! assert_eq!(counts.get(&1), None);
//! assert_eq!(counts.get(&2), None);
//! let p00 = *counts.get(&0).unwrap_or(&0) as f64 / 4000.0;
//! assert!((p00 - 0.5).abs() < 0.05);
//! # Ok::<(), plateau_sim::SimError>(())
//! ```

use crate::observable::Observable;
use crate::state::State;
use plateau_rng::Rng;
use std::collections::BTreeMap;

/// Draws one computational-basis outcome index from the state's Born
/// distribution by CDF inversion.
pub fn sample_index<R: Rng + ?Sized>(state: &State, rng: &mut R) -> usize {
    let u: f64 = rng.gen();
    let mut acc = 0.0;
    let amps = state.amplitudes();
    for (i, a) in amps.iter().enumerate() {
        acc += a.norm_sqr();
        if u < acc {
            return i;
        }
    }
    // Floating-point slack: the CDF may top out slightly below 1.
    amps.len() - 1
}

/// Draws `shots` outcomes and tallies them.
pub fn sample_counts<R: Rng + ?Sized>(
    state: &State,
    shots: usize,
    rng: &mut R,
) -> BTreeMap<usize, usize> {
    // Precompute the CDF once; for repeated draws this beats per-shot scans.
    let probs = state.probabilities();
    let mut cdf = Vec::with_capacity(probs.len());
    let mut acc = 0.0;
    for p in &probs {
        acc += p;
        cdf.push(acc);
    }
    // Clamp the floating-point-slack fallback to the last outcome with
    // nonzero probability, so it can never tally an impossible state.
    let last_positive = probs
        .iter()
        .rposition(|&p| p > 0.0)
        .unwrap_or(probs.len() - 1);
    let mut counts = BTreeMap::new();
    for _ in 0..shots {
        let u: f64 = rng.gen::<f64>() * acc.min(1.0);
        // First index with cdf[i] > u — the same strict `u < acc` rule as
        // `sample_index`. Zero-probability states duplicate their
        // predecessor's CDF entry, so a draw landing exactly on that value
        // (the RNG emits exact dyadics) must resolve *past* the ties to
        // the next state that actually carries probability; the old
        // `binary_search_by` tie-break could land on any duplicate and
        // tally an outcome whose Born probability is exactly zero.
        let idx = cdf.partition_point(|&c| c <= u).min(last_positive);
        *counts.entry(idx).or_insert(0) += 1;
    }
    counts
}

/// Shot-based estimate of the probability of outcome `index`.
pub fn estimate_probability<R: Rng + ?Sized>(
    state: &State,
    index: usize,
    shots: usize,
    rng: &mut R,
) -> f64 {
    if shots == 0 {
        return f64::NAN;
    }
    let counts = sample_counts(state, shots, rng);
    *counts.get(&index).unwrap_or(&0) as f64 / shots as f64
}

/// Shot-based estimate of a **diagonal** observable's expectation value
/// (all four cost operators in [`Observable`] are diagonal except general
/// Pauli sums with X/Y factors; those return `None`).
pub fn estimate_expectation<R: Rng + ?Sized>(
    state: &State,
    obs: &Observable,
    shots: usize,
    rng: &mut R,
) -> Option<f64> {
    if shots == 0 {
        return None;
    }
    let diag = diagonal_values(obs, state.n_qubits())?;
    let counts = sample_counts(state, shots, rng);
    let mut acc = 0.0;
    for (idx, n) in counts {
        acc += diag[idx] * n as f64;
    }
    Some(acc / shots as f64)
}

/// Diagonal entries of the observable in the computational basis, or `None`
/// when it is not diagonal.
fn diagonal_values(obs: &Observable, n_qubits: usize) -> Option<Vec<f64>> {
    let dim = 1usize << n_qubits;
    match obs {
        Observable::ZeroProjector { .. } => {
            let mut d = vec![0.0; dim];
            d[0] = 1.0;
            Some(d)
        }
        Observable::GlobalCost { .. } => {
            let mut d = vec![1.0; dim];
            d[0] = 0.0;
            Some(d)
        }
        Observable::LocalCost { n_qubits } => {
            let n = *n_qubits as f64;
            Some(
                (0..dim)
                    .map(|b| {
                        let zeros = *n_qubits - b.count_ones() as usize;
                        1.0 - zeros as f64 / n
                    })
                    .collect(),
            )
        }
        Observable::PauliSum { terms, .. } => {
            // Diagonal iff every factor is I or Z.
            let mut d = vec![0.0; dim];
            for (c, p) in terms {
                let mut z_mask = 0usize;
                for q in 0..p.n_qubits() {
                    match p.pauli(q) {
                        crate::observable::Pauli::I => {}
                        crate::observable::Pauli::Z => z_mask |= 1 << q,
                        _ => return None,
                    }
                }
                for (b, slot) in d.iter_mut().enumerate() {
                    let sign = if (b & z_mask).count_ones().is_multiple_of(2) {
                        1.0
                    } else {
                        -1.0
                    };
                    *slot += c * sign;
                }
            }
            Some(d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::{FixedGate, RotationGate};
    use crate::observable::PauliString;
    use plateau_rng::rngs::StdRng;
    use plateau_rng::SeedableRng;

    fn bell() -> State {
        let mut s = State::zero(2);
        s.apply_fixed(FixedGate::H, &[0]).unwrap();
        s.apply_fixed(FixedGate::Cx, &[0, 1]).unwrap();
        s
    }

    #[test]
    fn sampling_basis_state_is_deterministic() {
        let s = State::basis(3, 5);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(sample_index(&s, &mut rng), 5);
        }
    }

    #[test]
    fn bell_state_counts_are_balanced() {
        let s = bell();
        let mut rng = StdRng::seed_from_u64(1);
        let counts = sample_counts(&s, 20_000, &mut rng);
        assert!(counts.keys().all(|k| *k == 0 || *k == 3));
        let p0 = counts[&0] as f64 / 20_000.0;
        assert!((p0 - 0.5).abs() < 0.02);
    }

    /// An [`plateau_rng::RngCore`] whose `gen::<f64>()` is exactly the
    /// given draw, by inverting the standard sampler's
    /// `(next_u64 ≫ 11)·2⁻⁵³` map. The draw must be a dyadic rational on
    /// that 2⁻⁵³ grid (every `f64` in `[0.5, 1)` is).
    struct ExactDraw(f64);
    impl plateau_rng::RngCore for ExactDraw {
        fn next_u64(&mut self) -> u64 {
            ((self.0 * (1u64 << 53) as f64) as u64) << 11
        }
    }

    #[test]
    fn tie_draw_never_tallies_a_zero_probability_outcome() {
        // GHZ state: probability p = |1/√2|² at |000⟩ and |111⟩ and zero
        // elsewhere, so the running CDF is [p, p, p, p, p, p, p, 2p] —
        // six duplicated entries. (Note p is not exactly ½: squaring the
        // rounded 1/√2 gives ½ + 2⁻⁵³.) Force the RNG onto u = p so
        // every shot lands exactly on the tie.
        let mut ghz = State::zero(3);
        ghz.apply_fixed(FixedGate::H, &[0]).unwrap();
        ghz.apply_fixed(FixedGate::Cx, &[0, 1]).unwrap();
        ghz.apply_fixed(FixedGate::Cx, &[0, 2]).unwrap();
        let p = ghz.probabilities()[0];
        let mut rng = ExactDraw(p);
        assert_eq!(rng.gen::<f64>(), p, "draw must hit the tie exactly");

        // The tie must resolve past every zero-probability state to
        // |111⟩, the first index whose CDF strictly exceeds u — the same
        // rule as `sample_index`. The old `binary_search_by` tie-break
        // probed mid-run and tallied the impossible |101⟩.
        let counts = sample_counts(&ghz, 1_000, &mut rng);
        assert_eq!(counts.keys().collect::<Vec<_>>(), vec![&7]);
        assert_eq!(counts[&7], 1_000);
        assert_eq!(sample_index(&ghz, &mut rng), 7);

        // Bell state under the same forced tie draw: only the physical
        // outcomes |00⟩/|11⟩ may ever appear.
        let s = bell();
        let mut rng = ExactDraw(s.probabilities()[0]);
        let counts = sample_counts(&s, 200, &mut rng);
        assert!(counts.keys().all(|k| *k == 0 || *k == 3), "{counts:?}");
    }

    #[test]
    fn counts_total_shots_and_only_physical_outcomes_appear() {
        use plateau_linalg::C64;
        use plateau_rng::check::{cases, forall_shrink};

        // Random sparse states: many exactly-zero amplitudes force the
        // duplicated-CDF-entry tie-break path on ordinary (not forced)
        // draws. Shrinking zeroes more amplitudes and cuts shots, so a
        // failure minimizes toward the sparsest state that still trips it.
        forall_shrink(
            0x73616d70,
            cases(48),
            |rng| {
                let n = rng.gen_range(1..5usize);
                let mut amps: Vec<C64> = (0..1usize << n)
                    .map(|_| {
                        if rng.gen::<f64>() < 0.4 {
                            C64::new(0.0, 0.0)
                        } else {
                            C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
                        }
                    })
                    .collect();
                if amps.iter().all(|a| a.norm_sqr() == 0.0) {
                    amps[0] = C64::new(1.0, 0.0);
                }
                (amps, rng.gen_range(1..400usize))
            },
            |(amps, shots)| {
                let mut out = Vec::new();
                if *shots > 1 {
                    out.push((amps.clone(), shots / 2));
                }
                for i in 0..amps.len() {
                    if amps[i].norm_sqr() > 0.0
                        && amps.iter().filter(|a| a.norm_sqr() > 0.0).count() > 1
                    {
                        let mut sparser = amps.clone();
                        sparser[i] = C64::new(0.0, 0.0);
                        out.push((sparser, *shots));
                    }
                }
                out
            },
            |(amps, shots)| {
                let norm = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
                let state = State::from_amplitudes(amps.iter().map(|&a| a / norm).collect())
                    .map_err(|e| format!("state construction: {e}"))?;
                let probs = state.probabilities();
                let counts = sample_counts(&state, *shots, &mut StdRng::seed_from_u64(42));
                plateau_rng::prop_assert!(
                    counts.values().sum::<usize>() == *shots,
                    "tallies must account for every shot"
                );
                for index in counts.keys() {
                    plateau_rng::prop_assert!(
                        probs[*index] > 0.0,
                        "outcome {index} has zero Born probability"
                    );
                }
                Ok(())
            },
        );
    }

    #[test]
    fn estimate_probability_converges() {
        let mut s = State::zero(1);
        s.apply_rotation(RotationGate::Ry, 0, 1.0).unwrap();
        let exact = s.probabilities()[0];
        let mut rng = StdRng::seed_from_u64(2);
        let est = estimate_probability(&s, 0, 50_000, &mut rng);
        assert!((est - exact).abs() < 0.01);
        assert!(estimate_probability(&s, 0, 0, &mut rng).is_nan());
    }

    #[test]
    fn estimate_expectation_global_cost() {
        let s = bell();
        let exact = Observable::global_cost(2).expectation(&s).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let est =
            estimate_expectation(&s, &Observable::global_cost(2), 50_000, &mut rng).unwrap();
        assert!((est - exact).abs() < 0.01);
    }

    #[test]
    fn estimate_expectation_local_cost_and_projector() {
        let s = bell();
        let mut rng = StdRng::seed_from_u64(4);
        for obs in [Observable::local_cost(2), Observable::zero_projector(2)] {
            let exact = obs.expectation(&s).unwrap();
            let est = estimate_expectation(&s, &obs, 50_000, &mut rng).unwrap();
            assert!((est - exact).abs() < 0.02, "{obs}");
        }
    }

    #[test]
    fn estimate_expectation_diagonal_pauli_sum() {
        let obs = Observable::pauli_sum(vec![
            (0.7, PauliString::parse("ZI").unwrap()),
            (-0.2, PauliString::parse("ZZ").unwrap()),
        ])
        .unwrap();
        let s = bell();
        let exact = obs.expectation(&s).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let est = estimate_expectation(&s, &obs, 60_000, &mut rng).unwrap();
        assert!((est - exact).abs() < 0.02);
    }

    #[test]
    fn non_diagonal_observable_is_rejected() {
        let obs = Observable::pauli(PauliString::parse("XI").unwrap()).unwrap();
        let s = bell();
        let mut rng = StdRng::seed_from_u64(6);
        assert!(estimate_expectation(&s, &obs, 100, &mut rng).is_none());
        assert!(estimate_expectation(&s, &Observable::global_cost(2), 0, &mut rng).is_none());
    }

    #[test]
    fn shot_noise_shrinks_with_budget() {
        let mut s = State::zero(1);
        s.apply_fixed(FixedGate::H, &[0]).unwrap();
        let err_of = |shots: usize, seed: u64| {
            // Average absolute error over several independent estimates.
            let mut total = 0.0;
            for k in 0..20 {
                let mut rng = StdRng::seed_from_u64(seed + k);
                let est = estimate_probability(&s, 0, shots, &mut rng);
                total += (est - 0.5).abs();
            }
            total / 20.0
        };
        assert!(err_of(10_000, 100) < err_of(100, 200));
    }
}
