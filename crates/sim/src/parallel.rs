//! Chunked multi-threaded variants of the amplitude kernels.
//!
//! Above a configurable qubit threshold (`PLATEAU_SIM_PAR_THRESHOLD`,
//! default [`DEFAULT_PAR_THRESHOLD`]) the [`crate::State`] kernels split
//! the `2^n` amplitude array into disjoint chunks and fan them across the
//! `plateau-par` pool; below it they fall back to the serial loops, so
//! small-circuit tests and the variance scan's per-circuit outer
//! parallelism are unaffected.
//!
//! **Determinism guarantee.** Every kernel here is an elementwise (or
//! element-pair / element-quad) map with no cross-element reduction: each
//! amplitude's new value depends only on the amplitudes of its own
//! orbit, computed with exactly the same arithmetic as the serial loop.
//! Chunking therefore cannot change results — parallel and serial
//! execution are **bitwise identical** regardless of worker count or
//! scheduling. A property test in this module checks that claim across
//! random circuits at 2–16 qubits.
//!
//! Decomposition strategy, per kernel shape:
//!
//! - **Pair kernels** (`apply_single`, `apply_controlled_single`): when
//!   the gate's 2·stride blocks outnumber the workers, whole blocks are
//!   chunked contiguously; otherwise (the qubit is near the top) each
//!   block's lower and upper halves are split at the stride and matching
//!   subchunks are zipped, so pairs never straddle a task boundary.
//! - **Quad kernels** (`apply_two`): same two cases over the larger
//!   stride, with the block interior decomposed into four quarter slices
//!   whose 4-way zip is subchunked.
//! - **Diagonal kernels** (`apply_cz`, `project_qubit`): pure elementwise
//!   maps, chunked contiguously with the chunk's absolute base index
//!   carried along for the bit tests.

use plateau_linalg::C64;
use plateau_par::{par_map_collect, worker_count};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default qubit threshold at which kernels go multi-threaded.
///
/// Measured with the `par_crossover` bench bin (training-ansatz forward
/// runs, serial vs forced-parallel kernels): at the old default of 14
/// qubits the parallel path ran at 0.42× serial, and even a 16-qubit
/// statevector (1 MiB) only reached 0.63× — the scoped-thread fork-join
/// overhead per gate still dominates below ~2 MiB of amplitudes. The
/// default therefore sits at 17 so the paper's 10-qubit workload (and
/// every tier-1 test size) always takes the serial loops; machines with
/// many fast cores can lower it via `PLATEAU_SIM_PAR_THRESHOLD`.
pub const DEFAULT_PAR_THRESHOLD: usize = 17;

/// Cached threshold: 0 = uninitialized, otherwise `threshold + 1`.
static PAR_THRESHOLD: AtomicUsize = AtomicUsize::new(0);

/// The current parallelization threshold in qubits: kernels on states with
/// at least this many qubits use the chunked multi-threaded paths.
///
/// Read once from the `PLATEAU_SIM_PAR_THRESHOLD` environment variable
/// (default [`DEFAULT_PAR_THRESHOLD`]) and cached; use
/// [`set_par_threshold`] / [`reset_par_threshold`] to change it at runtime.
pub fn par_threshold() -> usize {
    match PAR_THRESHOLD.load(Ordering::Relaxed) {
        0 => {
            let t = std::env::var("PLATEAU_SIM_PAR_THRESHOLD")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(DEFAULT_PAR_THRESHOLD);
            PAR_THRESHOLD.store(t.saturating_add(1), Ordering::Relaxed);
            t
        }
        v => v - 1,
    }
}

/// Overrides the parallelization threshold for this process. `0` forces
/// the parallel kernels everywhere; `usize::MAX` forces serial execution.
pub fn set_par_threshold(threshold: usize) {
    PAR_THRESHOLD.store(threshold.saturating_add(1), Ordering::Relaxed);
}

/// Clears the cached threshold so the next kernel re-reads
/// `PLATEAU_SIM_PAR_THRESHOLD` from the environment.
pub fn reset_par_threshold() {
    PAR_THRESHOLD.store(0, Ordering::Relaxed);
}

/// Whether a state of `n_qubits` should take the parallel kernel paths.
#[inline]
pub(crate) fn enabled(n_qubits: usize) -> bool {
    n_qubits >= par_threshold()
}

/// Number of tasks a parallel kernel aims to split into — the pool's
/// worker count, so every worker gets one contiguous chunk.
#[inline]
fn task_target() -> usize {
    worker_count(usize::MAX)
}

///// Bumps the per-kernel counters: one parallel kernel invocation that
/// produced `chunks` tasks.
#[inline]
fn record(chunks: usize) {
    plateau_obs::counter!("sim.par.kernels").inc();
    plateau_obs::counter!("sim.par.chunks").add(chunks as u64);
}

/// Parallel general single-qubit kernel (`stride = 1 << qubit`).
pub(crate) fn apply_single(amps: &mut [C64], stride: usize, m: &[C64; 4]) {
    let target = task_target();
    let block = stride << 1;
    let n_blocks = amps.len() / block;
    if n_blocks >= target {
        // Chunk whole blocks; pair indices are chunk-relative.
        let per = n_blocks.div_ceil(target) * block;
        let chunks: Vec<&mut [C64]> = amps.chunks_mut(per).collect();
        record(chunks.len());
        par_map_collect(chunks, |chunk| {
            for base in (0..chunk.len()).step_by(block) {
                for off in base..base + stride {
                    let a0 = chunk[off];
                    let a1 = chunk[off + stride];
                    chunk[off] = m[0] * a0 + m[1] * a1;
                    chunk[off + stride] = m[2] * a0 + m[3] * a1;
                }
            }
        });
    } else {
        // Few blocks (top qubits): split each block at the stride and zip
        // matching subchunks of the two halves.
        let per_block = target.div_ceil(n_blocks);
        let sub = stride.div_ceil(per_block);
        let mut tasks: Vec<(&mut [C64], &mut [C64])> = Vec::new();
        for blk in amps.chunks_mut(block) {
            let (lo, hi) = blk.split_at_mut(stride);
            tasks.extend(lo.chunks_mut(sub).zip(hi.chunks_mut(sub)));
        }
        record(tasks.len());
        par_map_collect(tasks, |(lo, hi)| {
            for (a0, a1) in lo.iter_mut().zip(hi.iter_mut()) {
                let x0 = *a0;
                let x1 = *a1;
                *a0 = m[0] * x0 + m[1] * x1;
                *a1 = m[2] * x0 + m[3] * x1;
            }
        });
    }
}

/// Parallel controlled single-qubit kernel. Tasks carry their chunk's
/// absolute base index so the control-mask test sees global bit patterns.
pub(crate) fn apply_controlled_single(
    amps: &mut [C64],
    cmask: usize,
    stride: usize,
    m: &[C64; 4],
) {
    let target = task_target();
    let block = stride << 1;
    let n_blocks = amps.len() / block;
    if n_blocks >= target {
        let per = n_blocks.div_ceil(target) * block;
        let chunks: Vec<(usize, &mut [C64])> = amps
            .chunks_mut(per)
            .enumerate()
            .map(|(k, c)| (k * per, c))
            .collect();
        record(chunks.len());
        par_map_collect(chunks, |(base, chunk)| {
            for blk in (0..chunk.len()).step_by(block) {
                for off in blk..blk + stride {
                    if (base + off) & cmask == 0 {
                        continue;
                    }
                    let a0 = chunk[off];
                    let a1 = chunk[off + stride];
                    chunk[off] = m[0] * a0 + m[1] * a1;
                    chunk[off + stride] = m[2] * a0 + m[3] * a1;
                }
            }
        });
    } else {
        let per_block = target.div_ceil(n_blocks);
        let sub = stride.div_ceil(per_block);
        let mut tasks: Vec<(usize, &mut [C64], &mut [C64])> = Vec::new();
        for (b, blk) in amps.chunks_mut(block).enumerate() {
            let blk_base = b * block;
            let (lo, hi) = blk.split_at_mut(stride);
            for (k, (l, h)) in lo.chunks_mut(sub).zip(hi.chunks_mut(sub)).enumerate() {
                tasks.push((blk_base + k * sub, l, h));
            }
        }
        record(tasks.len());
        par_map_collect(tasks, |(base, lo, hi)| {
            for (j, (a0, a1)) in lo.iter_mut().zip(hi.iter_mut()).enumerate() {
                if (base + j) & cmask == 0 {
                    continue;
                }
                let x0 = *a0;
                let x1 = *a1;
                *a0 = m[0] * x0 + m[1] * x1;
                *a1 = m[2] * x0 + m[3] * x1;
            }
        });
    }
}

/// Basis-index permutation for the two-qubit kernel: maps a quad position
/// `2·bit_hi + bit_lo` to the row/column index of the 4×4 matrix, which is
/// written in the `|first, second⟩` basis (first operand = high bit).
#[inline]
pub(crate) fn quad_perm(first_is_hi: bool) -> [usize; 4] {
    if first_is_hi {
        [0, 1, 2, 3]
    } else {
        [0, 2, 1, 3]
    }
}

/// Applies the 4×4 matrix to one amplitude quad given in `(hi, lo)`
/// position order. Shared by the serial and parallel two-qubit paths so
/// both perform bit-identical arithmetic.
#[inline]
pub(crate) fn quad_update(m: &[C64; 16], perm: &[usize; 4], a: [C64; 4]) -> [C64; 4] {
    let mut out = [C64::ZERO; 4];
    for pos in 0..4 {
        let row = perm[pos] * 4;
        let mut acc = C64::ZERO;
        for src in 0..4 {
            acc = m[row + perm[src]].mul_add(a[src], acc);
        }
        out[pos] = acc;
    }
    out
}

/// Serial two-qubit kernel over a window whose length is a multiple of
/// `2·s_hi` and whose start is `2·s_hi`-aligned: iterates only the active
/// quad bases (a quarter of the window) instead of scanning every index.
pub(crate) fn apply_two_window(
    window: &mut [C64],
    s_lo: usize,
    s_hi: usize,
    perm: &[usize; 4],
    m: &[C64; 16],
) {
    for base_hi in (0..window.len()).step_by(s_hi << 1) {
        for base_lo in (base_hi..base_hi + s_hi).step_by(s_lo << 1) {
            for i in base_lo..base_lo + s_lo {
                let idx = [i, i + s_lo, i + s_hi, i + s_hi + s_lo];
                let a = [window[idx[0]], window[idx[1]], window[idx[2]], window[idx[3]]];
                let out = quad_update(m, perm, a);
                for (p, &ix) in idx.iter().enumerate() {
                    window[ix] = out[p];
                }
            }
        }
    }
}

/// Parallel general two-qubit kernel (`s_lo < s_hi` are the operand
/// strides, `perm` from [`quad_perm`]).
pub(crate) fn apply_two(
    amps: &mut [C64],
    s_lo: usize,
    s_hi: usize,
    perm: &[usize; 4],
    m: &[C64; 16],
) {
    let target = task_target();
    let period = s_hi << 1;
    let n_blocks = amps.len() / period;
    if n_blocks >= target {
        let per = n_blocks.div_ceil(target) * period;
        let chunks: Vec<&mut [C64]> = amps.chunks_mut(per).collect();
        record(chunks.len());
        par_map_collect(chunks, |chunk| apply_two_window(chunk, s_lo, s_hi, perm, m));
    } else {
        // Few hi-blocks: split each block's halves into 2·s_lo-aligned
        // groups, each group into its four contiguous quarters, and
        // subchunk the 4-way zip. Quad members sit at the same offset of
        // the four quarter slices, so tasks never split a quad.
        let n_groups = n_blocks * (s_hi / (s_lo << 1));
        let per_group = target.div_ceil(n_groups);
        let sub = s_lo.div_ceil(per_group);
        let mut tasks: Vec<(&mut [C64], &mut [C64], &mut [C64], &mut [C64])> = Vec::new();
        for blk in amps.chunks_mut(period) {
            let (ha, hb) = blk.split_at_mut(s_hi);
            for (ga, gb) in ha.chunks_mut(s_lo << 1).zip(hb.chunks_mut(s_lo << 1)) {
                let (a0, a1) = ga.split_at_mut(s_lo);
                let (b0, b1) = gb.split_at_mut(s_lo);
                let zip = a0
                    .chunks_mut(sub)
                    .zip(a1.chunks_mut(sub))
                    .zip(b0.chunks_mut(sub))
                    .zip(b1.chunks_mut(sub));
                for (((c0, c1), c2), c3) in zip {
                    tasks.push((c0, c1, c2, c3));
                }
            }
        }
        record(tasks.len());
        par_map_collect(tasks, |(c0, c1, c2, c3)| {
            for k in 0..c0.len() {
                let a = [c0[k], c1[k], c2[k], c3[k]];
                let out = quad_update(m, perm, a);
                c0[k] = out[0];
                c1[k] = out[1];
                c2[k] = out[2];
                c3[k] = out[3];
            }
        });
    }
}

/// Parallel CZ kernel: negates amplitudes where both qubit bits are set.
/// `s_lo < s_hi` are the two qubit strides.
pub(crate) fn apply_cz(amps: &mut [C64], s_lo: usize, s_hi: usize) {
    let target = task_target();
    let period = s_hi << 1;
    let n_blocks = amps.len() / period;
    if n_blocks >= target {
        let per = n_blocks.div_ceil(target) * period;
        let chunks: Vec<&mut [C64]> = amps.chunks_mut(per).collect();
        record(chunks.len());
        par_map_collect(chunks, |chunk| cz_window(chunk, s_lo, s_hi));
    } else {
        // Few hi-blocks: parallelize inside the hi-set runs. A run starts
        // at an odd multiple of s_hi, so its low bits are zero and the
        // within-run offset alone decides the lo-bit test.
        let per_run = target.div_ceil(n_blocks);
        let sub = s_hi.div_ceil(per_run);
        let mut tasks: Vec<(usize, &mut [C64])> = Vec::new();
        for (k, run) in amps.chunks_mut(s_hi).enumerate() {
            if k & 1 == 0 {
                continue;
            }
            for (j, c) in run.chunks_mut(sub).enumerate() {
                tasks.push((j * sub, c));
            }
        }
        record(tasks.len());
        par_map_collect(tasks, |(off, chunk)| {
            for (i, a) in chunk.iter_mut().enumerate() {
                if (off + i) & s_lo != 0 {
                    *a = -*a;
                }
            }
        });
    }
}

/// Serial CZ over a `2·s_hi`-aligned window: touches only the quarter of
/// amplitudes with both bits set.
pub(crate) fn cz_window(window: &mut [C64], s_lo: usize, s_hi: usize) {
    for base_hi in (s_hi..window.len()).step_by(s_hi << 1) {
        for base_lo in (base_hi + s_lo..base_hi + s_hi).step_by(s_lo << 1) {
            for a in &mut window[base_lo..base_lo + s_lo] {
                *a = -*a;
            }
        }
    }
}

/// Parallel projection kernel: zeroes amplitudes where `index & mask !=
/// want`. Pure elementwise map with absolute indices.
pub(crate) fn project(amps: &mut [C64], mask: usize, want: usize) {
    let target = task_target();
    let per = amps.len().div_ceil(target);
    let chunks: Vec<(usize, &mut [C64])> = amps
        .chunks_mut(per)
        .enumerate()
        .map(|(k, c)| (k * per, c))
        .collect();
    record(chunks.len());
    par_map_collect(chunks, |(base, chunk)| {
        for (j, a) in chunk.iter_mut().enumerate() {
            if (base + j) & mask != want {
                *a = C64::ZERO;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::{FixedGate, RotationGate, TwoQubitRotationGate};
    use crate::state::State;
    use plateau_rng::{Rng, StdRng};
    use std::sync::Mutex;

    /// Guards the process-global threshold against concurrent mutation by
    /// other tests in this binary. (A racing reader would still compute
    /// identical amplitudes — the kernels are bitwise-deterministic — but
    /// the property below wants a genuine serial-vs-parallel comparison.)
    static THRESHOLD_LOCK: Mutex<()> = Mutex::new(());

    /// One random operation of a test circuit.
    #[derive(Debug, Clone)]
    enum TOp {
        Fixed(FixedGate, usize),
        Rot(RotationGate, usize, f64),
        CRot(RotationGate, usize, usize, f64),
        TwoRot(TwoQubitRotationGate, usize, usize, f64),
        Cz(usize, usize),
        Cx(usize, usize),
        Project(usize, bool),
    }

    fn apply(state: &mut State, op: &TOp) {
        match *op {
            TOp::Fixed(g, q) => state.apply_fixed(g, &[q]).unwrap(),
            TOp::Rot(g, q, t) => state.apply_rotation(g, q, t).unwrap(),
            TOp::CRot(g, c, t, th) => state.apply_controlled_rotation(g, c, t, th).unwrap(),
            TOp::TwoRot(g, a, b, t) => state.apply_two_qubit_rotation(g, a, b, t).unwrap(),
            TOp::Cz(a, b) => state.apply_cz(a, b).unwrap(),
            TOp::Cx(c, t) => state.apply_fixed(FixedGate::Cx, &[c, t]).unwrap(),
            TOp::Project(q, v) => state.project_qubit(q, v).unwrap(),
        }
    }

    fn random_op(rng: &mut StdRng, n: usize) -> TOp {
        let rot = |rng: &mut StdRng| match rng.gen_range(0..3usize) {
            0 => RotationGate::Rx,
            1 => RotationGate::Ry,
            _ => RotationGate::Rz,
        };
        let two = |rng: &mut StdRng| match rng.gen_range(0..3usize) {
            0 => TwoQubitRotationGate::Rxx,
            1 => TwoQubitRotationGate::Ryy,
            _ => TwoQubitRotationGate::Rzz,
        };
        let pair = |rng: &mut StdRng| {
            let a = rng.gen_range(0..n);
            let b = (a + 1 + rng.gen_range(0..n - 1)) % n;
            (a, b)
        };
        let angle = |rng: &mut StdRng| rng.gen_range(-3.0..3.0);
        match rng.gen_range(0..7usize) {
            0 => TOp::Fixed(FixedGate::H, rng.gen_range(0..n)),
            1 => TOp::Rot(rot(rng), rng.gen_range(0..n), angle(rng)),
            2 => {
                let (c, t) = pair(rng);
                TOp::CRot(rot(rng), c, t, angle(rng))
            }
            3 => {
                let (a, b) = pair(rng);
                TOp::TwoRot(two(rng), a, b, angle(rng))
            }
            4 => {
                let (a, b) = pair(rng);
                TOp::Cz(a, b)
            }
            5 => {
                let (c, t) = pair(rng);
                TOp::Cx(c, t)
            }
            _ => TOp::Project(rng.gen_range(0..n), rng.gen::<f64>() < 0.5),
        }
    }

    #[test]
    fn parallel_and_serial_kernels_are_bit_identical() {
        use plateau_rng::check::{cases, forall_shrink, vec_of};
        let _guard = THRESHOLD_LOCK.lock().unwrap();
        let sizes = [2usize, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16];
        forall_shrink(
            0x70617261,
            cases(22),
            |rng| {
                let n = sizes[rng.gen_range(0..sizes.len())];
                let mut ops = vec![TOp::Fixed(FixedGate::H, 0)];
                ops.extend(vec_of(rng, 4..10, |rng| random_op(rng, n)));
                // Force coverage of the top-qubit decompositions: the
                // half-split pair path, the quarter-split quad path
                // (adjacent top qubits), and a maximally separated CZ.
                ops.push(TOp::Rot(RotationGate::Ry, n - 1, 0.4));
                if n >= 2 {
                    ops.push(TOp::TwoRot(TwoQubitRotationGate::Rxx, n - 1, n - 2, 0.7));
                    ops.push(TOp::Cz(0, n - 1));
                    ops.push(TOp::CRot(RotationGate::Rz, n - 1, 0, -0.9));
                }
                (n, ops)
            },
            // On failure, shrink by dropping one op at a time: the
            // property is per-kernel, so any sub-circuit that still
            // diverges is a strictly better reproducer.
            |(n, ops)| {
                (0..ops.len())
                    .map(|i| {
                        let mut fewer = ops.clone();
                        fewer.remove(i);
                        (*n, fewer)
                    })
                    .collect()
            },
            |(n, ops)| {
                set_par_threshold(usize::MAX);
                let mut serial = State::zero(*n);
                for op in ops {
                    apply(&mut serial, op);
                }
                set_par_threshold(0);
                let mut parallel = State::zero(*n);
                for op in ops {
                    apply(&mut parallel, op);
                }
                reset_par_threshold();
                plateau_rng::prop_assert!(
                    serial == parallel,
                    "parallel kernels diverged from serial at n={n}"
                );
                Ok(())
            },
        );
    }

    #[test]
    fn threshold_env_round_trip() {
        let _guard = THRESHOLD_LOCK.lock().unwrap();
        set_par_threshold(3);
        assert_eq!(par_threshold(), 3);
        set_par_threshold(usize::MAX);
        assert_eq!(par_threshold(), usize::MAX - 1);
        reset_par_threshold();
        // Whatever the environment says, the cached value must be
        // re-derived rather than stale.
        let expect = std::env::var("PLATEAU_SIM_PAR_THRESHOLD")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(DEFAULT_PAR_THRESHOLD);
        assert_eq!(par_threshold(), expect);
    }

    #[test]
    fn parallel_paths_cover_every_split_shape() {
        // Deterministic spot checks of each decomposition case against the
        // dense-matrix oracle, with the threshold forced to 0.
        let _guard = THRESHOLD_LOCK.lock().unwrap();
        set_par_threshold(0);
        let n = 5;
        let mut c = crate::circuit::Circuit::new(n).unwrap();
        c.h(0).unwrap();
        c.ry(0).unwrap(); // pair kernel, many blocks
        c.ry(n - 1).unwrap(); // pair kernel, half-split path
        c.rxx(n - 1, n - 2).unwrap(); // quad kernel, quarter-split path
        c.rxx(0, 1).unwrap(); // quad kernel, block-chunk path
        c.cz(0, n - 1).unwrap(); // cz, run-split path
        c.cz(0, 1).unwrap(); // cz, block-chunk path
        c.cx(n - 1, 0).unwrap(); // controlled kernel
        let params = vec![0.3, -0.8, 1.1, 0.6];
        let state = c.run(&params).unwrap();
        set_par_threshold(usize::MAX);
        let reference = c.run(&params).unwrap();
        reset_par_threshold();
        assert_eq!(state, reference);
        let u = crate::unitary::circuit_unitary(&c, &params).unwrap();
        let mut oracle = State::zero(n);
        oracle.apply_matrix(&u).unwrap();
        assert!((state.fidelity(&oracle).unwrap() - 1.0).abs() < 1e-10);
    }
}
