//! Gate definitions and their matrices.
//!
//! Two families:
//!
//! - [`FixedGate`]: parameter-free gates (Paulis, Clifford generators,
//!   two-qubit entanglers — notably the CZ gate the paper's ansatz uses).
//! - [`RotationGate`]: one-parameter gates of the form `exp(-i θ G / 2)`
//!   (RX, RY, RZ — the paper's parameterized set — plus Phase, which equals
//!   RZ up to a global phase and therefore shares its shift rule).
//!
//! Every gate can report its dense matrix, which the full-unitary test
//! oracle uses; the statevector kernels in [`crate::state`] apply gates
//! without materializing matrices.
//!
//! # Examples
//!
//! ```
//! use plateau_sim::{FixedGate, RotationGate};
//!
//! // RZ(π) = diag(e^{-iπ/2}, e^{iπ/2}) = -i·Z
//! let rz = RotationGate::Rz.matrix(std::f64::consts::PI);
//! let z = FixedGate::Z.matrix();
//! assert!(rz.approx_eq_up_to_phase(&z, 1e-12));
//! ```

use plateau_linalg::{c64, CMatrix, C64};
use std::f64::consts::FRAC_1_SQRT_2;
use std::fmt;

/// Parameter-free gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FixedGate {
    /// Pauli-X (NOT).
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate S = diag(1, i).
    S,
    /// Inverse phase gate S† = diag(1, −i).
    Sdg,
    /// T gate = diag(1, e^{iπ/4}).
    T,
    /// Inverse T gate.
    Tdg,
    /// Square root of X.
    Sx,
    /// Controlled-Z (symmetric in its qubits).
    Cz,
    /// Controlled-X (CNOT).
    Cx,
    /// Controlled-Y.
    Cy,
    /// Swap.
    Swap,
}

impl FixedGate {
    /// Number of qubits the gate acts on.
    pub fn arity(self) -> usize {
        match self {
            FixedGate::X
            | FixedGate::Y
            | FixedGate::Z
            | FixedGate::H
            | FixedGate::S
            | FixedGate::Sdg
            | FixedGate::T
            | FixedGate::Tdg
            | FixedGate::Sx => 1,
            FixedGate::Cz | FixedGate::Cx | FixedGate::Cy | FixedGate::Swap => 2,
        }
    }

    /// The gate's inverse as another [`FixedGate`], when one exists in this
    /// set (√X's inverse is not in the set; use [`FixedGate::inverse_matrix`]
    /// for it).
    pub fn inverse(self) -> Option<FixedGate> {
        match self {
            FixedGate::S => Some(FixedGate::Sdg),
            FixedGate::Sdg => Some(FixedGate::S),
            FixedGate::T => Some(FixedGate::Tdg),
            FixedGate::Tdg => Some(FixedGate::T),
            FixedGate::Sx => None,
            g => Some(g),
        }
    }

    /// `true` when the gate is its own inverse.
    pub fn is_self_inverse(self) -> bool {
        !matches!(
            self,
            FixedGate::S | FixedGate::Sdg | FixedGate::T | FixedGate::Tdg | FixedGate::Sx
        )
    }

    /// Dense matrix of the gate (`2×2` or `4×4`).
    ///
    /// Two-qubit matrices use the composite index `(high_qubit, low_qubit)`
    /// with the *first* operand as the high bit, matching
    /// [`CMatrix::kron`]'s convention.
    pub fn matrix(self) -> CMatrix {
        let o = C64::ZERO;
        let l = C64::ONE;
        let i = C64::I;
        let h = c64(FRAC_1_SQRT_2, 0.0);
        match self {
            FixedGate::X => CMatrix::from_rows(&[&[o, l], &[l, o]]),
            FixedGate::Y => CMatrix::from_rows(&[&[o, -i], &[i, o]]),
            FixedGate::Z => CMatrix::from_rows(&[&[l, o], &[o, -l]]),
            FixedGate::H => CMatrix::from_rows(&[&[h, h], &[h, -h]]),
            FixedGate::S => CMatrix::from_rows(&[&[l, o], &[o, i]]),
            FixedGate::Sdg => CMatrix::from_rows(&[&[l, o], &[o, -i]]),
            FixedGate::T => CMatrix::from_rows(&[&[l, o], &[o, C64::cis(std::f64::consts::FRAC_PI_4)]]),
            FixedGate::Tdg => {
                CMatrix::from_rows(&[&[l, o], &[o, C64::cis(-std::f64::consts::FRAC_PI_4)]])
            }
            FixedGate::Sx => {
                let p = c64(0.5, 0.5);
                let m = c64(0.5, -0.5);
                CMatrix::from_rows(&[&[p, m], &[m, p]])
            }
            FixedGate::Cz => CMatrix::from_rows(&[
                &[l, o, o, o],
                &[o, l, o, o],
                &[o, o, l, o],
                &[o, o, o, -l],
            ]),
            // Control = first operand = high bit of the composite index.
            FixedGate::Cx => CMatrix::from_rows(&[
                &[l, o, o, o],
                &[o, l, o, o],
                &[o, o, o, l],
                &[o, o, l, o],
            ]),
            FixedGate::Cy => CMatrix::from_rows(&[
                &[l, o, o, o],
                &[o, l, o, o],
                &[o, o, o, -i],
                &[o, o, i, o],
            ]),
            FixedGate::Swap => CMatrix::from_rows(&[
                &[l, o, o, o],
                &[o, o, l, o],
                &[o, l, o, o],
                &[o, o, o, l],
            ]),
        }
    }

    /// Matrix of the gate's inverse.
    pub fn inverse_matrix(self) -> CMatrix {
        self.matrix().dagger()
    }
}

impl fmt::Display for FixedGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FixedGate::X => "X",
            FixedGate::Y => "Y",
            FixedGate::Z => "Z",
            FixedGate::H => "H",
            FixedGate::S => "S",
            FixedGate::Sdg => "S†",
            FixedGate::T => "T",
            FixedGate::Tdg => "T†",
            FixedGate::Sx => "√X",
            FixedGate::Cz => "CZ",
            FixedGate::Cx => "CX",
            FixedGate::Cy => "CY",
            FixedGate::Swap => "SWAP",
        };
        f.write_str(s)
    }
}

/// One-parameter rotation gates `R(θ)`.
///
/// All satisfy the two-term parameter-shift rule with shift `π/2`:
/// `∂⟨E⟩/∂θ = (⟨E⟩(θ+π/2) − ⟨E⟩(θ−π/2)) / 2`, because their generators
/// have a spectral gap of 1 ([`RotationGate::Phase`] equals RZ up to a
/// global phase, which cancels in expectation values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RotationGate {
    /// `RX(θ) = exp(-i θ X / 2)`.
    Rx,
    /// `RY(θ) = exp(-i θ Y / 2)`.
    Ry,
    /// `RZ(θ) = exp(-i θ Z / 2)`.
    Rz,
    /// `Phase(θ) = diag(1, e^{iθ})`.
    Phase,
}

impl RotationGate {
    /// All three Pauli rotations, in the paper's order — the variance
    /// analysis draws one of these uniformly per qubit per layer.
    pub const PAULI_ROTATIONS: [RotationGate; 3] =
        [RotationGate::Rx, RotationGate::Ry, RotationGate::Rz];

    /// Dense 2×2 matrix at angle `theta`.
    pub fn matrix(self, theta: f64) -> CMatrix {
        let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
        let o = C64::ZERO;
        match self {
            RotationGate::Rx => CMatrix::from_rows(&[
                &[c64(c, 0.0), c64(0.0, -s)],
                &[c64(0.0, -s), c64(c, 0.0)],
            ]),
            RotationGate::Ry => CMatrix::from_rows(&[
                &[c64(c, 0.0), c64(-s, 0.0)],
                &[c64(s, 0.0), c64(c, 0.0)],
            ]),
            RotationGate::Rz => CMatrix::from_rows(&[
                &[C64::cis(-theta / 2.0), o],
                &[o, C64::cis(theta / 2.0)],
            ]),
            RotationGate::Phase => {
                CMatrix::from_rows(&[&[C64::ONE, o], &[o, C64::cis(theta)]])
            }
        }
    }

    /// Matrix of the inverse rotation `R(−θ)`.
    pub fn inverse_matrix(self, theta: f64) -> CMatrix {
        self.matrix(-theta)
    }

    /// The four matrix entries `[m00, m01, m10, m11]` at angle `theta`,
    /// ready for the statevector kernel (avoids a `CMatrix` allocation on
    /// the hot path).
    #[inline]
    pub fn entries(self, theta: f64) -> [C64; 4] {
        let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
        match self {
            RotationGate::Rx => [
                c64(c, 0.0),
                c64(0.0, -s),
                c64(0.0, -s),
                c64(c, 0.0),
            ],
            RotationGate::Ry => [c64(c, 0.0), c64(-s, 0.0), c64(s, 0.0), c64(c, 0.0)],
            RotationGate::Rz => [
                C64::cis(-theta / 2.0),
                C64::ZERO,
                C64::ZERO,
                C64::cis(theta / 2.0),
            ],
            RotationGate::Phase => [C64::ONE, C64::ZERO, C64::ZERO, C64::cis(theta)],
        }
    }

    /// Entries of `dR/dθ` at angle `theta`.
    ///
    /// For the Pauli rotations this is `(−i G / 2) · R(θ)`; for Phase it is
    /// `diag(0, i e^{iθ})`. Used by the adjoint differentiation engine.
    #[inline]
    pub fn derivative_entries(self, theta: f64) -> [C64; 4] {
        let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
        match self {
            // d/dθ RX = [[-s/2, -ic/2], [-ic/2, -s/2]]
            RotationGate::Rx => [
                c64(-s / 2.0, 0.0),
                c64(0.0, -c / 2.0),
                c64(0.0, -c / 2.0),
                c64(-s / 2.0, 0.0),
            ],
            RotationGate::Ry => [
                c64(-s / 2.0, 0.0),
                c64(-c / 2.0, 0.0),
                c64(c / 2.0, 0.0),
                c64(-s / 2.0, 0.0),
            ],
            RotationGate::Rz => [
                C64::cis(-theta / 2.0) * c64(0.0, -0.5),
                C64::ZERO,
                C64::ZERO,
                C64::cis(theta / 2.0) * c64(0.0, 0.5),
            ],
            RotationGate::Phase => [
                C64::ZERO,
                C64::ZERO,
                C64::ZERO,
                C64::cis(theta) * C64::I,
            ],
        }
    }

    /// The parameter-shift half-gap `r` such that
    /// `∂E/∂θ = r·(E(θ + π/(4r)) − E(θ − π/(4r)))`. All gates here have
    /// `r = 1/2` (shift `π/2`).
    pub fn shift_coefficient(self) -> f64 {
        0.5
    }
}

impl fmt::Display for RotationGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RotationGate::Rx => "RX",
            RotationGate::Ry => "RY",
            RotationGate::Rz => "RZ",
            RotationGate::Phase => "P",
        };
        f.write_str(s)
    }
}

/// Two-qubit Pauli-product rotations `exp(-i θ P⊗P / 2)` — the
/// parameterized entanglers used by many hardware gate sets (e.g. the
/// Mølmer–Sørensen-style RXX). Their generators square to the identity,
/// so the two-term parameter-shift rule applies unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TwoQubitRotationGate {
    /// `RXX(θ) = exp(-i θ X⊗X / 2)`.
    Rxx,
    /// `RYY(θ) = exp(-i θ Y⊗Y / 2)`.
    Ryy,
    /// `RZZ(θ) = exp(-i θ Z⊗Z / 2)`.
    Rzz,
}

impl TwoQubitRotationGate {
    /// The 16 row-major entries of the 4×4 matrix at angle `theta`, in the
    /// composite basis `|first, second⟩` with the first operand as the
    /// high bit.
    #[inline]
    pub fn entries(self, theta: f64) -> [C64; 16] {
        let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
        let o = C64::ZERO;
        let cc = c64(c, 0.0);
        let mis = c64(0.0, -s); // -i sin
        let pis = c64(0.0, s); // +i sin
        match self {
            // cos·I − i sin·(X⊗X); X⊗X is the anti-diagonal permutation.
            TwoQubitRotationGate::Rxx => [
                cc, o, o, mis, //
                o, cc, mis, o, //
                o, mis, cc, o, //
                mis, o, o, cc,
            ],
            // Y⊗Y = antidiag(-1, 1, 1, -1).
            TwoQubitRotationGate::Ryy => [
                cc, o, o, pis, //
                o, cc, mis, o, //
                o, mis, cc, o, //
                pis, o, o, cc,
            ],
            // Z⊗Z = diag(1, -1, -1, 1).
            TwoQubitRotationGate::Rzz => [
                C64::cis(-theta / 2.0),
                o,
                o,
                o,
                o,
                C64::cis(theta / 2.0),
                o,
                o,
                o,
                o,
                C64::cis(theta / 2.0),
                o,
                o,
                o,
                o,
                C64::cis(-theta / 2.0),
            ],
        }
    }

    /// Entries of `dR/dθ = (−i G/2)·R(θ)` at angle `theta`.
    #[inline]
    pub fn derivative_entries(self, theta: f64) -> [C64; 16] {
        let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
        let o = C64::ZERO;
        let ds = c64(-s / 2.0, 0.0); // d/dθ cos(θ/2)
        let mic = c64(0.0, -c / 2.0); // d/dθ (-i sin(θ/2))
        let pic = c64(0.0, c / 2.0);
        match self {
            TwoQubitRotationGate::Rxx => [
                ds, o, o, mic, //
                o, ds, mic, o, //
                o, mic, ds, o, //
                mic, o, o, ds,
            ],
            TwoQubitRotationGate::Ryy => [
                ds, o, o, pic, //
                o, ds, mic, o, //
                o, mic, ds, o, //
                pic, o, o, ds,
            ],
            TwoQubitRotationGate::Rzz => [
                C64::cis(-theta / 2.0) * c64(0.0, -0.5),
                o,
                o,
                o,
                o,
                C64::cis(theta / 2.0) * c64(0.0, 0.5),
                o,
                o,
                o,
                o,
                C64::cis(theta / 2.0) * c64(0.0, 0.5),
                o,
                o,
                o,
                o,
                C64::cis(-theta / 2.0) * c64(0.0, -0.5),
            ],
        }
    }

    /// Dense 4×4 matrix at angle `theta`.
    pub fn matrix(self, theta: f64) -> CMatrix {
        let e = self.entries(theta);
        CMatrix::from_vec(4, 4, e.to_vec())
    }

    /// Matrix of the inverse rotation `R(−θ)`.
    pub fn inverse_matrix(self, theta: f64) -> CMatrix {
        self.matrix(-theta)
    }
}

impl fmt::Display for TwoQubitRotationGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TwoQubitRotationGate::Rxx => "RXX",
            TwoQubitRotationGate::Ryy => "RYY",
            TwoQubitRotationGate::Rzz => "RZZ",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plateau_linalg::CMatrix;
    use std::f64::consts::{FRAC_PI_2, PI};

    const TOL: f64 = 1e-12;

    #[test]
    fn all_fixed_gates_are_unitary() {
        for g in [
            FixedGate::X,
            FixedGate::Y,
            FixedGate::Z,
            FixedGate::H,
            FixedGate::S,
            FixedGate::Sdg,
            FixedGate::T,
            FixedGate::Tdg,
            FixedGate::Sx,
            FixedGate::Cz,
            FixedGate::Cx,
            FixedGate::Cy,
            FixedGate::Swap,
        ] {
            assert!(g.matrix().is_unitary(TOL), "{g} not unitary");
            assert_eq!(g.matrix().rows(), 1 << g.arity());
        }
    }

    #[test]
    fn rotations_are_unitary_at_many_angles() {
        for g in [
            RotationGate::Rx,
            RotationGate::Ry,
            RotationGate::Rz,
            RotationGate::Phase,
        ] {
            for k in -4..=4 {
                let theta = k as f64 * 0.7;
                assert!(g.matrix(theta).is_unitary(TOL), "{g}({theta}) not unitary");
            }
        }
    }

    #[test]
    fn rotation_at_zero_is_identity() {
        for g in [
            RotationGate::Rx,
            RotationGate::Ry,
            RotationGate::Rz,
            RotationGate::Phase,
        ] {
            assert!(g.matrix(0.0).approx_eq(&CMatrix::identity(2), TOL));
        }
    }

    #[test]
    fn rotation_composition_adds_angles() {
        for g in RotationGate::PAULI_ROTATIONS {
            let a = g.matrix(0.3);
            let b = g.matrix(0.9);
            let ab = &a * &b;
            assert!(ab.approx_eq(&g.matrix(1.2), TOL), "{g} angles don't add");
        }
    }

    #[test]
    fn rotation_pi_recovers_pauli_up_to_phase() {
        assert!(RotationGate::Rx
            .matrix(PI)
            .approx_eq_up_to_phase(&FixedGate::X.matrix(), TOL));
        assert!(RotationGate::Ry
            .matrix(PI)
            .approx_eq_up_to_phase(&FixedGate::Y.matrix(), TOL));
        assert!(RotationGate::Rz
            .matrix(PI)
            .approx_eq_up_to_phase(&FixedGate::Z.matrix(), TOL));
    }

    #[test]
    fn phase_equals_rz_up_to_global_phase() {
        for theta in [0.1, 1.0, -2.5] {
            let p = RotationGate::Phase.matrix(theta);
            let rz = RotationGate::Rz.matrix(theta);
            assert!(p.approx_eq_up_to_phase(&rz, TOL));
        }
    }

    #[test]
    fn s_squared_is_z_and_t_squared_is_s() {
        let s2 = &FixedGate::S.matrix() * &FixedGate::S.matrix();
        assert!(s2.approx_eq(&FixedGate::Z.matrix(), TOL));
        let t2 = &FixedGate::T.matrix() * &FixedGate::T.matrix();
        assert!(t2.approx_eq(&FixedGate::S.matrix(), TOL));
    }

    #[test]
    fn sx_squared_is_x() {
        let sx2 = &FixedGate::Sx.matrix() * &FixedGate::Sx.matrix();
        assert!(sx2.approx_eq(&FixedGate::X.matrix(), TOL));
    }

    #[test]
    fn hadamard_conjugates_z_to_x() {
        let h = FixedGate::H.matrix();
        let hzh = &(&h * &FixedGate::Z.matrix()) * &h;
        assert!(hzh.approx_eq(&FixedGate::X.matrix(), TOL));
    }

    #[test]
    fn fixed_inverse_matrices() {
        for g in [
            FixedGate::S,
            FixedGate::Sdg,
            FixedGate::T,
            FixedGate::Tdg,
            FixedGate::Sx,
            FixedGate::X,
            FixedGate::Cz,
            FixedGate::Swap,
        ] {
            let prod = &g.matrix() * &g.inverse_matrix();
            assert!(
                prod.approx_eq(&CMatrix::identity(g.matrix().rows()), TOL),
                "{g} inverse wrong"
            );
        }
    }

    #[test]
    fn named_inverses_match_dagger() {
        for g in [FixedGate::S, FixedGate::Sdg, FixedGate::T, FixedGate::Tdg] {
            let inv = g.inverse().expect("named inverse exists");
            assert!(inv.matrix().approx_eq(&g.matrix().dagger(), TOL));
        }
        assert_eq!(FixedGate::Sx.inverse(), None);
    }

    #[test]
    fn self_inverse_classification() {
        assert!(FixedGate::X.is_self_inverse());
        assert!(FixedGate::Cz.is_self_inverse());
        assert!(FixedGate::Swap.is_self_inverse());
        assert!(!FixedGate::S.is_self_inverse());
        assert!(!FixedGate::Sx.is_self_inverse());
    }

    #[test]
    fn entries_match_matrix() {
        for g in [
            RotationGate::Rx,
            RotationGate::Ry,
            RotationGate::Rz,
            RotationGate::Phase,
        ] {
            let m = g.matrix(0.83);
            let e = g.entries(0.83);
            assert!(m[(0, 0)].approx_eq(e[0], TOL));
            assert!(m[(0, 1)].approx_eq(e[1], TOL));
            assert!(m[(1, 0)].approx_eq(e[2], TOL));
            assert!(m[(1, 1)].approx_eq(e[3], TOL));
        }
    }

    #[test]
    fn derivative_entries_match_finite_difference() {
        let eps = 1e-6;
        for g in [
            RotationGate::Rx,
            RotationGate::Ry,
            RotationGate::Rz,
            RotationGate::Phase,
        ] {
            let theta = 0.62;
            let plus = g.entries(theta + eps);
            let minus = g.entries(theta - eps);
            let deriv = g.derivative_entries(theta);
            for k in 0..4 {
                let fd = (plus[k] - minus[k]) / (2.0 * eps);
                assert!(
                    fd.approx_eq(deriv[k], 1e-8),
                    "{g} entry {k}: fd {fd} vs analytic {}",
                    deriv[k]
                );
            }
        }
    }

    #[test]
    fn cx_matrix_control_is_high_bit() {
        // Composite basis |control, target>: CX|10> = |11>.
        let cx = FixedGate::Cx.matrix();
        let v = cx.matvec(&[C64::ZERO, C64::ZERO, C64::ONE, C64::ZERO]);
        assert!(v[3].approx_eq(C64::ONE, TOL));
    }

    #[test]
    fn rotation_shift_coefficient() {
        assert_eq!(RotationGate::Rx.shift_coefficient(), 0.5);
        assert_eq!(RotationGate::Phase.shift_coefficient(), 0.5);
    }

    #[test]
    fn display_names() {
        assert_eq!(FixedGate::Cz.to_string(), "CZ");
        assert_eq!(RotationGate::Rx.to_string(), "RX");
        assert_eq!(TwoQubitRotationGate::Rxx.to_string(), "RXX");
        assert_eq!(FRAC_PI_2, std::f64::consts::FRAC_PI_2); // keep import used
    }

    #[test]
    fn two_qubit_rotations_are_unitary_and_compose() {
        for g in [
            TwoQubitRotationGate::Rxx,
            TwoQubitRotationGate::Ryy,
            TwoQubitRotationGate::Rzz,
        ] {
            for theta in [-2.2, 0.0, 0.7, 3.1] {
                assert!(g.matrix(theta).is_unitary(TOL), "{g}({theta})");
            }
            assert!(g.matrix(0.0).approx_eq(&CMatrix::identity(4), TOL));
            let ab = &g.matrix(0.4) * &g.matrix(0.8);
            assert!(ab.approx_eq(&g.matrix(1.2), TOL), "{g} angles don't add");
            let inv = &g.matrix(0.9) * &g.inverse_matrix(0.9);
            assert!(inv.approx_eq(&CMatrix::identity(4), TOL));
        }
    }

    #[test]
    fn two_qubit_rotation_matches_exponential_of_generator() {
        // RXX(θ) = cos(θ/2) I − i sin(θ/2) (X⊗X).
        let theta: f64 = 1.3;
        let xx = FixedGate::X.matrix().kron(&FixedGate::X.matrix());
        let expected = &CMatrix::identity(4).scale(c64((theta / 2.0).cos(), 0.0))
            + &xx.scale(c64(0.0, -(theta / 2.0).sin()));
        assert!(TwoQubitRotationGate::Rxx.matrix(theta).approx_eq(&expected, TOL));

        let yy = FixedGate::Y.matrix().kron(&FixedGate::Y.matrix());
        let expected = &CMatrix::identity(4).scale(c64((theta / 2.0).cos(), 0.0))
            + &yy.scale(c64(0.0, -(theta / 2.0).sin()));
        assert!(TwoQubitRotationGate::Ryy.matrix(theta).approx_eq(&expected, TOL));

        let zz = FixedGate::Z.matrix().kron(&FixedGate::Z.matrix());
        let expected = &CMatrix::identity(4).scale(c64((theta / 2.0).cos(), 0.0))
            + &zz.scale(c64(0.0, -(theta / 2.0).sin()));
        assert!(TwoQubitRotationGate::Rzz.matrix(theta).approx_eq(&expected, TOL));
    }

    #[test]
    fn two_qubit_derivative_matches_finite_difference() {
        let eps = 1e-6;
        for g in [
            TwoQubitRotationGate::Rxx,
            TwoQubitRotationGate::Ryy,
            TwoQubitRotationGate::Rzz,
        ] {
            let theta = -0.47;
            let plus = g.entries(theta + eps);
            let minus = g.entries(theta - eps);
            let deriv = g.derivative_entries(theta);
            for k in 0..16 {
                let fd = (plus[k] - minus[k]) / (2.0 * eps);
                assert!(
                    fd.approx_eq(deriv[k], 1e-8),
                    "{g} entry {k}: fd {fd} vs analytic {}",
                    deriv[k]
                );
            }
        }
    }
}
