//! Statevector representation and gate-application kernels.
//!
//! A [`State`] over `n` qubits holds `2^n` complex amplitudes. Qubit
//! ordering is **little-endian**: qubit `k` corresponds to bit `k` of the
//! amplitude index, so `|q_{n-1} … q_1 q_0⟩` has index
//! `Σ q_k 2^k` and qubit 0 toggles between adjacent amplitudes.
//!
//! Kernels are written index-arithmetic style (no matrix allocation, no
//! bounds checks beyond the slice's own) and cover the cases the paper's
//! ansätze need on the hot path: general single-qubit 2×2 application, the
//! diagonal CZ fast path, and controlled single-qubit application.
//!
//! # Examples
//!
//! ```
//! use plateau_sim::{FixedGate, State};
//!
//! // Build a Bell pair and check its probabilities.
//! let mut psi = State::zero(2);
//! psi.apply_fixed(FixedGate::H, &[0]).expect("valid qubit");
//! psi.apply_fixed(FixedGate::Cx, &[0, 1]).expect("valid qubits");
//! let p = psi.probabilities();
//! assert!((p[0] - 0.5).abs() < 1e-12);
//! assert!((p[3] - 0.5).abs() < 1e-12);
//! assert!(p[1].abs() < 1e-12 && p[2].abs() < 1e-12);
//! ```

use crate::error::SimError;
use crate::gate::{FixedGate, RotationGate};
use plateau_linalg::{CMatrix, C64};

/// Hard cap on qubit count: a 26-qubit statevector is 1 GiB of amplitudes,
/// which is already beyond anything this reproduction needs (the paper tops
/// out at 10 qubits).
pub const MAX_QUBITS: usize = 26;

/// A pure quantum state of `n` qubits as a dense statevector.
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    n_qubits: usize,
    amps: Vec<C64>,
}

impl State {
    /// Creates the computational-basis state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits == 0` or `n_qubits > MAX_QUBITS`.
    pub fn zero(n_qubits: usize) -> State {
        assert!(
            (1..=MAX_QUBITS).contains(&n_qubits),
            "qubit count must be in 1..={MAX_QUBITS}"
        );
        plateau_obs::counter!("sim.state.allocations").inc();
        let mut amps = vec![C64::ZERO; 1 << n_qubits];
        plateau_obs::gauge!("sim.state.bytes")
            .set((amps.len() * std::mem::size_of::<C64>()) as f64);
        amps[0] = C64::ONE;
        State { n_qubits, amps }
    }

    /// Creates the basis state `|index⟩`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid qubit count or an out-of-range index.
    pub fn basis(n_qubits: usize, index: usize) -> State {
        let mut s = State::zero(n_qubits);
        assert!(index < s.dim(), "basis index out of range");
        s.amps[0] = C64::ZERO;
        s.amps[index] = C64::ONE;
        s
    }

    /// Builds a state from raw amplitudes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] unless the length is a power
    /// of two ≥ 2, and [`SimError::NotNormalized`] unless `Σ|a|² ≈ 1`.
    pub fn from_amplitudes(amps: Vec<C64>) -> Result<State, SimError> {
        let dim = amps.len();
        if dim < 2 || !dim.is_power_of_two() || dim > (1 << MAX_QUBITS) {
            return Err(SimError::DimensionMismatch {
                expected: 0,
                found: dim,
            });
        }
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        if (norm - 1.0).abs() > 1e-9 {
            return Err(SimError::NotNormalized { norm });
        }
        plateau_obs::counter!("sim.state.allocations").inc();
        plateau_obs::gauge!("sim.state.bytes").set((dim * std::mem::size_of::<C64>()) as f64);
        Ok(State {
            n_qubits: dim.trailing_zeros() as usize,
            amps,
        })
    }

    /// Builds a possibly **unnormalized** vector in state form.
    ///
    /// Gate kernels are linear, so they apply equally to tangent vectors
    /// like `H|ψ⟩` or `(dU/dθ)|ψ⟩`; the adjoint differentiation engine
    /// relies on this. Probabilities and expectations of such vectors are
    /// not physically meaningful.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] unless the length is a power
    /// of two ≥ 2 within [`MAX_QUBITS`].
    pub fn from_amplitudes_unnormalized(amps: Vec<C64>) -> Result<State, SimError> {
        let dim = amps.len();
        if dim < 2 || !dim.is_power_of_two() || dim > (1 << MAX_QUBITS) {
            return Err(SimError::DimensionMismatch {
                expected: 0,
                found: dim,
            });
        }
        plateau_obs::counter!("sim.state.allocations").inc();
        plateau_obs::gauge!("sim.state.bytes").set((dim * std::mem::size_of::<C64>()) as f64);
        Ok(State {
            n_qubits: dim.trailing_zeros() as usize,
            amps,
        })
    }

    /// Resets this state to `|0…0⟩` **in place**, reusing the existing
    /// amplitude buffer.
    ///
    /// This is the scratch-pool primitive behind batched evaluation
    /// (`plateau_grad::BatchExecutor`): a worker allocates one state and
    /// resets it between ensemble members instead of allocating
    /// `2^n × 16` bytes per evaluation. Bumps `sim.state.reuses` (not
    /// `sim.state.allocations` — nothing is allocated).
    pub fn reset_zero(&mut self) {
        plateau_obs::counter!("sim.state.reuses").inc();
        self.amps.fill(C64::ZERO);
        self.amps[0] = C64::ONE;
    }

    /// Mutable access to the raw amplitude buffer, for in-place kernels
    /// living in sibling modules (the fusion compiler's product-state
    /// prologue writes amplitudes directly).
    #[inline]
    pub(crate) fn amps_mut(&mut self) -> &mut [C64] {
        &mut self.amps
    }

    /// Number of qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Hilbert-space dimension `2^n`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.amps.len()
    }

    /// Read-only view of the amplitudes.
    #[inline]
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Consumes the state, returning the amplitude buffer.
    #[inline]
    pub fn into_amplitudes(self) -> Vec<C64> {
        self.amps
    }

    /// L2 norm of the statevector (should be 1 for physical states).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Rescales to unit norm. A no-op on the zero vector.
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            let inv = 1.0 / n;
            for a in &mut self.amps {
                *a *= inv;
            }
        }
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] when qubit counts differ.
    pub fn inner(&self, other: &State) -> Result<C64, SimError> {
        if self.n_qubits != other.n_qubits {
            return Err(SimError::DimensionMismatch {
                expected: self.dim(),
                found: other.dim(),
            });
        }
        Ok(self
            .amps
            .iter()
            .zip(other.amps.iter())
            .map(|(a, b)| a.conj() * *b)
            .sum())
    }

    /// Fidelity `|⟨self|other⟩|²`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] when qubit counts differ.
    pub fn fidelity(&self, other: &State) -> Result<f64, SimError> {
        Ok(self.inner(other)?.norm_sqr())
    }

    /// Probability of each computational-basis outcome.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Probability of the all-zeros outcome `|0…0⟩` — the quantity behind
    /// the paper's global cost `C = 1 − p(|0…0⟩)`.
    #[inline]
    pub fn probability_all_zeros(&self) -> f64 {
        self.amps[0].norm_sqr()
    }

    /// Marginal probability that `qubit` reads 0.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for an invalid qubit.
    pub fn probability_qubit_zero(&self, qubit: usize) -> Result<f64, SimError> {
        self.check_qubit(qubit)?;
        let mask = 1usize << qubit;
        Ok(self
            .amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & mask == 0)
            .map(|(_, a)| a.norm_sqr())
            .sum())
    }

    #[inline]
    fn check_qubit(&self, qubit: usize) -> Result<(), SimError> {
        if qubit >= self.n_qubits {
            Err(SimError::QubitOutOfRange {
                qubit,
                n_qubits: self.n_qubits,
            })
        } else {
            Ok(())
        }
    }

    #[inline]
    fn check_distinct(&self, a: usize, b: usize) -> Result<(), SimError> {
        self.check_qubit(a)?;
        self.check_qubit(b)?;
        if a == b {
            Err(SimError::DuplicateQubits { qubit: a })
        } else {
            Ok(())
        }
    }

    /// Applies an arbitrary single-qubit gate given its row-major entries
    /// `[m00, m01, m10, m11]`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for an invalid qubit.
    pub fn apply_single(&mut self, qubit: usize, m: &[C64; 4]) -> Result<(), SimError> {
        self.check_qubit(qubit)?;
        let stride = 1usize << qubit;
        if crate::parallel::enabled(self.n_qubits) {
            crate::parallel::apply_single(&mut self.amps, stride, m);
            return Ok(());
        }
        let block = stride << 1;
        let dim = self.amps.len();
        let mut base = 0;
        while base < dim {
            for offset in base..base + stride {
                let i0 = offset;
                let i1 = offset + stride;
                let a0 = self.amps[i0];
                let a1 = self.amps[i1];
                self.amps[i0] = m[0] * a0 + m[1] * a1;
                self.amps[i1] = m[2] * a0 + m[3] * a1;
            }
            base += block;
        }
        Ok(())
    }

    /// [`State::apply_single`] variant used by the fusion layer
    /// ([`crate::fuse`]): same arithmetic per amplitude (so results are
    /// bit-identical to the plain and parallel kernels), but the serial
    /// loop is written with stride-1 access ordering and manual 2-way
    /// unrolling so the compiler can keep two amplitude pairs in flight.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for an invalid qubit.
    pub fn apply_fused_single(&mut self, qubit: usize, m: &[C64; 4]) -> Result<(), SimError> {
        self.check_qubit(qubit)?;
        let stride = 1usize << qubit;
        if crate::parallel::enabled(self.n_qubits) {
            crate::parallel::apply_single(&mut self.amps, stride, m);
            return Ok(());
        }
        let dim = self.amps.len();
        if stride == 1 {
            // Amplitude pairs are adjacent: walk the state front to back,
            // two pairs (four contiguous amplitudes) per iteration.
            let mut i = 0;
            while i + 4 <= dim {
                let a0 = self.amps[i];
                let a1 = self.amps[i + 1];
                let b0 = self.amps[i + 2];
                let b1 = self.amps[i + 3];
                self.amps[i] = m[0] * a0 + m[1] * a1;
                self.amps[i + 1] = m[2] * a0 + m[3] * a1;
                self.amps[i + 2] = m[0] * b0 + m[1] * b1;
                self.amps[i + 3] = m[2] * b0 + m[3] * b1;
                i += 4;
            }
            while i < dim {
                let a0 = self.amps[i];
                let a1 = self.amps[i + 1];
                self.amps[i] = m[0] * a0 + m[1] * a1;
                self.amps[i + 1] = m[2] * a0 + m[3] * a1;
                i += 2;
            }
            return Ok(());
        }
        // stride ≥ 2 (always even): both halves of each block are walked
        // stride-1, two offsets per iteration.
        let block = stride << 1;
        let mut base = 0;
        while base < dim {
            let mut off = base;
            while off < base + stride {
                let i1 = off + stride;
                let a0 = self.amps[off];
                let a1 = self.amps[i1];
                let b0 = self.amps[off + 1];
                let b1 = self.amps[i1 + 1];
                self.amps[off] = m[0] * a0 + m[1] * a1;
                self.amps[i1] = m[2] * a0 + m[3] * a1;
                self.amps[off + 1] = m[0] * b0 + m[1] * b1;
                self.amps[i1 + 1] = m[2] * b0 + m[3] * b1;
                off += 2;
            }
            base += block;
        }
        Ok(())
    }

    /// Applies a merged 4×4 in the `|hi, lo⟩` basis (`hi > lo`) — the
    /// fusion layer's pair sweep. Same quad arithmetic as [`Self::apply_two`]
    /// with the identity operand permutation, but with the 4×4 product
    /// fully unrolled on fixed matrix indices so one pass over the state
    /// replaces two single-qubit sweeps at equal multiply count.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] / [`SimError::DuplicateQubits`]
    /// for invalid operands.
    pub fn apply_fused_pair(
        &mut self,
        hi: usize,
        lo: usize,
        m: &[C64; 16],
    ) -> Result<(), SimError> {
        self.check_distinct(hi, lo)?;
        debug_assert!(hi > lo, "pair segments store hi > lo");
        let s_lo = 1usize << lo.min(hi);
        let s_hi = 1usize << hi.max(lo);
        if crate::parallel::enabled(self.n_qubits) {
            crate::parallel::apply_two(&mut self.amps, s_lo, s_hi, &[0, 1, 2, 3], m);
            return Ok(());
        }
        let amps = &mut self.amps;
        let dim = amps.len();
        // The mul_add chains below match quad_update's accumulation
        // exactly, keeping serial and forced-parallel fused runs
        // bit-identical.
        macro_rules! quad {
            ($i:expr, $j:expr, $k:expr, $l:expr) => {{
                let (i, j, k, l) = ($i, $j, $k, $l);
                let a = [amps[i], amps[j], amps[k], amps[l]];
                amps[i] = m[3].mul_add(a[3], m[2].mul_add(a[2], m[1].mul_add(a[1], m[0].mul_add(a[0], C64::ZERO))));
                amps[j] = m[7].mul_add(a[3], m[6].mul_add(a[2], m[5].mul_add(a[1], m[4].mul_add(a[0], C64::ZERO))));
                amps[k] = m[11].mul_add(a[3], m[10].mul_add(a[2], m[9].mul_add(a[1], m[8].mul_add(a[0], C64::ZERO))));
                amps[l] = m[15].mul_add(a[3], m[14].mul_add(a[2], m[13].mul_add(a[1], m[12].mul_add(a[0], C64::ZERO))));
            }};
        }
        if lo == 0 && hi == 1 {
            // Contiguous quads: one flat front-to-back walk, two quads
            // (eight amplitudes) per iteration so eight independent
            // accumulation chains are in flight.
            let mut i = 0;
            while i + 8 <= dim {
                quad!(i, i + 1, i + 2, i + 3);
                quad!(i + 4, i + 5, i + 6, i + 7);
                i += 8;
            }
            while i + 4 <= dim {
                quad!(i, i + 1, i + 2, i + 3);
                i += 4;
            }
        } else if hi == lo + 1 {
            // Adjacent wires: each 4·s block holds s quads at stride s,
            // walked two offsets per iteration.
            let s = s_lo;
            let mut base = 0;
            while base < dim {
                let mut i = base;
                while i + 2 <= base + s {
                    quad!(i, i + s, i + 2 * s, i + 3 * s);
                    quad!(i + 1, i + 1 + s, i + 1 + 2 * s, i + 1 + 3 * s);
                    i += 2;
                }
                while i < base + s {
                    quad!(i, i + s, i + 2 * s, i + 3 * s);
                    i += 1;
                }
                base += s << 2;
            }
        } else {
            let mut base_hi = 0;
            while base_hi < dim {
                let mut base_lo = base_hi;
                while base_lo < base_hi + s_hi {
                    let mut i = base_lo;
                    while i + 2 <= base_lo + s_lo {
                        quad!(i, i + s_lo, i + s_hi, i + s_hi + s_lo);
                        quad!(i + 1, i + 1 + s_lo, i + 1 + s_hi, i + 1 + s_hi + s_lo);
                        i += 2;
                    }
                    while i < base_lo + s_lo {
                        quad!(i, i + s_lo, i + s_hi, i + s_hi + s_lo);
                        i += 1;
                    }
                    base_lo += s_lo << 1;
                }
                base_hi += s_hi << 1;
            }
        }
        Ok(())
    }

    /// Multiplies the state element-wise by a precomputed full-register
    /// diagonal — the fusion layer's superkernel sweep (one contiguous
    /// stride-1 pass, 2-way unrolled).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] if `diag` does not match
    /// the state dimension.
    pub fn apply_diagonal(&mut self, diag: &[C64]) -> Result<(), SimError> {
        let dim = self.amps.len();
        if diag.len() != dim {
            return Err(SimError::DimensionMismatch {
                expected: dim,
                found: diag.len(),
            });
        }
        let mut i = 0;
        while i + 2 <= dim {
            self.amps[i] = self.amps[i] * diag[i];
            self.amps[i + 1] = self.amps[i + 1] * diag[i + 1];
            i += 2;
        }
        while i < dim {
            self.amps[i] = self.amps[i] * diag[i];
            i += 1;
        }
        Ok(())
    }

    /// Applies a single-qubit gate controlled on another qubit being `|1⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] / [`SimError::DuplicateQubits`]
    /// for invalid operands.
    pub fn apply_controlled_single(
        &mut self,
        control: usize,
        target: usize,
        m: &[C64; 4],
    ) -> Result<(), SimError> {
        self.check_distinct(control, target)?;
        let cmask = 1usize << control;
        let stride = 1usize << target;
        if crate::parallel::enabled(self.n_qubits) {
            crate::parallel::apply_controlled_single(&mut self.amps, cmask, stride, m);
            return Ok(());
        }
        let block = stride << 1;
        let dim = self.amps.len();
        let mut base = 0;
        while base < dim {
            for offset in base..base + stride {
                let i0 = offset;
                if i0 & cmask == 0 {
                    continue;
                }
                let i1 = offset + stride;
                let a0 = self.amps[i0];
                let a1 = self.amps[i1];
                self.amps[i0] = m[0] * a0 + m[1] * a1;
                self.amps[i1] = m[2] * a0 + m[3] * a1;
            }
            base += block;
        }
        Ok(())
    }

    /// Projects onto the subspace where `qubit` reads `value` by zeroing
    /// every other amplitude, **without renormalizing**. The result is
    /// generally not a physical state; this is a building block for
    /// derivative operators like `|1⟩⟨1| ⊗ dU/dθ` in adjoint
    /// differentiation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for an invalid qubit.
    pub fn project_qubit(&mut self, qubit: usize, value: bool) -> Result<(), SimError> {
        self.check_qubit(qubit)?;
        let mask = 1usize << qubit;
        let want = if value { mask } else { 0 };
        if crate::parallel::enabled(self.n_qubits) {
            crate::parallel::project(&mut self.amps, mask, want);
            return Ok(());
        }
        for (i, amp) in self.amps.iter_mut().enumerate() {
            if i & mask != want {
                *amp = C64::ZERO;
            }
        }
        Ok(())
    }

    /// Applies an arbitrary two-qubit gate given its 16 row-major entries
    /// in the composite basis `|first, second⟩` (first operand = high bit).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] / [`SimError::DuplicateQubits`]
    /// for invalid operands.
    pub fn apply_two(
        &mut self,
        first: usize,
        second: usize,
        m: &[C64; 16],
    ) -> Result<(), SimError> {
        self.check_distinct(first, second)?;
        let s_lo = 1usize << first.min(second);
        let s_hi = 1usize << first.max(second);
        let perm = crate::parallel::quad_perm(first > second);
        if crate::parallel::enabled(self.n_qubits) {
            crate::parallel::apply_two(&mut self.amps, s_lo, s_hi, &perm, m);
        } else {
            // Iterate only the quarter of indices with both operand bits
            // clear — each is the |00⟩ member of one amplitude quad.
            crate::parallel::apply_two_window(&mut self.amps, s_lo, s_hi, &perm, m);
        }
        Ok(())
    }

    /// Applies a two-qubit Pauli-product rotation at the given angle.
    ///
    /// # Errors
    ///
    /// Returns operand-validity errors from the kernel.
    pub fn apply_two_qubit_rotation(
        &mut self,
        gate: crate::gate::TwoQubitRotationGate,
        first: usize,
        second: usize,
        theta: f64,
    ) -> Result<(), SimError> {
        self.apply_two(first, second, &gate.entries(theta))
    }

    /// Applies a CZ gate: flips the sign of amplitudes where both qubits
    /// are `|1⟩`. This is the entangler in the paper's hardware-efficient
    /// ansatz, so it gets a dedicated diagonal kernel.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] / [`SimError::DuplicateQubits`]
    /// for invalid operands.
    pub fn apply_cz(&mut self, a: usize, b: usize) -> Result<(), SimError> {
        self.check_distinct(a, b)?;
        let s_lo = 1usize << a.min(b);
        let s_hi = 1usize << a.max(b);
        if crate::parallel::enabled(self.n_qubits) {
            crate::parallel::apply_cz(&mut self.amps, s_lo, s_hi);
        } else {
            // Touch only the quarter of amplitudes with both bits set.
            crate::parallel::cz_window(&mut self.amps, s_lo, s_hi);
        }
        Ok(())
    }

    /// Applies a SWAP gate by exchanging amplitudes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] / [`SimError::DuplicateQubits`]
    /// for invalid operands.
    pub fn apply_swap(&mut self, a: usize, b: usize) -> Result<(), SimError> {
        self.check_distinct(a, b)?;
        let ma = 1usize << a;
        let mb = 1usize << b;
        for i in 0..self.amps.len() {
            // Visit each (01, 10) pair once: i has a=1, b=0.
            if i & ma != 0 && i & mb == 0 {
                let j = (i & !ma) | mb;
                self.amps.swap(i, j);
            }
        }
        Ok(())
    }

    /// Applies a named fixed gate to the given operand qubits.
    ///
    /// For two-qubit gates the first operand is the control (CZ and SWAP
    /// are symmetric, so the order is irrelevant there).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WrongArity`] if the operand count doesn't match
    /// the gate, or qubit-validity errors from the kernels.
    pub fn apply_fixed(&mut self, gate: FixedGate, qubits: &[usize]) -> Result<(), SimError> {
        if qubits.len() != gate.arity() {
            return Err(SimError::WrongArity {
                gate: gate.to_string(),
                expected: gate.arity(),
                found: qubits.len(),
            });
        }
        match gate {
            FixedGate::Cz => self.apply_cz(qubits[0], qubits[1]),
            FixedGate::Swap => self.apply_swap(qubits[0], qubits[1]),
            FixedGate::Cx | FixedGate::Cy => {
                let m = gate_2x2_of_controlled(gate);
                self.apply_controlled_single(qubits[0], qubits[1], &m)
            }
            _ => {
                let mat = gate.matrix();
                let m = [mat[(0, 0)], mat[(0, 1)], mat[(1, 0)], mat[(1, 1)]];
                self.apply_single(qubits[0], &m)
            }
        }
    }

    /// Applies a rotation gate at the given angle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for an invalid qubit.
    pub fn apply_rotation(
        &mut self,
        gate: RotationGate,
        qubit: usize,
        theta: f64,
    ) -> Result<(), SimError> {
        self.apply_single(qubit, &gate.entries(theta))
    }

    /// Applies a controlled rotation gate.
    ///
    /// # Errors
    ///
    /// Returns operand-validity errors from the kernel.
    pub fn apply_controlled_rotation(
        &mut self,
        gate: RotationGate,
        control: usize,
        target: usize,
        theta: f64,
    ) -> Result<(), SimError> {
        self.apply_controlled_single(control, target, &gate.entries(theta))
    }

    /// Applies a full `2^n × 2^n` matrix to the state (test oracle path —
    /// exponentially expensive, not for production simulation).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] when the matrix doesn't match
    /// the state dimension.
    pub fn apply_matrix(&mut self, u: &CMatrix) -> Result<(), SimError> {
        if u.rows() != self.dim() || u.cols() != self.dim() {
            return Err(SimError::DimensionMismatch {
                expected: self.dim(),
                found: u.rows(),
            });
        }
        self.amps = u.matvec(&self.amps);
        Ok(())
    }

    /// Performs a projective measurement of `qubit` in the computational
    /// basis: samples an outcome from the Born rule, collapses the state
    /// onto it (renormalized), and returns the observed bit.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for an invalid qubit.
    pub fn measure_qubit<R: plateau_rng::Rng + ?Sized>(
        &mut self,
        qubit: usize,
        rng: &mut R,
    ) -> Result<bool, SimError> {
        let p_zero = self.probability_qubit_zero(qubit)?;
        let outcome = rng.gen::<f64>() >= p_zero;
        self.project_qubit(qubit, outcome)?;
        self.normalize();
        Ok(outcome)
    }

    /// Expectation value `⟨ψ|Z_qubit|ψ⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for an invalid qubit.
    pub fn expectation_z(&self, qubit: usize) -> Result<f64, SimError> {
        self.check_qubit(qubit)?;
        let mask = 1usize << qubit;
        Ok(self
            .amps
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let sign = if i & mask == 0 { 1.0 } else { -1.0 };
                sign * a.norm_sqr()
            })
            .sum())
    }
}

/// 2×2 block applied to the target when the control is `|1⟩`.
fn gate_2x2_of_controlled(gate: FixedGate) -> [C64; 4] {
    match gate {
        FixedGate::Cx => {
            let m = FixedGate::X.matrix();
            [m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]]
        }
        FixedGate::Cy => {
            let m = FixedGate::Y.matrix();
            [m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]]
        }
        _ => unreachable!("only CX/CY route through the controlled kernel"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plateau_linalg::c64;
    use std::f64::consts::{FRAC_PI_2, PI};

    const TOL: f64 = 1e-12;

    #[test]
    fn zero_state_is_normalized_basis_zero() {
        let s = State::zero(3);
        assert_eq!(s.n_qubits(), 3);
        assert_eq!(s.dim(), 8);
        assert!((s.norm() - 1.0).abs() < TOL);
        assert!((s.probability_all_zeros() - 1.0).abs() < TOL);
    }

    #[test]
    fn basis_state_sets_single_amplitude() {
        let s = State::basis(3, 5);
        assert!(s.amplitudes()[5].approx_eq(C64::ONE, TOL));
        assert!((s.probabilities()[5] - 1.0).abs() < TOL);
    }

    #[test]
    fn from_amplitudes_validates() {
        // Not a power of two.
        assert!(State::from_amplitudes(vec![C64::ONE; 3]).is_err());
        // Not normalized.
        assert!(State::from_amplitudes(vec![C64::ONE, C64::ONE]).is_err());
        // Valid.
        let s = State::from_amplitudes(vec![
            c64(FRAC_PI_2.cos(), 0.0).scale(0.0) + c64(1.0 / 2f64.sqrt(), 0.0),
            c64(1.0 / 2f64.sqrt(), 0.0),
        ])
        .unwrap();
        assert_eq!(s.n_qubits(), 1);
    }

    #[test]
    fn x_flips_qubit() {
        let mut s = State::zero(2);
        s.apply_fixed(FixedGate::X, &[1]).unwrap();
        // Little-endian: qubit 1 set → index 2.
        assert!(s.amplitudes()[2].approx_eq(C64::ONE, TOL));
    }

    #[test]
    fn hadamard_creates_uniform_superposition() {
        let mut s = State::zero(1);
        s.apply_fixed(FixedGate::H, &[0]).unwrap();
        for p in s.probabilities() {
            assert!((p - 0.5).abs() < TOL);
        }
    }

    #[test]
    fn rx_pi_maps_zero_to_one_up_to_phase() {
        let mut s = State::zero(1);
        s.apply_rotation(RotationGate::Rx, 0, PI).unwrap();
        assert!((s.probabilities()[1] - 1.0).abs() < TOL);
    }

    #[test]
    fn ry_half_angle_formula() {
        // RY(θ)|0> = cos(θ/2)|0> + sin(θ/2)|1>
        let theta = 0.7;
        let mut s = State::zero(1);
        s.apply_rotation(RotationGate::Ry, 0, theta).unwrap();
        assert!(s.amplitudes()[0].approx_eq(c64((theta / 2.0).cos(), 0.0), TOL));
        assert!(s.amplitudes()[1].approx_eq(c64((theta / 2.0).sin(), 0.0), TOL));
    }

    #[test]
    fn rz_is_diagonal_phase() {
        let mut s = State::zero(1);
        s.apply_fixed(FixedGate::H, &[0]).unwrap();
        s.apply_rotation(RotationGate::Rz, 0, FRAC_PI_2).unwrap();
        // Probabilities unchanged by a diagonal gate.
        for p in s.probabilities() {
            assert!((p - 0.5).abs() < TOL);
        }
    }

    #[test]
    fn cz_phases_only_the_11_component() {
        let mut s = State::zero(2);
        s.apply_fixed(FixedGate::H, &[0]).unwrap();
        s.apply_fixed(FixedGate::H, &[1]).unwrap();
        s.apply_cz(0, 1).unwrap();
        let a = s.amplitudes();
        assert!(a[0].approx_eq(c64(0.5, 0.0), TOL));
        assert!(a[1].approx_eq(c64(0.5, 0.0), TOL));
        assert!(a[2].approx_eq(c64(0.5, 0.0), TOL));
        assert!(a[3].approx_eq(c64(-0.5, 0.0), TOL));
    }

    #[test]
    fn cz_is_symmetric() {
        let mut s1 = State::zero(3);
        let mut s2 = State::zero(3);
        for q in 0..3 {
            s1.apply_fixed(FixedGate::H, &[q]).unwrap();
            s2.apply_fixed(FixedGate::H, &[q]).unwrap();
        }
        s1.apply_cz(0, 2).unwrap();
        s2.apply_cz(2, 0).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn bell_state_via_cx() {
        let mut s = State::zero(2);
        s.apply_fixed(FixedGate::H, &[0]).unwrap();
        s.apply_fixed(FixedGate::Cx, &[0, 1]).unwrap();
        let p = s.probabilities();
        assert!((p[0] - 0.5).abs() < TOL);
        assert!((p[3] - 0.5).abs() < TOL);
    }

    #[test]
    fn swap_exchanges_qubits() {
        let mut s = State::basis(2, 1); // |01⟩: qubit 0 = 1
        s.apply_swap(0, 1).unwrap();
        assert!(s.amplitudes()[2].approx_eq(C64::ONE, TOL)); // |10⟩
    }

    #[test]
    fn controlled_rotation_acts_only_when_control_set() {
        let mut s = State::zero(2);
        s.apply_controlled_rotation(RotationGate::Rx, 0, 1, PI).unwrap();
        // Control qubit 0 is |0⟩ → nothing happens.
        assert!((s.probability_all_zeros() - 1.0).abs() < TOL);

        let mut s = State::basis(2, 1); // control = 1
        s.apply_controlled_rotation(RotationGate::Rx, 0, 1, PI).unwrap();
        assert!((s.probabilities()[3] - 1.0).abs() < TOL);
    }

    #[test]
    fn unitarity_preserves_norm() {
        let mut s = State::zero(4);
        for q in 0..4 {
            s.apply_fixed(FixedGate::H, &[q]).unwrap();
            s.apply_rotation(RotationGate::Rx, q, 0.3 * (q + 1) as f64).unwrap();
        }
        s.apply_cz(0, 1).unwrap();
        s.apply_cz(2, 3).unwrap();
        assert!((s.norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn expectation_z_on_basis_states() {
        let s = State::zero(2);
        assert!((s.expectation_z(0).unwrap() - 1.0).abs() < TOL);
        let s = State::basis(2, 3);
        assert!((s.expectation_z(0).unwrap() + 1.0).abs() < TOL);
        assert!((s.expectation_z(1).unwrap() + 1.0).abs() < TOL);
    }

    #[test]
    fn expectation_z_after_ry() {
        // <Z> = cos θ after RY(θ)|0>.
        let theta = 1.1;
        let mut s = State::zero(1);
        s.apply_rotation(RotationGate::Ry, 0, theta).unwrap();
        assert!((s.expectation_z(0).unwrap() - theta.cos()).abs() < TOL);
    }

    #[test]
    fn probability_qubit_zero_marginal() {
        let mut s = State::zero(2);
        s.apply_fixed(FixedGate::H, &[0]).unwrap();
        assert!((s.probability_qubit_zero(0).unwrap() - 0.5).abs() < TOL);
        assert!((s.probability_qubit_zero(1).unwrap() - 1.0).abs() < TOL);
    }

    #[test]
    fn inner_product_and_fidelity() {
        let s0 = State::zero(2);
        let mut s1 = State::zero(2);
        s1.apply_fixed(FixedGate::H, &[0]).unwrap();
        let ip = s0.inner(&s1).unwrap();
        assert!((ip.norm() - 1.0 / 2f64.sqrt()).abs() < TOL);
        assert!((s0.fidelity(&s1).unwrap() - 0.5).abs() < TOL);
        assert!((s0.fidelity(&s0).unwrap() - 1.0).abs() < TOL);
    }

    #[test]
    fn error_paths() {
        let mut s = State::zero(2);
        assert!(matches!(
            s.apply_rotation(RotationGate::Rx, 5, 0.1),
            Err(SimError::QubitOutOfRange { qubit: 5, .. })
        ));
        assert!(matches!(
            s.apply_cz(1, 1),
            Err(SimError::DuplicateQubits { qubit: 1 })
        ));
        assert!(matches!(
            s.apply_fixed(FixedGate::Cz, &[0]),
            Err(SimError::WrongArity { .. })
        ));
        let other = State::zero(3);
        assert!(s.inner(&other).is_err());
        let u = CMatrix::identity(8);
        assert!(s.apply_matrix(&u).is_err());
    }

    #[test]
    fn apply_matrix_oracle_matches_kernel() {
        use plateau_linalg::CMatrix;
        // X on qubit 0 of 2 qubits = I ⊗ X (qubit 1 is the high bit).
        let full = CMatrix::identity(2).kron(&FixedGate::X.matrix());
        let mut via_matrix = State::zero(2);
        via_matrix.apply_matrix(&full).unwrap();
        let mut via_kernel = State::zero(2);
        via_kernel.apply_fixed(FixedGate::X, &[0]).unwrap();
        assert_eq!(via_matrix, via_kernel);
    }

    #[test]
    fn normalize_rescales() {
        let mut s = State::zero(1);
        // Denormalize through direct scaling using apply_matrix with 2·I.
        let two_i = CMatrix::identity(2).scale(c64(2.0, 0.0));
        s.apply_matrix(&two_i).unwrap();
        assert!((s.norm() - 2.0).abs() < TOL);
        s.normalize();
        assert!((s.norm() - 1.0).abs() < TOL);
    }

    #[test]
    #[should_panic(expected = "qubit count")]
    fn zero_qubits_panics() {
        let _ = State::zero(0);
    }

    #[test]
    fn rxx_entangles_zero_state() {
        use crate::gate::TwoQubitRotationGate;
        // RXX(θ)|00⟩ = cos(θ/2)|00⟩ − i sin(θ/2)|11⟩.
        let theta = 0.9;
        let mut s = State::zero(2);
        s.apply_two_qubit_rotation(TwoQubitRotationGate::Rxx, 1, 0, theta)
            .unwrap();
        assert!(s.amplitudes()[0].approx_eq(c64((theta / 2.0).cos(), 0.0), TOL));
        assert!(s.amplitudes()[3].approx_eq(c64(0.0, -(theta / 2.0).sin()), TOL));
        assert!((s.norm() - 1.0).abs() < TOL);
    }

    #[test]
    fn rzz_is_diagonal_phase_only() {
        use crate::gate::TwoQubitRotationGate;
        let mut s = State::zero(2);
        s.apply_fixed(FixedGate::H, &[0]).unwrap();
        s.apply_fixed(FixedGate::H, &[1]).unwrap();
        let before = s.probabilities();
        s.apply_two_qubit_rotation(TwoQubitRotationGate::Rzz, 0, 1, 1.7)
            .unwrap();
        let after = s.probabilities();
        for (b, a) in before.iter().zip(after.iter()) {
            assert!((b - a).abs() < TOL);
        }
    }

    #[test]
    fn apply_two_on_non_adjacent_qubits_matches_oracle() {
        use crate::gate::TwoQubitRotationGate;
        // RYY on qubits (2, 0) of a 3-qubit register, cross-checked via
        // the dense matrix path on a nontrivial state.
        let mut s = State::zero(3);
        s.apply_fixed(FixedGate::H, &[1]).unwrap();
        s.apply_rotation(RotationGate::Rx, 2, 0.4).unwrap();
        let mut via_kernel = s.clone();
        via_kernel
            .apply_two_qubit_rotation(TwoQubitRotationGate::Ryy, 2, 0, -1.1)
            .unwrap();
        // Oracle: embed manually by iterating basis states through matvec
        // of the op matrix built by the unitary module.
        let mut c = crate::circuit::Circuit::new(3).unwrap();
        c.ryy(2, 0).unwrap();
        let u = crate::unitary::circuit_unitary(&c, &[-1.1]).unwrap();
        let mut via_matrix = s;
        via_matrix.apply_matrix(&u).unwrap();
        assert!((via_kernel.fidelity(&via_matrix).unwrap() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn measurement_collapses_and_is_born_distributed() {
        use plateau_rng::rngs::StdRng;
        use plateau_rng::SeedableRng;
        // RY(θ)|0⟩: p(1) = sin²(θ/2).
        let theta = 1.2;
        let expected_p1 = (theta / 2.0f64).sin().powi(2);
        let mut rng = StdRng::seed_from_u64(0);
        let mut ones = 0;
        let trials = 20_000;
        for _ in 0..trials {
            let mut s = State::zero(2);
            s.apply_rotation(RotationGate::Ry, 0, theta).unwrap();
            s.apply_fixed(FixedGate::Cx, &[0, 1]).unwrap();
            let outcome = s.measure_qubit(0, &mut rng).unwrap();
            // Post-measurement state is normalized and consistent: the
            // entangled partner must agree.
            assert!((s.norm() - 1.0).abs() < 1e-10);
            assert!((s.probability_qubit_zero(1).unwrap() - if outcome { 0.0 } else { 1.0 }).abs() < 1e-10);
            if outcome {
                ones += 1;
            }
        }
        let measured_p1 = ones as f64 / trials as f64;
        assert!(
            (measured_p1 - expected_p1).abs() < 0.01,
            "measured {measured_p1} vs {expected_p1}"
        );
    }

    #[test]
    fn repeated_measurement_is_stable() {
        use plateau_rng::rngs::StdRng;
        use plateau_rng::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = State::zero(1);
        s.apply_fixed(FixedGate::H, &[0]).unwrap();
        let first = s.measure_qubit(0, &mut rng).unwrap();
        for _ in 0..5 {
            assert_eq!(s.measure_qubit(0, &mut rng).unwrap(), first);
        }
    }

    #[test]
    fn project_qubit_zeroes_the_complement() {
        let mut s = State::zero(2);
        s.apply_fixed(FixedGate::H, &[0]).unwrap();
        s.apply_fixed(FixedGate::H, &[1]).unwrap();
        s.project_qubit(0, true).unwrap();
        let a = s.amplitudes();
        assert_eq!(a[0], C64::ZERO);
        assert_eq!(a[2], C64::ZERO);
        assert!(a[1].norm() > 0.0 && a[3].norm() > 0.0);
        assert!(s.project_qubit(9, true).is_err());
    }
}
