//! Gate-fusion compiler: collapses runs of adjacent gates into merged
//! kernels so the paper's small-`n` workloads do less memory traffic.
//!
//! [`compile`] lowers a [`Circuit`] into a [`CompiledCircuit`] — a list of
//! [`Segment`]s, each applied to the statevector in one sweep:
//!
//! * **Single** — a run of single-qubit gates on one wire, merged into a
//!   single 2×2 unitary (product taken once per run, applied in one
//!   stride-1 sweep instead of one sweep per gate).
//! * **Pair** — adjacent two-qubit (and absorbed single-qubit) gates on
//!   the same qubit pair, merged into one 4×4 block when the cost model
//!   says the dense block beats applying the pieces separately. On
//!   registers wider than [`SUPERKERNEL_MAX_QUBITS`] — where sweeps are
//!   memory-bound rather than ALU-bound — a final post-pass also
//!   tensor-pairs adjacent *Single* runs on distinct wires into one 4×4
//!   sweep: same complex multiplies per amplitude, half the state
//!   traffic.
//! * **Diagonal** — a run of ≥ 2 statically diagonal gates (Z/S/T
//!   families, CZ, bound RZ/Phase/RZZ) collapsed into one precomputed
//!   `2^n` diagonal, applied as a single contiguous element-wise multiply.
//!   This is the whole-layer *superkernel* for the paper's entangling CZ
//!   chains; it only exists at `n ≤` [`SUPERKERNEL_MAX_QUBITS`].
//! * **Raw** — everything that doesn't merge is passed through verbatim,
//!   so a circuit with zero mergeable runs compiles to the identity
//!   transform (same op list, same dispatch path).
//!
//! Merging is *frontier-based*: an op may join an open group on its wires
//! as long as no intervening op touched those wires, which only commutes
//! ops acting on disjoint qubits — the compiled circuit is exactly
//! unitary-equivalent to the source (see the `forall` properties below).
//!
//! Runs from `|0…0⟩` ([`CompiledCircuit::run`]) additionally absorb a
//! leading prefix of per-wire `Single` runs into a direct product-state
//! build — two multiplies per amplitude for the whole prefix instead of
//! one full sweep per wire, which swallows the paper ansatz's entire
//! first rotation layer.
//!
//! # Compile once, run many
//!
//! [`CompiledCircuit`] is parameter-independent: free parameters are
//! resolved at [`CompiledCircuit::run_on`] time by re-merging the (tiny)
//! 2×2/4×4 matrices, while diagonal superkernels — which cost a `2^n`
//! precompute — are built once at compile time from bound angles only.
//! Hot paths (batched expectations, gradient engines) should therefore
//! compile once and sweep parameters many times; that contract is what
//! the planned `BatchExecutor` builds on.
//!
//! # Pass ordering
//!
//! Fusion composes with [`crate::passes::simplify`] deterministically:
//! run `simplify` **first** (it cancels and merges ops, producing a
//! shorter op list), then `compile`. Compilation itself is a pure
//! function of the op list — compiling the same circuit twice yields
//! identical segments — and never reorders non-commuting ops, so
//! `compile(&simplify(&c))` and `compile(&c)` agree to rounding on every
//! input state.
//!
//! # Knob
//!
//! Execution layers consult [`fuse_enabled`] (the `PLATEAU_SIM_FUSE`
//! environment variable, cached on first read; `1`/`true`/`on` enable).
//! [`set_fuse`] / [`reset_fuse`] override it programmatically, mirroring
//! [`crate::parallel::set_par_threshold`].

use crate::circuit::{Circuit, Op, Param};
use crate::error::SimError;
use crate::gate::{FixedGate, RotationGate};
use crate::state::State;
use plateau_linalg::C64;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Largest register for which whole-layer diagonal superkernels are
/// precomputed (the `2^n` diagonal must stay cache-resident to pay off).
pub const SUPERKERNEL_MAX_QUBITS: usize = 12;

/// Cached fuse knob: 0 = uninitialized, 1 = off, 2 = on.
static FUSE: AtomicUsize = AtomicUsize::new(0);

/// Whether fusion is enabled for the gradient/expectation hot paths.
///
/// Reads `PLATEAU_SIM_FUSE` on first call and caches the answer; `1`,
/// `true`, or `on` (case-insensitive) enable, anything else disables.
pub fn fuse_enabled() -> bool {
    match FUSE.load(Ordering::Relaxed) {
        0 => {
            let on = std::env::var("PLATEAU_SIM_FUSE")
                .map(|v| {
                    let v = v.trim();
                    v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("on")
                })
                .unwrap_or(false);
            FUSE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
        v => v == 2,
    }
}

/// Forces fusion on or off for this process, overriding the environment.
pub fn set_fuse(on: bool) {
    FUSE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Clears any cached/overridden value; the next [`fuse_enabled`] call
/// re-reads `PLATEAU_SIM_FUSE`.
pub fn reset_fuse() {
    FUSE.store(0, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Cost model (complex multiplies per amplitude, i.e. full-state sweeps
// weighted by how much of the state each kernel touches).
// ---------------------------------------------------------------------------

/// One element-wise diagonal multiply over the full state.
const DIAG_SWEEP_COST: f64 = 1.0;
/// One merged 2×2 applied to every amplitude pair.
const SINGLE_BLOCK_COST: f64 = 2.0;
/// One dense 4×4 applied to every amplitude quad.
const PAIR_BLOCK_COST: f64 = 4.0;

/// Sweep cost of applying `op` through the raw per-gate kernels.
fn op_cost(op: &Op) -> f64 {
    match op {
        Op::Fixed { gate, .. } => match gate {
            FixedGate::Cz => 0.25,
            FixedGate::Swap => 0.5,
            FixedGate::Cx | FixedGate::Cy => 1.0,
            _ => SINGLE_BLOCK_COST,
        },
        Op::Rotation { .. } => SINGLE_BLOCK_COST,
        Op::ControlledRotation { .. } => 1.0,
        Op::TwoQubitRotation { .. } => PAIR_BLOCK_COST,
    }
}

/// Whether `op` is diagonal in the computational basis *at compile time*
/// (free parameters are excluded so the diagonal can be precomputed).
fn is_static_diagonal(op: &Op) -> bool {
    match op {
        Op::Fixed { gate, .. } => matches!(
            gate,
            FixedGate::Z
                | FixedGate::S
                | FixedGate::Sdg
                | FixedGate::T
                | FixedGate::Tdg
                | FixedGate::Cz
        ),
        Op::Rotation { gate, param, .. } => {
            matches!(gate, RotationGate::Rz | RotationGate::Phase)
                && matches!(param, Param::Bound(_))
        }
        Op::ControlledRotation { gate, param, .. } => {
            matches!(gate, RotationGate::Rz | RotationGate::Phase)
                && matches!(param, Param::Bound(_))
        }
        Op::TwoQubitRotation { gate, param, .. } => {
            matches!(gate, crate::gate::TwoQubitRotationGate::Rzz)
                && matches!(param, Param::Bound(_))
        }
    }
}

/// Multiplies `op`'s diagonal into `diag` (length `2^n`). Caller
/// guarantees [`is_static_diagonal`].
fn fold_diagonal(diag: &mut [C64], op: &Op) {
    match op {
        Op::Fixed { gate, qubits } => match gate {
            FixedGate::Cz => {
                let mask = (1usize << qubits[0]) | (1usize << qubits[1]);
                for (i, d) in diag.iter_mut().enumerate() {
                    if i & mask == mask {
                        *d = -*d;
                    }
                }
            }
            _ => {
                let m = gate.matrix();
                let (d0, d1) = (m[(0, 0)], m[(1, 1)]);
                let mask = 1usize << qubits[0];
                for (i, d) in diag.iter_mut().enumerate() {
                    *d = *d * if i & mask != 0 { d1 } else { d0 };
                }
            }
        },
        Op::Rotation { gate, qubit, param } => {
            let e = gate.entries(param.angle(&[]));
            let mask = 1usize << qubit;
            for (i, d) in diag.iter_mut().enumerate() {
                *d = *d * if i & mask != 0 { e[3] } else { e[0] };
            }
        }
        Op::ControlledRotation {
            gate,
            control,
            target,
            param,
        } => {
            let e = gate.entries(param.angle(&[]));
            let cmask = 1usize << control;
            let tmask = 1usize << target;
            for (i, d) in diag.iter_mut().enumerate() {
                if i & cmask != 0 {
                    *d = *d * if i & tmask != 0 { e[3] } else { e[0] };
                }
            }
        }
        Op::TwoQubitRotation {
            gate,
            first,
            second,
            param,
        } => {
            let e = gate.entries(param.angle(&[]));
            let fmask = 1usize << first;
            let smask = 1usize << second;
            for (i, d) in diag.iter_mut().enumerate() {
                let idx = (usize::from(i & fmask != 0) << 1) | usize::from(i & smask != 0);
                *d = *d * e[idx * 4 + idx];
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Small-matrix algebra (2×2 and 4×4 row-major, |hi,lo⟩ basis for 4×4).
// ---------------------------------------------------------------------------

const ID2: [C64; 4] = [C64::ONE, C64::ZERO, C64::ZERO, C64::ONE];

/// `a · b` for row-major 2×2 matrices.
fn mat2_mul(a: &[C64; 4], b: &[C64; 4]) -> [C64; 4] {
    [
        a[0] * b[0] + a[1] * b[2],
        a[0] * b[1] + a[1] * b[3],
        a[2] * b[0] + a[3] * b[2],
        a[2] * b[1] + a[3] * b[3],
    ]
}

fn mat2_dagger(m: &[C64; 4]) -> [C64; 4] {
    [m[0].conj(), m[2].conj(), m[1].conj(), m[3].conj()]
}

/// `a · b` for row-major 4×4 matrices.
fn mat4_mul(a: &[C64; 16], b: &[C64; 16]) -> [C64; 16] {
    let mut out = [C64::ZERO; 16];
    for r in 0..4 {
        for k in 0..4 {
            let v = a[r * 4 + k];
            if v == C64::ZERO {
                continue;
            }
            for c in 0..4 {
                out[r * 4 + c] = out[r * 4 + c] + v * b[k * 4 + c];
            }
        }
    }
    out
}

fn mat4_identity() -> [C64; 16] {
    let mut m = [C64::ZERO; 16];
    for i in 0..4 {
        m[i * 4 + i] = C64::ONE;
    }
    m
}

fn mat4_dagger(m: &[C64; 16]) -> [C64; 16] {
    let mut out = [C64::ZERO; 16];
    for r in 0..4 {
        for c in 0..4 {
            out[r * 4 + c] = m[c * 4 + r].conj();
        }
    }
    out
}

/// Re-expresses a 4×4 written in `|a,b⟩` order in `|b,a⟩` order by
/// swapping the two index bits on rows and columns.
fn swap_bits_4(m: &[C64; 16]) -> [C64; 16] {
    const SIGMA: [usize; 4] = [0, 2, 1, 3];
    let mut out = [C64::ZERO; 16];
    for r in 0..4 {
        for c in 0..4 {
            out[r * 4 + c] = m[SIGMA[r] * 4 + SIGMA[c]];
        }
    }
    out
}

/// `hi ⊗ lo` in the `|hi,lo⟩` basis (hi = bit 1 of the composite index).
fn kron2(hi: &[C64; 4], lo: &[C64; 4]) -> [C64; 16] {
    let mut out = [C64::ZERO; 16];
    for rh in 0..2 {
        for rl in 0..2 {
            for ch in 0..2 {
                for cl in 0..2 {
                    out[(rh * 2 + rl) * 4 + (ch * 2 + cl)] = hi[rh * 2 + ch] * lo[rl * 2 + cl];
                }
            }
        }
    }
    out
}

/// 2×2 entries of a single-qubit op (`deriv` substitutes the rotation's
/// derivative matrix; fixed gates never own a parameter).
fn single_entries(op: &Op, params: &[f64], deriv: bool) -> [C64; 4] {
    match op {
        Op::Fixed { gate, .. } => {
            debug_assert!(!deriv, "fixed gates own no free parameter");
            let m = gate.matrix();
            [m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]]
        }
        Op::Rotation { gate, param, .. } => {
            let theta = param.angle(params);
            if deriv {
                gate.derivative_entries(theta)
            } else {
                gate.entries(theta)
            }
        }
        _ => unreachable!("single-qubit segment holds only 1-qubit ops"),
    }
}

/// 4×4 entries of `op` embedded in the `|hi,lo⟩` basis of a pair segment.
fn pair_entries(op: &Op, hi: usize, params: &[f64], deriv: bool) -> [C64; 16] {
    match op {
        Op::Fixed { gate, qubits } if gate.arity() == 2 => {
            debug_assert!(!deriv);
            let m = gate.matrix();
            let mut e = [C64::ZERO; 16];
            for r in 0..4 {
                for c in 0..4 {
                    e[r * 4 + c] = m[(r, c)];
                }
            }
            if qubits[0] == hi {
                e
            } else {
                swap_bits_4(&e)
            }
        }
        Op::Fixed { qubits, .. } => {
            let e2 = single_entries(op, params, deriv);
            if qubits[0] == hi {
                kron2(&e2, &ID2)
            } else {
                kron2(&ID2, &e2)
            }
        }
        Op::Rotation { qubit, .. } => {
            let e2 = single_entries(op, params, deriv);
            if *qubit == hi {
                kron2(&e2, &ID2)
            } else {
                kron2(&ID2, &e2)
            }
        }
        Op::ControlledRotation {
            gate,
            control,
            param,
            ..
        } => {
            let theta = param.angle(params);
            let r = if deriv {
                gate.derivative_entries(theta)
            } else {
                gate.entries(theta)
            };
            // |control,target⟩ basis, control high: identity on the
            // control-0 block (zero for the derivative — the projector
            // annihilates it), R on the control-1 block.
            let mut e = [C64::ZERO; 16];
            if !deriv {
                e[0] = C64::ONE;
                e[5] = C64::ONE;
            }
            e[10] = r[0];
            e[11] = r[1];
            e[14] = r[2];
            e[15] = r[3];
            if *control == hi {
                e
            } else {
                swap_bits_4(&e)
            }
        }
        Op::TwoQubitRotation {
            gate, first, param, ..
        } => {
            let theta = param.angle(params);
            let e = if deriv {
                gate.derivative_entries(theta)
            } else {
                gate.entries(theta)
            };
            if *first == hi {
                e
            } else {
                swap_bits_4(&e)
            }
        }
    }
}

fn merged_single(ops: &[Op], params: &[f64], deriv_at: Option<usize>) -> [C64; 4] {
    let mut m = ID2;
    for (i, op) in ops.iter().enumerate() {
        let e = single_entries(op, params, deriv_at == Some(i));
        // The later op acts after the earlier ones: left-multiply.
        m = mat2_mul(&e, &m);
    }
    m
}

fn merged_pair(ops: &[Op], hi: usize, params: &[f64], deriv_at: Option<usize>) -> [C64; 16] {
    // Tensor fast path: when every op is single-qubit the pair factors as
    // `kron(hi-run, lo-run)` (disjoint wires commute), so the re-merge
    // costs two 2×2 products instead of a chain of 4×4 ones. This keeps
    // tensor-paired segments as cheap to re-merge per run as the two
    // `Single` segments they replaced.
    if ops.iter().all(|op| op_wires(op).1.is_none()) {
        let mut mh = ID2;
        let mut ml = ID2;
        for (i, op) in ops.iter().enumerate() {
            let e = single_entries(op, params, deriv_at == Some(i));
            if op_wires(op).0 == hi {
                mh = mat2_mul(&e, &mh);
            } else {
                ml = mat2_mul(&e, &ml);
            }
        }
        return kron2(&mh, &ml);
    }
    let mut m = mat4_identity();
    for (i, op) in ops.iter().enumerate() {
        let e = pair_entries(op, hi, params, deriv_at == Some(i));
        m = mat4_mul(&e, &m);
    }
    m
}

// ---------------------------------------------------------------------------
// Segments
// ---------------------------------------------------------------------------

/// One fused execution unit of a [`CompiledCircuit`].
#[derive(Debug, Clone, PartialEq)]
pub enum Segment {
    /// An unmerged op, dispatched through the ordinary per-gate kernels.
    Raw(Op),
    /// A run of single-qubit ops on one wire, applied as one merged 2×2.
    Single {
        /// The wire the run acts on.
        qubit: usize,
        /// Constituent ops in application order.
        ops: Vec<Op>,
    },
    /// Ops confined to one qubit pair, applied as one merged 4×4 in the
    /// `|hi,lo⟩` basis.
    Pair {
        /// Higher qubit index (bit 1 of the composite basis index).
        hi: usize,
        /// Lower qubit index (bit 0).
        lo: usize,
        /// Constituent ops in application order.
        ops: Vec<Op>,
    },
    /// A diagonal superkernel: `≥ 2` statically diagonal ops collapsed
    /// into one precomputed `2^n` diagonal.
    Diagonal {
        /// The full-register diagonal, length `2^n`.
        diag: Vec<C64>,
        /// Constituent ops in application order.
        ops: Vec<Op>,
    },
}

impl Segment {
    /// Constituent ops in application order.
    pub fn ops(&self) -> &[Op] {
        match self {
            Segment::Raw(op) => std::slice::from_ref(op),
            Segment::Single { ops, .. }
            | Segment::Pair { ops, .. }
            | Segment::Diagonal { ops, .. } => ops,
        }
    }

    /// Number of source gates this segment covers.
    pub fn gate_count(&self) -> usize {
        self.ops().len()
    }

    /// `(position-in-segment, parameter-index)` of every free parameter.
    pub fn free_params(&self) -> Vec<(usize, usize)> {
        self.ops()
            .iter()
            .enumerate()
            .filter_map(|(k, op)| op.free_param().map(|i| (k, i)))
            .collect()
    }

    /// Applies the segment to `state`.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors from the underlying state operations.
    pub fn apply(&self, state: &mut State, params: &[f64]) -> Result<(), SimError> {
        match self {
            Segment::Raw(op) => op.apply(state, params),
            Segment::Single { qubit, ops } => {
                let _span = plateau_obs::span!("sim.fuse.single", gates = ops.len());
                let m = merged_single(ops, params, None);
                state.apply_fused_single(*qubit, &m)
            }
            Segment::Pair { hi, lo, ops } => {
                let _span = plateau_obs::span!("sim.fuse.pair", gates = ops.len());
                let m = merged_pair(ops, *hi, params, None);
                state.apply_fused_pair(*hi, *lo, &m)
            }
            Segment::Diagonal { diag, ops } => {
                let _span = plateau_obs::span!("sim.fuse.diagonal", gates = ops.len());
                state.apply_diagonal(diag)
            }
        }
    }

    /// Applies the segment's inverse (dagger of the merged unitary).
    ///
    /// # Errors
    ///
    /// Propagates kernel errors from the underlying state operations.
    pub fn apply_inverse(&self, state: &mut State, params: &[f64]) -> Result<(), SimError> {
        match self {
            Segment::Raw(op) => op.apply_inverse(state, params),
            Segment::Single { qubit, ops } => {
                let _span = plateau_obs::span!("sim.fuse.single", gates = ops.len());
                let m = mat2_dagger(&merged_single(ops, params, None));
                state.apply_fused_single(*qubit, &m)
            }
            Segment::Pair { hi, lo, ops } => {
                let _span = plateau_obs::span!("sim.fuse.pair", gates = ops.len());
                let m = mat4_dagger(&merged_pair(ops, *hi, params, None));
                state.apply_fused_pair(*hi, *lo, &m)
            }
            Segment::Diagonal { diag, ops } => {
                let _span = plateau_obs::span!("sim.fuse.diagonal", gates = ops.len());
                let inv: Vec<C64> = diag.iter().map(|d| d.conj()).collect();
                state.apply_diagonal(&inv)
            }
        }
    }

    /// Applies `∂(segment unitary)/∂θ` where `θ` is owned by the op at
    /// `op_pos` (a position returned by [`Segment::free_params`]): the
    /// merged product with that op's derivative matrix substituted.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors; `Raw` fixed ops reject like
    /// [`Op::apply_derivative`].
    pub fn apply_derivative(
        &self,
        state: &mut State,
        op_pos: usize,
        params: &[f64],
    ) -> Result<(), SimError> {
        match self {
            Segment::Raw(op) => op.apply_derivative(state, params),
            Segment::Single { qubit, ops } => {
                let m = merged_single(ops, params, Some(op_pos));
                state.apply_fused_single(*qubit, &m)
            }
            Segment::Pair { hi, lo, ops } => {
                let m = merged_pair(ops, *hi, params, Some(op_pos));
                state.apply_fused_pair(*hi, *lo, &m)
            }
            Segment::Diagonal { .. } => {
                unreachable!("diagonal superkernels are built from bound angles only")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The compiler
// ---------------------------------------------------------------------------

/// A circuit lowered into fused segments. See the module docs for the
/// compile-once/run-many contract.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledCircuit {
    n_qubits: usize,
    n_params: usize,
    segments: Vec<Segment>,
    gates_in: usize,
}

impl CompiledCircuit {
    /// Register width of the source circuit.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Free-parameter count of the source circuit.
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// The fused segments in application order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Gates in the source circuit.
    pub fn gates_in(&self) -> usize {
        self.gates_in
    }

    /// Fused execution units (the compression ratio is
    /// `gates_in / gates_out`).
    pub fn gates_out(&self) -> usize {
        self.segments.len()
    }

    /// Number of diagonal superkernels.
    pub fn superkernels(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| matches!(s, Segment::Diagonal { .. }))
            .count()
    }

    /// Approximate heap footprint of the compiled form: per-segment op
    /// lists plus precomputed diagonals (`2^n` complex entries each, the
    /// dominant term). Used for the `sim.fuse.compiled_bytes` gauge.
    pub fn approx_bytes(&self) -> usize {
        let segs: usize = self
            .segments
            .iter()
            .map(|s| {
                let ops = s.ops().len() * std::mem::size_of::<Op>();
                match s {
                    Segment::Diagonal { diag, .. } => {
                        ops + diag.len() * std::mem::size_of::<C64>()
                    }
                    _ => ops,
                }
            })
            .sum();
        segs + self.segments.len() * std::mem::size_of::<Segment>()
    }

    /// Whether compilation was a no-op: every segment is a raw op, in
    /// source order.
    pub fn is_identity_transform(&self) -> bool {
        self.segments.iter().all(|s| matches!(s, Segment::Raw(_)))
    }

    /// The constituent ops of every segment, concatenated in application
    /// order (a unitary-equivalent reordering of the source op list).
    pub fn flattened_ops(&self) -> Vec<Op> {
        self.segments.iter().flat_map(|s| s.ops().iter().cloned()).collect()
    }

    /// Validates a parameter buffer against the source circuit's count.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WrongParamCount`] on a length mismatch.
    pub fn check_params(&self, params: &[f64]) -> Result<(), SimError> {
        if params.len() != self.n_params {
            return Err(SimError::WrongParamCount {
                expected: self.n_params,
                found: params.len(),
            });
        }
        Ok(())
    }

    /// Runs the compiled circuit on `|0…0⟩`.
    ///
    /// Exploits the fixed input: a leading prefix of `Single` runs on
    /// distinct wires maps `|0…0⟩` to a product state, which is built
    /// directly by iterative doubling (two multiplies per amplitude in
    /// total) instead of one full-state sweep per wire. For the paper's
    /// ansatz this absorbs the entire first rotation layer. The general
    /// [`Self::run_on`] path is untouched — arbitrary input states get
    /// the ordinary segment sweeps.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WrongParamCount`] on a parameter mismatch.
    pub fn run(&self, params: &[f64]) -> Result<State, SimError> {
        self.check_params(params)?;
        let k = product_prefix_len(&self.segments);
        if k < 2 {
            let mut state = State::zero(self.n_qubits);
            self.run_on(&mut state, params)?;
            return Ok(state);
        }
        let mut amps = vec![C64::ZERO; 1usize << self.n_qubits];
        self.product_prologue(&mut amps, params, k);
        let mut state = State::from_amplitudes_unnormalized(amps)?;
        for seg in &self.segments[k..] {
            seg.apply(&mut state, params)?;
        }
        Ok(state)
    }

    /// Runs the compiled circuit on `|0…0⟩` **into** an existing state,
    /// resetting it in place first — [`CompiledCircuit::run`] without the
    /// allocation, including the same product-state prologue (iterative
    /// doubling works in place on the zeroed buffer), so the amplitudes
    /// are identical to [`CompiledCircuit::run`] for the same parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WrongParamCount`] on a parameter mismatch or
    /// [`SimError::DimensionMismatch`] if the state width differs.
    pub fn run_into(&self, state: &mut State, params: &[f64]) -> Result<(), SimError> {
        self.check_params(params)?;
        if state.n_qubits() != self.n_qubits {
            return Err(SimError::DimensionMismatch {
                expected: 1 << self.n_qubits,
                found: state.dim(),
            });
        }
        state.reset_zero();
        let k = product_prefix_len(&self.segments);
        if k < 2 {
            for seg in &self.segments {
                seg.apply(state, params)?;
            }
            return Ok(());
        }
        self.product_prologue(state.amps_mut(), params, k);
        for seg in &self.segments[k..] {
            seg.apply(state, params)?;
        }
        Ok(())
    }

    /// Writes the product state of the leading `k` distinct-wire `Single`
    /// segments into `amps`, which must be all-zero on entry. Shared by
    /// [`CompiledCircuit::run`] and [`CompiledCircuit::run_into`] so the
    /// two paths are arithmetically identical.
    fn product_prologue(&self, amps: &mut [C64], params: &[f64], k: usize) {
        let covered: usize = self.segments[..k].iter().map(Segment::gate_count).sum();
        let _span = plateau_obs::span!("sim.fuse.prologue", gates = covered);
        // |0⟩-column of each leading run's merged 2×2, by wire.
        let mut cols: Vec<Option<(C64, C64)>> = vec![None; self.n_qubits];
        for seg in &self.segments[..k] {
            let Segment::Single { qubit, ops } = seg else {
                unreachable!("product prefix holds only Single segments");
            };
            let m = merged_single(ops, params, None);
            cols[*qubit] = Some((m[0], m[2]));
        }
        amps[0] = C64::ONE;
        let mut len = 1usize;
        for col in cols {
            if let Some((v0, v1)) = col {
                for i in 0..len {
                    let a = amps[i];
                    amps[i] = a * v0;
                    amps[i + len] = a * v1;
                }
            }
            // Wires without a leading run stay in |0⟩: the upper half is
            // already zero and the lower half is unscaled.
            len <<= 1;
        }
    }

    /// Runs the compiled circuit on an existing state.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WrongParamCount`] on a parameter mismatch or
    /// [`SimError::DimensionMismatch`] if the state width differs.
    pub fn run_on(&self, state: &mut State, params: &[f64]) -> Result<(), SimError> {
        self.check_params(params)?;
        if state.n_qubits() != self.n_qubits {
            return Err(SimError::DimensionMismatch {
                expected: 1 << self.n_qubits,
                found: state.dim(),
            });
        }
        for seg in &self.segments {
            seg.apply(state, params)?;
        }
        Ok(())
    }
}

/// One open frontier group during span fusion.
struct Group {
    wires: [usize; 2],
    n_wires: usize,
    ops: Vec<Op>,
    first: usize,
}

impl Group {
    fn contains(&self, q: usize) -> bool {
        self.wires[..self.n_wires].contains(&q)
    }

    fn is_pair(&self, a: usize, b: usize) -> bool {
        self.n_wires == 2 && self.contains(a) && self.contains(b)
    }
}

/// `(wire, second-wire)` of an op.
fn op_wires(op: &Op) -> (usize, Option<usize>) {
    match op {
        Op::Fixed { gate, qubits } => {
            if gate.arity() == 1 {
                (qubits[0], None)
            } else {
                (qubits[0], Some(qubits[1]))
            }
        }
        Op::Rotation { qubit, .. } => (*qubit, None),
        Op::ControlledRotation { control, target, .. } => (*control, Some(*target)),
        Op::TwoQubitRotation { first, second, .. } => (*first, Some(*second)),
    }
}

/// Splits a pair group back into per-wire single runs and raw two-qubit
/// ops; returns the plan and its sweep cost.
fn split_pair_group(ops: &[Op]) -> (f64, Vec<Segment>) {
    let mut plan = Vec::new();
    let mut cost = 0.0;
    // Per-wire pending runs, kept in order of first appearance.
    let mut runs: Vec<(usize, Vec<Op>)> = Vec::new();
    let flush = |runs: &mut Vec<(usize, Vec<Op>)>, plan: &mut Vec<Segment>, cost: &mut f64| {
        for (qubit, run) in runs.drain(..) {
            if run.len() >= 2 {
                *cost += SINGLE_BLOCK_COST;
                plan.push(Segment::Single { qubit, ops: run });
            } else {
                for op in run {
                    *cost += op_cost(&op);
                    plan.push(Segment::Raw(op));
                }
            }
        }
    };
    for op in ops {
        match op_wires(op) {
            (q, None) => {
                if let Some((_, run)) = runs.iter_mut().find(|(w, _)| *w == q) {
                    run.push(op.clone());
                } else {
                    runs.push((q, vec![op.clone()]));
                }
            }
            _ => {
                flush(&mut runs, &mut plan, &mut cost);
                cost += op_cost(op);
                plan.push(Segment::Raw(op.clone()));
            }
        }
    }
    flush(&mut runs, &mut plan, &mut cost);
    (cost, plan)
}

/// Emits one closed group through the cost model.
fn emit_group(segments: &mut Vec<Segment>, group: Group) {
    let Group {
        wires, n_wires, ops, ..
    } = group;
    if ops.len() == 1 {
        let mut ops = ops;
        segments.push(Segment::Raw(ops.pop().expect("one op")));
        return;
    }
    if n_wires == 1 {
        segments.push(Segment::Single {
            qubit: wires[0],
            ops,
        });
        return;
    }
    let (split_cost, split_plan) = split_pair_group(&ops);
    if PAIR_BLOCK_COST < split_cost {
        let (hi, lo) = (wires[0].max(wires[1]), wires[0].min(wires[1]));
        segments.push(Segment::Pair { hi, lo, ops });
    } else {
        segments.extend(split_plan);
    }
}

/// Length of the leading run of `Single` segments on pairwise-distinct
/// wires — the prefix [`CompiledCircuit::run`] absorbs into a direct
/// product-state build when starting from `|0…0⟩`.
fn product_prefix_len(segments: &[Segment]) -> usize {
    let mut claimed: u64 = 0;
    let mut k = 0;
    for seg in segments {
        if let Segment::Single { qubit, .. } = seg {
            let bit = 1u64 << qubit;
            if claimed & bit == 0 {
                claimed |= bit;
                k += 1;
                continue;
            }
        }
        break;
    }
    k
}

/// Tensor-pairs adjacent `Single` segments on distinct wires into one
/// `Pair` sweep: a 4×4 block costs the same complex multiplies per
/// amplitude as the two 2×2 blocks it replaces (4 either way) but walks
/// the state once instead of twice, halving loads and stores. That trade
/// only pays once sweeps are memory-bound — cache-resident states are
/// ALU-bound and the 4×4's extra adds lose (measured ~10% slower at 10
/// qubits, ~20% faster at 16–20) — so [`compile`] runs this pass only
/// for registers wider than [`SUPERKERNEL_MAX_QUBITS`]. The leading
/// product prefix is left alone — [`CompiledCircuit::run`] absorbs it
/// far more cheaply than any sweep. The merged matrix stays a cheap kron
/// of the two per-wire runs (see [`merged_pair`]).
fn pair_adjacent_singles(segments: Vec<Segment>) -> Vec<Segment> {
    let keep = product_prefix_len(&segments);
    let mut out: Vec<Segment> = Vec::with_capacity(segments.len());
    for (pos, seg) in segments.into_iter().enumerate() {
        if pos < keep {
            out.push(seg);
            continue;
        }
        let pairable = out.len() > keep
            && matches!(
                (out.last(), &seg),
                (
                    Some(Segment::Single { qubit: qa, .. }),
                    Segment::Single { qubit: qb, .. },
                ) if qa != qb
            );
        if pairable {
            let Some(Segment::Single { qubit: qa, ops: mut oa }) = out.pop() else {
                unreachable!("pairable requires a trailing Single");
            };
            let Segment::Single { qubit: qb, ops: ob } = seg else {
                unreachable!("pairable requires an incoming Single");
            };
            oa.extend(ob);
            out.push(Segment::Pair {
                hi: qa.max(qb),
                lo: qa.min(qb),
                ops: oa,
            });
        } else {
            out.push(seg);
        }
    }
    out
}

/// Frontier-fuses one span of non-superkernel ops into `segments`.
fn fuse_span(segments: &mut Vec<Segment>, span: Vec<Op>) {
    let mut open: Vec<Group> = Vec::new();
    let mut closed: Vec<Group> = Vec::new();
    for (pos, op) in span.into_iter().enumerate() {
        match op_wires(&op) {
            (q, None) => {
                if let Some(g) = open.iter_mut().find(|g| g.contains(q)) {
                    g.ops.push(op);
                } else {
                    open.push(Group {
                        wires: [q, 0],
                        n_wires: 1,
                        ops: vec![op],
                        first: pos,
                    });
                }
            }
            (a, Some(b)) => {
                if let Some(g) = open.iter_mut().find(|g| g.is_pair(a, b)) {
                    g.ops.push(op);
                } else {
                    // Close every open group touching either wire, then
                    // open a fresh pair group.
                    let (conflicting, keep): (Vec<Group>, Vec<Group>) =
                        open.drain(..).partition(|g| g.contains(a) || g.contains(b));
                    open = keep;
                    closed.extend(conflicting);
                    open.push(Group {
                        wires: [a, b],
                        n_wires: 2,
                        ops: vec![op],
                        first: pos,
                    });
                }
            }
        }
    }
    closed.extend(open);
    // Coexisting groups act on disjoint wires, so emitting in first-op
    // order is a commuting (semantics-preserving) reordering.
    closed.sort_by_key(|g| g.first);
    for g in closed {
        emit_group(segments, g);
    }
}

/// Compiles a circuit into fused segments. Pure and deterministic: the
/// same circuit always yields the same segment list.
///
/// Emits the `sim.fuse.gates_in`, `sim.fuse.gates_out`, and
/// `sim.fuse.superkernels` counters so the compression ratio is
/// observable.
pub fn compile(circuit: &Circuit) -> CompiledCircuit {
    let n = circuit.n_qubits();
    let ops = circuit.ops();
    let mut segments = Vec::new();
    let mut span: Vec<Op> = Vec::new();
    let mut i = 0;
    while i < ops.len() {
        if n >= 1 && n <= SUPERKERNEL_MAX_QUBITS && is_static_diagonal(&ops[i]) {
            let mut j = i + 1;
            while j < ops.len() && is_static_diagonal(&ops[j]) {
                j += 1;
            }
            let run = &ops[i..j];
            let run_cost: f64 = run.iter().map(op_cost).sum();
            if run.len() >= 2 && run_cost > DIAG_SWEEP_COST {
                fuse_span(&mut segments, std::mem::take(&mut span));
                let mut diag = vec![C64::ONE; 1usize << n];
                for op in run {
                    fold_diagonal(&mut diag, op);
                }
                segments.push(Segment::Diagonal {
                    diag,
                    ops: run.to_vec(),
                });
                i = j;
                continue;
            }
        }
        span.push(ops[i].clone());
        i += 1;
    }
    fuse_span(&mut segments, span);
    // Sweep-halving only wins where sweeps are memory-bound; see
    // `pair_adjacent_singles`.
    let segments = if n > SUPERKERNEL_MAX_QUBITS {
        pair_adjacent_singles(segments)
    } else {
        segments
    };

    let compiled = CompiledCircuit {
        n_qubits: n,
        n_params: circuit.n_params(),
        segments,
        gates_in: ops.len(),
    };
    plateau_obs::counter!("sim.fuse.gates_in").add(compiled.gates_in as u64);
    plateau_obs::counter!("sim.fuse.gates_out").add(compiled.gates_out() as u64);
    plateau_obs::counter!("sim.fuse.superkernels").add(compiled.superkernels() as u64);
    plateau_obs::gauge!("sim.fuse.compiled_bytes").set(compiled.approx_bytes() as f64);
    compiled
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::TwoQubitRotationGate;
    use crate::passes::simplify;
    use crate::unitary::circuit_unitary;
    use plateau_linalg::CMatrix;
    use plateau_rng::check::{forall, DEFAULT_CASES};
    use plateau_rng::{prop_assert, prop_assert_eq, Rng};

    /// Dense unitary of a compiled circuit, built by running it on every
    /// basis state (independent of `circuit_unitary`'s embedding math).
    fn compiled_unitary(c: &CompiledCircuit, params: &[f64]) -> CMatrix {
        let dim = 1usize << c.n_qubits();
        CMatrix::from_fn(dim, dim, |r, col| {
            let mut s = State::basis(c.n_qubits(), col);
            c.run_on(&mut s, params).unwrap();
            s.amplitudes()[r]
        })
    }

    /// The paper's training layer: RX·RY per qubit, then the CZ chain.
    fn paper_circuit(n: usize, layers: usize) -> Circuit {
        let mut c = Circuit::new(n).unwrap();
        for _ in 0..layers {
            for q in 0..n {
                c.rx(q).unwrap().ry(q).unwrap();
            }
            for q in 0..n.saturating_sub(1) {
                c.cz(q, q + 1).unwrap();
            }
        }
        c
    }

    #[test]
    fn knob_override_round_trips() {
        set_fuse(true);
        assert!(fuse_enabled());
        set_fuse(false);
        assert!(!fuse_enabled());
        reset_fuse();
    }

    #[test]
    fn paper_ansatz_compresses_to_per_wire_blocks_and_layer_superkernels() {
        let n = 10;
        let layers = 5;
        let c = paper_circuit(n, layers);
        let compiled = compile(&c);
        assert_eq!(compiled.gates_in(), layers * (2 * n + n - 1));
        // Per layer: one merged RX·RY block per wire + one CZ-chain
        // diagonal superkernel.
        assert_eq!(compiled.gates_out(), layers * (n + 1));
        assert_eq!(compiled.superkernels(), layers);

        let params: Vec<f64> = (0..c.n_params()).map(|i| 0.1 + 0.03 * i as f64).collect();
        let raw = c.run(&params).unwrap();
        let fused = compiled.run(&params).unwrap();
        for (a, b) in raw.amplitudes().iter().zip(fused.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-12), "{a} vs {b}");
        }
    }

    #[test]
    fn wide_registers_tensor_pair_post_prefix_single_runs() {
        // Wider than SUPERKERNEL_MAX_QUBITS so the pairing pass is live.
        let n = 14;
        let mut c = Circuit::new(n).unwrap();
        for q in 0..n {
            c.rx(q).unwrap().ry(q).unwrap();
        }
        // Close the wire-0 and wire-3 frontiers (each CZ pair group is
        // itself closed by the next CZ sharing a wire, so the trailing
        // rotation runs open fresh single groups instead of being
        // absorbed into an open pair block).
        c.cz(0, 1).unwrap();
        c.cz(1, 2).unwrap();
        c.cz(3, 4).unwrap();
        c.cz(4, 5).unwrap();
        c.rx(0).unwrap().ry(0).unwrap();
        c.rx(3).unwrap().ry(3).unwrap();
        let compiled = compile(&c);
        // The first rotation layer is the product prefix (one Single per
        // wire, protected from pairing), the CZs stay raw at this width,
        // and the two trailing runs tensor-pair into one 4×4 sweep.
        assert_eq!(compiled.gates_out(), n + 5);
        assert!(compiled.segments()[..n]
            .iter()
            .all(|s| matches!(s, Segment::Single { .. })));
        assert!(compiled.segments()[n..n + 4]
            .iter()
            .all(|s| matches!(s, Segment::Raw(_))));
        let pair = &compiled.segments()[n + 4];
        assert!(matches!(pair, Segment::Pair { hi: 3, lo: 0, .. }));

        // Full-state check: the paired + prologue run must match the
        // gate-by-gate run from |0…0⟩.
        let params: Vec<f64> = (0..c.n_params()).map(|i| 0.4 + 0.031 * i as f64).collect();
        let raw = c.run(&params).unwrap();
        let fused = compiled.run(&params).unwrap();
        for (a, b) in raw.amplitudes().iter().zip(fused.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-12), "{a} vs {b}");
        }

        // The kron fast path must also produce per-op derivatives: check
        // every free parameter of the paired segment against a manual
        // gate-by-gate derivative chain from the same input state.
        for (op_pos, _) in pair.free_params() {
            let phi = State::zero(n);
            let mut via_segment = phi.clone();
            pair.apply_derivative(&mut via_segment, op_pos, &params).unwrap();
            let mut via_op = phi.clone();
            let ops = pair.ops();
            for op in &ops[..op_pos] {
                op.apply(&mut via_op, &params).unwrap();
            }
            ops[op_pos].apply_derivative(&mut via_op, &params).unwrap();
            for op in &ops[op_pos + 1..] {
                op.apply(&mut via_op, &params).unwrap();
            }
            for (a, b) in via_segment.amplitudes().iter().zip(via_op.amplitudes()) {
                assert!(a.approx_eq(*b, 1e-12), "derivative drift: {a} vs {b}");
            }
        }
    }

    /// Property: `CompiledCircuit::run` (the product-prologue path)
    /// matches the gate-by-gate run from `|0…0⟩` on random circuits.
    #[test]
    fn fused_run_from_zero_matches_the_raw_run() {
        forall(
            0x9201,
            DEFAULT_CASES,
            |rng| {
                let n = rng.gen_range(1..6usize);
                let n_ops = rng.gen_range(1..30usize);
                let mut c = Circuit::new(n).unwrap();
                for _ in 0..n_ops {
                    let q = rng.gen_range(0..n);
                    match rng.gen_range(0..7u32) {
                        0 => c.h(q).unwrap(),
                        1 => c.rx(q).unwrap(),
                        2 => c.ry(q).unwrap(),
                        3 => c.rz(q).unwrap(),
                        4 => c.x(q).unwrap(),
                        5 if n >= 2 => {
                            let p = (q + 1 + rng.gen_range(0..n - 1)) % n;
                            c.cz(q, p).unwrap()
                        }
                        6 if n >= 2 => {
                            let p = (q + 1 + rng.gen_range(0..n - 1)) % n;
                            c.cx(q, p).unwrap()
                        }
                        _ => c.ry(q).unwrap(),
                    };
                }
                let params: Vec<f64> =
                    (0..c.n_params()).map(|_| rng.gen_range(-3.0..3.0)).collect();
                (c, params)
            },
            |(c, params)| {
                let raw = c.run(params).unwrap();
                let fused = compile(c).run(params).unwrap();
                for (a, b) in raw.amplitudes().iter().zip(fused.amplitudes()) {
                    prop_assert!(a.approx_eq(*b, 1e-12), "{} vs {}", a, b);
                }
                Ok(())
            },
        );
    }

    /// Property: fusing any random circuit preserves the full unitary to
    /// 1e-12 (compares against the independent `circuit_unitary` oracle).
    #[test]
    fn fusion_preserves_the_circuit_unitary() {
        forall(
            0xf05e,
            DEFAULT_CASES,
            |rng| {
                let n = rng.gen_range(1..5usize);
                let n_ops = rng.gen_range(1..25usize);
                let mut c = Circuit::new(n).unwrap();
                for _ in 0..n_ops {
                    let q = rng.gen_range(0..n);
                    match rng.gen_range(0..10u32) {
                        0 => c.h(q).unwrap(),
                        1 => c.x(q).unwrap(),
                        2 => c.z(q).unwrap(),
                        3 => c.rx(q).unwrap(),
                        4 => c.ry(q).unwrap(),
                        5 => c.rz(q).unwrap(),
                        6 => c
                            .push_rotation_const(RotationGate::Rz, q, rng.gen_range(-3.0..3.0))
                            .unwrap(),
                        7 if n >= 2 => {
                            let p = (q + 1 + rng.gen_range(0..n - 1)) % n;
                            c.cz(q, p).unwrap()
                        }
                        8 if n >= 2 => {
                            let p = (q + 1 + rng.gen_range(0..n - 1)) % n;
                            c.cx(q, p).unwrap()
                        }
                        9 if n >= 2 => {
                            let p = (q + 1 + rng.gen_range(0..n - 1)) % n;
                            c.push_two_qubit_rotation(TwoQubitRotationGate::Rzz, q, p).unwrap()
                        }
                        _ => c.ry(q).unwrap(),
                    };
                }
                let params: Vec<f64> =
                    (0..c.n_params()).map(|_| rng.gen_range(-3.0..3.0)).collect();
                (c, params)
            },
            |(c, params)| {
                let compiled = compile(c);
                prop_assert_eq!(compiled.flattened_ops().len(), c.gate_count());
                let expected = circuit_unitary(c, params).unwrap();
                let got = compiled_unitary(&compiled, params);
                prop_assert!(
                    expected.max_abs_diff(&got) < 1e-12,
                    "unitary drift {}",
                    expected.max_abs_diff(&got)
                );
                Ok(())
            },
        );
    }

    /// Property: the diagonal superkernel equals gate-by-gate application
    /// at every width from 2 to 12 qubits.
    #[test]
    fn superkernel_matches_gate_by_gate_at_2_to_12_qubits() {
        for n in 2..=12usize {
            let mut c = Circuit::new(n).unwrap();
            // Non-diagonal prologue so the superkernel sees a dense state.
            for q in 0..n {
                c.h(q).unwrap();
            }
            // A long statically diagonal run: the CZ chain plus scattered
            // phase-family gates and bound RZ/RZZ.
            for q in 0..n - 1 {
                c.cz(q, q + 1).unwrap();
            }
            c.z(0).unwrap();
            c.push_fixed(FixedGate::S, &[n / 2]).unwrap();
            c.push_fixed(FixedGate::T, &[n - 1]).unwrap();
            c.push_rotation_const(RotationGate::Rz, 0, 0.37).unwrap();
            c.push_rotation_const(RotationGate::Phase, n - 1, -1.1).unwrap();
            c.push_two_qubit_rotation(TwoQubitRotationGate::Rzz, 0, n - 1)
                .unwrap();
            c.bind_last_param(0.81).unwrap();

            let compiled = compile(&c);
            assert!(
                compiled.superkernels() >= 1,
                "n={n}: expected a diagonal superkernel, got {:?}",
                compiled.segments().len()
            );
            let raw = c.run(&[]).unwrap();
            let fused = compiled.run(&[]).unwrap();
            for (a, b) in raw.amplitudes().iter().zip(fused.amplitudes()) {
                assert!(a.approx_eq(*b, 1e-12), "n={n}: {a} vs {b}");
            }
        }
    }

    /// Property: a circuit with zero adjacent-mergeable gates compiles to
    /// the identity transform — all-raw segments, same op list.
    #[test]
    fn unmergeable_circuits_compile_to_the_identity_transform() {
        forall(
            0x1d37,
            DEFAULT_CASES,
            |rng| {
                let n = rng.gen_range(4..9usize);
                let mut c = Circuit::new(n).unwrap();
                // One non-diagonal single-qubit op per wire, each wire
                // distinct: nothing shares a frontier, nothing is an
                // adjacent diagonal pair.
                let with_cz = rng.gen_range(0..2u32) == 0 && n >= 6;
                let single_wires = if with_cz { n - 2 } else { n };
                for q in 0..single_wires {
                    match rng.gen_range(0..4u32) {
                        0 => c.h(q).unwrap(),
                        1 => c.x(q).unwrap(),
                        2 => c.rx(q).unwrap(),
                        _ => c.ry(q).unwrap(),
                    };
                }
                if with_cz {
                    // A lone CZ on two otherwise untouched wires: a
                    // one-op pair group and an isolated diagonal op.
                    c.cz(n - 2, n - 1).unwrap();
                }
                c
            },
            |c| {
                let compiled = compile(c);
                prop_assert!(compiled.is_identity_transform());
                prop_assert_eq!(compiled.gates_out(), c.gate_count());
                prop_assert_eq!(&compiled.flattened_ops(), c.ops());
                Ok(())
            },
        );
    }

    #[test]
    fn compilation_is_deterministic() {
        let c = paper_circuit(6, 3);
        assert_eq!(compile(&c), compile(&c));
    }

    /// `simplify` then `compile` is the documented pass order; both the
    /// simplified and unsimplified pipelines agree with the raw run.
    #[test]
    fn simplify_then_fuse_composes_deterministically() {
        let mut c = Circuit::new(3).unwrap();
        c.x(0).unwrap().x(0).unwrap(); // cancels under simplify
        c.rx(0).unwrap().ry(0).unwrap();
        c.h(1).unwrap();
        c.cz(0, 1).unwrap();
        c.cz(1, 2).unwrap();
        c.rz(2).unwrap();
        let params: Vec<f64> = (0..c.n_params()).map(|i| 0.4 + 0.2 * i as f64).collect();

        let simplified = simplify(&c);
        let a = compile(&simplified);
        let b = compile(&c);
        // Deterministic on each input…
        assert_eq!(a, compile(&simplify(&c)));
        assert_eq!(b, compile(&c));
        // …simplify-first never produces more segments…
        assert!(a.gates_out() <= b.gates_out());
        // …and both pipelines agree with the raw run.
        let raw = c.run(&params).unwrap();
        for fused in [a.run(&params).unwrap(), b.run(&params).unwrap()] {
            for (x, y) in raw.amplitudes().iter().zip(fused.amplitudes()) {
                assert!(x.approx_eq(*y, 1e-12), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn pair_blocks_absorb_two_qubit_rotations() {
        // rxx(0,1) · ryy(0,1): two dense 4×4 sweeps fuse into one.
        let mut c = Circuit::new(2).unwrap();
        c.push_two_qubit_rotation(TwoQubitRotationGate::Rxx, 0, 1).unwrap();
        c.push_two_qubit_rotation(TwoQubitRotationGate::Ryy, 1, 0).unwrap();
        let compiled = compile(&c);
        assert_eq!(compiled.gates_out(), 1);
        assert!(matches!(compiled.segments()[0], Segment::Pair { hi: 1, lo: 0, .. }));
        let params = [0.9, -0.4];
        let raw = c.run(&params).unwrap();
        let fused = compiled.run(&params).unwrap();
        for (a, b) in raw.amplitudes().iter().zip(fused.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn controlled_rotation_merges_and_differentiates_inside_a_pair_block() {
        let mut c = Circuit::new(2).unwrap();
        c.h(0).unwrap().h(1).unwrap();
        c.push_controlled_rotation(RotationGate::Ry, 0, 1).unwrap();
        c.push_two_qubit_rotation(TwoQubitRotationGate::Rxx, 0, 1).unwrap();
        let compiled = compile(&c);
        let params = [0.7, 1.3];
        let raw = c.run(&params).unwrap();
        let fused = compiled.run(&params).unwrap();
        for (a, b) in raw.amplitudes().iter().zip(fused.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-12));
        }
        // The segment's derivative equals the op-level derivative path,
        // both applied to the state entering the segment.
        let pair_at = compiled
            .segments()
            .iter()
            .position(|s| matches!(s, Segment::Pair { .. }))
            .expect("pair segment");
        let mut phi = State::zero(2);
        for seg in &compiled.segments()[..pair_at] {
            seg.apply(&mut phi, &params).unwrap();
        }
        let pair = &compiled.segments()[pair_at];
        for (op_pos, idx) in pair.free_params() {
            let mut via_segment = phi.clone();
            pair.apply_derivative(&mut via_segment, op_pos, &params).unwrap();
            // Chain rule by hand: apply the ops before `op_pos`, the op
            // derivative, then the tail.
            let mut via_op = phi.clone();
            let ops = pair.ops();
            for op in &ops[..op_pos] {
                op.apply(&mut via_op, &params).unwrap();
            }
            ops[op_pos].apply_derivative(&mut via_op, &params).unwrap();
            for op in &ops[op_pos + 1..] {
                op.apply(&mut via_op, &params).unwrap();
            }
            for (a, b) in via_segment.amplitudes().iter().zip(via_op.amplitudes()) {
                assert!(a.approx_eq(*b, 1e-10), "param {idx}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn segment_inverse_round_trips() {
        let c = paper_circuit(4, 2);
        let params: Vec<f64> = (0..c.n_params()).map(|i| (i as f64).sin()).collect();
        let compiled = compile(&c);
        let mut s = c.run(&params).unwrap();
        for seg in compiled.segments().iter().rev() {
            seg.apply_inverse(&mut s, &params).unwrap();
        }
        let zero = State::zero(4);
        for (a, b) in s.amplitudes().iter().zip(zero.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn run_on_validates_params_and_width() {
        let mut c = Circuit::new(2).unwrap();
        c.rx(0).unwrap();
        let compiled = compile(&c);
        assert!(matches!(
            compiled.run(&[]),
            Err(SimError::WrongParamCount { expected: 1, found: 0 })
        ));
        let mut wrong = State::zero(3);
        assert!(matches!(
            compiled.run_on(&mut wrong, &[0.2]),
            Err(SimError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn short_diagonal_runs_stay_raw() {
        // Two adjacent CZs cost 0.5 sweeps raw — cheaper than a 1.0-sweep
        // diagonal multiply, so the cost model leaves them alone.
        let mut c = Circuit::new(4).unwrap();
        c.cz(0, 1).unwrap().cz(2, 3).unwrap();
        let compiled = compile(&c);
        assert_eq!(compiled.superkernels(), 0);
        assert!(compiled.is_identity_transform());
    }

    #[test]
    fn big_registers_skip_superkernels_but_still_merge_wires() {
        let c = paper_circuit(SUPERKERNEL_MAX_QUBITS + 1, 1);
        let compiled = compile(&c);
        assert_eq!(compiled.superkernels(), 0);
        // RX·RY still merges per wire; the CZ chain stays raw.
        assert!(compiled
            .segments()
            .iter()
            .any(|s| matches!(s, Segment::Single { .. })));
    }
}
