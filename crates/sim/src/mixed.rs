//! Exact mixed-state (density-matrix) simulation.
//!
//! The trajectory sampler in [`crate::noise`] converges to the channel
//! result only statistically; this module evolves the density matrix
//! `ρ` exactly: `ρ ← U ρ U†` for gates and `ρ ← Σ_k K_k ρ K_k†` for Kraus
//! channels. Cost is `O(4^n)` memory and `O(4^n)` work per single-qubit
//! operation, so it is meant for validation and small-register noise
//! studies (≤ ~10 qubits) — exactly the regime of the paper.
//!
//! It also provides amplitude damping, a non-unital channel that Pauli
//! trajectories cannot express.
//!
//! # Examples
//!
//! ```
//! use plateau_sim::{mixed::DensityMatrix, Circuit, Observable};
//!
//! let mut c = Circuit::new(2)?;
//! c.h(0)?.cx(0, 1)?;
//! let mut rho = DensityMatrix::zero(2);
//! rho.apply_circuit(&c, &[])?;
//! // A Bell state is pure and maximally correlated.
//! assert!((rho.purity() - 1.0).abs() < 1e-12);
//! let cost = Observable::global_cost(2);
//! assert!((rho.expectation(&cost)? - 0.5).abs() < 1e-12);
//! # Ok::<(), plateau_sim::SimError>(())
//! ```

use crate::circuit::Circuit;
use crate::error::SimError;
use crate::observable::Observable;
use crate::state::{State, MAX_QUBITS};
use plateau_linalg::{CMatrix, C64};

/// Mixed-state density-matrix cap: 2·MAX_QUBITS of amplitude indices would
/// be absurd; 13 qubits is already a 64M-entry matrix.
const MAX_MIXED_QUBITS: usize = 13;

/// A density matrix `ρ` over `n` qubits (dimension `2^n × 2^n`).
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    n_qubits: usize,
    /// Row-major dense storage.
    mat: CMatrix,
}

impl DensityMatrix {
    /// The pure state `|0…0⟩⟨0…0|`.
    ///
    /// # Panics
    ///
    /// Panics for a zero or oversized register.
    pub fn zero(n_qubits: usize) -> DensityMatrix {
        assert!(
            n_qubits >= 1 && n_qubits <= MAX_MIXED_QUBITS.min(MAX_QUBITS),
            "qubit count out of range for density-matrix simulation"
        );
        let dim = 1usize << n_qubits;
        let mut mat = CMatrix::zeros(dim, dim);
        mat[(0, 0)] = C64::ONE;
        DensityMatrix { n_qubits, mat }
    }

    /// The projector `|ψ⟩⟨ψ|` of a pure state.
    pub fn from_pure(state: &State) -> DensityMatrix {
        let amps = state.amplitudes();
        let dim = amps.len();
        let mut mat = CMatrix::zeros(dim, dim);
        for i in 0..dim {
            for j in 0..dim {
                mat[(i, j)] = amps[i] * amps[j].conj();
            }
        }
        DensityMatrix {
            n_qubits: state.n_qubits(),
            mat,
        }
    }

    /// The maximally mixed state `I / 2^n`.
    ///
    /// # Panics
    ///
    /// Panics for a zero or oversized register.
    pub fn maximally_mixed(n_qubits: usize) -> DensityMatrix {
        let mut dm = DensityMatrix::zero(n_qubits);
        let dim = dm.dim();
        let p = C64::real(1.0 / dim as f64);
        dm.mat = CMatrix::zeros(dim, dim);
        for i in 0..dim {
            dm.mat[(i, i)] = p;
        }
        dm
    }

    /// Number of qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Hilbert-space dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        1usize << self.n_qubits
    }

    /// Read-only view of the matrix.
    #[inline]
    pub fn matrix(&self) -> &CMatrix {
        &self.mat
    }

    /// Trace (1 for physical states).
    pub fn trace(&self) -> f64 {
        self.mat.trace().re
    }

    /// Purity `Tr(ρ²)`.
    pub fn purity(&self) -> f64 {
        crate::density::purity(&self.mat)
    }

    /// Probability of computational-basis outcome `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds the dimension.
    pub fn probability(&self, index: usize) -> f64 {
        self.mat[(index, index)].re
    }

    fn check_qubit(&self, q: usize) -> Result<(), SimError> {
        if q >= self.n_qubits {
            Err(SimError::QubitOutOfRange {
                qubit: q,
                n_qubits: self.n_qubits,
            })
        } else {
            Ok(())
        }
    }

    /// Applies a single-qubit operator `M` from the left (rows):
    /// `ρ ← M ρ`. Building block for unitaries and Kraus terms.
    fn apply_left(&mut self, qubit: usize, m: &[C64; 4]) {
        let dim = self.dim();
        let stride = 1usize << qubit;
        for col in 0..dim {
            let mut base = 0;
            while base < dim {
                for offset in base..base + stride {
                    let i0 = offset;
                    let i1 = offset + stride;
                    let a0 = self.mat[(i0, col)];
                    let a1 = self.mat[(i1, col)];
                    self.mat[(i0, col)] = m[0] * a0 + m[1] * a1;
                    self.mat[(i1, col)] = m[2] * a0 + m[3] * a1;
                }
                base += stride << 1;
            }
        }
    }

    /// Applies `M†` from the right (columns): `ρ ← ρ M†`.
    fn apply_right_dagger(&mut self, qubit: usize, m: &[C64; 4]) {
        let dim = self.dim();
        let stride = 1usize << qubit;
        // (ρ M†)[r, c] pairs columns (c0, c1):
        // new[r, c0] = ρ[r,c0]·conj(m00) + ρ[r,c1]·conj(m01)
        // new[r, c1] = ρ[r,c0]·conj(m10) + ρ[r,c1]·conj(m11)
        for row in 0..dim {
            let mut base = 0;
            while base < dim {
                for offset in base..base + stride {
                    let c0 = offset;
                    let c1 = offset + stride;
                    let a0 = self.mat[(row, c0)];
                    let a1 = self.mat[(row, c1)];
                    self.mat[(row, c0)] = a0 * m[0].conj() + a1 * m[1].conj();
                    self.mat[(row, c1)] = a0 * m[2].conj() + a1 * m[3].conj();
                }
                base += stride << 1;
            }
        }
    }

    /// Conjugates by a single-qubit unitary: `ρ ← U ρ U†`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for an invalid qubit.
    pub fn apply_single_unitary(&mut self, qubit: usize, u: &[C64; 4]) -> Result<(), SimError> {
        self.check_qubit(qubit)?;
        self.apply_left(qubit, u);
        self.apply_right_dagger(qubit, u);
        Ok(())
    }

    /// Runs a whole circuit on the density matrix (unitary evolution; use
    /// [`DensityMatrix::apply_channel`] for noise).
    ///
    /// For generality this conjugates by each op's embedded matrix via the
    /// pure-state kernels applied to every column and row, which keeps the
    /// op semantics in one place.
    ///
    /// # Errors
    ///
    /// Propagates parameter and operand validity errors.
    pub fn apply_circuit(&mut self, circuit: &Circuit, params: &[f64]) -> Result<(), SimError> {
        circuit.check_params(params)?;
        if circuit.n_qubits() != self.n_qubits {
            return Err(SimError::DimensionMismatch {
                expected: self.dim(),
                found: 1 << circuit.n_qubits(),
            });
        }
        let dim = self.dim();
        // ρ ← U ρ: apply U to each column as a statevector.
        let mut columns: Vec<Vec<C64>> = (0..dim)
            .map(|c| (0..dim).map(|r| self.mat[(r, c)]).collect())
            .collect();
        for col in columns.iter_mut() {
            let mut s = State::from_amplitudes_unnormalized(std::mem::take(col))?;
            for op in circuit.ops() {
                op.apply(&mut s, params)?;
            }
            *col = s.into_amplitudes();
        }
        // ρ ← (U (U ρ)†)† = U ρ U†: conjugate-transpose trick — apply U to
        // each column of (Uρ)†, i.e. to the conjugated rows.
        let mut rows: Vec<Vec<C64>> = (0..dim)
            .map(|r| (0..dim).map(|c| columns[c][r].conj()).collect())
            .collect();
        for row in rows.iter_mut() {
            let mut s = State::from_amplitudes_unnormalized(std::mem::take(row))?;
            for op in circuit.ops() {
                op.apply(&mut s, params)?;
            }
            *row = s.into_amplitudes();
        }
        for r in 0..dim {
            for c in 0..dim {
                // ρ' = C† with C[i, r] = rows[r][i]: ρ'[r, c] = conj(C[c, r]).
                self.mat[(r, c)] = rows[r][c].conj();
            }
        }
        Ok(())
    }

    /// Applies a single-qubit Kraus channel `ρ ← Σ_k K_k ρ K_k†`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for an invalid qubit and
    /// [`SimError::NotNormalized`] if the Kraus set is not
    /// trace-preserving (`Σ K†K ≠ I`).
    pub fn apply_channel(&mut self, qubit: usize, kraus: &[[C64; 4]]) -> Result<(), SimError> {
        self.check_qubit(qubit)?;
        // Completeness check Σ K†K = I.
        let mut sum = [[C64::ZERO; 2]; 2];
        for k in kraus {
            // K†K entries.
            let kd = [k[0].conj(), k[2].conj(), k[1].conj(), k[3].conj()];
            sum[0][0] += kd[0] * k[0] + kd[1] * k[2];
            sum[0][1] += kd[0] * k[1] + kd[1] * k[3];
            sum[1][0] += kd[2] * k[0] + kd[3] * k[2];
            sum[1][1] += kd[2] * k[1] + kd[3] * k[3];
        }
        let id_err = (sum[0][0] - C64::ONE).norm()
            + sum[0][1].norm()
            + sum[1][0].norm()
            + (sum[1][1] - C64::ONE).norm();
        if id_err > 1e-9 {
            return Err(SimError::NotNormalized { norm: id_err });
        }

        let mut acc = CMatrix::zeros(self.dim(), self.dim());
        for k in kraus {
            let mut term = self.clone();
            term.apply_left(qubit, k);
            term.apply_right_dagger(qubit, k);
            acc = &acc + &term.mat;
        }
        self.mat = acc;
        Ok(())
    }

    /// Expectation value `Tr(H ρ)`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ObservableMismatch`] for a size mismatch.
    pub fn expectation(&self, obs: &Observable) -> Result<f64, SimError> {
        if obs.n_qubits() != self.n_qubits {
            return Err(SimError::ObservableMismatch {
                observable_qubits: obs.n_qubits(),
                state_qubits: self.n_qubits,
            });
        }
        // Tr(Hρ) = Σ_c (H ρ_c)[c] where ρ_c is column c.
        let dim = self.dim();
        let mut total = C64::ZERO;
        for c in 0..dim {
            let col: Vec<C64> = (0..dim).map(|r| self.mat[(r, c)]).collect();
            let state = State::from_amplitudes_unnormalized(col)?;
            let h_col = obs.apply_raw(&state)?;
            total += h_col[c];
        }
        Ok(total.re)
    }
}

/// Kraus operators of the single-qubit depolarizing channel of strength
/// `p` (each Pauli error with probability `p/3`).
///
/// # Panics
///
/// Panics unless `p ∈ [0, 1]`.
pub fn depolarizing_kraus(p: f64) -> Vec<[C64; 4]> {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let s0 = (1.0 - p).sqrt();
    let sp = (p / 3.0).sqrt();
    vec![
        [C64::real(s0), C64::ZERO, C64::ZERO, C64::real(s0)],
        [C64::ZERO, C64::real(sp), C64::real(sp), C64::ZERO], // X
        [C64::ZERO, C64::imag(-sp), C64::imag(sp), C64::ZERO], // Y
        [C64::real(sp), C64::ZERO, C64::ZERO, C64::real(-sp)], // Z
    ]
}

/// Kraus operators of amplitude damping with decay probability `gamma`
/// (`|1⟩ → |0⟩` with probability `γ`) — the non-unital `T₁` channel.
///
/// # Panics
///
/// Panics unless `gamma ∈ [0, 1]`.
pub fn amplitude_damping_kraus(gamma: f64) -> Vec<[C64; 4]> {
    assert!((0.0..=1.0).contains(&gamma), "probability out of range");
    vec![
        [
            C64::ONE,
            C64::ZERO,
            C64::ZERO,
            C64::real((1.0 - gamma).sqrt()),
        ],
        [C64::ZERO, C64::real(gamma.sqrt()), C64::ZERO, C64::ZERO],
    ]
}

/// Kraus operators of the phase-flip (dephasing) channel of strength `p`.
///
/// # Panics
///
/// Panics unless `p ∈ [0, 1]`.
pub fn phase_flip_kraus(p: f64) -> Vec<[C64; 4]> {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let s0 = (1.0 - p).sqrt();
    let s1 = p.sqrt();
    vec![
        [C64::real(s0), C64::ZERO, C64::ZERO, C64::real(s0)],
        [C64::real(s1), C64::ZERO, C64::ZERO, C64::real(-s1)],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::RotationGate;
    use crate::noise::NoiseModel;
    use plateau_rng::rngs::StdRng;
    use plateau_rng::SeedableRng;

    const TOL: f64 = 1e-10;

    #[test]
    fn pauli_sum_expectation_on_sparse_density_matrix() {
        // Regression (found by the differential fuzzer, shrunk to the
        // empty circuit): ρ = |0⟩⟨0| has zero columns, which the
        // PauliSum expectation path used to reject as "not normalized"
        // — `PauliString::apply` must stay linear, not physical.
        let rho = DensityMatrix::zero(1);
        let obs = Observable::pauli(crate::observable::PauliString::parse("Z").unwrap()).unwrap();
        let e = rho.expectation(&obs).expect("tr(Zρ) must evaluate");
        assert!((e - 1.0).abs() < TOL, "tr(Z|0⟩⟨0|) = {e}, want 1");
        // Mixed state with every column unnormalized: ½|00⟩⟨00| + ½|11⟩⟨11|.
        let mut rho = DensityMatrix::from_pure(&{
            let mut c = Circuit::new(2).unwrap();
            c.h(0).unwrap().cx(0, 1).unwrap();
            let s = c.run(&[]).unwrap();
            s
        });
        rho.apply_channel(0, &phase_flip_kraus(0.5)).unwrap();
        let obs = Observable::pauli_sum(vec![
            (0.7, crate::observable::PauliString::parse("ZZ").unwrap()),
            (-0.3, crate::observable::PauliString::parse("XX").unwrap()),
        ])
        .unwrap();
        let e = rho.expectation(&obs).expect("pauli sum on mixed state");
        // Full dephasing leaves ZZ = 1 intact and kills the XX coherence.
        assert!((e - 0.7).abs() < TOL, "got {e}");
    }

    fn bell_circuit() -> Circuit {
        let mut c = Circuit::new(2).unwrap();
        c.h(0).unwrap().cx(0, 1).unwrap();
        c
    }

    #[test]
    fn zero_state_properties() {
        let dm = DensityMatrix::zero(3);
        assert_eq!(dm.n_qubits(), 3);
        assert_eq!(dm.dim(), 8);
        assert!((dm.trace() - 1.0).abs() < TOL);
        assert!((dm.purity() - 1.0).abs() < TOL);
        assert!((dm.probability(0) - 1.0).abs() < TOL);
    }

    #[test]
    fn maximally_mixed_properties() {
        let dm = DensityMatrix::maximally_mixed(2);
        assert!((dm.trace() - 1.0).abs() < TOL);
        assert!((dm.purity() - 0.25).abs() < TOL);
        for i in 0..4 {
            assert!((dm.probability(i) - 0.25).abs() < TOL);
        }
    }

    #[test]
    fn from_pure_matches_outer_product() {
        let mut s = State::zero(2);
        s.apply_fixed(crate::gate::FixedGate::H, &[0]).unwrap();
        let dm = DensityMatrix::from_pure(&s);
        assert!((dm.purity() - 1.0).abs() < TOL);
        assert!((dm.matrix()[(0, 1)].re - 0.5).abs() < TOL);
    }

    #[test]
    fn unitary_evolution_matches_statevector() {
        let mut c = Circuit::new(3).unwrap();
        c.rx(0).unwrap().ry(1).unwrap().cz(0, 1).unwrap().rz(2).unwrap().cx(1, 2).unwrap();
        let params = [0.7, -0.4, 1.9];

        let pure = c.run(&params).unwrap();
        let expected = DensityMatrix::from_pure(&pure);

        let mut dm = DensityMatrix::zero(3);
        dm.apply_circuit(&c, &params).unwrap();
        assert!(
            dm.matrix().max_abs_diff(expected.matrix()) < 1e-10,
            "density evolution diverges from pure evolution"
        );
    }

    #[test]
    fn single_unitary_conjugation_matches_circuit_path() {
        let theta = 0.9;
        let mut dm1 = DensityMatrix::zero(1);
        dm1.apply_single_unitary(0, &RotationGate::Ry.entries(theta)).unwrap();
        let mut c = Circuit::new(1).unwrap();
        c.ry(0).unwrap();
        let mut dm2 = DensityMatrix::zero(1);
        dm2.apply_circuit(&c, &[theta]).unwrap();
        assert!(dm1.matrix().max_abs_diff(dm2.matrix()) < TOL);
    }

    #[test]
    fn expectation_matches_pure_state() {
        let c = bell_circuit();
        let mut dm = DensityMatrix::zero(2);
        dm.apply_circuit(&c, &[]).unwrap();
        let pure = c.run(&[]).unwrap();
        for obs in [
            Observable::global_cost(2),
            Observable::local_cost(2),
            Observable::zero_projector(2),
        ] {
            let from_dm = dm.expectation(&obs).unwrap();
            let from_pure = obs.expectation(&pure).unwrap();
            assert!((from_dm - from_pure).abs() < TOL, "{obs}");
        }
        assert!(dm.expectation(&Observable::global_cost(3)).is_err());
    }

    #[test]
    fn full_depolarizing_reaches_maximally_mixed() {
        let mut dm = DensityMatrix::zero(1);
        dm.apply_channel(0, &depolarizing_kraus(0.75)).unwrap();
        // p = 3/4 depolarizing is the fully mixing channel.
        assert!(dm.matrix().max_abs_diff(DensityMatrix::maximally_mixed(1).matrix()) < TOL);
    }

    #[test]
    fn amplitude_damping_decays_excited_state() {
        // ρ = |1⟩⟨1| under damping γ: p(|1⟩) = 1 − γ.
        let gamma = 0.3;
        let s = State::basis(1, 1);
        let mut dm = DensityMatrix::from_pure(&s);
        dm.apply_channel(0, &amplitude_damping_kraus(gamma)).unwrap();
        assert!((dm.probability(1) - (1.0 - gamma)).abs() < TOL);
        assert!((dm.probability(0) - gamma).abs() < TOL);
        assert!((dm.trace() - 1.0).abs() < TOL);
    }

    #[test]
    fn phase_flip_kills_coherence_not_populations() {
        let mut s = State::zero(1);
        s.apply_fixed(crate::gate::FixedGate::H, &[0]).unwrap();
        let mut dm = DensityMatrix::from_pure(&s);
        dm.apply_channel(0, &phase_flip_kraus(0.5)).unwrap();
        // p = 1/2 phase flip fully decoheres: off-diagonals vanish.
        assert!(dm.matrix()[(0, 1)].norm() < TOL);
        assert!((dm.probability(0) - 0.5).abs() < TOL);
        assert!((dm.probability(1) - 0.5).abs() < TOL);
    }

    #[test]
    fn channel_rejects_incomplete_kraus_set() {
        let mut dm = DensityMatrix::zero(1);
        // A lone damping operator is not trace preserving.
        let bad = vec![amplitude_damping_kraus(0.5)[1]];
        assert!(matches!(
            dm.apply_channel(0, &bad),
            Err(SimError::NotNormalized { .. })
        ));
        assert!(dm.apply_channel(5, &depolarizing_kraus(0.1)).is_err());
    }

    #[test]
    fn exact_channel_matches_trajectory_average() {
        // The key validation: trajectory sampling converges to the exact
        // density-matrix result for the same per-gate depolarizing noise.
        let mut c = Circuit::new(2).unwrap();
        c.rx(0).unwrap().ry(1).unwrap().cz(0, 1).unwrap();
        let params = [0.8, -0.5];
        let p = 0.05;
        let obs = Observable::global_cost(2);

        // Exact: gate-by-gate evolution with a channel after each gate on
        // each operand qubit (mirroring NoiseModel's trajectory protocol).
        let mut dm = DensityMatrix::zero(2);
        for op in c.ops() {
            let mut sub = Circuit::new(2).unwrap();
            // Re-apply single op by running a one-op circuit with bound params.
            match op {
                crate::circuit::Op::Rotation { gate, qubit, param } => {
                    sub.push_rotation_const(*gate, *qubit, param.angle(&params)).unwrap();
                }
                crate::circuit::Op::Fixed { gate, qubits } => {
                    sub.push_fixed(*gate, qubits).unwrap();
                }
                _ => unreachable!("test circuit has no other op kinds"),
            }
            dm.apply_circuit(&sub, &[]).unwrap();
            for q in op.qubits() {
                dm.apply_channel(q, &depolarizing_kraus(p)).unwrap();
            }
        }
        let exact = dm.expectation(&obs).unwrap();

        let noise = NoiseModel::depolarizing(p).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let sampled = noise.expectation(&c, &params, &obs, 30_000, &mut rng).unwrap();
        assert!(
            (exact - sampled).abs() < 0.01,
            "exact {exact} vs trajectory {sampled}"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_register_panics() {
        let _ = DensityMatrix::zero(20);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn bad_kraus_probability_panics() {
        let _ = depolarizing_kraus(1.5);
    }
}
