//! OpenQASM 2.0 interchange (subset): export any circuit at bound
//! parameter values, and import the gate subset this simulator supports.
//!
//! The emitter resolves free parameters against a parameter vector, so
//! the exported text is a concrete executable circuit — the natural
//! hand-off format toward real-device toolchains (Qiskit et al.). The
//! parser accepts the same subset and yields a circuit with all angles
//! bound (zero free parameters).
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use plateau_sim::{qasm, Circuit};
//!
//! let mut c = Circuit::new(2)?;
//! c.h(0)?.rx(1)?.cz(0, 1)?;
//! let text = qasm::to_qasm(&c, &[0.5])?;
//! assert!(text.contains("rx(0.5) q[1];"));
//!
//! let back = qasm::from_qasm(&text)?;
//! assert_eq!(back.n_qubits(), 2);
//! assert_eq!(back.gate_count(), 3);
//! // Round trip preserves semantics exactly.
//! let s1 = c.run(&[0.5])?;
//! let s2 = back.run(&[])?;
//! assert!((s1.fidelity(&s2)? - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

use crate::circuit::{Circuit, Op};
use crate::error::SimError;
use crate::gate::{FixedGate, RotationGate, TwoQubitRotationGate};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Error raised while parsing QASM text.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseQasmError {
    /// The mandatory `OPENQASM 2.0;` header is missing.
    MissingHeader,
    /// No `qreg` declaration was found before the first gate.
    MissingRegister,
    /// A line could not be understood.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A gate name outside the supported subset.
    UnsupportedGate {
        /// 1-based line number.
        line: usize,
        /// The gate name.
        gate: String,
    },
    /// Constructing the circuit failed (bad qubit indices, etc.).
    Circuit(SimError),
}

impl fmt::Display for ParseQasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseQasmError::MissingHeader => f.write_str("missing OPENQASM 2.0 header"),
            ParseQasmError::MissingRegister => f.write_str("missing qreg declaration"),
            ParseQasmError::BadLine { line, text } => {
                write!(f, "cannot parse line {line}: {text:?}")
            }
            ParseQasmError::UnsupportedGate { line, gate } => {
                write!(f, "unsupported gate {gate:?} on line {line}")
            }
            ParseQasmError::Circuit(e) => write!(f, "invalid circuit: {e}"),
        }
    }
}

impl Error for ParseQasmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseQasmError::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for ParseQasmError {
    fn from(e: SimError) -> Self {
        ParseQasmError::Circuit(e)
    }
}

fn fixed_gate_name(g: FixedGate) -> &'static str {
    match g {
        FixedGate::X => "x",
        FixedGate::Y => "y",
        FixedGate::Z => "z",
        FixedGate::H => "h",
        FixedGate::S => "s",
        FixedGate::Sdg => "sdg",
        FixedGate::T => "t",
        FixedGate::Tdg => "tdg",
        FixedGate::Sx => "sx",
        FixedGate::Cz => "cz",
        FixedGate::Cx => "cx",
        FixedGate::Cy => "cy",
        FixedGate::Swap => "swap",
    }
}

fn rotation_name(g: RotationGate) -> &'static str {
    match g {
        RotationGate::Rx => "rx",
        RotationGate::Ry => "ry",
        RotationGate::Rz => "rz",
        RotationGate::Phase => "p",
    }
}

fn controlled_rotation_name(g: RotationGate) -> &'static str {
    match g {
        RotationGate::Rx => "crx",
        RotationGate::Ry => "cry",
        RotationGate::Rz => "crz",
        RotationGate::Phase => "cp",
    }
}

fn two_qubit_rotation_name(g: TwoQubitRotationGate) -> &'static str {
    match g {
        TwoQubitRotationGate::Rxx => "rxx",
        TwoQubitRotationGate::Ryy => "ryy",
        TwoQubitRotationGate::Rzz => "rzz",
    }
}

/// Serializes a circuit at concrete parameter values to OpenQASM 2.0.
///
/// # Errors
///
/// Returns [`SimError::WrongParamCount`] on a parameter-length mismatch.
pub fn to_qasm(circuit: &Circuit, params: &[f64]) -> Result<String, SimError> {
    circuit.check_params(params)?;
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.n_qubits());
    for op in circuit.ops() {
        match op {
            Op::Fixed { gate, qubits } => match qubits.as_slice() {
                [q] => {
                    let _ = writeln!(out, "{} q[{q}];", fixed_gate_name(*gate));
                }
                [a, b] => {
                    let _ = writeln!(out, "{} q[{a}],q[{b}];", fixed_gate_name(*gate));
                }
                _ => unreachable!("fixed gates are 1- or 2-qubit"),
            },
            Op::Rotation { gate, qubit, param } => {
                let _ = writeln!(
                    out,
                    "{}({}) q[{qubit}];",
                    rotation_name(*gate),
                    param.angle(params)
                );
            }
            Op::ControlledRotation {
                gate,
                control,
                target,
                param,
            } => {
                let _ = writeln!(
                    out,
                    "{}({}) q[{control}],q[{target}];",
                    controlled_rotation_name(*gate),
                    param.angle(params)
                );
            }
            Op::TwoQubitRotation {
                gate,
                first,
                second,
                param,
            } => {
                let _ = writeln!(
                    out,
                    "{}({}) q[{first}],q[{second}];",
                    two_qubit_rotation_name(*gate),
                    param.angle(params)
                );
            }
        }
    }
    Ok(out)
}

/// Parses a supported-subset OpenQASM 2.0 program into a circuit with all
/// angles bound (zero free parameters). `include`, `barrier`, `creg`, and
/// `measure` lines are ignored; comments (`//`) are stripped.
///
/// # Errors
///
/// Returns [`ParseQasmError`] on malformed or unsupported input.
pub fn from_qasm(text: &str) -> Result<Circuit, ParseQasmError> {
    let mut circuit: Option<Circuit> = None;
    let mut saw_header = false;

    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.split("//").next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        for stmt in line.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            if stmt.starts_with("OPENQASM") {
                saw_header = true;
                continue;
            }
            if stmt.starts_with("include") || stmt.starts_with("barrier")
                || stmt.starts_with("creg") || stmt.starts_with("measure")
            {
                continue;
            }
            if let Some(rest) = stmt.strip_prefix("qreg") {
                let n = parse_reg_size(rest).ok_or_else(|| ParseQasmError::BadLine {
                    line: line_no,
                    text: stmt.to_string(),
                })?;
                circuit = Some(Circuit::new(n)?);
                continue;
            }

            let circuit = circuit.as_mut().ok_or(ParseQasmError::MissingRegister)?;
            apply_statement(circuit, stmt, line_no)?;
        }
    }

    if !saw_header {
        return Err(ParseQasmError::MissingHeader);
    }
    circuit.ok_or(ParseQasmError::MissingRegister)
}

fn parse_reg_size(rest: &str) -> Option<usize> {
    // e.g. ` q[4]`
    let open = rest.find('[')?;
    let close = rest.find(']')?;
    rest[open + 1..close].trim().parse().ok()
}

fn parse_angle(raw: &str) -> Option<f64> {
    let t = raw.trim();
    // Support the pi shorthands QASM files commonly use.
    let pi = std::f64::consts::PI;
    match t {
        "pi" => return Some(pi),
        "-pi" => return Some(-pi),
        "pi/2" => return Some(pi / 2.0),
        "-pi/2" => return Some(-pi / 2.0),
        "pi/4" => return Some(pi / 4.0),
        "-pi/4" => return Some(-pi / 4.0),
        _ => {}
    }
    if let Some(num) = t.strip_suffix("*pi") {
        return num.trim().parse::<f64>().ok().map(|x| x * pi);
    }
    t.parse().ok()
}

fn parse_operands(rest: &str) -> Option<Vec<usize>> {
    let mut qubits = Vec::new();
    for part in rest.split(',') {
        let part = part.trim();
        let open = part.find('[')?;
        let close = part.find(']')?;
        if !part.starts_with('q') {
            return None;
        }
        qubits.push(part[open + 1..close].trim().parse().ok()?);
    }
    Some(qubits)
}

fn apply_statement(circuit: &mut Circuit, stmt: &str, line: usize) -> Result<(), ParseQasmError> {
    let bad = || ParseQasmError::BadLine {
        line,
        text: stmt.to_string(),
    };

    // Split "name(args)" from operands.
    let space = stmt.find(' ').ok_or_else(bad)?;
    let (head, operands_raw) = stmt.split_at(space);
    let operands = parse_operands(operands_raw).ok_or_else(bad)?;

    let (name, angle) = if let Some(open) = head.find('(') {
        let close = head.rfind(')').ok_or_else(bad)?;
        let angle = parse_angle(&head[open + 1..close]).ok_or_else(bad)?;
        (&head[..open], Some(angle))
    } else {
        (head, None)
    };

    let fixed = |g: FixedGate| -> Option<FixedGate> { Some(g) };
    if angle.is_none() {
        let gate = match name {
            "x" => fixed(FixedGate::X),
            "y" => fixed(FixedGate::Y),
            "z" => fixed(FixedGate::Z),
            "h" => fixed(FixedGate::H),
            "s" => fixed(FixedGate::S),
            "sdg" => fixed(FixedGate::Sdg),
            "t" => fixed(FixedGate::T),
            "tdg" => fixed(FixedGate::Tdg),
            "sx" => fixed(FixedGate::Sx),
            "cz" => fixed(FixedGate::Cz),
            "cx" | "CX" => fixed(FixedGate::Cx),
            "cy" => fixed(FixedGate::Cy),
            "swap" => fixed(FixedGate::Swap),
            "id" => None, // identity: skip
            _ => {
                return Err(ParseQasmError::UnsupportedGate {
                    line,
                    gate: name.to_string(),
                })
            }
        };
        if let Some(g) = gate {
            circuit.push_fixed(g, &operands)?;
        }
        return Ok(());
    }

    let angle = angle.expect("checked above");
    match (name, operands.as_slice()) {
        ("rx", [q]) => {
            circuit.push_rotation_const(RotationGate::Rx, *q, angle)?;
        }
        ("ry", [q]) => {
            circuit.push_rotation_const(RotationGate::Ry, *q, angle)?;
        }
        ("rz", [q]) => {
            circuit.push_rotation_const(RotationGate::Rz, *q, angle)?;
        }
        ("p" | "u1", [q]) => {
            circuit.push_rotation_const(RotationGate::Phase, *q, angle)?;
        }
        ("crx", [c, t]) => push_controlled_const(circuit, RotationGate::Rx, *c, *t, angle)?,
        ("cry", [c, t]) => push_controlled_const(circuit, RotationGate::Ry, *c, *t, angle)?,
        ("crz", [c, t]) => push_controlled_const(circuit, RotationGate::Rz, *c, *t, angle)?,
        ("cp" | "cu1", [c, t]) => {
            push_controlled_const(circuit, RotationGate::Phase, *c, *t, angle)?
        }
        ("rxx", [a, b]) => push_two_const(circuit, TwoQubitRotationGate::Rxx, *a, *b, angle)?,
        ("ryy", [a, b]) => push_two_const(circuit, TwoQubitRotationGate::Ryy, *a, *b, angle)?,
        ("rzz", [a, b]) => push_two_const(circuit, TwoQubitRotationGate::Rzz, *a, *b, angle)?,
        _ => {
            return Err(ParseQasmError::UnsupportedGate {
                line,
                gate: name.to_string(),
            })
        }
    }
    Ok(())
}

/// Appends a controlled rotation with a bound angle (the builder only
/// offers the free-parameter form, so this goes through the op list).
fn push_controlled_const(
    circuit: &mut Circuit,
    gate: RotationGate,
    control: usize,
    target: usize,
    angle: f64,
) -> Result<(), SimError> {
    // Validate through the free-parameter path, then bind the angle.
    circuit.push_controlled_rotation(gate, control, target)?;
    circuit.bind_last_param(angle)?;
    Ok(())
}

fn push_two_const(
    circuit: &mut Circuit,
    gate: TwoQubitRotationGate,
    a: usize,
    b: usize,
    angle: f64,
) -> Result<(), SimError> {
    circuit.push_two_qubit_rotation(gate, a, b)?;
    circuit.bind_last_param(angle)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn export_contains_expected_lines() {
        let mut c = Circuit::new(3).unwrap();
        c.h(0).unwrap();
        c.rx(1).unwrap();
        c.cz(0, 2).unwrap();
        c.push_fixed(FixedGate::Swap, &[1, 2]).unwrap();
        let text = to_qasm(&c, &[1.25]).unwrap();
        assert!(text.starts_with("OPENQASM 2.0;"));
        assert!(text.contains("qreg q[3];"));
        assert!(text.contains("h q[0];"));
        assert!(text.contains("rx(1.25) q[1];"));
        assert!(text.contains("cz q[0],q[2];"));
        assert!(text.contains("swap q[1],q[2];"));
    }

    #[test]
    fn export_validates_params() {
        let mut c = Circuit::new(1).unwrap();
        c.rx(0).unwrap();
        assert!(to_qasm(&c, &[]).is_err());
    }

    #[test]
    fn parse_simple_program() {
        let text = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n";
        let c = from_qasm(text).unwrap();
        assert_eq!(c.n_qubits(), 2);
        assert_eq!(c.gate_count(), 2);
        assert_eq!(c.n_params(), 0);
        let s = c.run(&[]).unwrap();
        assert!((s.probabilities()[0] - 0.5).abs() < 1e-12);
        assert!((s.probabilities()[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parse_handles_comments_and_pi() {
        let text = "OPENQASM 2.0;\nqreg q[1]; // one qubit\nrx(pi/2) q[0]; // quarter flip\nrz(0.5*pi) q[0];\n";
        let c = from_qasm(text).unwrap();
        assert_eq!(c.gate_count(), 2);
        // rx(π/2)|0⟩ has p1 = 1/2.
        let s = c.run(&[]).unwrap();
        assert!((s.probabilities()[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn roundtrip_preserves_semantics() {
        let mut c = Circuit::new(3).unwrap();
        c.h(0).unwrap();
        c.rx(1).unwrap().ry(2).unwrap().rz(0).unwrap();
        c.cz(0, 1).unwrap().cx(1, 2).unwrap();
        c.push_controlled_rotation(RotationGate::Ry, 0, 2).unwrap();
        c.rzz(0, 2).unwrap();
        c.push_fixed(FixedGate::Tdg, &[1]).unwrap();
        let params = [0.3, -1.1, 2.2, 0.9, -0.4];

        let text = to_qasm(&c, &params).unwrap();
        let back = from_qasm(&text).unwrap();
        assert_eq!(back.n_params(), 0);
        let s1 = c.run(&params).unwrap();
        let s2 = back.run(&[]).unwrap();
        assert!((s1.fidelity(&s2).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn emit_parse_emit_is_a_fixed_point_on_random_circuits() {
        use crate::gate::TwoQubitRotationGate;
        use plateau_rng::check::{cases, forall_shrink, vec_of};
        use plateau_rng::{Rng, StdRng};

        #[derive(Debug, Clone)]
        enum QOp {
            Fixed(FixedGate, Vec<usize>),
            Rot(RotationGate, usize, f64),
            CRot(RotationGate, usize, usize, f64),
            TwoRot(TwoQubitRotationGate, usize, usize, f64),
        }

        fn build(n: usize, ops: &[QOp]) -> Circuit {
            let mut c = Circuit::new(n).unwrap();
            for op in ops {
                match op {
                    QOp::Fixed(g, qs) => {
                        c.push_fixed(*g, qs).unwrap();
                    }
                    QOp::Rot(g, q, t) => {
                        c.push_rotation_const(*g, *q, *t).unwrap();
                    }
                    QOp::CRot(g, ctl, tgt, t) => {
                        c.push_controlled_rotation(*g, *ctl, *tgt)
                            .unwrap()
                            .bind_last_param(*t)
                            .unwrap();
                    }
                    QOp::TwoRot(g, a, b, t) => {
                        c.push_two_qubit_rotation(*g, *a, *b)
                            .unwrap()
                            .bind_last_param(*t)
                            .unwrap();
                    }
                }
            }
            c
        }

        fn random_qop(rng: &mut StdRng, n: usize) -> QOp {
            const FIXED_1Q: [FixedGate; 9] = [
                FixedGate::X,
                FixedGate::Y,
                FixedGate::Z,
                FixedGate::H,
                FixedGate::S,
                FixedGate::Sdg,
                FixedGate::T,
                FixedGate::Tdg,
                FixedGate::Sx,
            ];
            const FIXED_2Q: [FixedGate; 4] =
                [FixedGate::Cz, FixedGate::Cx, FixedGate::Cy, FixedGate::Swap];
            const ROT: [RotationGate; 4] = [
                RotationGate::Rx,
                RotationGate::Ry,
                RotationGate::Rz,
                RotationGate::Phase,
            ];
            const TWO: [TwoQubitRotationGate; 3] = [
                TwoQubitRotationGate::Rxx,
                TwoQubitRotationGate::Ryy,
                TwoQubitRotationGate::Rzz,
            ];
            let pair = |rng: &mut StdRng| {
                let a = rng.gen_range(0..n);
                (a, (a + 1 + rng.gen_range(0..n - 1)) % n)
            };
            let angle = |rng: &mut StdRng| rng.gen_range(-4.0..4.0);
            match rng.gen_range(0..5usize) {
                0 => QOp::Fixed(FIXED_1Q[rng.gen_range(0..9usize)], vec![rng.gen_range(0..n)]),
                1 if n >= 2 => {
                    let (a, b) = pair(rng);
                    QOp::Fixed(FIXED_2Q[rng.gen_range(0..4usize)], vec![a, b])
                }
                2 => QOp::Rot(ROT[rng.gen_range(0..4usize)], rng.gen_range(0..n), angle(rng)),
                3 if n >= 2 => {
                    let (c, t) = pair(rng);
                    QOp::CRot(ROT[rng.gen_range(0..4usize)], c, t, angle(rng))
                }
                4 if n >= 2 => {
                    let (a, b) = pair(rng);
                    QOp::TwoRot(TWO[rng.gen_range(0..3usize)], a, b, angle(rng))
                }
                _ => QOp::Rot(ROT[rng.gen_range(0..4usize)], rng.gen_range(0..n), angle(rng)),
            }
        }

        forall_shrink(
            0x7161736d,
            cases(32),
            |rng| {
                let n = rng.gen_range(1..6usize);
                (n, vec_of(rng, 0..12, |rng| random_qop(rng, n)))
            },
            |(n, ops)| {
                (0..ops.len())
                    .map(|i| {
                        let mut fewer = ops.clone();
                        fewer.remove(i);
                        (*n, fewer)
                    })
                    .collect()
            },
            |(n, ops)| {
                let circuit = build(*n, ops);
                let text = to_qasm(&circuit, &[]).map_err(|e| format!("emit: {e}"))?;
                let parsed = from_qasm(&text).map_err(|e| format!("parse: {e}"))?;
                // Emit must be a fixed point of parse∘emit: f64 `Display`
                // produces the shortest exactly-round-tripping decimal, so
                // not even the angle text may change.
                let re_emitted = to_qasm(&parsed, &[]).map_err(|e| format!("re-emit: {e}"))?;
                plateau_rng::prop_assert!(
                    re_emitted == text,
                    "parse∘emit moved the text:\n--- first ---\n{text}\n--- second ---\n{re_emitted}"
                );
                // And the parsed circuit must simulate identically.
                let s1 = circuit.run(&[]).map_err(|e| format!("run original: {e}"))?;
                let s2 = parsed.run(&[]).map_err(|e| format!("run parsed: {e}"))?;
                plateau_rng::prop_assert!(
                    s1 == s2,
                    "re-simulation diverged after the QASM round trip"
                );
                Ok(())
            },
        );
    }

    #[test]
    fn parse_error_cases() {
        assert_eq!(from_qasm("qreg q[2];").unwrap_err(), ParseQasmError::MissingHeader);
        assert_eq!(
            from_qasm("OPENQASM 2.0;\nh q[0];").unwrap_err(),
            ParseQasmError::MissingRegister
        );
        assert!(matches!(
            from_qasm("OPENQASM 2.0;\nqreg q[2];\nmy_gate q[0];").unwrap_err(),
            ParseQasmError::UnsupportedGate { .. }
        ));
        assert!(matches!(
            from_qasm("OPENQASM 2.0;\nqreg q[2];\nrx(oops) q[0];").unwrap_err(),
            ParseQasmError::BadLine { .. }
        ));
        assert!(matches!(
            from_qasm("OPENQASM 2.0;\nqreg q[2];\ncz q[0],q[5];").unwrap_err(),
            ParseQasmError::Circuit(_)
        ));
        assert!(!ParseQasmError::MissingHeader.to_string().is_empty());
    }

    #[test]
    fn parse_ignores_measure_and_barrier() {
        let text = "OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nh q[0];\nbarrier q;\nmeasure q[0] -> c[0];\n";
        let c = from_qasm(text).unwrap();
        assert_eq!(c.gate_count(), 1);
    }

    #[test]
    fn pi_shorthand_table() {
        assert_eq!(parse_angle("pi"), Some(PI));
        assert_eq!(parse_angle("-pi/2"), Some(-PI / 2.0));
        assert_eq!(parse_angle("0.25*pi"), Some(0.25 * PI));
        assert_eq!(parse_angle("1.5"), Some(1.5));
        assert_eq!(parse_angle("junk"), None);
    }
}
