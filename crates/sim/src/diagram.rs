//! Text-mode circuit diagrams.
//!
//! Renders a [`Circuit`] as per-qubit wire lines with greedy column
//! packing (ops sharing no qubits share a column). Free parameters render
//! as `θ<i>`, bound angles as numbers — handy for debugging ansatz
//! builders and for README-grade documentation of circuits.
//!
//! # Examples
//!
//! ```
//! use plateau_sim::{diagram::draw, Circuit};
//!
//! let mut c = Circuit::new(2)?;
//! c.h(0)?.rx(1)?.cz(0, 1)?;
//! let art = draw(&c);
//! assert!(art.contains("q0:"));
//! assert!(art.contains("RX(θ0)"));
//! # Ok::<(), plateau_sim::SimError>(())
//! ```

use crate::circuit::{Circuit, Op, Param};

/// Cells an op draws (`(qubit, text)` pairs) plus the wire span its
/// vertical connector crosses.
type OpCells = (Vec<(usize, String)>, Option<(usize, usize)>);

fn param_label(p: Param) -> String {
    match p {
        Param::Free(i) => format!("θ{i}"),
        Param::Bound(v) => {
            if (v - v.round()).abs() < 1e-9 {
                format!("{}", v.round())
            } else {
                format!("{v:.2}")
            }
        }
    }
}

/// The cells one op occupies: `(qubit, text)` plus the span of qubits its
/// vertical connector must cross.
fn op_cells(op: &Op) -> OpCells {
    match op {
        Op::Fixed { gate, qubits } => match qubits.as_slice() {
            [q] => (vec![(*q, gate.to_string())], None),
            [a, b] => {
                use crate::gate::FixedGate;
                let (la, lb) = match gate {
                    FixedGate::Cz => ("●".to_string(), "●".to_string()),
                    FixedGate::Cx => ("●".to_string(), "⊕".to_string()),
                    FixedGate::Cy => ("●".to_string(), "Y".to_string()),
                    FixedGate::Swap => ("✕".to_string(), "✕".to_string()),
                    other => (other.to_string(), other.to_string()),
                };
                (
                    vec![(*a, la), (*b, lb)],
                    Some((*a.min(b), *a.max(b))),
                )
            }
            _ => unreachable!("fixed gates are 1- or 2-qubit"),
        },
        Op::Rotation { gate, qubit, param } => (
            vec![(*qubit, format!("{gate}({})", param_label(*param)))],
            None,
        ),
        Op::ControlledRotation {
            gate,
            control,
            target,
            param,
        } => (
            vec![
                (*control, "●".to_string()),
                (*target, format!("{gate}({})", param_label(*param))),
            ],
            Some((*control.min(target), *control.max(target))),
        ),
        Op::TwoQubitRotation {
            gate,
            first,
            second,
            param,
        } => {
            let label = format!("{gate}({})", param_label(*param));
            (
                vec![(*first, label.clone()), (*second, label)],
                Some((*first.min(second), *first.max(second))),
            )
        }
    }
}

/// Renders the circuit as multi-line text, one wire per qubit
/// (`q0` topmost).
pub fn draw(circuit: &Circuit) -> String {
    let n = circuit.n_qubits();
    // Greedy packing: each column is a set of ops whose qubit spans
    // (including connector ranges) are disjoint.
    let mut columns: Vec<Vec<OpCells>> = Vec::new();
    let mut col_occupied: Vec<Vec<bool>> = Vec::new();

    for op in circuit.ops() {
        let (cells, span) = op_cells(op);
        let (lo, hi) = span.unwrap_or_else(|| {
            let q = cells[0].0;
            (q, q)
        });
        // Find the first column from the end backwards that is free; ops
        // must not hop over occupied wires in earlier columns.
        let mut target = columns.len();
        while target > 0 {
            let occ = &col_occupied[target - 1];
            if (lo..=hi).any(|q| occ[q]) {
                break;
            }
            target -= 1;
        }
        if target == columns.len() {
            columns.push(Vec::new());
            col_occupied.push(vec![false; n]);
        }
        for q in lo..=hi {
            col_occupied[target][q] = true;
        }
        columns[target].push((cells, span));
    }

    // Build the text grid: per column, compute its width and each wire's
    // cell content plus connector info.
    let mut lines: Vec<String> = (0..n).map(|q| format!("q{q}: ")).collect();
    let prefix_width = lines.iter().map(|l| l.chars().count()).max().unwrap_or(0);
    for line in &mut lines {
        while line.chars().count() < prefix_width {
            line.push(' ');
        }
    }

    for column in &columns {
        let mut cell: Vec<Option<String>> = vec![None; n];
        let mut connected: Vec<bool> = vec![false; n];
        for (cells, span) in column {
            for (q, text) in cells {
                cell[*q] = Some(text.clone());
            }
            if let Some((lo, hi)) = span {
                for q in *lo..=*hi {
                    connected[q] = true;
                }
            }
        }
        let width = cell
            .iter()
            .flatten()
            .map(|s| s.chars().count())
            .max()
            .unwrap_or(1)
            + 2;
        for q in 0..n {
            let body = match &cell[q] {
                Some(text) => {
                    let pad = width - 1 - text.chars().count();
                    format!("─{}{}", text, "─".repeat(pad))
                }
                None if connected[q] => {
                    let half = (width - 1) / 2;
                    format!("{}│{}", "─".repeat(half), "─".repeat(width - 1 - half))
                }
                None => "─".repeat(width),
            };
            lines[q].push_str(&body);
        }
    }

    let mut out = String::new();
    for line in lines {
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::{FixedGate, RotationGate};

    #[test]
    fn single_qubit_gates_render() {
        let mut c = Circuit::new(1).unwrap();
        c.h(0).unwrap().rx(0).unwrap();
        c.push_rotation_const(RotationGate::Rz, 0, 1.5).unwrap();
        let art = draw(&c);
        assert!(art.contains("q0:"));
        assert!(art.contains('H'));
        assert!(art.contains("RX(θ0)"));
        assert!(art.contains("RZ(1.50)"));
    }

    #[test]
    fn cz_draws_controls_on_both_wires() {
        let mut c = Circuit::new(2).unwrap();
        c.cz(0, 1).unwrap();
        let art = draw(&c);
        let lines: Vec<&str> = art.lines().collect();
        assert!(lines[0].contains('●'));
        assert!(lines[1].contains('●'));
    }

    #[test]
    fn cx_draws_control_and_target() {
        let mut c = Circuit::new(2).unwrap();
        c.cx(0, 1).unwrap();
        let art = draw(&c);
        assert!(art.contains('●'));
        assert!(art.contains('⊕'));
    }

    #[test]
    fn connector_crosses_intermediate_wires() {
        let mut c = Circuit::new(3).unwrap();
        c.cz(0, 2).unwrap();
        let art = draw(&c);
        let lines: Vec<&str> = art.lines().collect();
        assert!(lines[1].contains('│'), "middle wire should show a connector:\n{art}");
    }

    #[test]
    fn independent_ops_share_a_column() {
        let mut c = Circuit::new(2).unwrap();
        c.h(0).unwrap().h(1).unwrap();
        let art = draw(&c);
        let lines: Vec<&str> = art.lines().collect();
        // Both H's at the same horizontal offset.
        assert_eq!(lines[0].find('H'), lines[1].find('H'));
    }

    #[test]
    fn dependent_ops_take_separate_columns() {
        let mut c = Circuit::new(2).unwrap();
        c.h(0).unwrap().cz(0, 1).unwrap().h(0).unwrap();
        let art = draw(&c);
        let line0: &str = art.lines().next().unwrap();
        let first_h = line0.find('H').unwrap();
        let last_h = line0.rfind('H').unwrap();
        assert!(first_h < last_h, "H gates must be in different columns");
    }

    #[test]
    fn swap_and_two_qubit_rotation_render() {
        let mut c = Circuit::new(2).unwrap();
        c.push_fixed(FixedGate::Swap, &[0, 1]).unwrap();
        c.rzz(0, 1).unwrap();
        let art = draw(&c);
        assert!(art.contains('✕'));
        assert!(art.contains("RZZ(θ0)"));
    }

    #[test]
    fn paper_ansatz_layer_renders_cleanly() {
        let mut c = Circuit::new(3).unwrap();
        for q in 0..3 {
            c.rx(q).unwrap();
            c.ry(q).unwrap();
        }
        c.cz(0, 1).unwrap();
        c.cz(1, 2).unwrap();
        let art = draw(&c);
        assert_eq!(art.lines().count(), 3);
        for q in 0..3 {
            assert!(art.contains(&format!("q{q}:")));
        }
        assert!(art.contains("RX(θ0)"));
        assert!(art.contains("RY(θ5)"));
    }
}
