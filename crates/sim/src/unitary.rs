//! Full-unitary construction: an **independent oracle** for the statevector
//! kernels.
//!
//! [`circuit_unitary`] builds the dense `2^n × 2^n` matrix of a circuit by
//! embedding each op's 2×2/4×4 matrix with explicit index arithmetic and
//! multiplying the embeddings together. It deliberately shares *no code*
//! with the [`crate::state`] kernels, so agreement between
//! `circuit.run(params)` and `circuit_unitary(...) · |0…0⟩` is a genuine
//! cross-check (used heavily by the integration tests).
//!
//! Exponentially expensive — keep it to ≤ ~10 qubits.
//!
//! # Examples
//!
//! ```
//! use plateau_sim::{circuit_unitary, Circuit};
//!
//! let mut c = Circuit::new(2)?;
//! c.h(0)?.cx(0, 1)?;
//! let u = circuit_unitary(&c, &[])?;
//! assert!(u.is_unitary(1e-12));
//! # Ok::<(), plateau_sim::SimError>(())
//! ```

use crate::circuit::{Circuit, Op};
use crate::error::SimError;
use plateau_linalg::{CMatrix, C64};

/// Embeds a single-qubit matrix acting on `qubit` into the full register.
fn embed_single(n_qubits: usize, qubit: usize, m: &CMatrix) -> CMatrix {
    let dim = 1usize << n_qubits;
    let mask = 1usize << qubit;
    let mut out = CMatrix::zeros(dim, dim);
    for col in 0..dim {
        let bit = usize::from(col & mask != 0);
        for row_bit in 0..2usize {
            let row = (col & !mask) | (row_bit << qubit);
            let v = m[(row_bit, bit)];
            if v != C64::ZERO {
                out[(row, col)] += v;
            }
        }
    }
    out
}

/// Embeds a two-qubit matrix whose composite index is `(first, second)` with
/// `first` as the high bit, acting on arbitrary (possibly non-adjacent)
/// qubits.
fn embed_two(n_qubits: usize, first: usize, second: usize, m: &CMatrix) -> CMatrix {
    let dim = 1usize << n_qubits;
    let m_first = 1usize << first;
    let m_second = 1usize << second;
    let rest_mask = !(m_first | m_second);
    let mut out = CMatrix::zeros(dim, dim);
    for col in 0..dim {
        let col_idx = (usize::from(col & m_first != 0) << 1) | usize::from(col & m_second != 0);
        for row_idx in 0..4usize {
            let v = m[(row_idx, col_idx)];
            if v == C64::ZERO {
                continue;
            }
            let hi = (row_idx >> 1) & 1;
            let lo = row_idx & 1;
            let row = (col & rest_mask) | (hi * m_first) | (lo * m_second);
            out[(row, col)] += v;
        }
    }
    out
}

/// Dense matrix of one op at the given parameters.
///
/// # Errors
///
/// Returns [`SimError::ParamOutOfRange`] if the op references a free
/// parameter beyond `params`.
pub fn op_matrix(op: &Op, n_qubits: usize, params: &[f64]) -> Result<CMatrix, SimError> {
    let resolve = |p: crate::circuit::Param| -> Result<f64, SimError> {
        match p {
            crate::circuit::Param::Free(i) if i >= params.len() => Err(SimError::ParamOutOfRange {
                index: i,
                n_params: params.len(),
            }),
            other => Ok(other.angle(params)),
        }
    };
    Ok(match op {
        Op::Fixed { gate, qubits } => {
            let m = gate.matrix();
            if gate.arity() == 1 {
                embed_single(n_qubits, qubits[0], &m)
            } else {
                embed_two(n_qubits, qubits[0], qubits[1], &m)
            }
        }
        Op::Rotation { gate, qubit, param } => {
            embed_single(n_qubits, *qubit, &gate.matrix(resolve(*param)?))
        }
        Op::ControlledRotation {
            gate,
            control,
            target,
            param,
        } => {
            // Build the 4×4 controlled matrix with control as the high bit.
            let r = gate.matrix(resolve(*param)?);
            let o = C64::ZERO;
            let l = C64::ONE;
            let cm = CMatrix::from_rows(&[
                &[l, o, o, o],
                &[o, l, o, o],
                &[o, o, r[(0, 0)], r[(0, 1)]],
                &[o, o, r[(1, 0)], r[(1, 1)]],
            ]);
            embed_two(n_qubits, *control, *target, &cm)
        }
        Op::TwoQubitRotation {
            gate,
            first,
            second,
            param,
        } => embed_two(n_qubits, *first, *second, &gate.matrix(resolve(*param)?)),
    })
}

/// Full `2^n × 2^n` unitary of the circuit at the given parameters.
///
/// # Errors
///
/// Returns [`SimError::WrongParamCount`] on a parameter-length mismatch.
pub fn circuit_unitary(circuit: &Circuit, params: &[f64]) -> Result<CMatrix, SimError> {
    circuit.check_params(params)?;
    let dim = 1usize << circuit.n_qubits();
    let mut u = CMatrix::identity(dim);
    for op in circuit.ops() {
        let m = op_matrix(op, circuit.n_qubits(), params)?;
        u = &m * &u;
    }
    Ok(u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::{FixedGate, RotationGate};
    use crate::state::State;

    const TOL: f64 = 1e-10;

    #[test]
    fn embed_single_x_on_each_qubit() {
        for q in 0..3 {
            let x = FixedGate::X.matrix();
            let full = embed_single(3, q, &x);
            assert!(full.is_unitary(TOL));
            // Column 0 should map |000⟩ → |2^q⟩.
            assert!(full[(1 << q, 0)].approx_eq(C64::ONE, TOL));
        }
    }

    #[test]
    fn embed_two_matches_kron_for_adjacent_qubits() {
        use plateau_linalg::CMatrix;
        // CZ on qubits (1,0) of a 2-qubit register is just the 4×4 CZ.
        let cz = FixedGate::Cz.matrix();
        let full = embed_two(2, 1, 0, &cz);
        assert!(full.approx_eq(&cz, TOL));
        // X on qubit 0 with identity on qubit 1 via embed_single equals I⊗X.
        let ix = CMatrix::identity(2).kron(&FixedGate::X.matrix());
        assert!(embed_single(2, 0, &FixedGate::X.matrix()).approx_eq(&ix, TOL));
    }

    #[test]
    fn circuit_unitary_is_unitary() {
        let mut c = Circuit::new(3).unwrap();
        c.h(0).unwrap().rx(1).unwrap().cz(0, 2).unwrap().ry(2).unwrap();
        let u = circuit_unitary(&c, &[0.7, -0.4]).unwrap();
        assert!(u.is_unitary(TOL));
    }

    #[test]
    fn unitary_oracle_matches_kernels_on_random_circuit() {
        // Deterministic pseudo-random circuit over 4 qubits.
        let mut c = Circuit::new(4).unwrap();
        let mut angle = 0.3;
        for layer in 0..3 {
            for q in 0..4 {
                match (layer + q) % 3 {
                    0 => c.rx(q).unwrap(),
                    1 => c.ry(q).unwrap(),
                    _ => c.rz(q).unwrap(),
                };
            }
            for q in 0..3 {
                c.cz(q, q + 1).unwrap();
            }
            angle += 0.1;
        }
        let params: Vec<f64> = (0..c.n_params())
            .map(|i| angle * (i as f64 + 1.0) * 0.37)
            .collect();

        let via_kernel = c.run(&params).unwrap();
        let u = circuit_unitary(&c, &params).unwrap();
        let mut via_unitary = State::zero(4);
        via_unitary.apply_matrix(&u).unwrap();

        for (a, b) in via_kernel.amplitudes().iter().zip(via_unitary.amplitudes()) {
            assert!(a.approx_eq(*b, TOL), "{a} vs {b}");
        }
    }

    #[test]
    fn non_adjacent_two_qubit_embedding() {
        // CX with control 0, target 2 in a 3-qubit register.
        let mut c = Circuit::new(3).unwrap();
        c.x(0).unwrap().cx(0, 2).unwrap();
        let via_kernel = c.run(&[]).unwrap();
        let u = circuit_unitary(&c, &[]).unwrap();
        let mut via_unitary = State::zero(3);
        via_unitary.apply_matrix(&u).unwrap();
        assert!((via_kernel.fidelity(&via_unitary).unwrap() - 1.0).abs() < TOL);
        // End state should be |101⟩ = index 5.
        assert!((via_kernel.probabilities()[5] - 1.0).abs() < TOL);
    }

    #[test]
    fn controlled_rotation_unitary() {
        let mut c = Circuit::new(2).unwrap();
        c.h(0).unwrap();
        c.push_controlled_rotation(RotationGate::Rz, 0, 1).unwrap();
        let params = [1.3];
        let via_kernel = c.run(&params).unwrap();
        let u = circuit_unitary(&c, &params).unwrap();
        assert!(u.is_unitary(TOL));
        let mut via_unitary = State::zero(2);
        via_unitary.apply_matrix(&u).unwrap();
        assert!((via_kernel.fidelity(&via_unitary).unwrap() - 1.0).abs() < TOL);
    }

    #[test]
    fn op_matrix_rejects_missing_param() {
        let op = Op::Rotation {
            gate: RotationGate::Rx,
            qubit: 0,
            param: crate::circuit::Param::Free(3),
        };
        assert!(matches!(
            op_matrix(&op, 1, &[0.1]),
            Err(SimError::ParamOutOfRange { index: 3, .. })
        ));
    }

    #[test]
    fn unitary_checks_param_count() {
        let mut c = Circuit::new(1).unwrap();
        c.rx(0).unwrap();
        assert!(circuit_unitary(&c, &[]).is_err());
    }
}
