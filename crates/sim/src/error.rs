//! Error types for the simulator.

use std::error::Error;
use std::fmt;

/// Errors raised by statevector operations, circuit construction, and
/// execution.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A qubit operand was at or beyond the register size.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
        /// The register size.
        n_qubits: usize,
    },
    /// The same qubit was used twice in one multi-qubit gate.
    DuplicateQubits {
        /// The repeated qubit index.
        qubit: usize,
    },
    /// A gate received the wrong number of operand qubits.
    WrongArity {
        /// Gate name.
        gate: String,
        /// Arity the gate requires.
        expected: usize,
        /// Operand count supplied.
        found: usize,
    },
    /// Vector or matrix dimensions don't match the state.
    ///
    /// `expected == 0` encodes "any power of two" for amplitude buffers.
    DimensionMismatch {
        /// Expected dimension (0 = any power of two).
        expected: usize,
        /// Dimension found.
        found: usize,
    },
    /// An amplitude buffer was not L2-normalized.
    NotNormalized {
        /// The norm that was found.
        norm: f64,
    },
    /// A parameter buffer didn't match the circuit's parameter count.
    WrongParamCount {
        /// Parameters the circuit declares.
        expected: usize,
        /// Parameters supplied.
        found: usize,
    },
    /// A parameter index was out of range for the circuit.
    ParamOutOfRange {
        /// The offending parameter index.
        index: usize,
        /// The circuit's parameter count.
        n_params: usize,
    },
    /// An observable was built over a different qubit count than the state
    /// or circuit it was used with.
    ObservableMismatch {
        /// Qubits the observable covers.
        observable_qubits: usize,
        /// Qubits in the state/circuit.
        state_qubits: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::QubitOutOfRange { qubit, n_qubits } => {
                write!(f, "qubit {qubit} out of range for {n_qubits}-qubit register")
            }
            SimError::DuplicateQubits { qubit } => {
                write!(f, "qubit {qubit} used more than once in one gate")
            }
            SimError::WrongArity {
                gate,
                expected,
                found,
            } => write!(f, "gate {gate} takes {expected} qubit(s), got {found}"),
            SimError::DimensionMismatch { expected, found } => {
                if *expected == 0 {
                    write!(f, "dimension {found} is not a valid power of two")
                } else {
                    write!(f, "dimension mismatch: expected {expected}, found {found}")
                }
            }
            SimError::NotNormalized { norm } => {
                write!(f, "state is not normalized (norm {norm})")
            }
            SimError::WrongParamCount { expected, found } => {
                write!(f, "circuit takes {expected} parameter(s), got {found}")
            }
            SimError::ParamOutOfRange { index, n_params } => {
                write!(f, "parameter index {index} out of range for {n_params} parameter(s)")
            }
            SimError::ObservableMismatch {
                observable_qubits,
                state_qubits,
            } => write!(
                f,
                "observable over {observable_qubits} qubit(s) used with {state_qubits}-qubit state"
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(SimError, &str)> = vec![
            (
                SimError::QubitOutOfRange { qubit: 7, n_qubits: 4 },
                "qubit 7",
            ),
            (SimError::DuplicateQubits { qubit: 2 }, "more than once"),
            (
                SimError::WrongArity {
                    gate: "CZ".into(),
                    expected: 2,
                    found: 1,
                },
                "CZ",
            ),
            (
                SimError::DimensionMismatch { expected: 4, found: 8 },
                "expected 4",
            ),
            (
                SimError::DimensionMismatch { expected: 0, found: 3 },
                "power of two",
            ),
            (SimError::NotNormalized { norm: 2.0 }, "not normalized"),
            (
                SimError::WrongParamCount { expected: 3, found: 1 },
                "3 parameter",
            ),
            (
                SimError::ParamOutOfRange { index: 9, n_params: 4 },
                "index 9",
            ),
            (
                SimError::ObservableMismatch {
                    observable_qubits: 2,
                    state_qubits: 3,
                },
                "observable over 2",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "message {msg:?} missing {needle:?}");
        }
    }

    #[test]
    fn implements_std_error() {
        fn takes_error<E: Error + Send + Sync + 'static>(_e: E) {}
        takes_error(SimError::DuplicateQubits { qubit: 0 });
    }
}
