//! # plateau-vqe
//!
//! A variational quantum eigensolver built on the `plateau` stack — the
//! second application domain (after identity learning) demonstrating the
//! paper's initialization effect on a task PQCs are actually used for.
//!
//! - [`hamiltonian`]: transverse-field Ising and Heisenberg XXZ chains as
//!   Pauli-sum observables, with exact diagonalization as the oracle.
//! - [`solver`]: the VQE driver (paper training ansatz + Adam + any
//!   [`plateau_core::init::InitStrategy`]).
//!
//! # Examples
//!
//! ```
//! use plateau_core::init::InitStrategy;
//! use plateau_vqe::{hamiltonian::transverse_field_ising, solver::{solve, VqeConfig}};
//!
//! let h = transverse_field_ising(3, 1.0, 0.5)?;
//! let result = solve(&h, InitStrategy::XavierNormal, &VqeConfig::default())?;
//! // The variational principle bounds the answer from below.
//! assert!(result.energy() >= result.exact_energy - 1e-8);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hamiltonian;
pub mod solver;

pub use hamiltonian::{ground_state_energy, heisenberg_xxz, transverse_field_ising};
pub use solver::{solve, VqeConfig, VqeResult};
