//! Spin-chain Hamiltonians as Pauli-sum observables.
//!
//! Two standard models, both with open boundary conditions:
//!
//! - **Transverse-field Ising** (TFIM):
//!   `H = −J Σ Z_i Z_{i+1} − h Σ X_i`
//! - **Heisenberg XXZ**:
//!   `H = Σ (X_i X_{i+1} + Y_i Y_{i+1} + Δ Z_i Z_{i+1})`
//!
//! Ground-state energies are computed exactly by dense diagonalization
//! (`plateau-linalg`'s Jacobi solver) as the VQE oracle.
//!
//! # Examples
//!
//! ```
//! use plateau_vqe::hamiltonian::{transverse_field_ising, ground_state_energy};
//!
//! // 2-qubit TFIM at J = h = 1: H = −Z₀Z₁ − X₀ − X₁ has exact
//! // ground energy −√5.
//! let h = transverse_field_ising(2, 1.0, 1.0)?;
//! let e0 = ground_state_energy(&h)?;
//! assert!((e0 + 5f64.sqrt()).abs() < 1e-8);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use plateau_linalg::eigh;
use plateau_sim::{Observable, Pauli, PauliString, SimError};

/// Builds the open-boundary transverse-field Ising Hamiltonian
/// `H = −J Σ_{i<n−1} Z_i Z_{i+1} − h Σ_i X_i`.
///
/// # Errors
///
/// Returns [`SimError`] for a zero-qubit register.
pub fn transverse_field_ising(
    n_qubits: usize,
    coupling_j: f64,
    field_h: f64,
) -> Result<Observable, SimError> {
    let mut terms = Vec::new();
    for i in 0..n_qubits.saturating_sub(1) {
        let mut paulis = vec![Pauli::I; n_qubits];
        paulis[i] = Pauli::Z;
        paulis[i + 1] = Pauli::Z;
        terms.push((-coupling_j, PauliString::new(paulis)?));
    }
    for i in 0..n_qubits {
        terms.push((-field_h, PauliString::single(n_qubits, i, Pauli::X)?));
    }
    Observable::pauli_sum(terms)
}

/// Builds the open-boundary Heisenberg XXZ Hamiltonian
/// `H = Σ_{i<n−1} (X_i X_{i+1} + Y_i Y_{i+1} + Δ Z_i Z_{i+1})`.
///
/// # Errors
///
/// Returns [`SimError`] for registers smaller than two qubits.
pub fn heisenberg_xxz(n_qubits: usize, delta: f64) -> Result<Observable, SimError> {
    if n_qubits < 2 {
        return Err(SimError::QubitOutOfRange {
            qubit: 1,
            n_qubits,
        });
    }
    let mut terms = Vec::new();
    for i in 0..n_qubits - 1 {
        for (pauli, coeff) in [(Pauli::X, 1.0), (Pauli::Y, 1.0), (Pauli::Z, delta)] {
            let mut paulis = vec![Pauli::I; n_qubits];
            paulis[i] = pauli;
            paulis[i + 1] = pauli;
            terms.push((coeff, PauliString::new(paulis)?));
        }
    }
    Observable::pauli_sum(terms)
}

/// Exact ground-state energy by dense diagonalization — the oracle every
/// VQE run is scored against. Exponential in qubit count; keep to ≤ ~8
/// qubits.
///
/// # Errors
///
/// Returns [`SimError::DimensionMismatch`] when diagonalization fails.
pub fn ground_state_energy(h: &Observable) -> Result<f64, SimError> {
    let m = h.matrix();
    let eig = eigh(&m, 1e-10, 400).map_err(|_| SimError::DimensionMismatch {
        expected: m.rows(),
        found: m.cols(),
    })?;
    Ok(eig.values[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use plateau_sim::State;

    #[test]
    fn tfim_term_count() {
        let h = transverse_field_ising(4, 1.0, 0.5).unwrap();
        if let Observable::PauliSum { terms, .. } = &h {
            // 3 ZZ bonds + 4 X fields.
            assert_eq!(terms.len(), 7);
        } else {
            panic!("expected a Pauli sum");
        }
    }

    #[test]
    fn tfim_classical_limit() {
        // h = 0: H = −J Σ ZZ, ground states are the two ferromagnets with
        // energy −J(n−1).
        let h = transverse_field_ising(4, 1.0, 0.0).unwrap();
        let e0 = ground_state_energy(&h).unwrap();
        assert!((e0 + 3.0).abs() < 1e-8);
        // |0000⟩ achieves it.
        let e = h.expectation(&State::zero(4)).unwrap();
        assert!((e + 3.0).abs() < 1e-10);
    }

    #[test]
    fn tfim_field_limit() {
        // J = 0: H = −h Σ X, ground energy −h·n with |+⟩^⊗n.
        let h = transverse_field_ising(3, 0.0, 2.0).unwrap();
        let e0 = ground_state_energy(&h).unwrap();
        assert!((e0 + 6.0).abs() < 1e-8);
    }

    #[test]
    fn tfim_two_site_exact() {
        // H = −ZZ − (X₀+X₁): exact ground energy of the 2-site chain is −√5.
        let h = transverse_field_ising(2, 1.0, 1.0).unwrap();
        let e0 = ground_state_energy(&h).unwrap();
        assert!((e0 + 5f64.sqrt()).abs() < 1e-8, "e0 = {e0}");
    }

    #[test]
    fn heisenberg_two_site_exact() {
        // Two-site XXX (Δ=1): spectrum {−3, 1, 1, 1}; ground = singlet.
        let h = heisenberg_xxz(2, 1.0).unwrap();
        let e0 = ground_state_energy(&h).unwrap();
        assert!((e0 + 3.0).abs() < 1e-8);
        assert!(heisenberg_xxz(1, 1.0).is_err());
    }

    #[test]
    fn heisenberg_term_count() {
        let h = heisenberg_xxz(5, 0.7).unwrap();
        if let Observable::PauliSum { terms, .. } = &h {
            assert_eq!(terms.len(), 12); // 4 bonds × 3 couplings
        } else {
            panic!("expected a Pauli sum");
        }
    }

    #[test]
    fn ground_energy_is_a_lower_bound_for_any_state() {
        let h = transverse_field_ising(3, 1.0, 0.8).unwrap();
        let e0 = ground_state_energy(&h).unwrap();
        for idx in 0..8 {
            let e = h.expectation(&State::basis(3, idx)).unwrap();
            assert!(e >= e0 - 1e-9, "basis {idx}: {e} < {e0}");
        }
    }
}
