//! The VQE driver: minimize `⟨ψ(θ)|H|ψ(θ)⟩` with the plateau stack's
//! ansätze, initializers, and optimizers, scored against the exact ground
//! energy.
//!
//! # Examples
//!
//! ```
//! use plateau_core::init::InitStrategy;
//! use plateau_vqe::hamiltonian::transverse_field_ising;
//! use plateau_vqe::solver::{solve, VqeConfig};
//!
//! let h = transverse_field_ising(3, 1.0, 1.0)?;
//! let cfg = VqeConfig {
//!     layers: 3,
//!     iterations: 120,
//!     seed: 3,
//!     ..VqeConfig::default()
//! };
//! let result = solve(&h, InitStrategy::XavierNormal, &cfg)?;
//! assert!(result.relative_error()? < 0.1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::hamiltonian::ground_state_energy;
use plateau_core::ansatz::training_ansatz;
use plateau_core::error::CoreError;
use plateau_core::init::{FanMode, InitStrategy};
use plateau_core::optim::Adam;
use plateau_core::train::{
    train_instrumented, BarrenPlateauAlarm, TrainTelemetry, TrainingHistory,
};
use plateau_grad::Adjoint;
use plateau_sim::Observable;
use plateau_rng::rngs::StdRng;
use plateau_rng::SeedableRng;

/// VQE run configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VqeConfig {
    /// HEA layers of the ansatz.
    pub layers: usize,
    /// Adam iterations.
    pub iterations: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Fan convention for the initializer.
    pub fan_mode: FanMode,
    /// RNG seed for the initializer.
    pub seed: u64,
}

impl Default for VqeConfig {
    fn default() -> Self {
        VqeConfig {
            layers: 4,
            iterations: 150,
            learning_rate: 0.1,
            fan_mode: FanMode::TensorShape,
            seed: 0,
        }
    }
}

/// Outcome of a VQE run.
#[derive(Debug, Clone, PartialEq)]
pub struct VqeResult {
    /// The full optimization trajectory (energies, not costs).
    pub history: TrainingHistory,
    /// Exact ground-state energy from dense diagonalization.
    pub exact_energy: f64,
}

impl VqeResult {
    /// Final variational energy.
    pub fn energy(&self) -> f64 {
        self.history.final_loss()
    }

    /// Absolute error above the exact ground energy (non-negative up to
    /// optimizer noise, by the variational principle).
    pub fn absolute_error(&self) -> f64 {
        self.energy() - self.exact_energy
    }

    /// Error relative to the spectral scale `|E₀|`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the exact energy is zero
    /// (relative error undefined).
    pub fn relative_error(&self) -> Result<f64, CoreError> {
        if self.exact_energy == 0.0 {
            return Err(CoreError::InvalidConfig(
                "relative error undefined at zero ground energy".into(),
            ));
        }
        Ok(self.absolute_error() / self.exact_energy.abs())
    }
}

/// Runs VQE on `hamiltonian` with the paper's training ansatz and Adam,
/// starting from `strategy`-drawn parameters.
///
/// # Errors
///
/// Propagates ansatz/optimizer/simulation errors as [`CoreError`].
pub fn solve(
    hamiltonian: &Observable,
    strategy: InitStrategy,
    config: &VqeConfig,
) -> Result<VqeResult, CoreError> {
    let n_qubits = hamiltonian.n_qubits();
    let ansatz = training_ansatz(n_qubits, config.layers)?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let theta0 = strategy.sample_params(&ansatz.shape, config.fan_mode, &mut rng)?;
    let mut adam = Adam::new(config.learning_rate)?;
    // Record the gradient-dynamics series only when the experiment ledger
    // is on; the run record itself is written here (not by the training
    // loop) so it can carry VQE-specific metrics like the exact energy.
    let telemetry = TrainTelemetry {
        params_per_layer: Some(ansatz.shape.params_per_layer()),
        series_capacity: 0,
        record_series: plateau_obs::ledger_enabled(),
        run: None,
    };
    let run = train_instrumented(
        &ansatz.circuit,
        hamiltonian,
        theta0,
        &mut adam,
        config.iterations,
        &Adjoint,
        &BarrenPlateauAlarm::default(),
        telemetry,
    )?;
    let exact_energy = ground_state_energy(hamiltonian)?;
    let result = VqeResult {
        history: run.history,
        exact_energy,
    };
    if plateau_obs::ledger_enabled() {
        use plateau_obs::json::Json;
        let mut rec = plateau_obs::RunRecord::new("vqe")
            .config("qubits", Json::from(n_qubits))
            .config("layers", Json::from(config.layers))
            .config("iterations", Json::from(config.iterations))
            .config("strategy", Json::str(strategy.name()))
            .seed(config.seed)
            .metric("energy", result.energy())
            .metric("exact_energy", result.exact_energy)
            .metric("abs_error", result.absolute_error())
            .metric("initial_energy", result.history.initial_loss())
            .metric("plateau_alarms", result.history.plateau_alarms().len() as f64);
        if let Some(bp) = result.history.final_bp_score() {
            rec = rec.metric("bp_score_final", bp);
        }
        if let Err(e) = plateau_obs::record_run(&rec, run.series.as_ref()) {
            plateau_obs::warn!("vqe: ledger write failed: {e}");
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamiltonian::{heisenberg_xxz, transverse_field_ising};

    #[test]
    fn vqe_solves_small_tfim_from_xavier() {
        let h = transverse_field_ising(3, 1.0, 1.0).unwrap();
        let cfg = VqeConfig {
            layers: 3,
            iterations: 150,
            seed: 1,
            ..VqeConfig::default()
        };
        let r = solve(&h, InitStrategy::XavierNormal, &cfg).unwrap();
        assert!(
            r.relative_error().unwrap() < 0.05,
            "energy {} vs exact {}",
            r.energy(),
            r.exact_energy
        );
        // Variational principle: E ≥ E₀ (up to numerical slack).
        assert!(r.absolute_error() > -1e-8);
    }

    #[test]
    fn vqe_on_heisenberg_improves_substantially() {
        let h = heisenberg_xxz(3, 1.0).unwrap();
        let cfg = VqeConfig {
            layers: 4,
            iterations: 200,
            seed: 2,
            ..VqeConfig::default()
        };
        let r = solve(&h, InitStrategy::XavierUniform, &cfg).unwrap();
        assert!(
            r.history.final_loss() < r.history.initial_loss() - 0.5,
            "{} → {}",
            r.history.initial_loss(),
            r.history.final_loss()
        );
        assert!(r.absolute_error() > -1e-8);
    }

    #[test]
    fn relative_error_guard() {
        // A Hamiltonian with zero ground energy: H = I − |0⟩⟨0| scaled…
        // easiest: projector observable has E₀ = 0.
        let h = plateau_sim::Observable::zero_projector(2);
        let cfg = VqeConfig {
            layers: 1,
            iterations: 1,
            ..VqeConfig::default()
        };
        let r = solve(&h, InitStrategy::Zero, &cfg).unwrap();
        assert!(r.relative_error().is_err());
    }

    #[test]
    fn vqe_appends_ledger_record_with_series() {
        let _guard = plateau_obs::test_lock();
        let dir =
            std::env::temp_dir().join(format!("plateau_vqe_ledger_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        plateau_obs::set_ledger_dir(Some(&dir));

        let h = transverse_field_ising(2, 1.0, 1.0).unwrap();
        let cfg = VqeConfig {
            layers: 1,
            iterations: 3,
            ..VqeConfig::default()
        };
        let r = solve(&h, InitStrategy::XavierNormal, &cfg).unwrap();

        let text = std::fs::read_to_string(dir.join("ledger.jsonl")).unwrap();
        let rec = plateau_obs::json::Json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(rec.get("command").unwrap().as_str(), Some("vqe"));
        assert_eq!(
            rec.get("metrics").unwrap().get("exact_energy").unwrap().as_f64(),
            Some(r.exact_energy)
        );
        assert_eq!(
            rec.get("config").unwrap().get("strategy").unwrap().as_str(),
            Some("xavier_normal")
        );
        let rel = rec.get("series").unwrap().as_str().unwrap().to_string();
        let series = plateau_obs::TimeSeries::read_jsonl(&dir.join(rel)).unwrap();
        assert_eq!(series.len(), 3, "one row per iteration");
        assert!(series.columns().iter().any(|c| c == "layer_var_0"));

        plateau_obs::set_ledger_dir(None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn xavier_start_beats_random_start_at_fixed_budget() {
        // The paper's message transplanted to VQE: at a tight iteration
        // budget on a wider chain, the bounded start reaches lower energy.
        let h = transverse_field_ising(6, 1.0, 1.0).unwrap();
        let cfg = VqeConfig {
            layers: 4,
            iterations: 60,
            seed: 3,
            ..VqeConfig::default()
        };
        let xavier = solve(&h, InitStrategy::XavierNormal, &cfg).unwrap();
        let random = solve(&h, InitStrategy::Random, &cfg).unwrap();
        assert!(
            xavier.energy() < random.energy(),
            "xavier {} should beat random {}",
            xavier.energy(),
            random.energy()
        );
    }
}
