//! Dense row-major matrices over [`C64`] and `f64`.
//!
//! These are deliberately small, dependency-free implementations sized for
//! the needs of the quantum stack: gate matrices (2×2 / 4×4), full circuit
//! unitaries used as test oracles (up to ~2¹² dimensions), and the real
//! matrices consumed by the orthogonal parameter initializer.
//!
//! # Examples
//!
//! ```
//! use plateau_linalg::{CMatrix, C64};
//!
//! let x = CMatrix::from_rows(&[
//!     &[C64::ZERO, C64::ONE],
//!     &[C64::ONE, C64::ZERO],
//! ]);
//! assert!(x.is_unitary(1e-12));
//! assert_eq!(&x * &x, CMatrix::identity(2));
//! ```

use crate::complex::C64;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense row-major complex matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl CMatrix {
    /// Creates a matrix of zeros with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be nonzero");
        CMatrix {
            rows,
            cols,
            data: vec![C64::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C64::ONE;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[C64]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        CMatrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or either dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<C64>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be nonzero");
        assert_eq!(data.len(), rows * cols, "buffer length must match shape");
        CMatrix { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> C64) -> Self {
        let mut m = CMatrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Flat row-major view of the entries.
    #[inline]
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Mutable flat row-major view of the entries.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the flat row-major buffer.
    #[inline]
    pub fn into_vec(self) -> Vec<C64> {
        self.data
    }

    /// Borrow of row `i` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[C64] {
        assert!(i < self.rows, "row index out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Transpose (no conjugation).
    pub fn transpose(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Conjugate transpose `A†`.
    pub fn dagger(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Entry-wise complex conjugate.
    pub fn conj(&self) -> CMatrix {
        let mut out = self.clone();
        for z in &mut out.data {
            *z = z.conj();
        }
        out
    }

    /// Trace of a square matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> C64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Matrix-vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[C64]) -> Vec<C64> {
        assert_eq!(x.len(), self.cols, "vector length must match columns");
        let mut y = vec![C64::ZERO; self.rows];
        for i in 0..self.rows {
            let row = self.row(i);
            let mut acc = C64::ZERO;
            for (a, b) in row.iter().zip(x.iter()) {
                acc = a.mul_add(*b, acc);
            }
            y[i] = acc;
        }
        y
    }

    /// Kronecker (tensor) product `self ⊗ other`.
    ///
    /// Ordering convention: the left factor owns the most-significant block
    /// index, matching the usual `|a⟩ ⊗ |b⟩` composite-index layout.
    pub fn kron(&self, other: &CMatrix) -> CMatrix {
        let mut out = CMatrix::zeros(self.rows * other.rows, self.cols * other.cols);
        for i1 in 0..self.rows {
            for j1 in 0..self.cols {
                let a = self[(i1, j1)];
                if a == C64::ZERO {
                    continue;
                }
                for i2 in 0..other.rows {
                    for j2 in 0..other.cols {
                        out[(i1 * other.rows + i2, j1 * other.cols + j2)] = a * other[(i2, j2)];
                    }
                }
            }
        }
        out
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, k: C64) -> CMatrix {
        let mut out = self.clone();
        for z in &mut out.data {
            *z *= k;
        }
        out
    }

    /// Frobenius norm `sqrt(Σ |a_ij|²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Largest absolute entry-wise difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &CMatrix) -> f64 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (*a - *b).norm())
            .fold(0.0, f64::max)
    }

    /// Tests `A†A = I` within entry-wise tolerance `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let prod = &self.dagger() * self;
        prod.max_abs_diff(&CMatrix::identity(self.rows)) <= tol
    }

    /// Tests `A = A†` within entry-wise tolerance `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.is_square() && self.max_abs_diff(&self.dagger()) <= tol
    }

    /// Approximate equality within entry-wise tolerance `tol`.
    pub fn approx_eq(&self, other: &CMatrix, tol: f64) -> bool {
        (self.rows, self.cols) == (other.rows, other.cols) && self.max_abs_diff(other) <= tol
    }

    /// Approximate equality up to a global phase: finds the phase of the
    /// largest entry of `self` relative to `other` and compares after
    /// rotating. Useful for comparing circuit unitaries where a global phase
    /// is physically meaningless.
    pub fn approx_eq_up_to_phase(&self, other: &CMatrix, tol: f64) -> bool {
        if (self.rows, self.cols) != (other.rows, other.cols) {
            return false;
        }
        // Find the entry of `other` with the largest modulus to anchor the phase.
        let (mut best, mut idx) = (0.0f64, 0usize);
        for (k, z) in other.data.iter().enumerate() {
            if z.norm() > best {
                best = z.norm();
                idx = k;
            }
        }
        if best < tol {
            return self.frobenius_norm() <= tol;
        }
        let phase = self.data[idx] / other.data[idx];
        if (phase.norm() - 1.0).abs() > tol {
            return false;
        }
        self.approx_eq(&other.scale(phase), tol)
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = C64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &C64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut C64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(rhs.data.iter()) {
            *a += *b;
        }
        out
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(rhs.data.iter()) {
            *a -= *b;
        }
        out
    }
}

impl Neg for &CMatrix {
    type Output = CMatrix;
    fn neg(self) -> CMatrix {
        let mut out = self.clone();
        for z in &mut out.data {
            *z = -*z;
        }
        out
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(
            self.cols, rhs.rows,
            "inner dimensions must agree for matrix product"
        );
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == C64::ZERO {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, b) in out_row.iter_mut().zip(rhs_row.iter()) {
                    *o = a.mul_add(*b, *o);
                }
            }
        }
        out
    }
}

impl fmt::Display for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

/// A dense row-major real matrix, used by the orthogonal initializer.
#[derive(Debug, Clone, PartialEq)]
pub struct RMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl RMatrix {
    /// Creates a matrix of zeros with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be nonzero");
        RMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = RMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or either dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be nonzero");
        assert_eq!(data.len(), rows * cols, "buffer length must match shape");
        RMatrix { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = RMatrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major view of the entries.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix, returning the flat row-major buffer.
    #[inline]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow of row `i` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Transpose.
    pub fn transpose(&self) -> RMatrix {
        RMatrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Largest absolute entry-wise difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &RMatrix) -> f64 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Tests `AᵀA = I` within entry-wise tolerance `tol` (i.e. the columns
    /// are orthonormal).
    pub fn has_orthonormal_columns(&self, tol: f64) -> bool {
        let gram = &self.transpose() * self;
        gram.max_abs_diff(&RMatrix::identity(self.cols)) <= tol
    }

    /// Tests `AAᵀ = I` within entry-wise tolerance `tol` (i.e. the rows are
    /// orthonormal).
    pub fn has_orthonormal_rows(&self, tol: f64) -> bool {
        let gram = self * &self.transpose();
        gram.max_abs_diff(&RMatrix::identity(self.rows)) <= tol
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

impl Index<(usize, usize)> for RMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for RMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl Mul for &RMatrix {
    type Output = RMatrix;
    fn mul(self, rhs: &RMatrix) -> RMatrix {
        assert_eq!(
            self.cols, rhs.rows,
            "inner dimensions must agree for matrix product"
        );
        let mut out = RMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, b) in out_row.iter_mut().zip(rhs_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }
}

impl fmt::Display for RMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.6}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn pauli_x() -> CMatrix {
        CMatrix::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]])
    }

    fn pauli_y() -> CMatrix {
        CMatrix::from_rows(&[&[C64::ZERO, -C64::I], &[C64::I, C64::ZERO]])
    }

    fn pauli_z() -> CMatrix {
        CMatrix::from_rows(&[&[C64::ONE, C64::ZERO], &[C64::ZERO, -C64::ONE]])
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let x = pauli_x();
        let id = CMatrix::identity(2);
        assert_eq!(&x * &id, x);
        assert_eq!(&id * &x, x);
    }

    #[test]
    fn pauli_algebra() {
        // XY = iZ, YZ = iX, ZX = iY
        let (x, y, z) = (pauli_x(), pauli_y(), pauli_z());
        assert!((&x * &y).approx_eq(&z.scale(C64::I), 1e-12));
        assert!((&y * &z).approx_eq(&x.scale(C64::I), 1e-12));
        assert!((&z * &x).approx_eq(&y.scale(C64::I), 1e-12));
    }

    #[test]
    fn paulis_are_unitary_and_hermitian() {
        for m in [pauli_x(), pauli_y(), pauli_z()] {
            assert!(m.is_unitary(1e-12));
            assert!(m.is_hermitian(1e-12));
            assert!(m.trace().approx_eq(C64::ZERO, 1e-12));
        }
    }

    #[test]
    fn dagger_reverses_products() {
        let a = pauli_x();
        let b = pauli_y();
        let lhs = (&a * &b).dagger();
        let rhs = &b.dagger() * &a.dagger();
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn kron_shape_and_values() {
        let x = pauli_x();
        let id = CMatrix::identity(2);
        let xi = x.kron(&id);
        assert_eq!(xi.rows(), 4);
        assert_eq!(xi.cols(), 4);
        // X ⊗ I flips the high bit: maps |00> -> |10>.
        let v = xi.matvec(&[C64::ONE, C64::ZERO, C64::ZERO, C64::ZERO]);
        assert!(v[2].approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A⊗B)(C⊗D) = (AC)⊗(BD)
        let a = pauli_x();
        let b = pauli_y();
        let c = pauli_z();
        let d = CMatrix::identity(2);
        let lhs = &a.kron(&b) * &c.kron(&d);
        let rhs = (&a * &c).kron(&(&b * &d));
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn matvec_matches_mul() {
        let a = pauli_y();
        let v = [c64(0.6, 0.0), c64(0.0, 0.8)];
        let got = a.matvec(&v);
        // Y|v> = (-i*v1, i*v0)
        assert!(got[0].approx_eq(c64(0.8, 0.0), 1e-12));
        assert!(got[1].approx_eq(c64(0.0, 0.6), 1e-12));
    }

    #[test]
    fn frobenius_norm_of_pauli_is_sqrt2() {
        assert!((pauli_x().frobenius_norm() - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn approx_eq_up_to_phase_detects_global_phase() {
        let x = pauli_x();
        let phased = x.scale(C64::cis(0.37));
        assert!(phased.approx_eq_up_to_phase(&x, 1e-12));
        assert!(!phased.approx_eq(&x, 1e-6));
        assert!(!pauli_z().approx_eq_up_to_phase(&x, 1e-6));
    }

    #[test]
    fn add_sub_neg() {
        let x = pauli_x();
        let z = pauli_z();
        let s = &x + &z;
        assert!((&s - &z).approx_eq(&x, 1e-12));
        assert!((&-&x + &x).approx_eq(&CMatrix::zeros(2, 2), 1e-12));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_mul_panics() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 3);
        let _ = &a * &b;
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn out_of_bounds_index_panics() {
        let a = CMatrix::zeros(2, 2);
        let _ = a[(2, 0)];
    }

    #[test]
    fn rmatrix_identity_orthonormal() {
        let id = RMatrix::identity(4);
        assert!(id.has_orthonormal_columns(1e-12));
        assert!(id.has_orthonormal_rows(1e-12));
    }

    #[test]
    fn rmatrix_rotation_is_orthogonal() {
        let t: f64 = 0.83;
        let r = RMatrix::from_vec(2, 2, vec![t.cos(), -t.sin(), t.sin(), t.cos()]);
        assert!(r.has_orthonormal_columns(1e-12));
        assert!(r.has_orthonormal_rows(1e-12));
    }

    #[test]
    fn rmatrix_transpose_involution() {
        let m = RMatrix::from_fn(3, 5, |i, j| (i * 7 + j) as f64);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn rmatrix_mul_known_values() {
        let a = RMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = RMatrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = &a * &b;
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }
}
