//! Double-precision complex arithmetic.
//!
//! The whole quantum stack works over [`C64`]. The type is deliberately a
//! plain `#[repr(C)]` pair of `f64`s so that a `&[C64]` statevector can be
//! reinterpreted cheaply and copied without bookkeeping.
//!
//! # Examples
//!
//! ```
//! use plateau_linalg::C64;
//!
//! let i = C64::I;
//! assert_eq!(i * i, C64::new(-1.0, 0.0));
//! assert!((C64::from_polar(2.0, std::f64::consts::FRAC_PI_2) - 2.0 * i).norm() < 1e-12);
//! ```

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Creates a purely imaginary complex number.
    #[inline]
    pub const fn imag(im: f64) -> Self {
        C64 { re: 0.0, im }
    }

    /// Creates a complex number from polar coordinates `r * e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        C64::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns `e^{iθ}`, a point on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        C64::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64::new(self.re, -self.im)
    }

    /// Squared modulus `|z|²`; cheaper than [`C64::norm`] and exact for
    /// probability computations.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns NaN components when `self` is zero, mirroring `f64` division.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        C64::new(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        C64::new(r * self.im.cos(), r * self.im.sin())
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        C64::new(self.re * k, self.im * k)
    }

    /// Fused multiply-add: `self * b + c`.
    #[inline]
    pub fn mul_add(self, b: C64, c: C64) -> Self {
        C64::new(
            self.re * b.re - self.im * b.im + c.re,
            self.re * b.im + self.im * b.re + c.im,
        )
    }

    /// Returns `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Approximate equality within absolute tolerance `tol` on both parts.
    #[inline]
    pub fn approx_eq(self, other: C64, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl From<f64> for C64 {
    #[inline]
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl From<(f64, f64)> for C64 {
    #[inline]
    fn from((re, im): (f64, f64)) -> Self {
        C64::new(re, im)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z·w⁻¹ is the definition
    fn div(self, rhs: C64) -> C64 {
        self * rhs.recip()
    }
}

impl Add<f64> for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: f64) -> C64 {
        C64::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: f64) -> C64 {
        C64::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: f64) -> C64 {
        C64::new(self.re / rhs, self.im / rhs)
    }
}

impl Add<C64> for f64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self + rhs.re, rhs.im)
    }
}

impl Sub<C64> for f64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self - rhs.re, -rhs.im)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl MulAssign<f64> for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        self.re *= rhs;
        self.im *= rhs;
    }
}

impl DivAssign for C64 {
    #[inline]
    fn div_assign(&mut self, rhs: C64) {
        *self = *self / rhs;
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a C64> for C64 {
    fn sum<I: Iterator<Item = &'a C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |acc, z| acc + *z)
    }
}

impl Product for C64 {
    fn product<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ONE, Mul::mul)
    }
}

/// Shorthand constructor: `c64(re, im)`.
///
/// # Examples
///
/// ```
/// use plateau_linalg::{c64, C64};
/// assert_eq!(c64(1.0, -2.0), C64::new(1.0, -2.0));
/// ```
#[inline]
pub const fn c64(re: f64, im: f64) -> C64 {
    C64::new(re, im)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    const TOL: f64 = 1e-12;

    #[test]
    fn constants_behave() {
        assert_eq!(C64::ZERO + C64::ONE, C64::ONE);
        assert_eq!(C64::I * C64::I, -C64::ONE);
        assert_eq!(C64::ONE * C64::I, C64::I);
    }

    #[test]
    fn arithmetic_field_axioms() {
        let a = c64(1.5, -2.25);
        let b = c64(-0.5, 3.0);
        let c = c64(0.25, 0.75);
        assert!(((a + b) + c).approx_eq(a + (b + c), TOL));
        assert!(((a * b) * c).approx_eq(a * (b * c), TOL));
        assert!((a * (b + c)).approx_eq(a * b + a * c, TOL));
        assert!((a - a).approx_eq(C64::ZERO, TOL));
        assert!((a * a.recip()).approx_eq(C64::ONE, TOL));
    }

    #[test]
    fn division_matches_multiplication_by_inverse() {
        let a = c64(3.0, 4.0);
        let b = c64(-1.0, 2.0);
        assert!((a / b * b).approx_eq(a, TOL));
    }

    #[test]
    fn conjugation_and_norms() {
        let z = c64(3.0, -4.0);
        assert_eq!(z.conj(), c64(3.0, 4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.norm(), 5.0);
        assert!((z * z.conj()).approx_eq(c64(25.0, 0.0), TOL));
    }

    #[test]
    fn polar_roundtrip() {
        let z = C64::from_polar(2.0, 0.7);
        assert!((z.norm() - 2.0).abs() < TOL);
        assert!((z.arg() - 0.7).abs() < TOL);
    }

    #[test]
    fn cis_is_unit_circle() {
        for k in 0..16 {
            let t = k as f64 / 16.0 * 2.0 * PI;
            assert!((C64::cis(t).norm() - 1.0).abs() < TOL);
        }
        assert!(C64::cis(FRAC_PI_2).approx_eq(C64::I, TOL));
    }

    #[test]
    fn exp_euler_identity() {
        // e^{iπ} + 1 = 0
        let z = C64::imag(PI).exp() + C64::ONE;
        assert!(z.norm() < 1e-12);
    }

    #[test]
    fn exp_splits_into_modulus_and_phase() {
        let z = c64(0.5, 1.2);
        let e = z.exp();
        assert!((e.norm() - 0.5f64.exp()).abs() < TOL);
        assert!((e.arg() - 1.2).abs() < TOL);
    }

    #[test]
    fn mixed_real_ops() {
        let z = c64(1.0, 1.0);
        assert_eq!(z * 2.0, c64(2.0, 2.0));
        assert_eq!(2.0 * z, c64(2.0, 2.0));
        assert_eq!(z + 1.0, c64(2.0, 1.0));
        assert_eq!(1.0 - z, c64(0.0, -1.0));
        assert_eq!(z / 2.0, c64(0.5, 0.5));
    }

    #[test]
    fn assign_ops() {
        let mut z = c64(1.0, 2.0);
        z += c64(1.0, 1.0);
        assert_eq!(z, c64(2.0, 3.0));
        z -= c64(2.0, 0.0);
        assert_eq!(z, c64(0.0, 3.0));
        z *= C64::I;
        assert_eq!(z, c64(-3.0, 0.0));
        z *= 2.0;
        assert_eq!(z, c64(-6.0, 0.0));
        z /= c64(-2.0, 0.0);
        assert!(z.approx_eq(c64(3.0, 0.0), TOL));
    }

    #[test]
    fn sum_and_product() {
        let v = [c64(1.0, 0.0), c64(0.0, 1.0), c64(2.0, -1.0)];
        let s: C64 = v.iter().sum();
        assert_eq!(s, c64(3.0, 0.0));
        let p: C64 = v.iter().copied().product();
        // (1)(i)(2 - i) = i(2 - i) = 1 + 2i
        assert!(p.approx_eq(c64(1.0, 2.0), TOL));
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let a = c64(1.1, -0.3);
        let b = c64(0.7, 2.0);
        let c = c64(-5.0, 0.25);
        assert!(a.mul_add(b, c).approx_eq(a * b + c, TOL));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(c64(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(c64(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn finiteness() {
        assert!(c64(1.0, 2.0).is_finite());
        assert!(!c64(f64::NAN, 0.0).is_finite());
        assert!(!c64(0.0, f64::INFINITY).is_finite());
    }
}
