//! Householder QR decomposition of real matrices.
//!
//! The orthogonal parameter initializer ([Hu, Xiao & Pennington 2020] as
//! cited by the paper) draws a Gaussian matrix and orthogonalizes it. The
//! textbook way to do this — and the way `numpy.linalg.qr`-based
//! initializers do it — is a Householder QR followed by a sign fix that
//! makes the diagonal of `R` non-negative, which renders `Q` unique and
//! (for a Gaussian input) Haar-distributed on the orthogonal group.
//!
//! # Examples
//!
//! ```
//! use plateau_linalg::{qr_decompose, RMatrix};
//!
//! let a = RMatrix::from_vec(3, 3, vec![2.0, -1.0, 0.5, 1.0, 3.0, -2.0, 0.0, 1.0, 1.0]);
//! let qr = qr_decompose(&a);
//! assert!(qr.q.has_orthonormal_columns(1e-10));
//! let recon = &qr.q * &qr.r;
//! assert!(recon.max_abs_diff(&a) < 1e-10);
//! ```

use crate::matrix::RMatrix;

/// Result of a QR decomposition: `A = Q R` with `Q` column-orthonormal
/// (`m × k`, `k = min(m, n)`) and `R` upper-triangular (`k × n`).
#[derive(Debug, Clone, PartialEq)]
pub struct QrDecomposition {
    /// Column-orthonormal factor.
    pub q: RMatrix,
    /// Upper-triangular factor.
    pub r: RMatrix,
}

/// Computes the reduced (thin) QR decomposition of `a` via Householder
/// reflections.
///
/// Returns `Q` of shape `m × k` and `R` of shape `k × n` where
/// `k = min(m, n)`, with `A = Q R` and `QᵀQ = I`.
pub fn qr_decompose(a: &RMatrix) -> QrDecomposition {
    let m = a.rows();
    let n = a.cols();
    let k = m.min(n);

    // Working copy that accumulates R in-place.
    let mut r = a.clone();
    // Householder vectors, one per reflection, stored densely for the
    // back-accumulation of Q.
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(k);

    for j in 0..k {
        // Build the Householder vector for column j, rows j..m.
        let mut v = vec![0.0; m - j];
        let mut norm_sq = 0.0;
        for i in j..m {
            v[i - j] = r[(i, j)];
            norm_sq += r[(i, j)] * r[(i, j)];
        }
        let norm = norm_sq.sqrt();
        if norm > 0.0 {
            // Choose the sign that avoids cancellation.
            let alpha = if v[0] >= 0.0 { -norm } else { norm };
            v[0] -= alpha;
            let v_norm_sq: f64 = v.iter().map(|x| x * x).sum();
            if v_norm_sq > 1e-300 {
                // Apply H = I - 2 v vᵀ / (vᵀv) to the trailing block of R.
                for col in j..n {
                    let mut dot = 0.0;
                    for i in j..m {
                        dot += v[i - j] * r[(i, col)];
                    }
                    let s = 2.0 * dot / v_norm_sq;
                    for i in j..m {
                        r[(i, col)] -= s * v[i - j];
                    }
                }
            }
        }
        vs.push(v);
    }

    // Accumulate Q by applying the reflections to the first k columns of the
    // m×m identity, in reverse order: Q = H_0 H_1 … H_{k-1} [e_0 … e_{k-1}].
    let mut q = RMatrix::zeros(m, k);
    for j in 0..k {
        q[(j, j)] = 1.0;
    }
    for j in (0..k).rev() {
        let v = &vs[j];
        let v_norm_sq: f64 = v.iter().map(|x| x * x).sum();
        if v_norm_sq <= 1e-300 {
            continue;
        }
        for col in 0..k {
            let mut dot = 0.0;
            for i in j..m {
                dot += v[i - j] * q[(i, col)];
            }
            let s = 2.0 * dot / v_norm_sq;
            for i in j..m {
                q[(i, col)] -= s * v[i - j];
            }
        }
    }

    // Zero the strictly-lower part of R (numerically tiny but not exactly 0)
    // and truncate to k × n.
    let mut r_out = RMatrix::zeros(k, n);
    for i in 0..k {
        for j in i..n {
            r_out[(i, j)] = r[(i, j)];
        }
    }

    QrDecomposition { q, r: r_out }
}

/// Computes a sign-fixed QR decomposition: the diagonal of `R` is made
/// non-negative by flipping the signs of the corresponding columns of `Q`
/// (and rows of `R`).
///
/// With a standard-Gaussian input matrix this makes `Q` exactly
/// Haar-distributed (Mezzadri, *How to generate random matrices from the
/// classical compact groups*), which is the property the orthogonal
/// initializer relies on.
pub fn qr_decompose_signfixed(a: &RMatrix) -> QrDecomposition {
    let mut qr = qr_decompose(a);
    let k = qr.r.rows();
    let n = qr.r.cols();
    let m = qr.q.rows();
    for j in 0..k.min(n) {
        if qr.r[(j, j)] < 0.0 {
            for col in j..n {
                qr.r[(j, col)] = -qr.r[(j, col)];
            }
            for row in 0..m {
                qr.q[(row, j)] = -qr.q[(row, j)];
            }
        }
    }
    qr
}

#[cfg(test)]
mod tests {
    use super::*;
    use plateau_rng::rngs::StdRng;
    use plateau_rng::{Rng, SeedableRng};

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> RMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        RMatrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
    }

    fn check_qr(a: &RMatrix, tol: f64) {
        let qr = qr_decompose(a);
        let k = a.rows().min(a.cols());
        assert_eq!(qr.q.rows(), a.rows());
        assert_eq!(qr.q.cols(), k);
        assert_eq!(qr.r.rows(), k);
        assert_eq!(qr.r.cols(), a.cols());
        assert!(qr.q.has_orthonormal_columns(tol), "Q not orthonormal");
        // R upper triangular by construction.
        for i in 0..k {
            for j in 0..i.min(a.cols()) {
                assert_eq!(qr.r[(i, j)], 0.0);
            }
        }
        let recon = &qr.q * &qr.r;
        assert!(
            recon.max_abs_diff(a) < tol,
            "QR does not reconstruct A (err {})",
            recon.max_abs_diff(a)
        );
    }

    #[test]
    fn square_random_matrices() {
        for seed in 0..10 {
            check_qr(&random_matrix(5, 5, seed), 1e-10);
        }
    }

    #[test]
    fn tall_matrices() {
        for seed in 0..5 {
            check_qr(&random_matrix(8, 3, seed), 1e-10);
        }
    }

    #[test]
    fn wide_matrices() {
        for seed in 0..5 {
            check_qr(&random_matrix(3, 8, seed), 1e-10);
        }
    }

    #[test]
    fn identity_decomposes_to_itself() {
        let id = RMatrix::identity(4);
        let qr = qr_decompose_signfixed(&id);
        assert!(qr.q.max_abs_diff(&id) < 1e-12);
        assert!(qr.r.max_abs_diff(&id) < 1e-12);
    }

    #[test]
    fn signfix_makes_diagonal_nonnegative() {
        for seed in 0..10 {
            let a = random_matrix(6, 6, seed + 100);
            let qr = qr_decompose_signfixed(&a);
            for j in 0..6 {
                assert!(qr.r[(j, j)] >= 0.0, "R diagonal negative at {j}");
            }
            assert!(qr.q.has_orthonormal_columns(1e-10));
            let recon = &qr.q * &qr.r;
            assert!(recon.max_abs_diff(&a) < 1e-10);
        }
    }

    #[test]
    fn handles_rank_deficient_matrix() {
        // Two identical columns.
        let a = RMatrix::from_vec(3, 2, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
        let qr = qr_decompose(&a);
        let recon = &qr.q * &qr.r;
        assert!(recon.max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn handles_zero_matrix() {
        let a = RMatrix::zeros(3, 3);
        let qr = qr_decompose(&a);
        let recon = &qr.q * &qr.r;
        assert!(recon.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn square_q_is_fully_orthogonal() {
        let a = random_matrix(7, 7, 42);
        let qr = qr_decompose_signfixed(&a);
        assert!(qr.q.has_orthonormal_rows(1e-10));
        assert!(qr.q.has_orthonormal_columns(1e-10));
    }
}
