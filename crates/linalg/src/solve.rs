//! Linear-system solving for small dense real matrices, via the existing
//! Householder QR: `Ax = b` → `x = R⁻¹ Qᵀ b`.
//!
//! Used by the quantum-natural-gradient optimizer to solve
//! `(G + λI) δ = ∇C` for the metric-preconditioned step.
//!
//! # Examples
//!
//! ```
//! use plateau_linalg::{solve, RMatrix};
//!
//! let a = RMatrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
//! let x = solve(&a, &[5.0, 10.0]).expect("well-conditioned");
//! assert!((x[0] - 1.0).abs() < 1e-12);
//! assert!((x[1] - 3.0).abs() < 1e-12);
//! ```

use crate::matrix::RMatrix;
use crate::qr::qr_decompose;
use std::error::Error;
use std::fmt;

/// Error returned when a linear system cannot be solved.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The matrix is not square or `b` has the wrong length.
    ShapeMismatch {
        /// Matrix rows.
        rows: usize,
        /// Matrix columns.
        cols: usize,
        /// Right-hand-side length.
        rhs: usize,
    },
    /// The matrix is (numerically) singular.
    Singular {
        /// The diagonal entry of `R` that vanished.
        pivot: f64,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::ShapeMismatch { rows, cols, rhs } => {
                write!(f, "cannot solve {rows}×{cols} system with rhs of length {rhs}")
            }
            SolveError::Singular { pivot } => {
                write!(f, "matrix is numerically singular (pivot {pivot:.3e})")
            }
        }
    }
}

impl Error for SolveError {}

/// Solves the square system `A x = b` by QR factorization with back
/// substitution.
///
/// # Errors
///
/// Returns [`SolveError::ShapeMismatch`] for non-square `A` or a
/// wrong-length `b`, and [`SolveError::Singular`] when an `R` pivot
/// underflows the conditioning threshold.
pub fn solve(a: &RMatrix, b: &[f64]) -> Result<Vec<f64>, SolveError> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(SolveError::ShapeMismatch {
            rows: a.rows(),
            cols: a.cols(),
            rhs: b.len(),
        });
    }

    let qr = qr_decompose(a);
    // y = Qᵀ b
    let mut y = vec![0.0; n];
    for j in 0..n {
        let mut acc = 0.0;
        for i in 0..n {
            acc += qr.q[(i, j)] * b[i];
        }
        y[j] = acc;
    }
    // Back substitution on R x = y.
    let scale = a.frobenius_norm().max(1.0);
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut acc = y[i];
        for j in (i + 1)..n {
            acc -= qr.r[(i, j)] * x[j];
        }
        let pivot = qr.r[(i, i)];
        if pivot.abs() < 1e-13 * scale {
            return Err(SolveError::Singular { pivot });
        }
        x[i] = acc / pivot;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use plateau_rng::rngs::StdRng;
    use plateau_rng::{Rng, SeedableRng};

    #[test]
    fn identity_system() {
        let a = RMatrix::identity(3);
        let x = solve(&a, &[1.0, -2.0, 0.5]).unwrap();
        assert_eq!(x, vec![1.0, -2.0, 0.5]);
    }

    #[test]
    fn known_2x2() {
        let a = RMatrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn random_systems_round_trip() {
        let mut rng = StdRng::seed_from_u64(0);
        for n in [3usize, 5, 8] {
            // Diagonally-dominant → well conditioned.
            let a = RMatrix::from_fn(n, n, |i, j| {
                if i == j {
                    n as f64 + rng.gen_range(0.0..1.0)
                } else {
                    rng.gen_range(-1.0..1.0)
                }
            });
            let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let b: Vec<f64> = (0..n)
                .map(|i| (0..n).map(|j| a[(i, j)] * x_true[j]).sum())
                .collect();
            let x = solve(&a, &b).unwrap();
            for (got, want) in x.iter().zip(x_true.iter()) {
                assert!((got - want).abs() < 1e-9, "n={n}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = RMatrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(matches!(
            solve(&a, &[1.0, 2.0]).unwrap_err(),
            SolveError::Singular { .. }
        ));
    }

    #[test]
    fn shape_mismatch_is_detected() {
        let a = RMatrix::zeros(2, 3);
        assert!(matches!(
            solve(&a, &[1.0, 2.0]).unwrap_err(),
            SolveError::ShapeMismatch { .. }
        ));
        let sq = RMatrix::identity(2);
        assert!(solve(&sq, &[1.0]).is_err());
    }

    #[test]
    fn error_display() {
        let e = SolveError::Singular { pivot: 1e-20 };
        assert!(e.to_string().contains("singular"));
    }
}
