//! Eigendecomposition of Hermitian (and real symmetric) matrices via the
//! cyclic Jacobi method.
//!
//! Sized for the quantum stack's needs: reduced density matrices of a few
//! qubits (dimension ≤ ~64), where Jacobi's simplicity and unconditional
//! stability beat fancier algorithms. Used by the entanglement-entropy
//! analysis in `plateau-core`.
//!
//! # Examples
//!
//! ```
//! use plateau_linalg::{c64, eigh, CMatrix};
//!
//! // A real symmetric matrix with known eigenvalues {1, 3}.
//! let m = CMatrix::from_rows(&[
//!     &[c64(2.0, 0.0), c64(1.0, 0.0)],
//!     &[c64(1.0, 0.0), c64(2.0, 0.0)],
//! ]);
//! let eig = eigh(&m, 1e-12, 100).expect("hermitian input");
//! assert!((eig.values[0] - 1.0).abs() < 1e-10);
//! assert!((eig.values[1] - 3.0).abs() < 1e-10);
//! ```

use crate::complex::C64;
use crate::matrix::CMatrix;
use std::error::Error;
use std::fmt;

/// Error returned by the eigensolver.
#[derive(Debug, Clone, PartialEq)]
pub enum EigenError {
    /// The input matrix is not square.
    NotSquare,
    /// The input matrix is not Hermitian within the requested tolerance.
    NotHermitian {
        /// Largest deviation |A − A†| found.
        deviation: f64,
    },
    /// The sweep limit was reached before off-diagonals converged.
    NoConvergence {
        /// Residual off-diagonal Frobenius norm.
        off_diagonal: f64,
    },
}

impl fmt::Display for EigenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EigenError::NotSquare => f.write_str("matrix must be square"),
            EigenError::NotHermitian { deviation } => {
                write!(f, "matrix is not hermitian (deviation {deviation:.3e})")
            }
            EigenError::NoConvergence { off_diagonal } => {
                write!(f, "jacobi sweeps did not converge (residual {off_diagonal:.3e})")
            }
        }
    }
}

impl Error for EigenError {}

/// Result of a Hermitian eigendecomposition: `A = V diag(values) V†`.
#[derive(Debug, Clone, PartialEq)]
pub struct EigenDecomposition {
    /// Real eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Unitary matrix whose columns are the corresponding eigenvectors.
    pub vectors: CMatrix,
}

/// Computes all eigenvalues and eigenvectors of a Hermitian matrix by
/// cyclic complex Jacobi rotations.
///
/// `tol` bounds both the accepted Hermiticity deviation of the input and
/// the off-diagonal residual at convergence; `max_sweeps` bounds the work.
///
/// # Errors
///
/// Returns [`EigenError`] for non-square or non-Hermitian input, or if the
/// sweep budget is exhausted.
pub fn eigh(a: &CMatrix, tol: f64, max_sweeps: usize) -> Result<EigenDecomposition, EigenError> {
    if !a.is_square() {
        return Err(EigenError::NotSquare);
    }
    let n = a.rows();
    let deviation = a.max_abs_diff(&a.dagger());
    if deviation > tol.max(1e-9) {
        return Err(EigenError::NotHermitian { deviation });
    }

    let mut m = a.clone();
    // Symmetrize to kill the (tolerated) numerical skew part.
    for i in 0..n {
        for j in 0..n {
            let sym = (m[(i, j)] + m[(j, i)].conj()).scale(0.5);
            m[(i, j)] = sym;
        }
    }
    let mut v = CMatrix::identity(n);

    let off_norm = |m: &CMatrix| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s += m[(i, j)].norm_sqr();
                }
            }
        }
        s.sqrt()
    };

    for _ in 0..max_sweeps {
        if off_norm(&m) <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.norm() <= tol * 1e-3 {
                    continue;
                }
                // Phase rotation to make the pivot real, then a classical
                // 2×2 Jacobi rotation.
                let phase = if apq.norm() > 0.0 {
                    apq / C64::real(apq.norm())
                } else {
                    C64::ONE
                };
                let app = m[(p, p)].re;
                let aqq = m[(q, q)].re;
                let abs_apq = apq.norm();

                let theta = 0.5 * (2.0 * abs_apq).atan2(aqq - app);
                let (c, s) = (theta.cos(), theta.sin());
                // Complex Givens rotation G with
                //   G[p][p]=c, G[p][q]=s·phase, G[q][p]=-s·phase*, G[q][q]=c
                // applied as M ← G† M G, V ← V G.
                let gs = phase.scale(s);

                // Update rows/columns p and q of M.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = mkp.scale(c) - mkq * gs.conj();
                    m[(k, q)] = mkp * gs + mkq.scale(c);
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = mpk.scale(c) - gs * mqk;
                    m[(q, k)] = gs.conj() * mpk + mqk.scale(c);
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = vkp.scale(c) - vkq * gs.conj();
                    v[(k, q)] = vkp * gs + vkq.scale(c);
                }
            }
        }
    }

    let residual = off_norm(&m);
    if residual > tol.max(1e-10) * (n as f64) {
        return Err(EigenError::NoConvergence {
            off_diagonal: residual,
        });
    }

    // Extract eigenpairs and sort ascending.
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[(i, i)].re, i)).collect();
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite eigenvalues"));
    let values: Vec<f64> = pairs.iter().map(|(val, _)| *val).collect();
    let mut vectors = CMatrix::zeros(n, n);
    for (new_col, (_, old_col)) in pairs.iter().enumerate() {
        for row in 0..n {
            vectors[(row, new_col)] = v[(row, *old_col)];
        }
    }

    Ok(EigenDecomposition { values, vectors })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use plateau_rng::rngs::StdRng;
    use plateau_rng::{Rng, SeedableRng};

    fn random_hermitian(n: usize, seed: u64) -> CMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let raw = CMatrix::from_fn(n, n, |_, _| {
            c64(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        });
        // (A + A†)/2 is Hermitian.
        let dag = raw.dagger();
        (&raw + &dag).scale(c64(0.5, 0.0))
    }

    fn check_decomposition(a: &CMatrix, eig: &EigenDecomposition, tol: f64) {
        let n = a.rows();
        assert!(eig.vectors.is_unitary(1e-8), "eigenvectors not unitary");
        // A v_k = λ_k v_k for every column.
        for k in 0..n {
            let col: Vec<C64> = (0..n).map(|r| eig.vectors[(r, k)]).collect();
            let av = a.matvec(&col);
            for r in 0..n {
                let expected = col[r].scale(eig.values[k]);
                assert!(
                    av[r].approx_eq(expected, tol),
                    "column {k} row {r}: {} vs {}",
                    av[r],
                    expected
                );
            }
        }
        // Ascending order.
        for w in eig.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn diagonal_matrix_is_fixed_point() {
        let a = CMatrix::from_rows(&[
            &[c64(3.0, 0.0), C64::ZERO],
            &[C64::ZERO, c64(-1.0, 0.0)],
        ]);
        let eig = eigh(&a, 1e-12, 50).unwrap();
        assert!((eig.values[0] + 1.0).abs() < 1e-12);
        assert!((eig.values[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pauli_x_eigenvalues_are_plus_minus_one() {
        let x = CMatrix::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]]);
        let eig = eigh(&x, 1e-12, 50).unwrap();
        assert!((eig.values[0] + 1.0).abs() < 1e-10);
        assert!((eig.values[1] - 1.0).abs() < 1e-10);
        check_decomposition(&x, &eig, 1e-9);
    }

    #[test]
    fn pauli_y_complex_case() {
        let y = CMatrix::from_rows(&[&[C64::ZERO, -C64::I], &[C64::I, C64::ZERO]]);
        let eig = eigh(&y, 1e-12, 50).unwrap();
        assert!((eig.values[0] + 1.0).abs() < 1e-10);
        assert!((eig.values[1] - 1.0).abs() < 1e-10);
        check_decomposition(&y, &eig, 1e-9);
    }

    #[test]
    fn random_hermitian_matrices_decompose() {
        for (n, seed) in [(3usize, 1u64), (4, 2), (6, 3), (8, 4)] {
            let a = random_hermitian(n, seed);
            let eig = eigh(&a, 1e-11, 200).unwrap();
            check_decomposition(&a, &eig, 1e-7);
            // Trace = sum of eigenvalues.
            let trace = a.trace().re;
            let sum: f64 = eig.values.iter().sum();
            assert!((trace - sum).abs() < 1e-8, "n={n}: {trace} vs {sum}");
        }
    }

    #[test]
    fn projector_eigenvalues_are_zero_and_one() {
        // |+><+| has eigenvalues {0, 1}.
        let h = 0.5;
        let p = CMatrix::from_rows(&[
            &[c64(h, 0.0), c64(h, 0.0)],
            &[c64(h, 0.0), c64(h, 0.0)],
        ]);
        let eig = eigh(&p, 1e-12, 50).unwrap();
        assert!(eig.values[0].abs() < 1e-10);
        assert!((eig.values[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn rejects_invalid_input() {
        let rect = CMatrix::zeros(2, 3);
        assert_eq!(eigh(&rect, 1e-12, 10).unwrap_err(), EigenError::NotSquare);

        let skew = CMatrix::from_rows(&[
            &[C64::ZERO, C64::ONE],
            &[-C64::ONE, C64::ZERO],
        ]);
        assert!(matches!(
            eigh(&skew, 1e-12, 10).unwrap_err(),
            EigenError::NotHermitian { .. }
        ));
    }

    #[test]
    fn error_display() {
        assert!(EigenError::NotSquare.to_string().contains("square"));
        assert!(EigenError::NotHermitian { deviation: 0.1 }
            .to_string()
            .contains("hermitian"));
        assert!(EigenError::NoConvergence { off_diagonal: 0.1 }
            .to_string()
            .contains("converge"));
    }

    #[test]
    fn density_matrix_spectrum_is_a_probability_distribution() {
        // ρ = normalized random PSD: eigenvalues ≥ 0, summing to 1.
        let b = random_hermitian(4, 9);
        let bb = &b * &b.dagger(); // PSD
        let trace = bb.trace().re;
        let rho = bb.scale(c64(1.0 / trace, 0.0));
        let eig = eigh(&rho, 1e-11, 200).unwrap();
        let sum: f64 = eig.values.iter().sum();
        assert!((sum - 1.0).abs() < 1e-8);
        for v in &eig.values {
            assert!(*v > -1e-9, "negative eigenvalue {v}");
        }
    }
}
