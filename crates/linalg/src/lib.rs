//! # plateau-linalg
//!
//! Dense linear-algebra substrate for the `plateau` quantum stack: complex
//! arithmetic ([`C64`]), row-major complex and real matrices ([`CMatrix`],
//! [`RMatrix`]), and Householder QR decomposition ([`qr_decompose`],
//! [`qr_decompose_signfixed`]).
//!
//! The quantum simulator (`plateau-sim`) uses [`C64`] for statevector
//! amplitudes and [`CMatrix`] both for gate matrices and for the
//! full-circuit-unitary test oracle; the orthogonal parameter initializer
//! (`plateau-core`) uses [`RMatrix`] + QR.
//!
//! Everything here is implemented from scratch, without external numerics
//! crates, so the whole reproduction is self-contained and auditable.
//!
//! # Examples
//!
//! ```
//! use plateau_linalg::{c64, CMatrix, C64};
//!
//! // The Hadamard gate is unitary and self-inverse.
//! let s = 1.0 / 2f64.sqrt();
//! let h = CMatrix::from_rows(&[
//!     &[c64(s, 0.0), c64(s, 0.0)],
//!     &[c64(s, 0.0), c64(-s, 0.0)],
//! ]);
//! assert!(h.is_unitary(1e-12));
//! assert!((&h * &h).approx_eq(&CMatrix::identity(2), 1e-12));
//! ```

// Index-based loops are the clearer idiom for the dense numeric kernels
// in this crate; the iterator rewrites clippy suggests obscure the math.
#![allow(clippy::needless_range_loop)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod complex;
mod eigen;
mod matrix;
mod qr;
mod solve;

pub use complex::{c64, C64};
pub use eigen::{eigh, EigenDecomposition, EigenError};
pub use matrix::{CMatrix, RMatrix};
pub use qr::{qr_decompose, qr_decompose_signfixed, QrDecomposition};
pub use solve::{solve, SolveError};
