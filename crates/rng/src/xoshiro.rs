//! The xoshiro256++ generator and its splitmix64 seeder.
//!
//! xoshiro256++ (Blackman & Vigna 2019) is the reference general-purpose
//! generator of the xoshiro family: 256 bits of state, period 2²⁵⁶ − 1,
//! and passes BigCrush. The `++` scrambler (rotl of a sum) avoids the
//! low-linear-complexity low bits of the `+` variant, so every output bit
//! is usable. State must never be all zeros, which the splitmix64 seeding
//! guarantees for every u64 seed.

use crate::{splitmix64, RngCore, SeedableRng};

/// The splitmix64 sequence as a stepping generator. Mainly used to expand
/// a 64-bit seed into xoshiro's 256-bit state; exposed because a tiny
/// one-shot mixer is occasionally handy (e.g. hashing task coordinates).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    x: u64,
}

impl SplitMix64 {
    /// Starts the sequence at `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { x: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        let out = splitmix64(self.x);
        self.x = self.x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        out
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64::new(seed)
    }
}

/// xoshiro256++ — the workspace's [`StdRng`](crate::rngs::StdRng).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    /// Expands `seed` through four splitmix64 steps (the seeding procedure
    /// recommended by the xoshiro authors). Splitmix64 is a bijection on
    /// u64 with no fixed-point at zero output runs, so the resulting state
    /// is never all-zero.
    fn seed_from_u64(seed: u64) -> Xoshiro256PlusPlus {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256PlusPlus {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn seeded_determinism() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(99);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(99);
        for _ in 0..1_000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256PlusPlus::seed_from_u64(100);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn state_is_never_all_zero() {
        for seed in [0u64, 1, u64::MAX, 0x9e37_79b9_7f4a_7c15] {
            let rng = Xoshiro256PlusPlus::seed_from_u64(seed);
            assert_ne!(rng.s, [0, 0, 0, 0], "seed {seed}");
        }
    }

    #[test]
    fn clone_forks_the_stream() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(5);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn splitmix_is_a_bijection_sample() {
        // Distinct inputs give distinct outputs over a small window
        // (necessary condition for bijectivity).
        let outs: Vec<u64> = (0..1_000u64).map(|i| crate::splitmix64(i)).collect();
        let mut sorted = outs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), outs.len());
    }

    #[test]
    fn low_bits_change_between_draws() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut last_parities = 0u32;
        for _ in 0..64 {
            last_parities = (last_parities << 1) | (rng.next_u64() & 1) as u32;
        }
        // 32 coin flips are neither all zero nor all one.
        assert_ne!(last_parities, 0);
        assert_ne!(last_parities, u32::MAX);
    }

    #[test]
    fn mean_of_unit_draws_is_centered() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2024);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
