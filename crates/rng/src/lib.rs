//! # plateau-rng
//!
//! Self-contained deterministic randomness for the plateau stack — no
//! crates.io dependency, so the whole workspace builds offline.
//!
//! The paper's experiments hinge on reproducible ensembles: 200 random HEA
//! circuits per qubit count, each with a seeded parameter draw. Everything
//! here is therefore *explicitly seeded*: there is no entropy source, no
//! thread-local generator, and the same seed always yields the same stream
//! on every platform (the generators are pure integer arithmetic).
//!
//! The API mirrors the small subset of the `rand` crate the codebase used,
//! so call sites read identically:
//!
//! - [`StdRng`] — the workspace's default generator
//!   (xoshiro256++, seeded through splitmix64);
//! - [`SeedableRng::seed_from_u64`] — deterministic construction;
//! - [`Rng::gen`] / [`Rng::gen_range`] — uniform `f64`/`bool` draws and
//!   ranged `f64`/integer draws;
//! - [`RngCore`] — the object-safe bit-stream trait (`&mut dyn RngCore`).
//!
//! # Examples
//!
//! ```
//! use plateau_rng::{rngs::StdRng, Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let u: f64 = rng.gen();            // uniform on [0, 1)
//! let k = rng.gen_range(0..10usize); // uniform on {0, …, 9}
//! assert!((0.0..1.0).contains(&u));
//! assert!(k < 10);
//!
//! // Same seed, same stream — bit-for-bit.
//! let mut a = StdRng::seed_from_u64(42);
//! let mut b = StdRng::seed_from_u64(42);
//! assert_eq!(a.gen::<f64>(), b.gen::<f64>());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
mod dist;
mod xoshiro;

pub use dist::{StandardNormal, Uniform};
pub use xoshiro::{SplitMix64, Xoshiro256PlusPlus};

/// Generators module, mirroring the layout of the `rand` crate's `rngs`
/// module so imports read identically.
pub mod rngs {
    /// The workspace's standard generator: xoshiro256++ seeded via
    /// splitmix64. Fast (4 × u64 of state, a handful of shifts/adds per
    /// draw), passes BigCrush, and is fully deterministic cross-platform.
    pub use crate::xoshiro::Xoshiro256PlusPlus as StdRng;
}

pub use rngs::StdRng;

/// SplitMix64 output function: one step of the splitmix64 sequence
/// starting at `x`. Used for seed expansion and derivation of independent
/// per-task seeds (`derive_seed`).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives an independent seed from a master seed and up to three task
/// coordinates by chaining [`splitmix64`] mixes. Adjacent coordinates give
/// statistically unrelated seeds, so parallel tasks can each build their
/// own [`StdRng`] and the result is independent of scheduling order.
pub fn derive_seed(master: u64, a: u64, b: u64, c: u64) -> u64 {
    splitmix64(master ^ splitmix64(a ^ splitmix64(b ^ splitmix64(c))))
}

/// An object-safe source of uniformly distributed 64-bit blocks.
///
/// Everything else ([`Rng`], the distributions, [`check`]) is built on
/// this single method, so swapping the underlying generator is a one-type
/// change.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits (the high half of
    /// [`RngCore::next_u64`], which is the better-mixed half of
    /// xoshiro-family outputs).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types drawable uniformly from an [`RngCore`] bit stream via
/// [`Rng::gen`].
pub trait StandardSample {
    /// Draws one value from the generator's standard distribution:
    /// `[0, 1)` for floats, the full range for integers, a fair coin for
    /// `bool`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// 53-bit mantissa construction: uniform on `[0, 1)` with every
    /// representable multiple of 2⁻⁵³ equally likely.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        // The top bit — xoshiro++'s low bits are its weakest.
        rng.next_u64() >> 63 != 0
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end && self.start.is_finite() && self.end.is_finite(),
            "gen_range requires a finite non-empty range, got {:?}",
            self
        );
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Rounding can land exactly on `end` when the span is tiny; clamp
        // to keep the half-open contract.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

/// Uniform integer on `[0, bound)` by widening multiply with rejection
/// (Lemire's method) — exact, no modulo bias.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "gen_range requires a non-empty range, got {:?}",
                    self
                );
                let span = (self.end - self.start) as u64;
                self.start + bounded_u64(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32);

/// Convenience draws over any [`RngCore`]. Blanket-implemented, including
/// for `dyn RngCore`, so `&mut dyn RngCore` receivers keep working.
pub trait Rng: RngCore {
    /// Draws a value of the standard distribution of `T`
    /// (see [`StandardSample`]).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from a half-open range, e.g. `rng.gen_range(0..n)`
    /// or `rng.gen_range(-1.0..1.0)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty (or non-finite, for floats).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_vector_pins_the_stdrng_stream() {
        // First 8 outputs of StdRng seeded with 42. Pinned so that any
        // change to the generator, the seeding path, or the splitmix
        // constants is loudly observable — these values feed every
        // experiment in the workspace (Fig 5a inputs included).
        let mut rng = StdRng::seed_from_u64(42);
        let outputs: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert_eq!(outputs, GOLDEN_SEED_42);
    }

    /// Computed once from this implementation and frozen; see
    /// `golden_vector_pins_the_stdrng_stream`.
    const GOLDEN_SEED_42: [u64; 8] = [
        0xd076_4d4f_4476_689f,
        0x519e_4174_576f_3791,
        0xfbe0_7cfb_0c24_ed8c,
        0xb37d_9f60_0cd8_35b8,
        0xcb23_1c38_7484_6a73,
        0x968d_9f00_4e50_de7d,
        0x2017_18ff_221a_3556,
        0x9ae9_4e07_0ed8_cb46,
    ];

    #[test]
    fn derive_seed_spreads_bits() {
        let s1 = derive_seed(7, 1, 2, 3);
        let s2 = derive_seed(7, 1, 2, 4);
        assert_ne!(s1, s2);
        assert!((s1 ^ s2).count_ones() > 8);
    }

    #[test]
    fn standard_f64_is_half_open_unit() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(4);
        let heads = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4600..5400).contains(&heads), "heads {heads}");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn int_range_covers_and_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
        for _ in 0..1_000 {
            let v = rng.gen_range(10u64..13);
            assert!((10..13).contains(&v));
        }
    }

    #[test]
    fn float_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-3.0..3.0);
            assert!((-3.0..3.0).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "non-empty range")]
    fn empty_int_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5..5usize);
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = StdRng::seed_from_u64(11);
        let dynref: &mut dyn RngCore = &mut rng;
        let u: f64 = dynref.gen();
        assert!((0.0..1.0).contains(&u));
        let k = dynref.gen_range(0..4usize);
        assert!(k < 4);
    }

    #[test]
    fn works_through_mut_ref_forwarding() {
        fn draw<R: Rng>(mut rng: R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(12);
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn lemire_bound_is_unbiased_over_small_modulus() {
        // χ²-style sanity check over 16 buckets.
        let mut rng = StdRng::seed_from_u64(13);
        let n = 160_000;
        let mut counts = [0usize; 16];
        for _ in 0..n {
            counts[rng.gen_range(0..16usize)] += 1;
        }
        let expected = n as f64 / 16.0;
        for (i, &c) in counts.iter().enumerate() {
            let rel = (c as f64 - expected).abs() / expected;
            assert!(rel < 0.05, "bucket {i}: {c} vs {expected}");
        }
    }
}
