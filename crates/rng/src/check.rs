//! A minimal property-test helper.
//!
//! Replaces the `proptest` dependency for this workspace's needs: a
//! seeded case generator plus a `forall` loop over a fixed number of
//! cases. [`forall`] is shrink-free — on failure the panic message
//! carries the seed, the case index, and the `Debug` form of the
//! generated case, which is enough to reproduce deterministically.
//! [`forall_shrink`] additionally takes a candidate-reduction function
//! and greedily minimizes the failing case before panicking, so the
//! report shows the smallest reproducer the shrinker could reach.
//!
//! Case counts can be scaled globally (nightly soak runs, quick local
//! iterations) through the `PLATEAU_CHECK_CASES` environment variable,
//! read by [`cases`].
//!
//! # Examples
//!
//! ```
//! use plateau_rng::check::forall;
//! use plateau_rng::{prop_assert, Rng};
//!
//! forall(0xfeed, 64, |rng| rng.gen_range(-10.0..10.0), |&x| {
//!     prop_assert!(x.abs() <= 10.0, "out of range: {x}");
//!     Ok(())
//! });
//! ```

use crate::{SeedableRng, StdRng};
use std::fmt::Debug;

/// Number of cases the workspace's property tests run by default.
pub const DEFAULT_CASES: usize = 64;

/// Cap on greedy shrink acceptances, so a pathological candidate function
/// cannot loop forever.
const MAX_SHRINK_STEPS: usize = 10_000;

/// The case count a property test should run: `default` unless the
/// `PLATEAU_CHECK_CASES` environment variable overrides it.
///
/// The override is absolute, not a multiplier — `PLATEAU_CHECK_CASES=500`
/// runs every opted-in property at 500 cases. Unparseable or zero values
/// are ignored.
pub fn cases(default: usize) -> usize {
    std::env::var("PLATEAU_CHECK_CASES")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Runs `prop` against `cases` values drawn by `gen` from a generator
/// seeded with `seed`.
///
/// # Panics
///
/// Panics on the first failing case, reporting the seed, case index, and
/// the case itself.
pub fn forall<T: Debug>(
    seed: u64,
    cases: usize,
    mut gen: impl FnMut(&mut StdRng) -> T,
    mut prop: impl FnMut(&T) -> Result<(), String>,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..cases {
        let case = gen(&mut rng);
        if let Err(msg) = prop(&case) {
            panic!(
                "property failed at case {i}/{cases} (seed {seed:#x}): {msg}\ncase: {case:#?}"
            );
        }
    }
}

/// Like [`forall`], but with greedy counterexample shrinking.
///
/// `shrink` proposes strictly-"smaller" variants of a case, most
/// aggressive first. When `prop` fails, the shrinker repeatedly replaces
/// the failing case with its first still-failing candidate until no
/// candidate fails (a local minimum) or [`MAX_SHRINK_STEPS`] acceptances,
/// then panics with both the original and the minimized case so the
/// smallest reproducer is front and center.
///
/// The shrink loop re-runs `prop`, so properties must be deterministic
/// functions of the case (every property in this workspace is).
///
/// # Panics
///
/// Panics on the first failing case, reporting the seed, case index, the
/// original case, the shrunk case, and both failure messages.
pub fn forall_shrink<T: Debug + Clone>(
    seed: u64,
    cases: usize,
    mut gen: impl FnMut(&mut StdRng) -> T,
    mut shrink: impl FnMut(&T) -> Vec<T>,
    mut prop: impl FnMut(&T) -> Result<(), String>,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..cases {
        let case = gen(&mut rng);
        let Err(msg) = prop(&case) else { continue };
        let mut minimal = case.clone();
        let mut minimal_msg = msg.clone();
        let mut steps = 0;
        'minimize: while steps < MAX_SHRINK_STEPS {
            for candidate in shrink(&minimal) {
                if let Err(cand_msg) = prop(&candidate) {
                    minimal = candidate;
                    minimal_msg = cand_msg;
                    steps += 1;
                    continue 'minimize;
                }
            }
            break; // local minimum: no candidate still fails
        }
        panic!(
            "property failed at case {i}/{cases} (seed {seed:#x}): {msg}\n\
             case: {case:#?}\n\
             shrunk ({steps} step(s)): {minimal_msg}\n\
             minimal case: {minimal:#?}"
        );
    }
}

/// Generates a `Vec<T>` whose length is drawn from `len` and whose
/// elements come from `element` — the common "random op sequence" shape
/// of this workspace's circuit properties.
pub fn vec_of<T>(
    rng: &mut StdRng,
    len: std::ops::Range<usize>,
    mut element: impl FnMut(&mut StdRng) -> T,
) -> Vec<T> {
    use crate::Rng;
    let n = rng.gen_range(len);
    (0..n).map(|_| element(rng)).collect()
}

/// Property-scoped assertion: evaluates to `Err` (with an optional
/// formatted message) instead of panicking, so [`forall`] can attach the
/// case context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Equality form of [`prop_assert!`], printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn forall_passes_trivially_true_property() {
        forall(1, DEFAULT_CASES, |rng| rng.gen::<f64>(), |&x| {
            prop_assert!((0.0..1.0).contains(&x));
            Ok(())
        });
    }

    #[test]
    #[should_panic(expected = "property failed at case")]
    fn forall_reports_failing_case() {
        forall(2, 64, |rng| rng.gen_range(0..100usize), |&x| {
            prop_assert!(x < 50, "x = {x} not below 50");
            Ok(())
        });
    }

    #[test]
    fn forall_is_deterministic_per_seed() {
        let mut a = Vec::new();
        forall(3, 16, |rng| rng.gen::<u64>(), |&x| {
            a.push(x);
            Ok(())
        });
        let mut b = Vec::new();
        forall(3, 16, |rng| rng.gen::<u64>(), |&x| {
            b.push(x);
            Ok(())
        });
        assert_eq!(a, b);
    }

    #[test]
    fn forall_shrink_passes_when_property_holds() {
        forall_shrink(
            5,
            DEFAULT_CASES,
            |rng| rng.gen_range(0..1000usize),
            |&x| if x > 0 { vec![x / 2, x - 1] } else { vec![] },
            |&x| {
                prop_assert!(x < 1000);
                Ok(())
            },
        );
    }

    #[test]
    fn forall_shrink_minimizes_to_boundary() {
        // Property: x < 100. Failing draws land anywhere in [100, 10000);
        // greedy halving + decrement must walk them down to exactly 100,
        // and the panic must report that minimal case.
        let err = std::panic::catch_unwind(|| {
            forall_shrink(
                6,
                64,
                |rng| rng.gen_range(0..10_000usize),
                |&x| if x > 0 { vec![x / 2, x - 1] } else { vec![] },
                |&x| {
                    prop_assert!(x < 100, "x = {x} too big");
                    Ok(())
                },
            );
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("minimal case: 100"), "panic was: {msg}");
        assert!(msg.contains("x = 100 too big"), "panic was: {msg}");
    }

    #[test]
    fn forall_shrink_handles_empty_candidate_lists() {
        let err = std::panic::catch_unwind(|| {
            forall_shrink(
                7,
                8,
                |rng| rng.gen::<u64>(),
                |_| Vec::new(),
                |_| Err("always fails".into()),
            );
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("shrunk (0 step(s))"), "panic was: {msg}");
    }

    #[test]
    fn cases_env_override() {
        // This is the only test in the binary touching the variable, so
        // set/remove cannot race another reader.
        std::env::remove_var("PLATEAU_CHECK_CASES");
        assert_eq!(cases(64), 64);
        std::env::set_var("PLATEAU_CHECK_CASES", "500");
        assert_eq!(cases(64), 500);
        std::env::set_var("PLATEAU_CHECK_CASES", "0");
        assert_eq!(cases(64), 64, "zero must be ignored");
        std::env::set_var("PLATEAU_CHECK_CASES", "not a number");
        assert_eq!(cases(64), 64, "garbage must be ignored");
        std::env::remove_var("PLATEAU_CHECK_CASES");
    }

    #[test]
    fn vec_of_respects_length_range() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let v = vec_of(&mut rng, 1..30, |r| r.gen::<f64>());
            assert!((1..30).contains(&v.len()));
        }
    }

    #[test]
    fn prop_assert_eq_formats_both_sides() {
        let check = || -> Result<(), String> {
            prop_assert_eq!(1 + 1, 3);
            Ok(())
        };
        let err = check().unwrap_err();
        assert!(err.contains("left: 2"));
        assert!(err.contains("right: 3"));
    }
}
