//! A minimal, shrink-free property-test helper.
//!
//! Replaces the `proptest` dependency for this workspace's needs: a
//! seeded case generator plus a `forall` loop over a fixed number of
//! cases. There is no shrinking — on failure the panic message carries
//! the seed, the case index, and the `Debug` form of the generated case,
//! which is enough to reproduce deterministically (re-run `forall` with
//! the same seed and count).
//!
//! # Examples
//!
//! ```
//! use plateau_rng::check::forall;
//! use plateau_rng::{prop_assert, Rng};
//!
//! forall(0xfeed, 64, |rng| rng.gen_range(-10.0..10.0), |&x| {
//!     prop_assert!(x.abs() <= 10.0, "out of range: {x}");
//!     Ok(())
//! });
//! ```

use crate::{SeedableRng, StdRng};
use std::fmt::Debug;

/// Number of cases the workspace's property tests run by default.
pub const DEFAULT_CASES: usize = 64;

/// Runs `prop` against `cases` values drawn by `gen` from a generator
/// seeded with `seed`.
///
/// # Panics
///
/// Panics on the first failing case, reporting the seed, case index, and
/// the case itself.
pub fn forall<T: Debug>(
    seed: u64,
    cases: usize,
    mut gen: impl FnMut(&mut StdRng) -> T,
    mut prop: impl FnMut(&T) -> Result<(), String>,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..cases {
        let case = gen(&mut rng);
        if let Err(msg) = prop(&case) {
            panic!(
                "property failed at case {i}/{cases} (seed {seed:#x}): {msg}\ncase: {case:#?}"
            );
        }
    }
}

/// Generates a `Vec<T>` whose length is drawn from `len` and whose
/// elements come from `element` — the common "random op sequence" shape
/// of this workspace's circuit properties.
pub fn vec_of<T>(
    rng: &mut StdRng,
    len: std::ops::Range<usize>,
    mut element: impl FnMut(&mut StdRng) -> T,
) -> Vec<T> {
    use crate::Rng;
    let n = rng.gen_range(len);
    (0..n).map(|_| element(rng)).collect()
}

/// Property-scoped assertion: evaluates to `Err` (with an optional
/// formatted message) instead of panicking, so [`forall`] can attach the
/// case context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Equality form of [`prop_assert!`], printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn forall_passes_trivially_true_property() {
        forall(1, DEFAULT_CASES, |rng| rng.gen::<f64>(), |&x| {
            prop_assert!((0.0..1.0).contains(&x));
            Ok(())
        });
    }

    #[test]
    #[should_panic(expected = "property failed at case")]
    fn forall_reports_failing_case() {
        forall(2, 64, |rng| rng.gen_range(0..100usize), |&x| {
            prop_assert!(x < 50, "x = {x} not below 50");
            Ok(())
        });
    }

    #[test]
    fn forall_is_deterministic_per_seed() {
        let mut a = Vec::new();
        forall(3, 16, |rng| rng.gen::<u64>(), |&x| {
            a.push(x);
            Ok(())
        });
        let mut b = Vec::new();
        forall(3, 16, |rng| rng.gen::<u64>(), |&x| {
            b.push(x);
            Ok(())
        });
        assert_eq!(a, b);
    }

    #[test]
    fn vec_of_respects_length_range() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let v = vec_of(&mut rng, 1..30, |r| r.gen::<f64>());
            assert!((1..30).contains(&v.len()));
        }
    }

    #[test]
    fn prop_assert_eq_formats_both_sides() {
        let check = || -> Result<(), String> {
            prop_assert_eq!(1 + 1, 3);
            Ok(())
        };
        let err = check().unwrap_err();
        assert!(err.contains("left: 2"));
        assert!(err.contains("right: 3"));
    }
}
