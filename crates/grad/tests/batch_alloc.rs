//! Allocation pinning for the batch evaluation path, with a
//! [`CountingAllocator`] installed in this test binary:
//!
//! - a warm batched sweep allocates **no** statevectors — its byte cost is
//!   deterministic, measured-twice-equal, and its peak-memory window stays
//!   `O(workers · 2^n)` instead of the pre-executor `O(batch · 2^n)`;
//! - the per-circuit loop it replaced really does pay one full
//!   statevector per member (the contrast that makes the bound meaningful);
//! - a full [`ParameterShift`] gradient allocates `O(k)` bytes of job
//!   bookkeeping, not the `O(k²)` of materializing one parameter-vector
//!   copy per shifted evaluation.
//!
//! Everything shares the process-global allocator high-water mark, so it
//! runs as one sequential test function, like `alloc_profile.rs`.

use plateau_grad::{expectation, BatchExecutor, GradientEngine, ParameterShift};
use plateau_obs::alloc::{set_profiling, stats, thread_allocated, CountingAllocator};
use plateau_sim::{Circuit, Observable};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// The paper's training ansatz shape: RX·RY per qubit per layer plus a CZ
/// entangling chain (built locally — this crate must not depend on
/// `plateau-core`).
fn training_shape(n: usize, layers: usize) -> Circuit {
    let mut c = Circuit::new(n).unwrap();
    for _ in 0..layers {
        for q in 0..n {
            c.rx(q).unwrap();
            c.ry(q).unwrap();
        }
        for q in 0..n - 1 {
            c.cz(q, q + 1).unwrap();
        }
    }
    c
}

#[test]
fn batch_path_allocation_is_flat_and_parameter_shift_is_linear() {
    let _guard = plateau_obs::test_lock();
    plateau_obs::set_log_level(plateau_obs::Level::Off);
    plateau_obs::set_metrics_enabled(false);
    // Deterministic allocation stream: serial kernels, gate-by-gate
    // execution (fusion would add compile-time buffers to the window).
    plateau_sim::set_par_threshold(usize::MAX);
    plateau_sim::set_fuse(false);
    assert!(
        set_profiling(true),
        "counting allocator is installed in this binary; profiling must engage"
    );

    // The paper's ensemble shape: 10 qubits / 5 layers, 100 params,
    // 200 members. One statevector is 2^10 complex amplitudes.
    let circuit = training_shape(10, 5);
    let n_params = circuit.n_params();
    let state_bytes = (16usize << 10) as u64;
    let obs = Observable::global_cost(10);
    let members = 200usize;
    let sets: Vec<Vec<f64>> = (0..members)
        .map(|m| (0..n_params).map(|p| 0.01 * m as f64 + 0.001 * p as f64).collect())
        .collect();
    let workers = plateau_par::worker_count(members) as u64;

    let delta = |f: &mut dyn FnMut()| {
        let (b0, c0) = thread_allocated();
        f();
        let (b1, c1) = thread_allocated();
        (b1 - b0, c1 - c0)
    };

    // Warm everything once: executor scratch, knob caches, obs registry.
    let mut ex = BatchExecutor::new(&circuit);
    ex.expectation_many(&sets, &obs).unwrap();
    for set in sets.iter().take(2) {
        expectation(&circuit, set, &obs).unwrap();
    }

    // ── Satellite pin: warm batched sweeps are statevector-free. ──
    // Exactness: the identical sweep must cost identical (bytes, count)
    // and identical peak growth, twice in a row.
    let measure_batched = |ex: &mut BatchExecutor| {
        plateau_obs::alloc::reset_peak();
        let live0 = stats().live_bytes;
        let (b0, c0) = thread_allocated();
        ex.expectation_many(&sets, &obs).unwrap();
        let (b1, c1) = thread_allocated();
        (b1 - b0, c1 - c0, stats().peak_bytes.saturating_sub(live0))
    };
    let first = measure_batched(&mut ex);
    let second = measure_batched(&mut ex);
    assert_eq!(first, second, "warm batched sweep must allocate deterministically");
    let (batched_bytes, _, batched_peak) = first;

    // Peak window is O(workers · 2^n), nowhere near O(batch · 2^n).
    // Serially the sweep re-fills the one existing scratch, so its window
    // holds zero new statevectors — just the returned Vec<f64> and
    // transient observable bookkeeping, comfortably under one state.
    let peak_bound = if workers <= 1 {
        state_bytes
    } else {
        // Parallel sweeps allocate one fresh scratch per worker.
        (workers + 1) * (state_bytes + 8 * n_params as u64 + 4096)
    };
    assert!(
        batched_peak < peak_bound,
        "batched peak {batched_peak} B must stay O(workers·2^n) (< {peak_bound} B), \
         not O(batch·2^n) (= {} B)",
        members as u64 * state_bytes
    );
    assert!(
        batched_bytes < members as u64 * state_bytes / 10,
        "batched sweep allocated {batched_bytes} B — a fixed statevector pool, \
         not one state per member"
    );

    // ── Contrast: the per-circuit loop pays a full state per member. ──
    let (loop_bytes, _) = delta(&mut || {
        for set in &sets {
            expectation(&circuit, set, &obs).unwrap();
        }
    });
    assert!(
        loop_bytes >= members as u64 * state_bytes,
        "per-circuit loop allocated {loop_bytes} B; expected at least one \
         2^10 statevector per member ({} B)",
        members as u64 * state_bytes
    );

    // ── Satellite pin: ParameterShift::gradient is O(k), not O(k²). ──
    // k = 100 params → 200 shifted evaluations. Materializing a params
    // copy per evaluation (the fixed bug) costs ≥ 2k·8k = 160 kB; the
    // (index, shift)-pair representation plus one scratch per worker
    // stays an order of magnitude below that.
    let params: Vec<f64> = (0..n_params).map(|p| 0.1 + 0.002 * p as f64).collect();
    ParameterShift.gradient(&circuit, &params, &obs).unwrap(); // warm
    let mut grad_run = || {
        ParameterShift.gradient(&circuit, &params, &obs).unwrap();
    };
    let (grad_bytes, grad_count) = delta(&mut grad_run);
    assert_eq!(
        (grad_bytes, grad_count),
        delta(&mut grad_run),
        "parameter-shift gradient must allocate deterministically"
    );
    let quadratic = (2 * n_params * 8 * n_params) as u64;
    let linear_bound = workers * (state_bytes + 8 * n_params as u64) + 64 * n_params as u64 + 8192;
    assert!(
        grad_bytes < linear_bound.min(quadratic / 2),
        "gradient allocated {grad_bytes} B; O(k) bound is {linear_bound} B \
         (the old per-job copies cost ≥ {quadratic} B)"
    );

    set_profiling(false);
    plateau_sim::reset_par_threshold();
    plateau_sim::reset_fuse();
}
