//! Property tests for the batched executor's determinism contract:
//! results are **bit-identical** to a serial one-expectation-per-set loop
//! across random circuits, batch sizes straddling the parallel threshold,
//! and thread counts — the order-independence guarantee DESIGN.md §14
//! promises.
//!
//! `PLATEAU_THREADS` is process-global, so everything here serializes on
//! [`plateau_obs::test_lock`] and restores the variable before returning.

use plateau_grad::{expectation, BatchExecutor, GradientEngine};
use plateau_rng::check::{cases, forall};
use plateau_rng::{Rng, StdRng};
use plateau_sim::{Circuit, Observable};

/// A generated sweep: one random layered circuit plus a parameter ensemble.
#[derive(Debug)]
struct SweepCase {
    n_qubits: usize,
    layers: usize,
    /// Gate choice per (layer, qubit): 0 = RX, 1 = RY, 2 = RZ.
    gates: Vec<u8>,
    param_sets: Vec<Vec<f64>>,
}

impl SweepCase {
    fn build(&self) -> Circuit {
        let mut c = Circuit::new(self.n_qubits).unwrap();
        for l in 0..self.layers {
            for q in 0..self.n_qubits {
                match self.gates[l * self.n_qubits + q] {
                    0 => c.rx(q).unwrap(),
                    1 => c.ry(q).unwrap(),
                    _ => c.rz(q).unwrap(),
                };
            }
            for q in 0..self.n_qubits.saturating_sub(1) {
                c.cz(q, q + 1).unwrap();
            }
        }
        c
    }
}

fn gen_case(rng: &mut StdRng) -> SweepCase {
    let n_qubits = rng.gen_range(1..5usize);
    let layers = rng.gen_range(1..4usize);
    let gates = (0..layers * n_qubits).map(|_| rng.gen_range(0..3usize) as u8).collect();
    // Straddle MIN_PAR_EVALS (8): sizes from trivially serial through
    // comfortably parallel-eligible.
    let members = rng.gen_range(1..21usize);
    let n_params = layers * n_qubits;
    let param_sets = (0..members)
        .map(|_| (0..n_params).map(|_| rng.gen_range(-3.2..3.2)).collect())
        .collect();
    SweepCase { n_qubits, layers, gates, param_sets }
}

/// Runs `body` once per thread-count setting, restoring the env var after.
fn with_thread_counts(mut body: impl FnMut(&str)) {
    let saved = std::env::var("PLATEAU_THREADS").ok();
    for threads in ["1", "2", "4"] {
        std::env::set_var("PLATEAU_THREADS", threads);
        body(threads);
    }
    match saved {
        Some(v) => std::env::set_var("PLATEAU_THREADS", v),
        None => std::env::remove_var("PLATEAU_THREADS"),
    }
}

#[test]
fn batched_sweep_is_bit_identical_to_serial_loop_across_thread_counts() {
    let _guard = plateau_obs::test_lock();
    forall(0xbafc4ed, cases(24), gen_case, |case| {
        let circuit = case.build();
        let obs = Observable::global_cost(case.n_qubits);
        // The oracle: one fresh expectation per set, serially.
        let oracle: Vec<f64> = case
            .param_sets
            .iter()
            .map(|set| expectation(&circuit, set, &obs).unwrap())
            .collect();
        let mut failure = None;
        with_thread_counts(|threads| {
            let batched = BatchExecutor::new(&circuit)
                .expectation_many(&case.param_sets, &obs)
                .unwrap();
            for (i, (b, o)) in batched.iter().zip(&oracle).enumerate() {
                // Bit-identical, not approximately equal.
                if b.to_bits() != o.to_bits() && failure.is_none() {
                    failure = Some(format!(
                        "PLATEAU_THREADS={threads}, member {i}: batched {b:?} != serial {o:?}"
                    ));
                }
            }
        });
        match failure {
            Some(msg) => Err(msg),
            None => Ok(()),
        }
    });
}

#[test]
fn shifted_gradient_is_bit_identical_across_thread_counts() {
    let _guard = plateau_obs::test_lock();
    forall(0x51f7ed, cases(16), gen_case, |case| {
        let circuit = case.build();
        let obs = Observable::local_cost(case.n_qubits);
        let params = &case.param_sets[0];
        // Oracle computed at the current (inherited) thread setting…
        let oracle = plateau_grad::ParameterShift
            .gradient(&circuit, params, &obs)
            .unwrap();
        let mut failure = None;
        // …must match every other thread setting exactly.
        with_thread_counts(|threads| {
            let g = plateau_grad::ParameterShift
                .gradient(&circuit, params, &obs)
                .unwrap();
            for (i, (a, b)) in g.iter().zip(&oracle).enumerate() {
                if a.to_bits() != b.to_bits() && failure.is_none() {
                    failure = Some(format!(
                        "PLATEAU_THREADS={threads}, param {i}: {a:?} != {b:?}"
                    ));
                }
            }
        });
        match failure {
            Some(msg) => Err(msg),
            None => Ok(()),
        }
    });
}

#[test]
fn adjoint_many_is_bit_identical_across_thread_counts() {
    let _guard = plateau_obs::test_lock();
    forall(0xad10, cases(12), gen_case, |case| {
        let circuit = case.build();
        let obs = Observable::global_cost(case.n_qubits);
        let oracle: Vec<Vec<f64>> = case
            .param_sets
            .iter()
            .map(|set| plateau_grad::Adjoint.gradient(&circuit, set, &obs).unwrap())
            .collect();
        let mut failure = None;
        with_thread_counts(|threads| {
            let many = BatchExecutor::new(&circuit)
                .adjoint_gradient_many(&case.param_sets, &obs)
                .unwrap();
            if many != oracle && failure.is_none() {
                failure = Some(format!("PLATEAU_THREADS={threads}: batched adjoint diverged"));
            }
        });
        match failure {
            Some(msg) => Err(msg),
            None => Ok(()),
        }
    });
}
