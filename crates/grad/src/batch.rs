//! Batched ensemble evaluation: compile once, sweep many parameter sets.
//!
//! The paper's experiments are ensembles — 200 independently-initialized
//! parameter vectors swept over one circuit structure per (strategy,
//! qubit-count) cell. Before this module, every evaluation in such a sweep
//! re-derived everything from scratch: a fresh `2^n` statevector per run,
//! a fresh compile per run when fusion was on, and a materialized copy of
//! the full parameter vector per shifted evaluation. [`BatchExecutor`]
//! owns all three costs once:
//!
//! - the circuit is compiled a single time (when `PLATEAU_SIM_FUSE` is
//!   on) and reused for every member of the batch;
//! - each worker thread owns exactly one reusable scratch
//!   [`plateau_sim::State`] plus one parameter buffer, reset in place
//!   between evaluations — peak statevector allocation is
//!   `O(workers · 2^n)` regardless of batch size;
//! - shifted evaluations travel as `(param index, shift)` pairs against
//!   one base vector instead of `O(k)` bytes per job.
//!
//! # Determinism contract
//!
//! Results are returned in **input order** and are bit-identical to a
//! serial loop of [`crate::expectation`] over the same sets, regardless
//! of `PLATEAU_THREADS` and of whether the batch routed serially or in
//! parallel: every evaluation runs the same arithmetic on its own scratch
//! state, and all reductions (the observable fold, the shift-rule sum)
//! happen in a fixed order on the ordered results. The property tests in
//! `tests/batch_props.rs` and the `batched-vs-per-circuit` fuzz pair pin
//! this at tolerance zero.
//!
//! # Routing
//!
//! The serial/parallel decision is made in exactly one place
//! ([`BatchExecutor::run_jobs`]): batches of at least
//! `MIN_PAR_EVALS` jobs fan out across `worker_count(n_jobs)` scoped
//! workers; smaller batches run on the caller's thread against the
//! executor's own scratch. Callers never re-derive the predicate.

use crate::engine::{Evaluator, MIN_PAR_EVALS};
use plateau_obs::{counter, gauge, histogram};
use plateau_sim::{Circuit, Observable, SimError, State};

/// Per-worker reusable evaluation scratch: one statevector plus one
/// parameter buffer, both reset in place between evaluations.
struct Scratch {
    state: State,
    params: Vec<f64>,
}

impl Scratch {
    fn new(n_qubits: usize, n_params: usize) -> Self {
        Scratch {
            state: State::zero(n_qubits),
            params: vec![0.0; n_params],
        }
    }
}

/// A circuit structure prepared for sweeping many parameter vectors.
///
/// Construction compiles the circuit once (when gate fusion is enabled);
/// every subsequent evaluation reuses that compilation plus a pool of
/// per-worker scratch statevectors. See the [module docs](self) for the
/// allocation and determinism contracts.
///
/// # Examples
///
/// Sweep a 200-member ensemble over one ansatz:
///
/// ```
/// use plateau_grad::BatchExecutor;
/// use plateau_sim::{Circuit, Observable};
///
/// let mut c = Circuit::new(2)?;
/// c.ry(0)?.ry(1)?.cz(0, 1)?;
/// let obs = Observable::global_cost(2);
///
/// let sets: Vec<Vec<f64>> = (0..200)
///     .map(|m| vec![0.01 * m as f64, -0.02 * m as f64])
///     .collect();
///
/// let mut ex = BatchExecutor::new(&c);
/// let energies = ex.expectation_many(&sets, &obs)?;
/// assert_eq!(energies.len(), 200);
///
/// // Bit-identical to the one-at-a-time loop:
/// for (set, e) in sets.iter().zip(&energies) {
///     assert_eq!(*e, plateau_grad::expectation(&c, set, &obs)?);
/// }
/// # Ok::<(), plateau_sim::SimError>(())
/// ```
pub struct BatchExecutor<'c> {
    circuit: &'c Circuit,
    ev: Evaluator<'c>,
    /// The caller-thread scratch, allocated lazily so a batch that routes
    /// parallel never pays for an unused serial statevector.
    scratch: Option<Scratch>,
}

impl<'c> BatchExecutor<'c> {
    /// Prepares `circuit` for batched evaluation, compiling it once when
    /// the `PLATEAU_SIM_FUSE` knob is on. No statevector is allocated
    /// until the first evaluation runs.
    pub fn new(circuit: &'c Circuit) -> Self {
        BatchExecutor {
            circuit,
            ev: Evaluator::new(circuit),
            scratch: None,
        }
    }

    /// Register width of the underlying circuit.
    pub fn n_qubits(&self) -> usize {
        self.circuit.n_qubits()
    }

    /// Number of free parameters the underlying circuit expects.
    pub fn n_params(&self) -> usize {
        self.circuit.n_params()
    }

    /// Validates every parameter set up front, before any circuit runs.
    fn check_sets(&self, param_sets: &[Vec<f64>]) -> Result<(), SimError> {
        for set in param_sets {
            self.circuit.check_params(set)?;
        }
        Ok(())
    }

    /// One cost evaluation `E(θ)` on the executor's reusable scratch —
    /// the same computation (and the same `grad.expectation_evals`
    /// accounting) as [`crate::expectation`], with zero statevector
    /// allocation after the first call.
    ///
    /// # Errors
    ///
    /// Propagates parameter-count and observable-size mismatches.
    pub fn expectation(&mut self, params: &[f64], obs: &Observable) -> Result<f64, SimError> {
        self.circuit.check_params(params)?;
        let (n_qubits, n_params) = (self.n_qubits(), self.n_params());
        let scratch = self
            .scratch
            .get_or_insert_with(|| Scratch::new(n_qubits, n_params));
        self.ev.expectation_into(&mut scratch.state, params, obs)
    }

    /// Core batched loop: `n_jobs` evaluations of this circuit, where job
    /// `j`'s parameter vector is produced by `fill(j, buf)` writing into a
    /// per-worker buffer. This is the **single** serial/parallel routing
    /// decision for the crate; results come back in job order either way.
    fn run_jobs<F>(&mut self, n_jobs: usize, fill: F, obs: &Observable) -> Result<Vec<f64>, SimError>
    where
        F: Fn(usize, &mut [f64]) + Sync,
    {
        if n_jobs == 0 {
            return Ok(Vec::new());
        }
        let workers = if n_jobs >= MIN_PAR_EVALS {
            plateau_par::worker_count(n_jobs)
        } else {
            1
        };
        let (n_qubits, n_params) = (self.n_qubits(), self.n_params());
        counter!("grad.batch.batches").inc();
        counter!("grad.batch.jobs").add(n_jobs as u64);
        histogram!("grad.batch.size").record(n_jobs as u64);
        gauge!("grad.batch.workers").set(workers as f64);
        gauge!("grad.batch.scratch_states").set(workers as f64);
        gauge!("grad.batch.scratch_bytes")
            .set((workers * ((16usize << n_qubits) + 8 * n_params)) as f64);
        let ev = &self.ev;
        if workers <= 1 {
            // Serial: reuse the executor's own scratch across the whole
            // batch — exactly one statevector no matter the batch size.
            let scratch = self
                .scratch
                .get_or_insert_with(|| Scratch::new(n_qubits, n_params));
            let Scratch { state, params } = scratch;
            let mut out = Vec::with_capacity(n_jobs);
            for j in 0..n_jobs {
                fill(j, params);
                out.push(ev.expectation_into(state, params, obs)?);
            }
            Ok(out)
        } else {
            // Parallel: one scratch per worker thread, initialized on that
            // worker, reused for every job it claims. Results are returned
            // in job order by `par_map_scratch` regardless of which worker
            // ran which job.
            plateau_par::par_map_scratch(
                n_jobs,
                || Scratch::new(n_qubits, n_params),
                |scratch, j| {
                    fill(j, &mut scratch.params);
                    ev.expectation_into(&mut scratch.state, &scratch.params, obs)
                },
            )
            .into_iter()
            .collect()
        }
    }

    /// Evaluates the cost for many parameter sets against this circuit,
    /// in input order. Bit-identical to a serial [`crate::expectation`]
    /// loop over the same sets (see the [module docs](self)).
    ///
    /// # Errors
    ///
    /// Propagates parameter-count and observable-size mismatches; every
    /// parameter set is validated up front, before any circuit runs.
    pub fn expectation_many(
        &mut self,
        param_sets: &[Vec<f64>],
        obs: &Observable,
    ) -> Result<Vec<f64>, SimError> {
        self.check_sets(param_sets)?;
        self.run_jobs(
            param_sets.len(),
            |j, buf| buf.copy_from_slice(&param_sets[j]),
            obs,
        )
    }

    /// Evaluates the cost at `base` with one coordinate shifted per job:
    /// job `j` evaluates `E(base with base[idx_j] += delta_j)` where
    /// `(idx_j, delta_j) = shifts[j]`. This is the parameter-shift rule's
    /// evaluation pattern expressed in `O(k)` bytes — no per-job copy of
    /// the full vector ever exists outside the per-worker buffers.
    ///
    /// # Errors
    ///
    /// Propagates parameter-count mismatches on `base`, returns
    /// [`SimError::ParamOutOfRange`] for a shift index past the end, and
    /// propagates observable-size mismatches from evaluation.
    pub fn expectation_shifted(
        &mut self,
        base: &[f64],
        shifts: &[(usize, f64)],
        obs: &Observable,
    ) -> Result<Vec<f64>, SimError> {
        self.circuit.check_params(base)?;
        let n = self.n_params();
        for &(idx, _) in shifts {
            if idx >= n {
                return Err(SimError::ParamOutOfRange { index: idx, n_params: n });
            }
        }
        self.run_jobs(
            shifts.len(),
            |j, buf| {
                buf.copy_from_slice(base);
                let (idx, delta) = shifts[j];
                buf[idx] += delta;
            },
            obs,
        )
    }

    /// One full adjoint gradient per parameter set, in input order — the
    /// same computation (and the same counter accounting) as calling
    /// [`crate::Adjoint::gradient`](crate::Adjoint) once per member,
    /// minus the per-member compile when fusion is on.
    ///
    /// # Errors
    ///
    /// Propagates parameter-count and observable-size mismatches; every
    /// parameter set is validated up front, before any circuit runs.
    pub fn adjoint_gradient_many(
        &mut self,
        param_sets: &[Vec<f64>],
        obs: &Observable,
    ) -> Result<Vec<Vec<f64>>, SimError> {
        self.check_sets(param_sets)?;
        let n_jobs = param_sets.len();
        if n_jobs == 0 {
            return Ok(Vec::new());
        }
        let workers = if n_jobs >= MIN_PAR_EVALS {
            plateau_par::worker_count(n_jobs)
        } else {
            1
        };
        counter!("grad.batch.batches").inc();
        counter!("grad.batch.jobs").add(n_jobs as u64);
        histogram!("grad.batch.size").record(n_jobs as u64);
        gauge!("grad.batch.workers").set(workers as f64);
        let ev = &self.ev;
        if workers <= 1 {
            param_sets
                .iter()
                .map(|set| ev.adjoint_gradient(set, obs))
                .collect()
        } else {
            plateau_par::par_map_indexed(n_jobs, |j| ev.adjoint_gradient(&param_sets[j], obs))
                .into_iter()
                .collect()
        }
    }

    /// Adjoint partial `∂E/∂θ_last` for every parameter set, in input
    /// order — the variance scan's quantity, one ensemble at a time.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ParamOutOfRange`] when the circuit has no free
    /// parameters, plus [`Self::adjoint_gradient_many`]'s conditions.
    pub fn partial_last_many_adjoint(
        &mut self,
        param_sets: &[Vec<f64>],
        obs: &Observable,
    ) -> Result<Vec<f64>, SimError> {
        let n = self.n_params();
        if n == 0 {
            return Err(SimError::ParamOutOfRange { index: 0, n_params: 0 });
        }
        Ok(self
            .adjoint_gradient_many(param_sets, obs)?
            .into_iter()
            .map(|g| g[n - 1])
            .collect())
    }

    /// Parameter-shift partial `∂E/∂θ_last` for every parameter set, in
    /// input order — bit-identical per member to
    /// [`crate::ParameterShift`]'s `partial_last`, but with the whole
    /// ensemble's shifted evaluations (2 or 4 per member) flattened into
    /// one batch so they share the scratch pool and one routing decision.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ParamOutOfRange`] when the circuit has no free
    /// parameters; propagates parameter-count and observable-size
    /// mismatches.
    pub fn partial_last_many_shift(
        &mut self,
        param_sets: &[Vec<f64>],
        obs: &Observable,
    ) -> Result<Vec<f64>, SimError> {
        let n = self.n_params();
        if n == 0 {
            return Err(SimError::ParamOutOfRange { index: 0, n_params: 0 });
        }
        self.check_sets(param_sets)?;
        let mut proto = Vec::with_capacity(4);
        crate::shift::jobs_for_param(self.circuit, n - 1, &mut proto)?;
        let t = proto.len();
        let members = param_sets.len();
        counter!("grad.executions.parameter_shift").add((t * members) as u64);
        let evals = self.run_jobs(
            t * members,
            |j, buf| {
                let (m, k) = (j / t, j % t);
                buf.copy_from_slice(&param_sets[m]);
                buf[n - 1] += proto[k].shift;
            },
            obs,
        )?;
        // Fold each member's evaluations in job (k) order — the same
        // order `ParameterShift::partial_impl` sums in, so each partial
        // is bit-identical to the one-member path.
        Ok((0..members)
            .map(|m| {
                proto
                    .iter()
                    .zip(&evals[m * t..(m + 1) * t])
                    .map(|(job, e)| job.coeff * e)
                    .sum()
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::expectation;
    use crate::GradientEngine;

    fn ansatz(n: usize, layers: usize) -> Circuit {
        let mut c = Circuit::new(n).unwrap();
        for _ in 0..layers {
            for q in 0..n {
                c.rx(q).unwrap().ry(q).unwrap();
            }
            for q in 0..n.saturating_sub(1) {
                c.cz(q, q + 1).unwrap();
            }
        }
        c
    }

    fn sets(n_params: usize, members: usize) -> Vec<Vec<f64>> {
        (0..members)
            .map(|m| {
                (0..n_params)
                    .map(|p| 0.1 * (m as f64 + 1.0) + 0.01 * p as f64)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn batched_matches_serial_expectation_loop() {
        let _guard = plateau_obs::test_lock();
        let c = ansatz(3, 2);
        let obs = Observable::global_cost(3);
        // Straddle MIN_PAR_EVALS on both sides.
        for members in [1usize, 5, 8, 20] {
            let sets = sets(c.n_params(), members);
            let batch = BatchExecutor::new(&c).expectation_many(&sets, &obs).unwrap();
            for (set, e) in sets.iter().zip(&batch) {
                assert_eq!(*e, expectation(&c, set, &obs).unwrap());
            }
        }
    }

    #[test]
    fn shifted_matches_manual_copies() {
        let _guard = plateau_obs::test_lock();
        let c = ansatz(2, 2);
        let obs = Observable::local_cost(2);
        let base: Vec<f64> = (0..c.n_params()).map(|p| 0.2 + 0.05 * p as f64).collect();
        let shifts: Vec<(usize, f64)> = (0..c.n_params())
            .flat_map(|p| [(p, std::f64::consts::FRAC_PI_2), (p, -std::f64::consts::FRAC_PI_2)])
            .collect();
        let batch = BatchExecutor::new(&c)
            .expectation_shifted(&base, &shifts, &obs)
            .unwrap();
        for (&(idx, delta), e) in shifts.iter().zip(&batch) {
            let mut p = base.clone();
            p[idx] += delta;
            assert_eq!(*e, expectation(&c, &p, &obs).unwrap());
        }
    }

    #[test]
    fn adjoint_many_matches_per_member_engine() {
        let _guard = plateau_obs::test_lock();
        let c = ansatz(3, 2);
        let obs = Observable::global_cost(3);
        let sets = sets(c.n_params(), 10);
        let many = BatchExecutor::new(&c)
            .adjoint_gradient_many(&sets, &obs)
            .unwrap();
        for (set, g) in sets.iter().zip(&many) {
            let one = crate::Adjoint.gradient(&c, set, &obs).unwrap();
            assert_eq!(*g, one);
        }
    }

    #[test]
    fn partial_last_many_match_engines() {
        let _guard = plateau_obs::test_lock();
        let c = ansatz(2, 3);
        let obs = Observable::global_cost(2);
        let sets = sets(c.n_params(), 9);
        let adj = BatchExecutor::new(&c)
            .partial_last_many_adjoint(&sets, &obs)
            .unwrap();
        let shf = BatchExecutor::new(&c)
            .partial_last_many_shift(&sets, &obs)
            .unwrap();
        for (i, set) in sets.iter().enumerate() {
            assert_eq!(adj[i], crate::Adjoint.partial_last(&c, set, &obs).unwrap());
            assert_eq!(
                shf[i],
                crate::ParameterShift.partial_last(&c, set, &obs).unwrap()
            );
        }
    }

    #[test]
    fn empty_batches_and_error_paths() {
        let _guard = plateau_obs::test_lock();
        let c = ansatz(2, 1);
        let obs = Observable::global_cost(2);
        let mut ex = BatchExecutor::new(&c);
        assert!(ex.expectation_many(&[], &obs).unwrap().is_empty());
        assert!(ex.adjoint_gradient_many(&[], &obs).unwrap().is_empty());
        // Wrong-arity member rejected before anything runs.
        assert!(ex.expectation_many(&[vec![0.0]], &obs).is_err());
        // Shift index out of range.
        let base = vec![0.0; c.n_params()];
        assert!(ex
            .expectation_shifted(&base, &[(c.n_params(), 0.1)], &obs)
            .is_err());
        // No-parameter circuit has no "last" partial.
        let bare = Circuit::new(1).unwrap();
        let obs1 = Observable::global_cost(1);
        assert!(BatchExecutor::new(&bare)
            .partial_last_many_adjoint(&[], &obs1)
            .is_err());
        assert!(BatchExecutor::new(&bare)
            .partial_last_many_shift(&[], &obs1)
            .is_err());
    }

    #[test]
    fn serial_batch_reuses_one_scratch_state() {
        let _guard = plateau_obs::test_lock();
        plateau_obs::set_metrics_enabled(true);
        let c = ansatz(3, 2);
        let obs = Observable::global_cost(3);
        let sets = sets(c.n_params(), 20);
        let workers = plateau_par::worker_count(sets.len());
        let count = |name: &str| plateau_obs::snapshot().counter(name).unwrap_or(0);
        let before = count("sim.state.allocations");
        let reuses_before = count("sim.state.reuses");
        let mut ex = BatchExecutor::new(&c);
        ex.expectation_many(&sets, &obs).unwrap();
        // Re-sweeping the same executor must not allocate again (serially);
        // in parallel each sweep's workers own fresh scratch.
        ex.expectation_many(&sets, &obs).unwrap();
        let allocated = count("sim.state.allocations") - before;
        let reused = count("sim.state.reuses") - reuses_before;
        plateau_obs::set_metrics_enabled(false);
        // Every evaluation resets a scratch in place rather than allocating.
        assert_eq!(reused, 2 * sets.len() as u64);
        if workers <= 1 {
            assert_eq!(
                allocated, 1,
                "serial batch must allocate exactly one scratch state"
            );
        } else {
            assert!(
                allocated <= 2 * workers as u64,
                "parallel batch must allocate at most one scratch per worker per sweep"
            );
        }
    }
}
