//! Fisher information of parameterized circuits.
//!
//! Two related objects:
//!
//! - [`quantum_fisher_information`]: `F_Q = 4·G` with `G` the Fubini–Study
//!   metric — the geometry of the *state* family.
//! - [`classical_fisher_information`]: the Fisher matrix of the
//!   computational-basis outcome distribution `p_x(θ) = |⟨x|ψ(θ)⟩|²`,
//!   `F_C = Σ_x (∇p_x)(∇p_x)ᵀ / p_x` — the quantity whose spectrum
//!   collapses toward zero in a barren plateau (Abbas et al. 2021, *The
//!   power of quantum neural networks*): flat measurement statistics mean
//!   no parameter direction is informationally visible.
//!
//! # Examples
//!
//! ```
//! use plateau_grad::classical_fisher_information;
//! use plateau_sim::Circuit;
//!
//! // A single RY on |0⟩ is a one-parameter binomial model with F ≡ 1.
//! let mut c = Circuit::new(1)?;
//! c.ry(0)?;
//! let f = classical_fisher_information(&c, &[0.73])?;
//! assert!((f[(0, 0)] - 1.0).abs() < 1e-9);
//! # Ok::<(), plateau_sim::SimError>(())
//! ```

use crate::metric::{metric_tensor, tangent_state};
use plateau_linalg::RMatrix;
use plateau_sim::{Circuit, SimError};

/// The quantum Fisher information matrix `F_Q = 4·G` (pure states).
///
/// # Errors
///
/// Propagates parameter-count and execution errors.
pub fn quantum_fisher_information(
    circuit: &Circuit,
    params: &[f64],
) -> Result<RMatrix, SimError> {
    let g = metric_tensor(circuit, params)?;
    let p = g.rows();
    Ok(RMatrix::from_fn(p, p, |i, j| 4.0 * g[(i, j)]))
}

/// The classical Fisher information matrix of the computational-basis
/// measurement, `F_C[i][j] = Σ_x ∂_i p_x · ∂_j p_x / p_x` (outcomes with
/// `p_x` below machine tolerance are skipped — they carry no information
/// and would otherwise blow up numerically).
///
/// Cost: `P` tangent states of `O(G)` gate work plus `O(P²·2^n)`
/// accumulation.
///
/// # Errors
///
/// Propagates parameter-count and execution errors.
pub fn classical_fisher_information(
    circuit: &Circuit,
    params: &[f64],
) -> Result<RMatrix, SimError> {
    circuit.check_params(params)?;
    let p = circuit.n_params();
    let psi = circuit.run(params)?;
    let dim = psi.dim();

    // Jacobian of outcome probabilities: ∂_i p_x = 2·Re(ψ_x* · ∂_i ψ_x).
    let mut jac = vec![vec![0.0; dim]; p];
    for (i, row) in jac.iter_mut().enumerate() {
        let tangent = tangent_state(circuit, params, i)?;
        for (x, slot) in row.iter_mut().enumerate() {
            *slot = 2.0 * (psi.amplitudes()[x].conj() * tangent.amplitudes()[x]).re;
        }
    }

    let probs = psi.probabilities();
    let mut f = RMatrix::zeros(p.max(1), p.max(1));
    for x in 0..dim {
        if probs[x] < 1e-14 {
            continue;
        }
        let inv = 1.0 / probs[x];
        for i in 0..p {
            let ji = jac[i][x];
            if ji == 0.0 {
                continue;
            }
            for j in i..p {
                let val = ji * jac[j][x] * inv;
                f[(i, j)] += val;
                if i != j {
                    f[(j, i)] += val;
                }
            }
        }
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use plateau_linalg::{c64, eigh, CMatrix};

    #[test]
    fn qfi_of_single_ry_is_one() {
        let mut c = Circuit::new(1).unwrap();
        c.ry(0).unwrap();
        for theta in [0.0, 0.8, -2.1] {
            let f = quantum_fisher_information(&c, &[theta]).unwrap();
            assert!((f[(0, 0)] - 1.0).abs() < 1e-10, "θ={theta}");
        }
    }

    #[test]
    fn classical_fisher_of_single_ry_is_one() {
        // p0 = cos²(θ/2): the classical binomial Fisher is identically 1.
        let mut c = Circuit::new(1).unwrap();
        c.ry(0).unwrap();
        for theta in [0.4, 1.1, 2.6] {
            let f = classical_fisher_information(&c, &[theta]).unwrap();
            assert!((f[(0, 0)] - 1.0).abs() < 1e-9, "θ={theta}: {}", f[(0, 0)]);
        }
    }

    #[test]
    fn classical_fisher_of_rz_is_zero() {
        // RZ is invisible to the computational-basis measurement.
        let mut c = Circuit::new(1).unwrap();
        c.h(0).unwrap();
        c.rz(0).unwrap();
        let f = classical_fisher_information(&c, &[0.9]).unwrap();
        assert!(f[(0, 0)].abs() < 1e-10);
        // …while the quantum Fisher information sees it: H|0⟩ maximizes
        // the variance of Z/2 → QFI = 1.
        let q = quantum_fisher_information(&c, &[0.9]).unwrap();
        assert!((q[(0, 0)] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn classical_bounded_by_quantum() {
        // F_C ⪯ F_Q entrywise on the diagonal (Cramér–Rao chain).
        let mut c = Circuit::new(2).unwrap();
        c.ry(0).unwrap().rx(1).unwrap().cz(0, 1).unwrap().ry(1).unwrap();
        let params = [0.7, -0.3, 1.2];
        let fc = classical_fisher_information(&c, &params).unwrap();
        let fq = quantum_fisher_information(&c, &params).unwrap();
        for i in 0..3 {
            assert!(
                fc[(i, i)] <= fq[(i, i)] + 1e-9,
                "param {i}: classical {} > quantum {}",
                fc[(i, i)],
                fq[(i, i)]
            );
        }
    }

    #[test]
    fn fisher_matrices_are_symmetric_psd() {
        let mut c = Circuit::new(2).unwrap();
        c.ry(0).unwrap().ry(1).unwrap().cz(0, 1).unwrap().rx(0).unwrap();
        let params = [0.4, 0.9, -0.6];
        for f in [
            classical_fisher_information(&c, &params).unwrap(),
            quantum_fisher_information(&c, &params).unwrap(),
        ] {
            let n = f.rows();
            for i in 0..n {
                for j in 0..n {
                    assert!((f[(i, j)] - f[(j, i)]).abs() < 1e-10);
                }
            }
            let complex = CMatrix::from_fn(n, n, |i, j| c64(f[(i, j)], 0.0));
            let eig = eigh(&complex, 1e-10, 200).unwrap();
            for v in eig.values {
                assert!(v > -1e-9, "negative fisher eigenvalue {v}");
            }
        }
    }

    #[test]
    fn errors_propagate() {
        let mut c = Circuit::new(1).unwrap();
        c.ry(0).unwrap();
        assert!(classical_fisher_information(&c, &[]).is_err());
        assert!(quantum_fisher_information(&c, &[]).is_err());
    }
}
