//! The [`GradientEngine`] trait: a uniform interface over the three
//! differentiation strategies so harnesses can swap engines freely.

use plateau_sim::{Circuit, CompiledCircuit, Observable, SimError};

/// A circuit prepared for repeated evaluation: either the raw op list or,
/// when the `PLATEAU_SIM_FUSE` knob is on, the gate-fusion compiler's
/// output. Building one hoists the compile out of evaluation loops — the
/// compile-once/run-many contract that parameter-shift sweeps and batched
/// expectation rely on.
pub(crate) enum Evaluator<'c> {
    /// Gate-by-gate execution of the original circuit.
    Raw(&'c Circuit),
    /// Fused-segment execution of the compiled circuit.
    Fused(CompiledCircuit),
}

impl<'c> Evaluator<'c> {
    /// Prepares `circuit` for evaluation, compiling it when fusion is on.
    pub(crate) fn new(circuit: &'c Circuit) -> Self {
        if plateau_sim::fuse_enabled() {
            Evaluator::Fused(plateau_sim::compile(circuit))
        } else {
            Evaluator::Raw(circuit)
        }
    }

    /// One cost evaluation `E(θ)`; the same computation (and the same
    /// `grad.expectation_evals` accounting) as [`expectation`], minus the
    /// per-call compile.
    pub(crate) fn expectation(&self, params: &[f64], obs: &Observable) -> Result<f64, SimError> {
        plateau_obs::counter!("grad.expectation_evals").inc();
        let state = match self {
            Evaluator::Raw(circuit) => circuit.run(params)?,
            Evaluator::Fused(compiled) => compiled.run(params)?,
        };
        obs.expectation(&state)
    }

    /// [`Evaluator::expectation`] into a caller-owned scratch state —
    /// the same arithmetic (and the same `grad.expectation_evals`
    /// accounting) with zero statevector allocation. The scratch is reset
    /// to `|0…0⟩` in place before the run.
    pub(crate) fn expectation_into(
        &self,
        state: &mut plateau_sim::State,
        params: &[f64],
        obs: &Observable,
    ) -> Result<f64, SimError> {
        plateau_obs::counter!("grad.expectation_evals").inc();
        match self {
            Evaluator::Raw(circuit) => circuit.run_into(state, params)?,
            Evaluator::Fused(compiled) => compiled.run_into(state, params)?,
        }
        obs.expectation(state)
    }

    /// One full adjoint gradient through whichever representation this
    /// evaluator holds — the same computation (and the same counter
    /// accounting) as [`crate::Adjoint::gradient`], minus the per-call
    /// compile when fusion is on.
    pub(crate) fn adjoint_gradient(
        &self,
        params: &[f64],
        obs: &Observable,
    ) -> Result<Vec<f64>, SimError> {
        if obs.n_qubits() != self.n_qubits() {
            return Err(SimError::ObservableMismatch {
                observable_qubits: obs.n_qubits(),
                state_qubits: self.n_qubits(),
            });
        }
        crate::adjoint::record_gradient_metrics(self.n_qubits());
        match self {
            Evaluator::Raw(circuit) => {
                circuit.check_params(params)?;
                crate::adjoint::gradient_raw(circuit, params, obs)
            }
            Evaluator::Fused(compiled) => {
                compiled.check_params(params)?;
                crate::adjoint::gradient_fused(compiled, params, obs)
            }
        }
    }

    /// Register width of the underlying circuit.
    pub(crate) fn n_qubits(&self) -> usize {
        match self {
            Evaluator::Raw(circuit) => circuit.n_qubits(),
            Evaluator::Fused(compiled) => compiled.n_qubits(),
        }
    }
}

/// Evaluates the cost `E(θ) = ⟨0|U†(θ) H U(θ)|0⟩`.
///
/// # Errors
///
/// Propagates parameter-count and observable-size mismatches.
///
/// # Examples
///
/// ```
/// use plateau_grad::expectation;
/// use plateau_sim::{Circuit, Observable};
///
/// let mut c = Circuit::new(1)?;
/// c.ry(0)?;
/// let obs = Observable::global_cost(1);
/// // C(θ) = 1 − cos²(θ/2) = sin²(θ/2)
/// let theta = 0.8f64;
/// let c_val = expectation(&c, &[theta], &obs)?;
/// assert!((c_val - (theta / 2.0).sin().powi(2)).abs() < 1e-12);
/// # Ok::<(), plateau_sim::SimError>(())
/// ```
pub fn expectation(circuit: &Circuit, params: &[f64], obs: &Observable) -> Result<f64, SimError> {
    Evaluator::new(circuit).expectation(params, obs)
}

/// Minimum batch size before [`expectation_many`] fans out across the
/// thread pool; below this the per-batch thread-spawn overhead dominates
/// the circuit simulations themselves. Two- and four-point parameter-shift
/// partials (the variance scan's inner loop, which already runs inside a
/// `plateau_par` fan-out over circuits) therefore always stay serial and
/// never nest pools.
pub(crate) const MIN_PAR_EVALS: usize = 8;

/// Evaluates the cost for many parameter sets against one circuit —
/// the batched entry point behind [`crate::ParameterShift`]'s parallel
/// gradient and available to harnesses that sweep parameter ensembles.
///
/// Batches of at least 8 evaluations fan out across the [`plateau_par`]
/// scoped pool (respecting `PLATEAU_THREADS`); smaller batches run
/// serially. Results come back in input order and each evaluation is the
/// same computation as [`expectation`], so the output is identical
/// whichever path runs.
///
/// # Errors
///
/// Propagates parameter-count and observable-size mismatches; every
/// parameter set is validated up front, before any circuit runs.
///
/// # Examples
///
/// ```
/// use plateau_grad::{expectation, expectation_many};
/// use plateau_sim::{Circuit, Observable};
///
/// let mut c = Circuit::new(1)?;
/// c.ry(0)?;
/// let obs = Observable::global_cost(1);
/// let sets = vec![vec![0.1], vec![0.2], vec![0.3]];
/// let batch = expectation_many(&c, &sets, &obs)?;
/// for (set, e) in sets.iter().zip(&batch) {
///     assert_eq!(*e, expectation(&c, set, &obs)?);
/// }
/// # Ok::<(), plateau_sim::SimError>(())
/// ```
pub fn expectation_many(
    circuit: &Circuit,
    param_sets: &[Vec<f64>],
    obs: &Observable,
) -> Result<Vec<f64>, SimError> {
    plateau_obs::counter!("grad.expectation_batches").inc();
    plateau_obs::histogram!("grad.batch_size").record(param_sets.len() as u64);
    // One-shot form of the batched engine: compile once, route once,
    // evaluate through per-worker scratch states (BatchExecutor owns the
    // serial/parallel decision and the scratch pool).
    crate::batch::BatchExecutor::new(circuit).expectation_many(param_sets, obs)
}

/// A strategy for computing `∂E/∂θ` of a parameterized circuit against a
/// Hermitian observable.
///
/// Implementations: [`crate::ParameterShift`] (exact, 2 or 4 circuit
/// evaluations per parameter), [`crate::Adjoint`] (exact, one forward plus
/// one backward sweep for *all* parameters), [`crate::FiniteDifference`]
/// (approximate; test oracle).
pub trait GradientEngine {
    /// Gradient with respect to every free parameter.
    ///
    /// # Errors
    ///
    /// Propagates parameter-count and observable-size mismatches.
    fn gradient(
        &self,
        circuit: &Circuit,
        params: &[f64],
        obs: &Observable,
    ) -> Result<Vec<f64>, SimError>;

    /// Partial derivative with respect to the single parameter `index`.
    ///
    /// The default implementation computes the full gradient and projects;
    /// engines with a cheaper single-parameter path override this — the
    /// paper's variance analysis differentiates only the *last* parameter,
    /// so this path matters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ParamOutOfRange`] for a bad index, plus
    /// whole-gradient error conditions.
    fn partial(
        &self,
        circuit: &Circuit,
        params: &[f64],
        obs: &Observable,
        index: usize,
    ) -> Result<f64, SimError> {
        if index >= circuit.n_params() {
            return Err(SimError::ParamOutOfRange {
                index,
                n_params: circuit.n_params(),
            });
        }
        Ok(self.gradient(circuit, params, obs)?[index])
    }

    /// Partial derivative with respect to the **last** parameter — the
    /// paper's variance-analysis quantity (§IV-C).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ParamOutOfRange`] when the circuit has no free
    /// parameters.
    fn partial_last(
        &self,
        circuit: &Circuit,
        params: &[f64],
        obs: &Observable,
    ) -> Result<f64, SimError> {
        let n = circuit.n_params();
        if n == 0 {
            return Err(SimError::ParamOutOfRange { index: 0, n_params: 0 });
        }
        self.partial(circuit, params, obs, n - 1)
    }
}
