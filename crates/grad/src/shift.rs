//! Parameter-shift differentiation.
//!
//! For a gate `R(θ) = exp(-i θ G / 2)` with `G² = I` (all of RX/RY/RZ and,
//! up to an expectation-invisible global phase, Phase), the derivative of
//! any expectation value obeys the exact two-term rule
//!
//! ```text
//! ∂E/∂θ = ( E(θ + π/2) − E(θ − π/2) ) / 2
//! ```
//!
//! Controlled rotations have generators with *two* spectral gaps, so they
//! need the four-term rule with shifts `π/2` and `3π/2`
//! (the same rule PennyLane uses for CRX/CRY/CRZ).
//!
//! This is the textbook method the paper's PennyLane pipeline exposes; the
//! [`crate::Adjoint`] engine is the fast path and is cross-checked against
//! this one in tests.

use crate::engine::GradientEngine;
use plateau_sim::{Circuit, Observable, Op, SimError};
use std::f64::consts::{FRAC_PI_2, SQRT_2};

/// The parameter-shift gradient engine.
///
/// # Examples
///
/// ```
/// use plateau_grad::{GradientEngine, ParameterShift};
/// use plateau_sim::{Circuit, Observable};
///
/// let mut c = Circuit::new(1)?;
/// c.ry(0)?;
/// let obs = Observable::global_cost(1);
/// // C(θ) = sin²(θ/2) → dC/dθ = sin(θ)/2
/// let theta = 0.8f64;
/// let g = ParameterShift.gradient(&c, &[theta], &obs)?;
/// assert!((g[0] - theta.sin() / 2.0).abs() < 1e-12);
/// # Ok::<(), plateau_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParameterShift;

/// Kind of shift rule a parameter needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ShiftRule {
    /// Single-qubit rotation: two-term rule, shift π/2, coefficient 1/2.
    TwoTerm,
    /// Controlled rotation: four-term rule.
    FourTerm,
}

pub(crate) fn rule_for_param(circuit: &Circuit, index: usize) -> Result<ShiftRule, SimError> {
    let op_idx = circuit
        .op_of_param(index)
        .ok_or(SimError::ParamOutOfRange {
            index,
            n_params: circuit.n_params(),
        })?;
    Ok(match &circuit.ops()[op_idx] {
        // Pauli and Pauli-product generators square to the identity →
        // exact two-term rule.
        Op::Rotation { .. } | Op::TwoQubitRotation { .. } => ShiftRule::TwoTerm,
        Op::ControlledRotation { .. } => ShiftRule::FourTerm,
        Op::Fixed { .. } => unreachable!("fixed ops own no parameters"),
    })
}

/// One shifted-circuit evaluation of the parameter-shift sum:
/// contributes `coeff · E(θ with θ[param] += shift)` to `∂E/∂θ[param]`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ShiftJob {
    pub(crate) param: usize,
    pub(crate) shift: f64,
    pub(crate) coeff: f64,
}

/// Appends the shift jobs for one parameter, **without** counter
/// accounting — the batched executor multiplies one parameter's jobs
/// across a whole ensemble and bumps the counter itself.
pub(crate) fn jobs_for_param(
    circuit: &Circuit,
    index: usize,
    jobs: &mut Vec<ShiftJob>,
) -> Result<(), SimError> {
    match rule_for_param(circuit, index)? {
        ShiftRule::TwoTerm => {
            jobs.push(ShiftJob { param: index, shift: FRAC_PI_2, coeff: 0.5 });
            jobs.push(ShiftJob { param: index, shift: -FRAC_PI_2, coeff: -0.5 });
        }
        ShiftRule::FourTerm => {
            // PennyLane's four-term rule for controlled rotations:
            // c± = (√2 ± 1) / (4√2), shifts π/2 and 3π/2.
            let c1 = (SQRT_2 + 1.0) / (4.0 * SQRT_2);
            let c2 = (SQRT_2 - 1.0) / (4.0 * SQRT_2);
            jobs.push(ShiftJob { param: index, shift: FRAC_PI_2, coeff: c1 });
            jobs.push(ShiftJob { param: index, shift: -FRAC_PI_2, coeff: -c1 });
            jobs.push(ShiftJob { param: index, shift: 3.0 * FRAC_PI_2, coeff: -c2 });
            jobs.push(ShiftJob { param: index, shift: -3.0 * FRAC_PI_2, coeff: c2 });
        }
    }
    Ok(())
}

/// Appends the shift jobs for one parameter and bumps the execution
/// counter by the number of circuit evaluations they will cost.
fn push_jobs(circuit: &Circuit, index: usize, jobs: &mut Vec<ShiftJob>) -> Result<(), SimError> {
    let before = jobs.len();
    jobs_for_param(circuit, index, jobs)?;
    plateau_obs::counter!("grad.executions.parameter_shift").add((jobs.len() - before) as u64);
    Ok(())
}

impl ParameterShift {
    /// Computes one partial from a pre-validated parameter vector.
    fn partial_impl(
        &self,
        circuit: &Circuit,
        params: &[f64],
        obs: &Observable,
        index: usize,
    ) -> Result<f64, SimError> {
        let mut jobs = Vec::with_capacity(4);
        push_jobs(circuit, index, &mut jobs)?;
        let shifts: Vec<(usize, f64)> = jobs.iter().map(|j| (j.param, j.shift)).collect();
        let evals =
            crate::batch::BatchExecutor::new(circuit).expectation_shifted(params, &shifts, obs)?;
        Ok(jobs
            .iter()
            .zip(&evals)
            .map(|(j, e)| j.coeff * e)
            .sum())
    }
}

impl GradientEngine for ParameterShift {
    fn gradient(
        &self,
        circuit: &Circuit,
        params: &[f64],
        obs: &Observable,
    ) -> Result<Vec<f64>, SimError> {
        circuit.check_params(params)?;
        plateau_obs::counter!("grad.gradients.parameter_shift").inc();
        let n = circuit.n_params();
        let mut jobs = Vec::with_capacity(2 * n);
        for i in 0..n {
            push_jobs(circuit, i, &mut jobs)?;
        }
        // Every job is an independent circuit evaluation, so a gradient
        // with k parameters exposes 2k (4k for controlled rotations)
        // units of work. The batched executor owns the serial/parallel
        // routing and the per-worker scratch states; the jobs travel as
        // (index, shift) pairs against the one base vector — O(k) bytes
        // — instead of 2k materialized copies of `params`. Both routes
        // evaluate identical parameter vectors and the fold below runs
        // in job order, so the result does not depend on which path ran.
        let shifts: Vec<(usize, f64)> = jobs.iter().map(|j| (j.param, j.shift)).collect();
        let evals =
            crate::batch::BatchExecutor::new(circuit).expectation_shifted(params, &shifts, obs)?;
        let mut grad = vec![0.0; n];
        for (j, e) in jobs.iter().zip(&evals) {
            grad[j.param] += j.coeff * e;
        }
        Ok(grad)
    }

    fn partial(
        &self,
        circuit: &Circuit,
        params: &[f64],
        obs: &Observable,
        index: usize,
    ) -> Result<f64, SimError> {
        if index >= circuit.n_params() {
            return Err(SimError::ParamOutOfRange {
                index,
                n_params: circuit.n_params(),
            });
        }
        circuit.check_params(params)?;
        self.partial_impl(circuit, params, obs, index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plateau_sim::RotationGate;

    #[test]
    fn ry_global_cost_analytic() {
        // C(θ) = sin²(θ/2), C'(θ) = sin(θ)/2.
        let mut c = Circuit::new(1).unwrap();
        c.ry(0).unwrap();
        let obs = Observable::global_cost(1);
        for theta in [-2.0f64, -0.3, 0.0, 0.9, 2.4] {
            let g = ParameterShift.gradient(&c, &[theta], &obs).unwrap();
            assert!((g[0] - theta.sin() / 2.0).abs() < 1e-12, "θ={theta}");
        }
    }

    #[test]
    fn rx_then_ry_chain_rule() {
        // ψ = RY(φ) RX(θ) |0⟩; C = 1 - p0.
        // p0 = |cos(φ/2)cos(θ/2)|² + |sin(φ/2)|²·... compute by finite diff
        // comparison instead (this is the role of FiniteDifference, but do a
        // local 5-point check here for independence).
        let mut c = Circuit::new(1).unwrap();
        c.rx(0).unwrap().ry(0).unwrap();
        let obs = Observable::global_cost(1);
        let params = [0.7, -1.1];
        let g = ParameterShift.gradient(&c, &params, &obs).unwrap();
        let eps = 1e-5;
        for i in 0..2 {
            let mut p = params;
            p[i] += eps;
            let f_plus = crate::engine::expectation(&c, &p, &obs).unwrap();
            p[i] -= 2.0 * eps;
            let f_minus = crate::engine::expectation(&c, &p, &obs).unwrap();
            let fd = (f_plus - f_minus) / (2.0 * eps);
            assert!((g[i] - fd).abs() < 1e-8, "param {i}: {} vs {}", g[i], fd);
        }
    }

    #[test]
    fn entangled_two_qubit_gradient() {
        let mut c = Circuit::new(2).unwrap();
        c.ry(0).unwrap().ry(1).unwrap().cz(0, 1).unwrap().rx(0).unwrap();
        let obs = Observable::global_cost(2);
        let params = [0.3, 1.2, -0.5];
        let g = ParameterShift.gradient(&c, &params, &obs).unwrap();
        assert_eq!(g.len(), 3);
        let eps = 1e-5;
        for i in 0..3 {
            let mut p = params;
            p[i] += eps;
            let fp = crate::engine::expectation(&c, &p, &obs).unwrap();
            p[i] -= 2.0 * eps;
            let fm = crate::engine::expectation(&c, &p, &obs).unwrap();
            assert!((g[i] - (fp - fm) / (2.0 * eps)).abs() < 1e-8);
        }
    }

    #[test]
    fn four_term_rule_for_controlled_rotation() {
        let mut c = Circuit::new(2).unwrap();
        c.h(0).unwrap();
        c.push_controlled_rotation(RotationGate::Ry, 0, 1).unwrap();
        let obs = Observable::global_cost(2);
        let params = [0.9];
        let g = ParameterShift.gradient(&c, &params, &obs).unwrap();
        let eps = 1e-5;
        let fp = crate::engine::expectation(&c, &[0.9 + eps], &obs).unwrap();
        let fm = crate::engine::expectation(&c, &[0.9 - eps], &obs).unwrap();
        assert!((g[0] - (fp - fm) / (2.0 * eps)).abs() < 1e-8);
    }

    #[test]
    fn partial_last_matches_full_gradient() {
        let mut c = Circuit::new(2).unwrap();
        c.rx(0).unwrap().ry(1).unwrap().cz(0, 1).unwrap().rz(0).unwrap();
        let obs = Observable::local_cost(2);
        let params = [0.2, 0.4, 0.6];
        let full = ParameterShift.gradient(&c, &params, &obs).unwrap();
        let last = ParameterShift.partial_last(&c, &params, &obs).unwrap();
        assert!((full[2] - last).abs() < 1e-14);
    }

    #[test]
    fn error_paths() {
        let mut c = Circuit::new(1).unwrap();
        c.rx(0).unwrap();
        let obs = Observable::global_cost(1);
        assert!(ParameterShift.gradient(&c, &[], &obs).is_err());
        assert!(ParameterShift.partial(&c, &[0.1], &obs, 5).is_err());
        let empty = Circuit::new(1).unwrap();
        assert!(ParameterShift.partial_last(&empty, &[], &obs).is_err());
    }
}
