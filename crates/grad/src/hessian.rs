//! Exact Hessians via the double parameter-shift rule.
//!
//! For parameters whose gates obey the two-term shift rule (all Pauli and
//! Pauli-product rotations), second derivatives are exact trigonometric
//! identities:
//!
//! ```text
//! ∂²E/∂θ_i∂θ_j = [ E(+s_i,+s_j) − E(+s_i,−s_j) − E(−s_i,+s_j) + E(−s_i,−s_j) ] / 4
//! ```
//!
//! with `s = π/2` on both axes (the `i = j` case degenerates to shifts of
//! `±π` and the identity `∂²E/∂θ² = (E(θ+π) + E(θ−π) − 2E(θ))·…` handled
//! by the same four-point formula).
//!
//! Cerezo & Coles (2021) showed barren plateaus flatten second derivatives
//! at the same exponential rate as gradients — the `hessian_decay`
//! ablation uses this module to verify that on our substrate.

use crate::engine::expectation;
use plateau_linalg::{eigh, c64, CMatrix, RMatrix};
use plateau_sim::{Circuit, Observable, Op, SimError};
use std::f64::consts::FRAC_PI_2;

/// Verifies every free parameter obeys the two-term rule (no controlled
/// rotations), which the double-shift Hessian formula requires.
fn check_two_term(circuit: &Circuit) -> Result<(), SimError> {
    for op in circuit.ops() {
        if op.free_param().is_some() {
            if let Op::ControlledRotation { gate, .. } = op {
                return Err(SimError::WrongArity {
                    gate: format!("hessian of controlled {gate}"),
                    expected: 2,
                    found: 4,
                });
            }
        }
    }
    Ok(())
}

/// Computes the full `P × P` Hessian of the cost at `params` by the double
/// parameter-shift rule (`O(P²)` circuit evaluations).
///
/// # Errors
///
/// Returns [`SimError::WrongArity`] if the circuit contains trainable
/// controlled rotations (four-term parameters), plus the usual
/// parameter/observable mismatches.
pub fn hessian(
    circuit: &Circuit,
    params: &[f64],
    obs: &Observable,
) -> Result<RMatrix, SimError> {
    circuit.check_params(params)?;
    check_two_term(circuit)?;
    let p = params.len();
    let mut h = RMatrix::zeros(p.max(1), p.max(1));
    let mut work = params.to_vec();
    for i in 0..p {
        for j in i..p {
            let mut value = 0.0;
            for (si, sj, sign) in [
                (FRAC_PI_2, FRAC_PI_2, 1.0),
                (FRAC_PI_2, -FRAC_PI_2, -1.0),
                (-FRAC_PI_2, FRAC_PI_2, -1.0),
                (-FRAC_PI_2, -FRAC_PI_2, 1.0),
            ] {
                work.copy_from_slice(params);
                work[i] += si;
                work[j] += sj;
                value += sign * expectation(circuit, &work, obs)?;
            }
            let entry = value / 4.0;
            h[(i, j)] = entry;
            h[(j, i)] = entry;
        }
    }
    Ok(h)
}

/// Largest absolute eigenvalue (spectral norm) of a symmetric Hessian.
///
/// # Errors
///
/// Returns [`SimError::DimensionMismatch`] when the eigendecomposition
/// fails.
pub fn spectral_norm(h: &RMatrix) -> Result<f64, SimError> {
    let n = h.rows();
    let complex = CMatrix::from_fn(n, n, |i, j| c64(h[(i, j)], 0.0));
    let eig = eigh(&complex, 1e-10, 300).map_err(|_| SimError::DimensionMismatch {
        expected: n,
        found: h.cols(),
    })?;
    Ok(eig
        .values
        .iter()
        .fold(0.0f64, |acc, v| acc.max(v.abs())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use plateau_sim::RotationGate;

    #[test]
    fn single_ry_hessian_analytic() {
        // C(θ) = sin²(θ/2) → C''(θ) = cos(θ)/2.
        let mut c = Circuit::new(1).unwrap();
        c.ry(0).unwrap();
        let obs = Observable::global_cost(1);
        for theta in [-1.3f64, 0.0, 0.8, 2.5] {
            let h = hessian(&c, &[theta], &obs).unwrap();
            assert!(
                (h[(0, 0)] - theta.cos() / 2.0).abs() < 1e-12,
                "θ={theta}: {} vs {}",
                h[(0, 0)],
                theta.cos() / 2.0
            );
        }
    }

    #[test]
    fn hessian_matches_finite_differences() {
        let mut c = Circuit::new(2).unwrap();
        c.rx(0).unwrap().ry(1).unwrap().cz(0, 1).unwrap().ry(0).unwrap();
        let obs = Observable::global_cost(2);
        let params = [0.4, -0.9, 1.3];
        let h = hessian(&c, &params, &obs).unwrap();

        let eps = 1e-4;
        for i in 0..3 {
            for j in 0..3 {
                let mut fd = 0.0;
                for (si, sj, sign) in [
                    (eps, eps, 1.0),
                    (eps, -eps, -1.0),
                    (-eps, eps, -1.0),
                    (-eps, -eps, 1.0),
                ] {
                    let mut w = params;
                    w[i] += si;
                    w[j] += sj;
                    fd += sign * expectation(&c, &w, &obs).unwrap();
                }
                fd /= 4.0 * eps * eps;
                assert!(
                    (h[(i, j)] - fd).abs() < 1e-5,
                    "H[{i}][{j}]: {} vs fd {fd}",
                    h[(i, j)]
                );
            }
        }
    }

    #[test]
    fn hessian_is_symmetric() {
        let mut c = Circuit::new(2).unwrap();
        c.ry(0).unwrap().rxx(0, 1).unwrap().rz(1).unwrap();
        let obs = Observable::local_cost(2);
        let h = hessian(&c, &[0.3, 0.7, -0.2], &obs).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(h[(i, j)], h[(j, i)]);
            }
        }
    }

    #[test]
    fn hessian_vanishes_at_global_minimum_off_diagonal_structure() {
        // At θ = 0 the identity circuit sits at C = 0; the Hessian there
        // is PSD (it's a minimum).
        let mut c = Circuit::new(2).unwrap();
        c.rx(0).unwrap().ry(1).unwrap().cz(0, 1).unwrap();
        let obs = Observable::global_cost(2);
        let h = hessian(&c, &[0.0, 0.0], &obs).unwrap();
        let norm = spectral_norm(&h).unwrap();
        assert!(norm > 0.0);
        // PSD check via eigen decomposition through spectral helper:
        let n = h.rows();
        let complex = CMatrix::from_fn(n, n, |i, j| c64(h[(i, j)], 0.0));
        let eig = eigh(&complex, 1e-10, 200).unwrap();
        for v in eig.values {
            assert!(v > -1e-10, "minimum must have PSD hessian, got {v}");
        }
    }

    #[test]
    fn rejects_controlled_rotation_parameters() {
        let mut c = Circuit::new(2).unwrap();
        c.push_controlled_rotation(RotationGate::Ry, 0, 1).unwrap();
        let obs = Observable::global_cost(2);
        assert!(hessian(&c, &[0.3], &obs).is_err());
    }

    #[test]
    fn spectral_norm_of_known_matrix() {
        let m = RMatrix::from_vec(2, 2, vec![3.0, 0.0, 0.0, -5.0]);
        assert!((spectral_norm(&m).unwrap() - 5.0).abs() < 1e-10);
    }
}
