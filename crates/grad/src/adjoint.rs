//! Adjoint differentiation (Jones & Gacon 2020): exact gradients of *all*
//! parameters from one forward pass, one observable application, and one
//! backward sweep — `O(P + G)` state operations instead of the parameter
//! shift's `O(P · G)`.
//!
//! With `E = ⟨ψ|H|ψ⟩`, `ψ = U_N ⋯ U_1 |0⟩`:
//!
//! ```text
//! ∂E/∂θ_k = 2 · Re ⟨λ_k | (∂U_k/∂θ_k) | φ_{k-1}⟩
//! ```
//!
//! where `φ_{k-1} = U_{k-1} ⋯ U_1 |0⟩` and
//! `λ_k = (U_{k+1} ⋯ U_N)† H |ψ⟩`, both maintained incrementally while
//! walking the op list backwards.
//!
//! This engine powers the paper's variance analysis at scale
//! (200 circuits × 6 initializations × 5 qubit counts × deep circuits).

use crate::engine::GradientEngine;
use plateau_linalg::C64;
use plateau_sim::{Circuit, Observable, SimError, State};

/// The adjoint-differentiation gradient engine.
///
/// # Examples
///
/// ```
/// use plateau_grad::{Adjoint, GradientEngine};
/// use plateau_sim::{Circuit, Observable};
///
/// let mut c = Circuit::new(1)?;
/// c.ry(0)?;
/// let obs = Observable::global_cost(1);
/// let theta = 0.8f64;
/// let g = Adjoint.gradient(&c, &[theta], &obs)?;
/// assert!((g[0] - theta.sin() / 2.0).abs() < 1e-12);
/// # Ok::<(), plateau_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Adjoint;

fn inner_re(a: &State, b: &State) -> f64 {
    let mut acc = C64::ZERO;
    for (x, y) in a.amplitudes().iter().zip(b.amplitudes().iter()) {
        acc += x.conj() * *y;
    }
    acc.re
}

/// The same adjoint recurrence over fused segments: for a segment
/// `S = U_k ⋯ U_1` the derivative with respect to a parameter owned by
/// `U_j` is `U_k ⋯ U_{j+1} (∂U_j) U_{j-1} ⋯ U_1` — the merged-matrix
/// product with the derivative block substituted at `j`, which
/// [`plateau_sim::Segment::apply_derivative`] computes in one fused
/// application against the segment-input state.
pub(crate) fn gradient_fused(
    compiled: &plateau_sim::CompiledCircuit,
    params: &[f64],
    obs: &Observable,
) -> Result<Vec<f64>, SimError> {
    // Forward pass: φ = U|0⟩ through the fused kernels.
    let mut phi = compiled.run(params)?;
    // λ = H|ψ⟩ (generally unnormalized).
    let mut lambda = State::from_amplitudes_unnormalized(obs.apply_raw(&phi)?)?;

    let mut grad = vec![0.0; compiled.n_params()];
    for seg in compiled.segments().iter().rev() {
        // φ ← S† φ (now the state entering the segment).
        seg.apply_inverse(&mut phi, params)?;
        for (op_pos, idx) in seg.free_params() {
            // μ = (∂S/∂θ) φ.
            let mut mu = phi.clone();
            seg.apply_derivative(&mut mu, op_pos, params)?;
            grad[idx] += 2.0 * inner_re(&lambda, &mu);
        }
        // λ ← S† λ.
        seg.apply_inverse(&mut lambda, params)?;
    }
    Ok(grad)
}

/// Counter/gauge accounting for one adjoint gradient evaluation —
/// emitted identically by [`Adjoint::gradient`] and the batched
/// executor's per-member adjoint path, so the two routes stay
/// indistinguishable in the metrics.
pub(crate) fn record_gradient_metrics(n_qubits: usize) {
    plateau_obs::counter!("grad.gradients.adjoint").inc();
    // One forward run plus one backward sweep, regardless of the
    // parameter count — the whole point of the adjoint method.
    plateau_obs::counter!("grad.executions.adjoint").add(2);
    // Working set: φ, λ, and the per-parameter tangent μ — three
    // statevectors of 2^n complex amplitudes.
    plateau_obs::gauge!("grad.scratch.bytes").set((3usize << n_qubits) as f64 * 16.0);
}

/// The raw gate-by-gate adjoint recurrence. Callers have validated the
/// parameter vector and the observable width and emitted the counters.
pub(crate) fn gradient_raw(
    circuit: &Circuit,
    params: &[f64],
    obs: &Observable,
) -> Result<Vec<f64>, SimError> {
    // Forward pass: φ = U|0⟩.
    let mut phi = circuit.run(params)?;
    // λ = H|ψ⟩ (generally unnormalized).
    let mut lambda = State::from_amplitudes_unnormalized(obs.apply_raw(&phi)?)?;

    let mut grad = vec![0.0; circuit.n_params()];
    for op in circuit.ops().iter().rev() {
        // φ ← U_k† φ (now the state before op k).
        op.apply_inverse(&mut phi, params)?;
        if let Some(idx) = op.free_param() {
            // μ = (∂U_k/∂θ) φ.
            let mut mu = phi.clone();
            op.apply_derivative(&mut mu, params)?;
            grad[idx] += 2.0 * inner_re(&lambda, &mu);
        }
        // λ ← U_k† λ.
        op.apply_inverse(&mut lambda, params)?;
    }
    Ok(grad)
}

/// Adjoint gradient over an already-compiled circuit — the warm path for
/// callers (the serve front-end's LRU, long-lived training loops) that
/// compile once and differentiate many times. Identical to
/// [`Adjoint::gradient`] with fusion enabled, minus the per-call
/// compilation: same validation, same metrics, bit-identical output for
/// the same compiled structure.
///
/// # Errors
///
/// Returns [`SimError`] for a parameter-count mismatch or an observable
/// whose width disagrees with the circuit.
///
/// # Examples
///
/// ```
/// use plateau_sim::{compile, Circuit, Observable};
///
/// let mut c = Circuit::new(2)?;
/// c.ry(0)?.ry(1)?.cz(0, 1)?;
/// let compiled = compile(&c);
/// let obs = Observable::global_cost(2);
/// let g = plateau_grad::adjoint_gradient_compiled(&compiled, &[0.3, -0.7], &obs)?;
/// assert_eq!(g.len(), 2);
/// # Ok::<(), plateau_sim::SimError>(())
/// ```
pub fn adjoint_gradient_compiled(
    compiled: &plateau_sim::CompiledCircuit,
    params: &[f64],
    obs: &Observable,
) -> Result<Vec<f64>, SimError> {
    compiled.check_params(params)?;
    if obs.n_qubits() != compiled.n_qubits() {
        return Err(SimError::ObservableMismatch {
            observable_qubits: obs.n_qubits(),
            state_qubits: compiled.n_qubits(),
        });
    }
    record_gradient_metrics(compiled.n_qubits());
    gradient_fused(compiled, params, obs)
}

impl GradientEngine for Adjoint {
    fn gradient(
        &self,
        circuit: &Circuit,
        params: &[f64],
        obs: &Observable,
    ) -> Result<Vec<f64>, SimError> {
        circuit.check_params(params)?;
        if obs.n_qubits() != circuit.n_qubits() {
            return Err(SimError::ObservableMismatch {
                observable_qubits: obs.n_qubits(),
                state_qubits: circuit.n_qubits(),
            });
        }
        record_gradient_metrics(circuit.n_qubits());

        // The backward sweep applies every gate twice (once to φ, once to
        // λ), so fusion pays double here: when the knob is on, both sweeps
        // walk the compiled segment list instead of the raw op list.
        if plateau_sim::fuse_enabled() {
            return gradient_fused(&plateau_sim::compile(circuit), params, obs);
        }
        gradient_raw(circuit, params, obs)
    }

    // `partial` keeps the default whole-gradient implementation: a single
    // backward sweep already yields every parameter, so there is no cheaper
    // single-parameter path.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shift::ParameterShift;
    use plateau_sim::{PauliString, RotationGate};

    fn pseudo_angles(n: usize, seed: f64) -> Vec<f64> {
        (0..n)
            .map(|i| ((i as f64 + 1.0) * seed * 7.9).sin() * 2.0)
            .collect()
    }

    fn hea_circuit(n_qubits: usize, layers: usize) -> Circuit {
        let mut c = Circuit::new(n_qubits).unwrap();
        for l in 0..layers {
            for q in 0..n_qubits {
                match (l + q) % 3 {
                    0 => c.rx(q).unwrap(),
                    1 => c.ry(q).unwrap(),
                    _ => c.rz(q).unwrap(),
                };
            }
            for q in 0..n_qubits.saturating_sub(1) {
                c.cz(q, q + 1).unwrap();
            }
        }
        c
    }

    #[test]
    fn single_ry_analytic() {
        let mut c = Circuit::new(1).unwrap();
        c.ry(0).unwrap();
        let obs = Observable::global_cost(1);
        for theta in [-1.7f64, 0.0, 0.4, 2.9] {
            let g = Adjoint.gradient(&c, &[theta], &obs).unwrap();
            assert!((g[0] - theta.sin() / 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn matches_parameter_shift_on_hea() {
        for (n, layers, seed) in [(2, 2, 0.3), (3, 3, 0.7), (4, 2, 1.1)] {
            let c = hea_circuit(n, layers);
            let params = pseudo_angles(c.n_params(), seed);
            let obs = Observable::global_cost(n);
            let adj = Adjoint.gradient(&c, &params, &obs).unwrap();
            let shift = ParameterShift.gradient(&c, &params, &obs).unwrap();
            for (a, s) in adj.iter().zip(shift.iter()) {
                assert!((a - s).abs() < 1e-10, "adjoint {a} vs shift {s}");
            }
        }
    }

    #[test]
    fn matches_parameter_shift_local_cost_and_pauli() {
        let c = hea_circuit(3, 2);
        let params = pseudo_angles(c.n_params(), 0.9);
        for obs in [
            Observable::local_cost(3),
            Observable::zero_projector(3),
            Observable::pauli(PauliString::parse("ZZI").unwrap()).unwrap(),
            Observable::pauli(PauliString::parse("XIY").unwrap()).unwrap(),
        ] {
            let adj = Adjoint.gradient(&c, &params, &obs).unwrap();
            let shift = ParameterShift.gradient(&c, &params, &obs).unwrap();
            for (a, s) in adj.iter().zip(shift.iter()) {
                assert!((a - s).abs() < 1e-10, "{obs}: {a} vs {s}");
            }
        }
    }

    #[test]
    fn handles_fixed_gates_interleaved() {
        let mut c = Circuit::new(2).unwrap();
        c.h(0).unwrap();
        c.rx(1).unwrap();
        c.cz(0, 1).unwrap();
        c.push_fixed(plateau_sim::FixedGate::T, &[0]).unwrap();
        c.ry(0).unwrap();
        let params = [0.5, -0.8];
        let obs = Observable::global_cost(2);
        let adj = Adjoint.gradient(&c, &params, &obs).unwrap();
        let shift = ParameterShift.gradient(&c, &params, &obs).unwrap();
        for (a, s) in adj.iter().zip(shift.iter()) {
            assert!((a - s).abs() < 1e-10);
        }
    }

    #[test]
    fn handles_controlled_rotations() {
        let mut c = Circuit::new(2).unwrap();
        c.h(0).unwrap().h(1).unwrap();
        c.push_controlled_rotation(RotationGate::Rz, 0, 1).unwrap();
        c.push_controlled_rotation(RotationGate::Ry, 1, 0).unwrap();
        let params = [1.3, -0.4];
        let obs = Observable::global_cost(2);
        let adj = Adjoint.gradient(&c, &params, &obs).unwrap();
        let shift = ParameterShift.gradient(&c, &params, &obs).unwrap();
        for (a, s) in adj.iter().zip(shift.iter()) {
            assert!((a - s).abs() < 1e-10, "{a} vs {s}");
        }
    }

    #[test]
    fn handles_two_qubit_rotations() {
        // RXX/RYY/RZZ ansatz: parameterized entanglers instead of CZ.
        let mut c = Circuit::new(3).unwrap();
        c.ry(0).unwrap().ry(1).unwrap().ry(2).unwrap();
        c.rxx(0, 1).unwrap();
        c.ryy(1, 2).unwrap();
        c.rzz(0, 2).unwrap();
        c.rx(1).unwrap();
        let params = pseudo_angles(c.n_params(), 0.57);
        for obs in [Observable::global_cost(3), Observable::local_cost(3)] {
            let adj = Adjoint.gradient(&c, &params, &obs).unwrap();
            let shift = ParameterShift.gradient(&c, &params, &obs).unwrap();
            for (a, s) in adj.iter().zip(shift.iter()) {
                assert!((a - s).abs() < 1e-10, "{obs}: {a} vs {s}");
            }
        }
    }

    #[test]
    fn fused_sweep_matches_the_raw_op_walk() {
        // Drive the fused recurrence directly (no global knob) so this
        // test cannot race other tests in the binary.
        let c = hea_circuit(4, 3);
        let params = pseudo_angles(c.n_params(), 0.63);
        let compiled = plateau_sim::compile(&c);
        assert!(compiled.gates_out() < compiled.gates_in());
        for obs in [Observable::global_cost(4), Observable::local_cost(4)] {
            let raw = Adjoint.gradient(&c, &params, &obs).unwrap();
            let fused = super::gradient_fused(&compiled, &params, &obs).unwrap();
            for (r, f) in raw.iter().zip(fused.iter()) {
                assert!((r - f).abs() < 1e-12, "{obs}: {r} vs {f}");
            }
        }
    }

    #[test]
    fn fused_sweep_handles_controlled_and_two_qubit_rotations() {
        let mut c = Circuit::new(3).unwrap();
        c.h(0).unwrap().h(1).unwrap().h(2).unwrap();
        c.push_controlled_rotation(RotationGate::Ry, 0, 1).unwrap();
        c.rxx(1, 2).unwrap();
        c.rzz(0, 1).unwrap();
        c.ry(2).unwrap();
        let params = pseudo_angles(c.n_params(), 0.41);
        let obs = Observable::global_cost(3);
        let raw = Adjoint.gradient(&c, &params, &obs).unwrap();
        let fused =
            super::gradient_fused(&plateau_sim::compile(&c), &params, &obs).unwrap();
        for (r, f) in raw.iter().zip(fused.iter()) {
            assert!((r - f).abs() < 1e-10, "{r} vs {f}");
        }
    }

    #[test]
    fn gradient_at_zero_params_of_identity_learner_is_zero() {
        // At θ = 0 the circuit is the identity, the cost sits at its global
        // minimum (C = 0), so the gradient must vanish.
        let n = 3;
        let mut c = Circuit::new(n).unwrap();
        for q in 0..n {
            c.rx(q).unwrap();
            c.ry(q).unwrap();
        }
        for q in 0..n - 1 {
            c.cz(q, q + 1).unwrap();
        }
        let obs = Observable::global_cost(n);
        let g = Adjoint.gradient(&c, &vec![0.0; c.n_params()], &obs).unwrap();
        for gi in g {
            assert!(gi.abs() < 1e-12);
        }
    }

    #[test]
    fn error_paths() {
        let mut c = Circuit::new(2).unwrap();
        c.rx(0).unwrap();
        assert!(Adjoint.gradient(&c, &[], &Observable::global_cost(2)).is_err());
        assert!(Adjoint
            .gradient(&c, &[0.1], &Observable::global_cost(3))
            .is_err());
    }

    #[test]
    fn compiled_entry_point_matches_raw_adjoint() {
        let c = hea_circuit(4, 3);
        let params = pseudo_angles(c.n_params(), 0.57);
        let obs = Observable::pauli(PauliString::parse("ZXZY").unwrap()).unwrap();
        let raw = Adjoint.gradient(&c, &params, &obs).unwrap();
        let compiled = plateau_sim::compile(&c);
        let warm = super::adjoint_gradient_compiled(&compiled, &params, &obs).unwrap();
        assert_eq!(raw.len(), warm.len());
        for (r, w) in raw.iter().zip(warm.iter()) {
            assert!((r - w).abs() < 1e-10, "{r} vs {w}");
        }
        // Same validation surface as the engine entry point.
        assert!(super::adjoint_gradient_compiled(&compiled, &[], &obs).is_err());
        assert!(super::adjoint_gradient_compiled(
            &compiled,
            &params,
            &Observable::global_cost(5)
        )
        .is_err());
    }
}
