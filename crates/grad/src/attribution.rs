//! Per-layer gradient attribution: split a flat gradient vector into the
//! ansatz's layers and summarize each chunk.
//!
//! The paper's training ansatz (and every layered HEA in this workspace)
//! lays parameters out layer-major — `params_per_layer` consecutive
//! entries per layer — so layerwise structure falls out of plain
//! chunking. The statistics per layer are the ones the barren-plateau
//! literature watches: the chunk's Euclidean norm (does *any* signal
//! reach this layer?) and the population variance of its components (the
//! quantity whose exponential decay in depth/width defines the plateau;
//! Kashif et al. 2412.06462 track exactly this per-layer profile).
//!
//! This is a pure post-processing hook: engines stay untouched, the
//! telemetry layer calls [`layer_grad_stats`] on whatever
//! [`GradientEngine`](crate::GradientEngine) produced.

/// Norm and variance of one layer's slice of the gradient.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerGradStats {
    /// Euclidean norm of the layer's gradient components.
    pub norm: f64,
    /// Population variance (biased, like the paper's ensemble variance)
    /// of the layer's gradient components.
    pub variance: f64,
}

/// Splits `gradient` into consecutive `params_per_layer`-sized layers and
/// returns each layer's [`LayerGradStats`], in layer order. A trailing
/// partial chunk (gradient length not divisible by the layer width) is
/// summarized too, so callers never silently lose components.
///
/// Returns an empty vector when `params_per_layer` is 0 or the gradient
/// is empty — there is no layer structure to attribute.
pub fn layer_grad_stats(gradient: &[f64], params_per_layer: usize) -> Vec<LayerGradStats> {
    if params_per_layer == 0 || gradient.is_empty() {
        return Vec::new();
    }
    gradient
        .chunks(params_per_layer)
        .map(|chunk| {
            let n = chunk.len() as f64;
            let norm = chunk.iter().map(|g| g * g).sum::<f64>().sqrt();
            let mean = chunk.iter().sum::<f64>() / n;
            let variance = chunk.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / n;
            LayerGradStats { norm, variance }
        })
        .collect()
}

/// Writes each layer's gradient variance into `out` (resized to the
/// layer count) — the allocation-free-after-warmup variant the training
/// loop's recorder uses on its hot path.
pub fn layer_grad_variances_into(gradient: &[f64], params_per_layer: usize, out: &mut Vec<f64>) {
    out.clear();
    if params_per_layer == 0 || gradient.is_empty() {
        return;
    }
    for chunk in gradient.chunks(params_per_layer) {
        let n = chunk.len() as f64;
        let mean = chunk.iter().sum::<f64>() / n;
        out.push(chunk.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_layer_major_and_matches_hand_computed_stats() {
        // Two layers of width 3: [1,2,3] and [4,4,4].
        let grad = [1.0, 2.0, 3.0, 4.0, 4.0, 4.0];
        let stats = layer_grad_stats(&grad, 3);
        assert_eq!(stats.len(), 2);
        assert!((stats[0].norm - 14.0f64.sqrt()).abs() < 1e-12);
        assert!((stats[0].variance - 2.0 / 3.0).abs() < 1e-12);
        assert!((stats[1].norm - 48.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(stats[1].variance, 0.0);
    }

    #[test]
    fn trailing_partial_layer_is_kept() {
        let grad = [1.0, -1.0, 2.0];
        let stats = layer_grad_stats(&grad, 2);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[1].norm, 2.0);
        assert_eq!(stats[1].variance, 0.0, "single-element chunk has no spread");
    }

    #[test]
    fn degenerate_inputs_yield_no_layers() {
        assert!(layer_grad_stats(&[], 4).is_empty());
        assert!(layer_grad_stats(&[1.0], 0).is_empty());
    }

    #[test]
    fn into_variant_agrees_and_reuses_its_buffer() {
        let grad: Vec<f64> = (0..12).map(|i| (i as f64 * 0.37).sin()).collect();
        let stats = layer_grad_stats(&grad, 4);
        let mut out = Vec::new();
        layer_grad_variances_into(&grad, 4, &mut out);
        assert_eq!(out.len(), stats.len());
        for (v, s) in out.iter().zip(&stats) {
            assert!((v - s.variance).abs() < 1e-15);
        }
        let cap = out.capacity();
        layer_grad_variances_into(&grad, 4, &mut out);
        assert_eq!(out.capacity(), cap, "steady-state call must not reallocate");
        layer_grad_variances_into(&[], 4, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn whole_gradient_variance_decomposes_over_uniform_layers() {
        // With equal-width layers, the all-components variance is the mean
        // of per-layer variances plus the variance of per-layer means —
        // sanity that chunking loses nothing.
        let grad: Vec<f64> = (0..20).map(|i| ((i * 7 % 13) as f64) / 13.0).collect();
        let ppl = 5;
        let stats = layer_grad_stats(&grad, ppl);
        let n = grad.len() as f64;
        let mean = grad.iter().sum::<f64>() / n;
        let total_var = grad.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / n;
        let layer_means: Vec<f64> = grad
            .chunks(ppl)
            .map(|c| c.iter().sum::<f64>() / ppl as f64)
            .collect();
        let mean_of_vars = stats.iter().map(|s| s.variance).sum::<f64>() / stats.len() as f64;
        let mm = layer_means.iter().sum::<f64>() / layer_means.len() as f64;
        let var_of_means =
            layer_means.iter().map(|m| (m - mm) * (m - mm)).sum::<f64>() / layer_means.len() as f64;
        assert!((total_var - (mean_of_vars + var_of_means)).abs() < 1e-12);
    }
}
