//! # plateau-grad
//!
//! Gradient engines for parameterized quantum circuits, replacing
//! PennyLane's autodiff in the DATE 2024 barren-plateau reproduction.
//!
//! Three interchangeable engines behind [`GradientEngine`]:
//!
//! - [`ParameterShift`] — exact; 2 circuit evaluations per single-qubit
//!   rotation parameter (4 for controlled rotations). The method the
//!   paper's PennyLane pipeline exposes. Full gradients fan the
//!   independent shifted evaluations across the `plateau_par` pool via
//!   [`expectation_many`].
//! - [`Adjoint`] — exact; one forward pass plus one backward sweep yields
//!   **all** parameters. The workhorse for the 200-circuit ensembles.
//! - [`FiniteDifference`] — approximate oracle used to validate the other
//!   two in property tests.
//!
//! # Examples
//!
//! ```
//! use plateau_grad::{Adjoint, GradientEngine, ParameterShift};
//! use plateau_sim::{Circuit, Observable};
//!
//! let mut c = Circuit::new(2)?;
//! c.rx(0)?.ry(1)?.cz(0, 1)?.ry(0)?;
//! let obs = Observable::global_cost(2);
//! let params = [0.3, -1.0, 0.7];
//!
//! let fast = Adjoint.gradient(&c, &params, &obs)?;
//! let slow = ParameterShift.gradient(&c, &params, &obs)?;
//! for (a, b) in fast.iter().zip(&slow) {
//!     assert!((a - b).abs() < 1e-10);
//! }
//! # Ok::<(), plateau_sim::SimError>(())
//! ```

// Index-based loops are the clearer idiom for the dense numeric kernels
// in this crate; the iterator rewrites clippy suggests obscure the math.
#![allow(clippy::needless_range_loop)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adjoint;
mod attribution;
mod batch;
mod engine;
mod finite_diff;
mod fisher;
mod hessian;
mod metric;
mod shift;

pub use adjoint::{adjoint_gradient_compiled, Adjoint};
pub use attribution::{layer_grad_stats, layer_grad_variances_into, LayerGradStats};
pub use batch::BatchExecutor;
pub use engine::{expectation, expectation_many, GradientEngine};
pub use finite_diff::FiniteDifference;
pub use fisher::{classical_fisher_information, quantum_fisher_information};
pub use hessian::{hessian, spectral_norm};
pub use metric::{metric_tensor, tangent_state};
pub use shift::ParameterShift;
