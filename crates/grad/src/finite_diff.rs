//! Central finite differences — the model-free oracle the exact engines are
//! validated against in the property-based test suite.

use crate::engine::{expectation, GradientEngine};
use plateau_sim::{Circuit, Observable, SimError};

/// Central-difference gradient engine with step `eps`:
/// `∂E/∂θ ≈ (E(θ+ε) − E(θ−ε)) / 2ε`.
///
/// Truncation error is `O(ε²)`; the default `ε = 1e-6` balances truncation
/// against floating-point cancellation for `f64` cost values of order 1.
///
/// # Examples
///
/// ```
/// use plateau_grad::{FiniteDifference, GradientEngine};
/// use plateau_sim::{Circuit, Observable};
///
/// let mut c = Circuit::new(1)?;
/// c.ry(0)?;
/// let g = FiniteDifference::default()
///     .gradient(&c, &[0.8], &Observable::global_cost(1))?;
/// assert!((g[0] - 0.8f64.sin() / 2.0).abs() < 1e-8);
/// # Ok::<(), plateau_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiniteDifference {
    eps: f64,
}

impl FiniteDifference {
    /// Creates an engine with a custom step.
    ///
    /// # Panics
    ///
    /// Panics unless `eps` is positive and finite.
    pub fn new(eps: f64) -> FiniteDifference {
        assert!(eps.is_finite() && eps > 0.0, "step must be positive and finite");
        FiniteDifference { eps }
    }

    /// The step size.
    pub fn eps(&self) -> f64 {
        self.eps
    }
}

impl Default for FiniteDifference {
    fn default() -> Self {
        FiniteDifference { eps: 1e-6 }
    }
}

impl GradientEngine for FiniteDifference {
    fn gradient(
        &self,
        circuit: &Circuit,
        params: &[f64],
        obs: &Observable,
    ) -> Result<Vec<f64>, SimError> {
        circuit.check_params(params)?;
        plateau_obs::counter!("grad.gradients.finite_diff").inc();
        plateau_obs::counter!("grad.executions.finite_diff").add(2 * params.len() as u64);
        let mut grad = Vec::with_capacity(params.len());
        let mut work = params.to_vec();
        for i in 0..params.len() {
            work[i] = params[i] + self.eps;
            let plus = expectation(circuit, &work, obs)?;
            work[i] = params[i] - self.eps;
            let minus = expectation(circuit, &work, obs)?;
            work[i] = params[i];
            grad.push((plus - minus) / (2.0 * self.eps));
        }
        Ok(grad)
    }

    fn partial(
        &self,
        circuit: &Circuit,
        params: &[f64],
        obs: &Observable,
        index: usize,
    ) -> Result<f64, SimError> {
        circuit.check_params(params)?;
        if index >= params.len() {
            return Err(SimError::ParamOutOfRange {
                index,
                n_params: params.len(),
            });
        }
        plateau_obs::counter!("grad.executions.finite_diff").add(2);
        let mut work = params.to_vec();
        work[index] = params[index] + self.eps;
        let plus = expectation(circuit, &work, obs)?;
        work[index] = params[index] - self.eps;
        let minus = expectation(circuit, &work, obs)?;
        Ok((plus - minus) / (2.0 * self.eps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_step() {
        assert_eq!(FiniteDifference::default().eps(), 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_step() {
        let _ = FiniteDifference::new(0.0);
    }

    #[test]
    fn approximates_analytic_derivative() {
        let mut c = Circuit::new(1).unwrap();
        c.ry(0).unwrap();
        let obs = Observable::global_cost(1);
        let g = FiniteDifference::default().gradient(&c, &[1.2], &obs).unwrap();
        assert!((g[0] - 1.2f64.sin() / 2.0).abs() < 1e-8);
    }

    #[test]
    fn partial_matches_gradient_entry() {
        let mut c = Circuit::new(2).unwrap();
        c.rx(0).unwrap().ry(1).unwrap().cz(0, 1).unwrap();
        let obs = Observable::local_cost(2);
        let params = [0.4, -0.9];
        let fd = FiniteDifference::default();
        let full = fd.gradient(&c, &params, &obs).unwrap();
        for i in 0..2 {
            let p = fd.partial(&c, &params, &obs, i).unwrap();
            assert!((full[i] - p).abs() < 1e-12);
        }
        assert!(fd.partial(&c, &params, &obs, 7).is_err());
    }

    #[test]
    fn smaller_step_reduces_truncation_error() {
        let mut c = Circuit::new(1).unwrap();
        c.ry(0).unwrap();
        let obs = Observable::global_cost(1);
        let exact = 0.9f64.sin() / 2.0;
        let coarse = FiniteDifference::new(1e-2).gradient(&c, &[0.9], &obs).unwrap()[0];
        let fine = FiniteDifference::new(1e-5).gradient(&c, &[0.9], &obs).unwrap()[0];
        assert!((fine - exact).abs() < (coarse - exact).abs());
    }
}
