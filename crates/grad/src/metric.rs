//! Fubini–Study metric tensor — the geometric object behind the quantum
//! natural gradient (Stokes et al.; discussed as a barren-plateau
//! mitigation in the paper's related work §II-b).
//!
//! For a variational state `|ψ(θ)⟩`,
//!
//! ```text
//! G_ij = Re[ ⟨∂_i ψ | ∂_j ψ⟩ − ⟨∂_i ψ | ψ⟩ ⟨ψ | ∂_j ψ⟩ ]
//! ```
//!
//! The QNG step preconditions the gradient with `G⁻¹`, following the
//! steepest descent direction in state space rather than parameter space.
//!
//! # Examples
//!
//! ```
//! use plateau_grad::metric_tensor;
//! use plateau_sim::Circuit;
//!
//! // A single RY rotation: the Bloch-sphere line element gives G = [1/4].
//! let mut c = Circuit::new(1)?;
//! c.ry(0)?;
//! let g = metric_tensor(&c, &[0.7])?;
//! assert!((g[(0, 0)] - 0.25).abs() < 1e-12);
//! # Ok::<(), plateau_sim::SimError>(())
//! ```

use plateau_linalg::{RMatrix, C64};
use plateau_sim::{Circuit, SimError, State};

/// Computes the (generally unnormalized) tangent vector
/// `|∂ψ/∂θ_index⟩ = Σ_k U_N ⋯ (∂U_k/∂θ) ⋯ U_1 |0⟩`, summing over every op
/// that references the parameter.
///
/// # Errors
///
/// Returns [`SimError::ParamOutOfRange`] for a bad index and propagates
/// execution errors.
pub fn tangent_state(
    circuit: &Circuit,
    params: &[f64],
    index: usize,
) -> Result<State, SimError> {
    circuit.check_params(params)?;
    if index >= circuit.n_params() {
        return Err(SimError::ParamOutOfRange {
            index,
            n_params: circuit.n_params(),
        });
    }

    let dim = 1usize << circuit.n_qubits();
    let mut total = vec![C64::ZERO; dim];
    for (k, op) in circuit.ops().iter().enumerate() {
        if op.free_param() != Some(index) {
            continue;
        }
        // One derivative insertion at position k.
        let mut state = State::zero(circuit.n_qubits());
        for (j, other) in circuit.ops().iter().enumerate() {
            if j == k {
                other.apply_derivative(&mut state, params)?;
            } else {
                other.apply(&mut state, params)?;
            }
        }
        for (t, s) in total.iter_mut().zip(state.amplitudes()) {
            *t += *s;
        }
    }
    State::from_amplitudes_unnormalized(total)
}

/// Computes the full `P × P` Fubini–Study metric tensor at `params`.
///
/// Cost: `P` tangent-state constructions of `O(G)` gate applications each,
/// plus `O(P² · 2^n)` inner products.
///
/// # Errors
///
/// Propagates parameter-count and execution errors.
pub fn metric_tensor(circuit: &Circuit, params: &[f64]) -> Result<RMatrix, SimError> {
    circuit.check_params(params)?;
    let p = circuit.n_params();
    let psi = circuit.run(params)?;
    let tangents: Vec<State> = (0..p)
        .map(|i| tangent_state(circuit, params, i))
        .collect::<Result<_, _>>()?;

    let inner = |a: &State, b: &State| -> C64 {
        a.amplitudes()
            .iter()
            .zip(b.amplitudes())
            .map(|(x, y)| x.conj() * *y)
            .sum()
    };

    let berry: Vec<C64> = tangents.iter().map(|t| inner(t, &psi)).collect();
    let mut g = RMatrix::zeros(p.max(1), p.max(1));
    for i in 0..p {
        for j in i..p {
            let overlap = inner(&tangents[i], &tangents[j]);
            let correction = berry[i] * berry[j].conj();
            let val = (overlap - correction).re;
            g[(i, j)] = val;
            g[(j, i)] = val;
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use plateau_sim::Observable;

    fn finite_diff_tangent(circuit: &Circuit, params: &[f64], i: usize, eps: f64) -> Vec<C64> {
        let mut plus = params.to_vec();
        plus[i] += eps;
        let mut minus = params.to_vec();
        minus[i] -= eps;
        let sp = circuit.run(&plus).unwrap();
        let sm = circuit.run(&minus).unwrap();
        sp.amplitudes()
            .iter()
            .zip(sm.amplitudes())
            .map(|(a, b)| (*a - *b) / (2.0 * eps))
            .collect()
    }

    #[test]
    fn single_ry_metric_is_quarter() {
        let mut c = Circuit::new(1).unwrap();
        c.ry(0).unwrap();
        for theta in [0.0, 0.9, -2.0] {
            let g = metric_tensor(&c, &[theta]).unwrap();
            assert!((g[(0, 0)] - 0.25).abs() < 1e-12, "θ={theta}");
        }
    }

    #[test]
    fn rx_then_ry_block_metric() {
        // Known PennyLane example: ψ = RY(b) RX(a) |0⟩ has
        // G = diag(1/4, cos²(a)/4).
        let mut c = Circuit::new(1).unwrap();
        c.rx(0).unwrap().ry(0).unwrap();
        let a = 0.63;
        let g = metric_tensor(&c, &[a, -1.1]).unwrap();
        assert!((g[(0, 0)] - 0.25).abs() < 1e-10);
        assert!((g[(1, 1)] - a.cos().powi(2) / 4.0).abs() < 1e-10);
        assert!(g[(0, 1)].abs() < 1e-10);
    }

    #[test]
    fn tangent_matches_finite_difference() {
        let mut c = Circuit::new(2).unwrap();
        c.rx(0).unwrap().ry(1).unwrap().cz(0, 1).unwrap().rz(0).unwrap();
        let params = [0.4, -0.8, 1.3];
        for i in 0..3 {
            let analytic = tangent_state(&c, &params, i).unwrap();
            let fd = finite_diff_tangent(&c, &params, i, 1e-6);
            for (a, b) in analytic.amplitudes().iter().zip(fd.iter()) {
                assert!(a.approx_eq(*b, 1e-7), "param {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn metric_matches_finite_difference_construction() {
        let mut c = Circuit::new(2).unwrap();
        c.ry(0).unwrap().ry(1).unwrap().cz(0, 1).unwrap().rx(0).unwrap().rx(1).unwrap();
        let params = [0.3, 0.7, -0.4, 1.2];
        let g = metric_tensor(&c, &params).unwrap();

        let psi = c.run(&params).unwrap();
        let eps = 1e-5;
        let tangents: Vec<Vec<C64>> =
            (0..4).map(|i| finite_diff_tangent(&c, &params, i, eps)).collect();
        let inner = |a: &[C64], b: &[C64]| -> C64 {
            a.iter().zip(b.iter()).map(|(x, y)| x.conj() * *y).sum()
        };
        for i in 0..4 {
            for j in 0..4 {
                let overlap = inner(&tangents[i], &tangents[j]);
                let bi = inner(&tangents[i], psi.amplitudes());
                let bj = inner(psi.amplitudes(), &tangents[j]);
                let expected = (overlap - bi * bj).re;
                assert!(
                    (g[(i, j)] - expected).abs() < 1e-6,
                    "G[{i}][{j}]: {} vs {expected}",
                    g[(i, j)]
                );
            }
        }
    }

    #[test]
    fn metric_is_symmetric_psd_diagonal_bounded() {
        let mut c = Circuit::new(3).unwrap();
        for q in 0..3 {
            c.rx(q).unwrap();
            c.ry(q).unwrap();
        }
        c.cz(0, 1).unwrap();
        c.cz(1, 2).unwrap();
        let params: Vec<f64> = (0..6).map(|i| (i as f64) * 0.43 - 1.0).collect();
        let g = metric_tensor(&c, &params).unwrap();
        for i in 0..6 {
            // Pauli-rotation diagonal entries are Var(G)/4 ≤ 1/4.
            assert!(g[(i, i)] >= -1e-12 && g[(i, i)] <= 0.25 + 1e-12);
            for j in 0..6 {
                assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gradient_relates_to_tangent_state() {
        // dC/dθ = 2 Re⟨ψ|H|∂ψ⟩ — cross-check tangent against adjoint.
        use crate::{Adjoint, GradientEngine};
        let mut c = Circuit::new(2).unwrap();
        c.ry(0).unwrap().cz(0, 1).unwrap().rx(1).unwrap();
        let params = [0.9, -0.6];
        let obs = Observable::global_cost(2);
        let psi = c.run(&params).unwrap();
        let h_psi = obs.apply_raw(&psi).unwrap();
        let grad = Adjoint.gradient(&c, &params, &obs).unwrap();
        for i in 0..2 {
            let t = tangent_state(&c, &params, i).unwrap();
            let ip: C64 = h_psi
                .iter()
                .zip(t.amplitudes())
                .map(|(a, b)| a.conj() * *b)
                .sum();
            assert!((2.0 * ip.re - grad[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn error_paths() {
        let mut c = Circuit::new(1).unwrap();
        c.rx(0).unwrap();
        assert!(tangent_state(&c, &[0.1], 5).is_err());
        assert!(tangent_state(&c, &[], 0).is_err());
        assert!(metric_tensor(&c, &[]).is_err());
    }
}
