//! The service's wire protocol: typed requests, their JSON codec, and
//! structured errors.
//!
//! Every compute endpoint takes a JSON body and returns a JSON body. The
//! codec is **canonical and closed under round-trip**: for any valid
//! request `r`, `parse(path, serialize(r))` yields a request equal to
//! `r`, and `serialize(parse(path, s))` is byte-identical to `s` once
//! `s` itself is in canonical form (fields in the documented order,
//! compact separators). The fuzz harness pins both fixed points and
//! additionally requires that arbitrary byte mutations of a valid body
//! produce a structured [`ProtocolError`] — never a panic.
//!
//! # Circuit input
//!
//! Circuits arrive either as OpenQASM 2.0 text (`{"qasm": "..."}`, the
//! same dialect `plateau-sim`'s importer speaks) or as an explicit op
//! list:
//!
//! ```json
//! {"qubits": 2, "ops": [
//!   {"gate": "h",  "qubits": [0]},
//!   {"gate": "ry", "qubits": [1]},
//!   {"gate": "rz", "qubits": [1], "angle": 0.25},
//!   {"gate": "cz", "qubits": [0, 1]}
//! ]}
//! ```
//!
//! A rotation **without** an `"angle"` is a free (trainable) parameter;
//! free parameters are numbered in op order, exactly like
//! [`plateau_sim::Circuit`]'s builder allocates them, and are fed from
//! the request's `"params"` array. A rotation **with** an `"angle"` is a
//! baked-in constant.
//!
//! The spec deliberately stays *unbuilt* after parsing — the raw QASM
//! text or op-list JSON is what the compiled-circuit cache hashes, so a
//! cache hit skips circuit construction and fusion compilation entirely
//! (see `cache.rs`).

use plateau_obs::json::Json;
use plateau_sim::{
    Circuit, FixedGate, Observable, Op, Param, PauliString, RotationGate, SimError,
    TwoQubitRotationGate,
};

/// Protocol-level cap on request parameter vectors.
pub const MAX_PARAMS: usize = 4096;
/// Protocol-level cap on op-list length.
pub const MAX_OPS: usize = 65_536;
/// Largest integer the codec accepts where an exact `u64`/`usize` is
/// required (JSON numbers are `f64`; above 2^53 they lose integrality).
pub const MAX_EXACT_INT: f64 = 9_007_199_254_740_992.0; // 2^53

/// A structured request failure, serialized as
/// `{"error": {"code": ..., "message": ...}}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// Stable machine-readable error class.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ProtocolError {
    /// A malformed-body error (`bad_json`).
    pub fn bad_json(message: impl Into<String>) -> ProtocolError {
        ProtocolError {
            code: "bad_json",
            message: message.into(),
        }
    }

    /// A structurally valid but semantically invalid request
    /// (`invalid_request`).
    pub fn invalid(message: impl Into<String>) -> ProtocolError {
        ProtocolError {
            code: "invalid_request",
            message: message.into(),
        }
    }

    /// The JSON error body.
    pub fn to_json(&self) -> Json {
        Json::obj([(
            "error",
            Json::obj([
                ("code", Json::str(self.code)),
                ("message", Json::str(&self.message)),
            ]),
        )])
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ProtocolError {}

impl From<SimError> for ProtocolError {
    fn from(e: SimError) -> ProtocolError {
        ProtocolError::invalid(e.to_string())
    }
}

/// A circuit as it appears on the wire: QASM text or an op list, kept
/// raw so the cache can hash it without building anything.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitSpec {
    /// OpenQASM 2.0 source text.
    Qasm(String),
    /// Explicit op list (validated at parse time, built on demand).
    Ops {
        /// Register width.
        n_qubits: usize,
        /// The validated `Json::Arr` of op objects, kept verbatim for
        /// hashing and canonical re-serialization.
        ops: Json,
    },
}

impl CircuitSpec {
    /// The string the compiled-circuit cache keys on. Distinct specs map
    /// to distinct tokens (the leading tag keeps QASM text from
    /// colliding with op-list JSON).
    pub fn cache_token(&self) -> String {
        match self {
            CircuitSpec::Qasm(text) => format!("q:{text}"),
            CircuitSpec::Ops { n_qubits, ops } => format!("o:{n_qubits}:{ops}"),
        }
    }

    /// The canonical JSON form.
    pub fn to_json(&self) -> Json {
        match self {
            CircuitSpec::Qasm(text) => Json::obj([("qasm", Json::str(text.clone()))]),
            CircuitSpec::Ops { n_qubits, ops } => Json::obj([
                ("qubits", Json::from(*n_qubits)),
                ("ops", ops.clone()),
            ]),
        }
    }

    /// Parses and validates a circuit spec object.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on unknown fields, bad shapes, unknown
    /// gate names, or non-finite angles.
    pub fn from_json(v: &Json) -> Result<CircuitSpec, ProtocolError> {
        let pairs = v
            .as_obj()
            .ok_or_else(|| ProtocolError::invalid("\"circuit\" must be an object"))?;
        let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        if keys == ["qasm"] {
            let text = pairs[0]
                .1
                .as_str()
                .ok_or_else(|| ProtocolError::invalid("\"qasm\" must be a string"))?;
            return Ok(CircuitSpec::Qasm(text.to_string()));
        }
        if keys == ["qubits", "ops"] {
            let n_qubits = json_usize(&pairs[0].1, "circuit.qubits", plateau_sim::MAX_QUBITS)?;
            if n_qubits == 0 {
                return Err(ProtocolError::invalid("circuit.qubits must be at least 1"));
            }
            let ops = &pairs[1].1;
            let items = ops
                .as_arr()
                .ok_or_else(|| ProtocolError::invalid("circuit.ops must be an array"))?;
            if items.len() > MAX_OPS {
                return Err(ProtocolError::invalid(format!(
                    "circuit.ops has {} entries (limit {MAX_OPS})",
                    items.len()
                )));
            }
            for (i, op) in items.iter().enumerate() {
                validate_op(op, n_qubits)
                    .map_err(|e| ProtocolError::invalid(format!("circuit.ops[{i}]: {}", e.message)))?;
            }
            return Ok(CircuitSpec::Ops {
                n_qubits,
                ops: ops.clone(),
            });
        }
        Err(ProtocolError::invalid(
            "\"circuit\" must be {\"qasm\": ...} or {\"qubits\": ..., \"ops\": [...]}",
        ))
    }

    /// Builds the simulator circuit this spec describes.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] when the QASM fails to parse or an op is
    /// invalid for the register.
    pub fn build(&self) -> Result<Circuit, ProtocolError> {
        match self {
            CircuitSpec::Qasm(text) => plateau_sim::qasm::from_qasm(text)
                .map_err(|e| ProtocolError::invalid(format!("qasm: {e}"))),
            CircuitSpec::Ops { n_qubits, ops } => {
                let mut circuit = Circuit::new(*n_qubits)?;
                for op in ops.as_arr().unwrap_or(&[]) {
                    push_op(&mut circuit, op)?;
                }
                Ok(circuit)
            }
        }
    }

    /// Renders an existing circuit as an op-list spec — the inverse of
    /// [`CircuitSpec::build`] for circuits whose free parameters were
    /// allocated in op order (every circuit the builder API can produce).
    pub fn from_circuit(circuit: &Circuit) -> CircuitSpec {
        let ops: Vec<Json> = circuit.ops().iter().map(op_to_json).collect();
        CircuitSpec::Ops {
            n_qubits: circuit.n_qubits(),
            ops: Json::Arr(ops),
        }
    }
}

fn fixed_gate_name(gate: FixedGate) -> &'static str {
    match gate {
        FixedGate::X => "x",
        FixedGate::Y => "y",
        FixedGate::Z => "z",
        FixedGate::H => "h",
        FixedGate::S => "s",
        FixedGate::Sdg => "sdg",
        FixedGate::T => "t",
        FixedGate::Tdg => "tdg",
        FixedGate::Sx => "sx",
        FixedGate::Cz => "cz",
        FixedGate::Cx => "cx",
        FixedGate::Cy => "cy",
        FixedGate::Swap => "swap",
    }
}

fn parse_fixed_gate(name: &str) -> Option<FixedGate> {
    Some(match name {
        "x" => FixedGate::X,
        "y" => FixedGate::Y,
        "z" => FixedGate::Z,
        "h" => FixedGate::H,
        "s" => FixedGate::S,
        "sdg" => FixedGate::Sdg,
        "t" => FixedGate::T,
        "tdg" => FixedGate::Tdg,
        "sx" => FixedGate::Sx,
        "cz" => FixedGate::Cz,
        "cx" => FixedGate::Cx,
        "cy" => FixedGate::Cy,
        "swap" => FixedGate::Swap,
        _ => return None,
    })
}

fn rotation_name(gate: RotationGate) -> &'static str {
    match gate {
        RotationGate::Rx => "rx",
        RotationGate::Ry => "ry",
        RotationGate::Rz => "rz",
        RotationGate::Phase => "phase",
    }
}

fn parse_rotation(name: &str) -> Option<RotationGate> {
    Some(match name {
        "rx" => RotationGate::Rx,
        "ry" => RotationGate::Ry,
        "rz" => RotationGate::Rz,
        "phase" => RotationGate::Phase,
        _ => return None,
    })
}

fn controlled_name(gate: RotationGate) -> &'static str {
    match gate {
        RotationGate::Rx => "crx",
        RotationGate::Ry => "cry",
        RotationGate::Rz => "crz",
        RotationGate::Phase => "cphase",
    }
}

fn parse_controlled(name: &str) -> Option<RotationGate> {
    Some(match name {
        "crx" => RotationGate::Rx,
        "cry" => RotationGate::Ry,
        "crz" => RotationGate::Rz,
        "cphase" => RotationGate::Phase,
        _ => return None,
    })
}

fn two_qubit_name(gate: TwoQubitRotationGate) -> &'static str {
    match gate {
        TwoQubitRotationGate::Rxx => "rxx",
        TwoQubitRotationGate::Ryy => "ryy",
        TwoQubitRotationGate::Rzz => "rzz",
    }
}

fn parse_two_qubit(name: &str) -> Option<TwoQubitRotationGate> {
    Some(match name {
        "rxx" => TwoQubitRotationGate::Rxx,
        "ryy" => TwoQubitRotationGate::Ryy,
        "rzz" => TwoQubitRotationGate::Rzz,
        _ => return None,
    })
}

fn op_to_json(op: &Op) -> Json {
    let (name, qubits, param): (&str, Vec<usize>, Option<&Param>) = match op {
        Op::Fixed { gate, qubits } => (fixed_gate_name(*gate), qubits.clone(), None),
        Op::Rotation { gate, qubit, param } => (rotation_name(*gate), vec![*qubit], Some(param)),
        Op::ControlledRotation {
            gate,
            control,
            target,
            param,
        } => (controlled_name(*gate), vec![*control, *target], Some(param)),
        Op::TwoQubitRotation {
            gate,
            first,
            second,
            param,
        } => (two_qubit_name(*gate), vec![*first, *second], Some(param)),
    };
    let mut pairs = vec![
        ("gate".to_string(), Json::str(name)),
        (
            "qubits".to_string(),
            Json::Arr(qubits.into_iter().map(Json::from).collect()),
        ),
    ];
    if let Some(Param::Bound(angle)) = param {
        pairs.push(("angle".to_string(), Json::Num(*angle)));
    }
    Json::Obj(pairs)
}

/// Shape-checks one op object: known gate, correctly-arity'd in-range
/// qubit list, finite angle when present, `angle` only on rotations.
fn validate_op(v: &Json, n_qubits: usize) -> Result<(), ProtocolError> {
    let pairs = v
        .as_obj()
        .ok_or_else(|| ProtocolError::invalid("op must be an object"))?;
    let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
    if keys != ["gate", "qubits"] && keys != ["gate", "qubits", "angle"] {
        return Err(ProtocolError::invalid(
            "op must be {\"gate\", \"qubits\"[, \"angle\"]} in that order",
        ));
    }
    let name = pairs[0]
        .1
        .as_str()
        .ok_or_else(|| ProtocolError::invalid("gate must be a string"))?;
    let qubits = pairs[1]
        .1
        .as_arr()
        .ok_or_else(|| ProtocolError::invalid("qubits must be an array"))?;
    let mut qs = Vec::with_capacity(qubits.len());
    for q in qubits {
        qs.push(json_usize(q, "qubit index", n_qubits.saturating_sub(1))?);
    }
    let has_angle = keys.len() == 3;
    if has_angle {
        let angle = pairs[2]
            .1
            .as_f64()
            .ok_or_else(|| ProtocolError::invalid("angle must be a number"))?;
        if !angle.is_finite() {
            return Err(ProtocolError::invalid("angle must be finite"));
        }
    }
    let arity_of = |expected: usize| -> Result<(), ProtocolError> {
        if qs.len() != expected {
            return Err(ProtocolError::invalid(format!(
                "gate {name:?} takes {expected} qubit(s), got {}",
                qs.len()
            )));
        }
        if expected == 2 && qs[0] == qs[1] {
            return Err(ProtocolError::invalid(format!(
                "gate {name:?} operands must be distinct"
            )));
        }
        Ok(())
    };
    if let Some(gate) = parse_fixed_gate(name) {
        if has_angle {
            return Err(ProtocolError::invalid(format!(
                "gate {name:?} takes no angle"
            )));
        }
        return arity_of(gate.arity());
    }
    if parse_rotation(name).is_some() {
        return arity_of(1);
    }
    if parse_controlled(name).is_some() || parse_two_qubit(name).is_some() {
        return arity_of(2);
    }
    Err(ProtocolError::invalid(format!("unknown gate {name:?}")))
}

/// Appends one validated op object to the circuit under construction.
fn push_op(circuit: &mut Circuit, v: &Json) -> Result<(), ProtocolError> {
    let pairs = v.as_obj().ok_or_else(|| ProtocolError::invalid("op must be an object"))?;
    let name = pairs
        .first()
        .and_then(|(_, v)| v.as_str())
        .ok_or_else(|| ProtocolError::invalid("gate must be a string"))?;
    let qubits: Vec<usize> = pairs
        .get(1)
        .and_then(|(_, v)| v.as_arr())
        .map(|items| items.iter().filter_map(|q| q.as_f64()).map(|q| q as usize).collect())
        .unwrap_or_default();
    let angle = pairs.get(2).and_then(|(_, v)| v.as_f64());
    if let Some(gate) = parse_fixed_gate(name) {
        circuit.push_fixed(gate, &qubits)?;
    } else if let Some(gate) = parse_rotation(name) {
        match angle {
            Some(a) => circuit.push_rotation_const(gate, qubits[0], a)?,
            None => circuit.push_rotation(gate, qubits[0])?,
        };
    } else if let Some(gate) = parse_controlled(name) {
        circuit.push_controlled_rotation(gate, qubits[0], qubits[1])?;
        if let Some(a) = angle {
            circuit.bind_last_param(a)?;
        }
    } else if let Some(gate) = parse_two_qubit(name) {
        circuit.push_two_qubit_rotation(gate, qubits[0], qubits[1])?;
        if let Some(a) = angle {
            circuit.bind_last_param(a)?;
        }
    } else {
        return Err(ProtocolError::invalid(format!("unknown gate {name:?}")));
    }
    Ok(())
}

/// The cost operator a simulate/gradient request differentiates.
#[derive(Debug, Clone, PartialEq)]
pub enum ObservableSpec {
    /// `|0…0⟩⟨0…0|` — the paper's global cost.
    Global,
    /// The qubit-averaged local cost.
    Local,
    /// A single Pauli string, e.g. `"ZZI"` (length = register width).
    Pauli(String),
    /// A weighted Pauli sum: `[[coefficient, string], ...]`.
    PauliSum(Vec<(f64, String)>),
}

impl ObservableSpec {
    /// The canonical JSON form.
    pub fn to_json(&self) -> Json {
        match self {
            ObservableSpec::Global => Json::str("global"),
            ObservableSpec::Local => Json::str("local"),
            ObservableSpec::Pauli(s) => Json::obj([("pauli", Json::str(s.clone()))]),
            ObservableSpec::PauliSum(terms) => Json::obj([(
                "pauli_sum",
                Json::Arr(
                    terms
                        .iter()
                        .map(|(c, s)| Json::Arr(vec![Json::Num(*c), Json::str(s.clone())]))
                        .collect(),
                ),
            )]),
        }
    }

    /// Parses an observable spec.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] for unknown names or malformed terms.
    pub fn from_json(v: &Json) -> Result<ObservableSpec, ProtocolError> {
        match v {
            Json::Str(s) if s == "global" => Ok(ObservableSpec::Global),
            Json::Str(s) if s == "local" => Ok(ObservableSpec::Local),
            Json::Str(s) => Err(ProtocolError::invalid(format!(
                "unknown observable {s:?} (global|local|{{\"pauli\"}}|{{\"pauli_sum\"}})"
            ))),
            Json::Obj(pairs) if pairs.len() == 1 && pairs[0].0 == "pauli" => {
                let s = pairs[0]
                    .1
                    .as_str()
                    .ok_or_else(|| ProtocolError::invalid("pauli must be a string"))?;
                Ok(ObservableSpec::Pauli(s.to_string()))
            }
            Json::Obj(pairs) if pairs.len() == 1 && pairs[0].0 == "pauli_sum" => {
                let items = pairs[0]
                    .1
                    .as_arr()
                    .ok_or_else(|| ProtocolError::invalid("pauli_sum must be an array"))?;
                if items.is_empty() || items.len() > 256 {
                    return Err(ProtocolError::invalid(
                        "pauli_sum needs 1..=256 [coefficient, string] terms",
                    ));
                }
                let mut terms = Vec::with_capacity(items.len());
                for item in items {
                    let pair = item
                        .as_arr()
                        .filter(|a| a.len() == 2)
                        .ok_or_else(|| {
                            ProtocolError::invalid("each pauli_sum term is [coefficient, string]")
                        })?;
                    let c = pair[0]
                        .as_f64()
                        .filter(|c| c.is_finite())
                        .ok_or_else(|| ProtocolError::invalid("coefficient must be finite"))?;
                    let s = pair[1]
                        .as_str()
                        .ok_or_else(|| ProtocolError::invalid("pauli string must be a string"))?;
                    terms.push((c, s.to_string()));
                }
                Ok(ObservableSpec::PauliSum(terms))
            }
            _ => Err(ProtocolError::invalid(
                "observable must be \"global\", \"local\", {\"pauli\"} or {\"pauli_sum\"}",
            )),
        }
    }

    /// Builds the observable for an `n_qubits`-wide register.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] when a Pauli string's width disagrees
    /// with the circuit.
    pub fn build(&self, n_qubits: usize) -> Result<Observable, ProtocolError> {
        let check_width = |s: &PauliString| -> Result<(), ProtocolError> {
            if s.n_qubits() != n_qubits {
                return Err(ProtocolError::invalid(format!(
                    "pauli string is {} qubits wide but the circuit has {n_qubits}",
                    s.n_qubits()
                )));
            }
            Ok(())
        };
        match self {
            ObservableSpec::Global => Ok(Observable::global_cost(n_qubits)),
            ObservableSpec::Local => Ok(Observable::local_cost(n_qubits)),
            ObservableSpec::Pauli(s) => {
                let p = PauliString::parse(s)?;
                check_width(&p)?;
                Ok(Observable::pauli(p)?)
            }
            ObservableSpec::PauliSum(terms) => {
                let mut built = Vec::with_capacity(terms.len());
                for (c, s) in terms {
                    let p = PauliString::parse(s)?;
                    check_width(&p)?;
                    built.push((*c, p));
                }
                Ok(Observable::pauli_sum(built)?)
            }
        }
    }
}

/// Gradient engine selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineSpec {
    /// Adjoint differentiation (the fast default).
    #[default]
    Adjoint,
    /// The parameter-shift rule.
    ParameterShift,
}

impl EngineSpec {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            EngineSpec::Adjoint => "adjoint",
            EngineSpec::ParameterShift => "parameter-shift",
        }
    }

    /// Inverse of [`EngineSpec::name`].
    pub fn parse(s: &str) -> Result<EngineSpec, ProtocolError> {
        match s {
            "adjoint" => Ok(EngineSpec::Adjoint),
            "parameter-shift" => Ok(EngineSpec::ParameterShift),
            other => Err(ProtocolError::invalid(format!(
                "unknown engine {other:?} (adjoint|parameter-shift)"
            ))),
        }
    }
}

/// `POST /simulate` — one expectation evaluation, optionally with
/// shot-sampled measurement counts.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateRequest {
    /// The circuit.
    pub circuit: CircuitSpec,
    /// Free-parameter values (length must match the built circuit).
    pub params: Vec<f64>,
    /// Cost operator.
    pub observable: ObservableSpec,
    /// Seed for shot sampling (ignored when `shots == 0`).
    pub seed: u64,
    /// Measurement shots; `0` means exact expectation only.
    pub shots: u64,
}

/// `POST /gradient` — the full gradient of the cost.
#[derive(Debug, Clone, PartialEq)]
pub struct GradientRequest {
    /// The circuit.
    pub circuit: CircuitSpec,
    /// Free-parameter values.
    pub params: Vec<f64>,
    /// Cost operator.
    pub observable: ObservableSpec,
    /// Differentiation engine.
    pub engine: EngineSpec,
    /// Reserved for stochastic engines; echoed into nothing today but
    /// part of the canonical form so clients can always send it.
    pub seed: u64,
}

/// `POST /variance-scan` — a (small) Fig-5a-style variance scan.
#[derive(Debug, Clone, PartialEq)]
pub struct VarianceRequest {
    /// Qubit counts to sweep.
    pub qubits: Vec<usize>,
    /// Layers per circuit.
    pub layers: usize,
    /// Ensemble size per cell.
    pub circuits: usize,
    /// Initialization strategies (wire names, e.g. `"xavier_uniform"`).
    pub strategies: Vec<String>,
    /// `"global"` or `"local"` cost.
    pub cost: String,
    /// `"random"` (Eq. 2) or `"training"` (Eq. 3) ansatz family.
    pub ansatz: String,
    /// Master seed.
    pub seed: u64,
}

/// `POST /train` — a training run on the paper's ansatz.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainRequest {
    /// Register width.
    pub qubits: usize,
    /// Ansatz layers.
    pub layers: usize,
    /// Optimization steps.
    pub iterations: usize,
    /// Initialization strategy (wire name).
    pub strategy: String,
    /// Optimizer (`adam|gd|momentum|rmsprop|adagrad`).
    pub optimizer: String,
    /// Learning rate.
    pub lr: f64,
    /// Fan convention (`qubits|params|tensor`).
    pub fan: String,
    /// Parameter-draw seed.
    pub seed: u64,
}

/// A parsed request to any compute endpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `POST /simulate`.
    Simulate(SimulateRequest),
    /// `POST /gradient`.
    Gradient(GradientRequest),
    /// `POST /variance-scan`.
    VarianceScan(VarianceRequest),
    /// `POST /train`.
    Train(TrainRequest),
}

impl Request {
    /// The endpoint path this request targets.
    pub fn path(&self) -> &'static str {
        match self {
            Request::Simulate(_) => "/simulate",
            Request::Gradient(_) => "/gradient",
            Request::VarianceScan(_) => "/variance-scan",
            Request::Train(_) => "/train",
        }
    }

    /// Short metric-label name of the endpoint.
    pub fn endpoint(&self) -> &'static str {
        match self {
            Request::Simulate(_) => "simulate",
            Request::Gradient(_) => "gradient",
            Request::VarianceScan(_) => "variance_scan",
            Request::Train(_) => "train",
        }
    }

    /// The canonical JSON body.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Simulate(r) => Json::obj([
                ("circuit", r.circuit.to_json()),
                ("params", Json::Arr(r.params.iter().map(|&p| Json::Num(p)).collect())),
                ("observable", r.observable.to_json()),
                ("seed", Json::Num(r.seed as f64)),
                ("shots", Json::Num(r.shots as f64)),
            ]),
            Request::Gradient(r) => Json::obj([
                ("circuit", r.circuit.to_json()),
                ("params", Json::Arr(r.params.iter().map(|&p| Json::Num(p)).collect())),
                ("observable", r.observable.to_json()),
                ("engine", Json::str(r.engine.name())),
                ("seed", Json::Num(r.seed as f64)),
            ]),
            Request::VarianceScan(r) => Json::obj([
                ("qubits", Json::Arr(r.qubits.iter().map(|&q| Json::from(q)).collect())),
                ("layers", Json::from(r.layers)),
                ("circuits", Json::from(r.circuits)),
                (
                    "strategies",
                    Json::Arr(r.strategies.iter().map(|s| Json::str(s.clone())).collect()),
                ),
                ("cost", Json::str(r.cost.clone())),
                ("ansatz", Json::str(r.ansatz.clone())),
                ("seed", Json::Num(r.seed as f64)),
            ]),
            Request::Train(r) => Json::obj([
                ("qubits", Json::from(r.qubits)),
                ("layers", Json::from(r.layers)),
                ("iterations", Json::from(r.iterations)),
                ("strategy", Json::str(r.strategy.clone())),
                ("optimizer", Json::str(r.optimizer.clone())),
                ("lr", Json::Num(r.lr)),
                ("fan", Json::str(r.fan.clone())),
                ("seed", Json::Num(r.seed as f64)),
            ]),
        }
    }

    /// Canonical (compact) body text.
    pub fn serialize(&self) -> String {
        self.to_json().to_string()
    }

    /// Parses a body for `path`.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::bad_json`] when the body is not JSON,
    /// `invalid_request` for schema violations, and `not_found` when the
    /// path names no compute endpoint.
    pub fn parse(path: &str, body: &str) -> Result<Request, ProtocolError> {
        let v = Json::parse(body).map_err(|e| ProtocolError::bad_json(e.to_string()))?;
        Request::from_json(path, &v)
    }

    /// [`Request::parse`] over an already-parsed JSON tree.
    ///
    /// # Errors
    ///
    /// As for [`Request::parse`].
    pub fn from_json(path: &str, v: &Json) -> Result<Request, ProtocolError> {
        let fields = Fields::new(v)?;
        match path {
            "/simulate" => {
                let r = SimulateRequest {
                    circuit: CircuitSpec::from_json(fields.require("circuit")?)?,
                    params: fields.params()?,
                    observable: ObservableSpec::from_json(fields.require("observable")?)?,
                    seed: fields.u64_or("seed", 0)?,
                    shots: fields.u64_or("shots", 0)?,
                };
                fields.finish(&["circuit", "params", "observable", "seed", "shots"])?;
                Ok(Request::Simulate(r))
            }
            "/gradient" => {
                let engine = match fields.get("engine") {
                    None => EngineSpec::default(),
                    Some(v) => EngineSpec::parse(
                        v.as_str()
                            .ok_or_else(|| ProtocolError::invalid("engine must be a string"))?,
                    )?,
                };
                let r = GradientRequest {
                    circuit: CircuitSpec::from_json(fields.require("circuit")?)?,
                    params: fields.params()?,
                    observable: ObservableSpec::from_json(fields.require("observable")?)?,
                    engine,
                    seed: fields.u64_or("seed", 0)?,
                };
                fields.finish(&["circuit", "params", "observable", "engine", "seed"])?;
                Ok(Request::Gradient(r))
            }
            "/variance-scan" => {
                let qubits_json = fields.require("qubits")?;
                let items = qubits_json
                    .as_arr()
                    .ok_or_else(|| ProtocolError::invalid("qubits must be an array"))?;
                if items.is_empty() || items.len() > 16 {
                    return Err(ProtocolError::invalid("qubits needs 1..=16 entries"));
                }
                let mut qubits = Vec::with_capacity(items.len());
                for q in items {
                    let q = json_usize(q, "qubit count", plateau_sim::MAX_QUBITS)?;
                    if q == 0 {
                        return Err(ProtocolError::invalid("qubit counts must be nonzero"));
                    }
                    qubits.push(q);
                }
                let strategies_json = fields.require("strategies")?;
                let raw = strategies_json
                    .as_arr()
                    .ok_or_else(|| ProtocolError::invalid("strategies must be an array"))?;
                if raw.is_empty() || raw.len() > 16 {
                    return Err(ProtocolError::invalid("strategies needs 1..=16 entries"));
                }
                let mut strategies = Vec::with_capacity(raw.len());
                for s in raw {
                    let s = s
                        .as_str()
                        .ok_or_else(|| ProtocolError::invalid("strategies must be strings"))?;
                    parse_strategy(s)?; // validate eagerly; keep the wire name
                    strategies.push(s.to_string());
                }
                let cost = fields.str_or("cost", "global")?;
                if cost != "global" && cost != "local" {
                    return Err(ProtocolError::invalid("cost must be \"global\" or \"local\""));
                }
                let ansatz = fields.str_or("ansatz", "random")?;
                if ansatz != "random" && ansatz != "training" {
                    return Err(ProtocolError::invalid(
                        "ansatz must be \"random\" or \"training\"",
                    ));
                }
                let r = VarianceRequest {
                    qubits,
                    layers: fields.usize_in("layers", 1, 10_000)?,
                    circuits: fields.usize_in("circuits", 2, 100_000)?,
                    strategies,
                    cost,
                    ansatz,
                    seed: fields.u64_or("seed", 0)?,
                };
                fields.finish(&[
                    "qubits", "layers", "circuits", "strategies", "cost", "ansatz", "seed",
                ])?;
                Ok(Request::VarianceScan(r))
            }
            "/train" => {
                let strategy = fields.str_or("strategy", "xavier_normal")?;
                parse_strategy(&strategy)?;
                let optimizer = fields.str_or("optimizer", "adam")?;
                if !["adam", "gd", "momentum", "rmsprop", "adagrad"]
                    .contains(&optimizer.as_str())
                {
                    return Err(ProtocolError::invalid(format!(
                        "unknown optimizer {optimizer:?} (adam|gd|momentum|rmsprop|adagrad)"
                    )));
                }
                let fan = fields.str_or("fan", "tensor")?;
                parse_fan(&fan)?;
                let lr = match fields.get("lr") {
                    None => 0.1,
                    Some(v) => v
                        .as_f64()
                        .filter(|l| l.is_finite() && *l > 0.0)
                        .ok_or_else(|| ProtocolError::invalid("lr must be a positive number"))?,
                };
                let r = TrainRequest {
                    qubits: fields.usize_in("qubits", 1, plateau_sim::MAX_QUBITS)?,
                    layers: fields.usize_in("layers", 1, 10_000)?,
                    iterations: fields.usize_in("iterations", 1, 100_000)?,
                    strategy,
                    optimizer,
                    lr,
                    fan,
                    seed: fields.u64_or("seed", 7)?,
                };
                fields.finish(&[
                    "qubits", "layers", "iterations", "strategy", "optimizer", "lr", "fan", "seed",
                ])?;
                Ok(Request::Train(r))
            }
            other => Err(ProtocolError {
                code: "not_found",
                message: format!("no such endpoint {other:?}"),
            }),
        }
    }
}

/// Maps a wire strategy name to an [`plateau_core::init::InitStrategy`].
///
/// # Errors
///
/// Returns [`ProtocolError`] for names outside the paper set + the
/// `beta`/`zero` baselines.
pub fn parse_strategy(name: &str) -> Result<plateau_core::init::InitStrategy, ProtocolError> {
    use plateau_core::init::InitStrategy;
    match name {
        "zero" => return Ok(InitStrategy::Zero),
        // The Beta(2, 2) baseline the ablations use.
        "beta" => {
            return Ok(InitStrategy::BetaInit {
                alpha: 2.0,
                beta: 2.0,
            })
        }
        _ => {}
    }
    InitStrategy::PAPER_SET
        .iter()
        .copied()
        .find(|s| s.name() == name)
        .ok_or_else(|| {
            let names: Vec<&str> = InitStrategy::PAPER_SET.iter().map(|s| s.name()).collect();
            ProtocolError::invalid(format!(
                "unknown strategy {name:?} (one of {}|beta|zero)",
                names.join("|")
            ))
        })
}

/// Maps a wire fan name to a [`plateau_core::init::FanMode`].
///
/// # Errors
///
/// Returns [`ProtocolError`] for unknown names.
pub fn parse_fan(name: &str) -> Result<plateau_core::init::FanMode, ProtocolError> {
    use plateau_core::init::FanMode;
    match name {
        "qubits" => Ok(FanMode::Qubits),
        "params" => Ok(FanMode::ParamsPerLayer),
        "tensor" => Ok(FanMode::TensorShape),
        other => Err(ProtocolError::invalid(format!(
            "unknown fan mode {other:?} (qubits|params|tensor)"
        ))),
    }
}

/// Field accessor over a request object that tracks which keys are legal
/// so typos fail loudly instead of being silently ignored.
struct Fields<'a> {
    pairs: &'a [(String, Json)],
}

impl<'a> Fields<'a> {
    fn new(v: &'a Json) -> Result<Fields<'a>, ProtocolError> {
        v.as_obj()
            .map(|pairs| Fields { pairs })
            .ok_or_else(|| ProtocolError::invalid("request body must be a JSON object"))
    }

    fn get(&self, key: &str) -> Option<&'a Json> {
        self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn require(&self, key: &str) -> Result<&'a Json, ProtocolError> {
        self.get(key)
            .ok_or_else(|| ProtocolError::invalid(format!("missing required field {key:?}")))
    }

    fn params(&self) -> Result<Vec<f64>, ProtocolError> {
        let items = match self.get("params") {
            None => return Ok(Vec::new()),
            Some(v) => v
                .as_arr()
                .ok_or_else(|| ProtocolError::invalid("params must be an array of numbers"))?,
        };
        if items.len() > MAX_PARAMS {
            return Err(ProtocolError::invalid(format!(
                "params has {} entries (limit {MAX_PARAMS})",
                items.len()
            )));
        }
        items
            .iter()
            .map(|v| {
                v.as_f64()
                    .filter(|p| p.is_finite())
                    .ok_or_else(|| ProtocolError::invalid("params must be finite numbers"))
            })
            .collect()
    }

    fn u64_or(&self, key: &str, default: u64) -> Result<u64, ProtocolError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => {
                let x = v
                    .as_f64()
                    .filter(|x| x.is_finite() && *x >= 0.0 && x.fract() == 0.0 && *x <= MAX_EXACT_INT)
                    .ok_or_else(|| {
                        ProtocolError::invalid(format!("{key} must be an integer in [0, 2^53]"))
                    })?;
                Ok(x as u64)
            }
        }
    }

    fn usize_in(&self, key: &str, min: usize, max: usize) -> Result<usize, ProtocolError> {
        let v = self.require(key)?;
        let x = json_usize(v, key, max)?;
        if x < min {
            return Err(ProtocolError::invalid(format!("{key} must be at least {min}")));
        }
        Ok(x)
    }

    fn str_or(&self, key: &str, default: &str) -> Result<String, ProtocolError> {
        match self.get(key) {
            None => Ok(default.to_string()),
            Some(v) => v
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| ProtocolError::invalid(format!("{key} must be a string"))),
        }
    }

    /// Rejects any field outside `allowed`.
    fn finish(&self, allowed: &[&str]) -> Result<(), ProtocolError> {
        for (k, _) in self.pairs {
            if !allowed.contains(&k.as_str()) {
                return Err(ProtocolError::invalid(format!("unknown field {k:?}")));
            }
        }
        Ok(())
    }
}

/// A JSON number as an exact `usize` in `[0, max]`.
fn json_usize(v: &Json, what: &str, max: usize) -> Result<usize, ProtocolError> {
    let x = v
        .as_f64()
        .filter(|x| x.is_finite() && *x >= 0.0 && x.fract() == 0.0 && *x <= max as f64)
        .ok_or_else(|| {
            ProtocolError::invalid(format!("{what} must be an integer in [0, {max}]"))
        })?;
    Ok(x as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_circuit() -> Circuit {
        let mut c = Circuit::new(3).unwrap();
        c.h(0)
            .unwrap()
            .ry(1)
            .unwrap()
            .push_rotation_const(RotationGate::Rz, 2, 0.25)
            .unwrap()
            .cz(0, 1)
            .unwrap()
            .rxx(1, 2)
            .unwrap()
            .push_controlled_rotation(RotationGate::Rx, 0, 2)
            .unwrap();
        c
    }

    #[test]
    fn circuit_spec_round_trips_through_json_and_build() {
        let circuit = demo_circuit();
        let spec = CircuitSpec::from_circuit(&circuit);
        let parsed = CircuitSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(parsed, spec);
        let rebuilt = parsed.build().unwrap();
        assert_eq!(rebuilt, circuit, "ops round-trip must preserve the op list exactly");
    }

    #[test]
    fn request_codec_is_a_fixed_point() {
        let circuit = demo_circuit();
        let req = Request::Gradient(GradientRequest {
            circuit: CircuitSpec::from_circuit(&circuit),
            params: vec![0.1, -0.2],
            observable: ObservableSpec::PauliSum(vec![(0.5, "ZII".into()), (-1.0, "IXZ".into())]),
            engine: EngineSpec::ParameterShift,
            seed: 42,
        });
        let s1 = req.serialize();
        let parsed = Request::parse("/gradient", &s1).unwrap();
        assert_eq!(parsed, req);
        assert_eq!(parsed.serialize(), s1, "canonical form must be stable");
    }

    #[test]
    fn all_four_endpoints_parse_their_canonical_bodies() {
        let reqs = vec![
            Request::Simulate(SimulateRequest {
                circuit: CircuitSpec::Qasm("OPENQASM 2.0;".into()),
                params: vec![],
                observable: ObservableSpec::Global,
                seed: 7,
                shots: 100,
            }),
            Request::VarianceScan(VarianceRequest {
                qubits: vec![2, 4],
                layers: 10,
                circuits: 20,
                strategies: vec!["random".into(), "xavier_uniform".into()],
                cost: "global".into(),
                ansatz: "random".into(),
                seed: 3,
            }),
            Request::Train(TrainRequest {
                qubits: 3,
                layers: 2,
                iterations: 5,
                strategy: "random".into(),
                optimizer: "gd".into(),
                lr: 0.05,
                fan: "qubits".into(),
                seed: 1,
            }),
        ];
        for req in reqs {
            let s = req.serialize();
            let parsed = Request::parse(req.path(), &s).unwrap();
            assert_eq!(parsed, req);
            assert_eq!(parsed.serialize(), s);
        }
    }

    #[test]
    fn defaults_are_filled_in() {
        let r = Request::parse(
            "/simulate",
            r#"{"circuit":{"qubits":1,"ops":[{"gate":"rx","qubits":[0]}]},"params":[0.5],"observable":"local"}"#,
        )
        .unwrap();
        match r {
            Request::Simulate(s) => {
                assert_eq!(s.seed, 0);
                assert_eq!(s.shots, 0);
            }
            other => panic!("{other:?}"),
        }
        let r = Request::parse(
            "/train",
            r#"{"qubits":2,"layers":1,"iterations":3}"#,
        )
        .unwrap();
        match r {
            Request::Train(t) => {
                assert_eq!(t.strategy, "xavier_normal");
                assert_eq!(t.optimizer, "adam");
                assert_eq!(t.fan, "tensor");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn schema_violations_error_with_stable_codes() {
        let cases = [
            ("/simulate", "not json at all"),
            ("/simulate", r#"{"params":[1]}"#),
            ("/simulate", r#"{"circuit":{"qubits":1,"ops":[]},"observable":"global","bogus":1}"#),
            ("/simulate", r#"{"circuit":{"qubits":1,"ops":[{"gate":"warp","qubits":[0]}]},"observable":"global"}"#),
            ("/simulate", r#"{"circuit":{"qubits":1,"ops":[{"gate":"cz","qubits":[0,0]}]},"observable":"global"}"#),
            ("/simulate", r#"{"circuit":{"qubits":2,"ops":[{"gate":"h","qubits":[5]}]},"observable":"global"}"#),
            ("/simulate", r#"{"circuit":{"qubits":1,"ops":[]},"observable":"global","seed":-3}"#),
            ("/gradient", r#"{"circuit":{"qubits":1,"ops":[]},"observable":"global","engine":"magic"}"#),
            ("/variance-scan", r#"{"qubits":[],"layers":1,"circuits":2,"strategies":["random"]}"#),
            ("/variance-scan", r#"{"qubits":[2],"layers":1,"circuits":2,"strategies":["sorcery"]}"#),
            ("/train", r#"{"qubits":2,"layers":1,"iterations":0}"#),
            ("/train", r#"{"qubits":2,"layers":1,"iterations":3,"lr":-1}"#),
        ];
        for (path, body) in cases {
            let err = Request::parse(path, body)
                .expect_err(&format!("{path} {body} should fail"));
            assert!(
                err.code == "bad_json" || err.code == "invalid_request",
                "{path} {body}: {err:?}"
            );
        }
        assert_eq!(Request::parse("/nope", "{}").unwrap_err().code, "not_found");
    }

    #[test]
    fn qasm_specs_build_through_the_importer() {
        let circuit = demo_circuit();
        let qasm = plateau_sim::qasm::to_qasm(&circuit, &vec![0.0; circuit.n_params()]).unwrap();
        let spec = CircuitSpec::Qasm(qasm);
        let built = spec.build().unwrap();
        assert_eq!(built.n_qubits(), 3);
        assert_eq!(built.gate_count(), circuit.gate_count());
    }

    #[test]
    fn cache_tokens_distinguish_forms_and_contents() {
        let a = CircuitSpec::Qasm("OPENQASM 2.0;".into());
        let b = CircuitSpec::Qasm("OPENQASM 2.0; ".into());
        assert_ne!(a.cache_token(), b.cache_token());
        let c = CircuitSpec::from_circuit(&demo_circuit());
        assert_ne!(a.cache_token(), c.cache_token());
    }

    #[test]
    fn observable_width_mismatch_is_rejected_at_build() {
        let spec = ObservableSpec::Pauli("ZZ".into());
        assert!(spec.build(2).is_ok());
        assert!(spec.build(3).is_err());
    }
}
