//! Endpoint execution: a parsed [`Request`] in, a status + canonical
//! JSON body out.
//!
//! Handlers are pure with respect to the connection: they know nothing
//! about sockets or HTTP framing, which is what lets the determinism
//! tests call them straight through the public server as well as the
//! fuzz harness exercise the codec without a listener.
//!
//! **Determinism contract:** for a fixed request body (including its
//! seed) the response *body* is a pure function of the request — cache
//! state and worker threading must not leak into it. That is why the
//! cache disposition travels in the `X-Plateau-Cache` response *header*
//! (see `server.rs`) and never in the body, and why shot sampling uses a
//! per-request `StdRng` seeded only from the request.

use std::sync::Arc;

use plateau_grad::GradientEngine;
use plateau_obs::json::Json;
use plateau_rng::SeedableRng;
use plateau_sim::{sample_counts, Observable, State};

use crate::cache::{CachedCircuit, CircuitCache};
use crate::protocol::{
    parse_fan, parse_strategy, EngineSpec, GradientRequest, ProtocolError, Request,
    SimulateRequest, TrainRequest, VarianceRequest,
};

/// Execution limits the server imposes on top of protocol validation.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Largest register a request may simulate (a 2^n statevector is
    /// real memory — multi-tenant servers cap it well below
    /// [`plateau_sim::MAX_QUBITS`]).
    pub max_qubits: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits { max_qubits: 16 }
    }
}

/// The result of executing one request.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    /// HTTP status (200, or 4xx with an error body).
    pub status: u16,
    /// Response body.
    pub body: Json,
    /// `Some(true)` = compiled-cache hit, `Some(false)` = miss, `None`
    /// for endpoints that don't touch the cache.
    pub cache: Option<bool>,
}

impl ExecOutcome {
    fn ok(body: Json, cache: Option<bool>) -> ExecOutcome {
        ExecOutcome {
            status: 200,
            body,
            cache,
        }
    }

    fn err(e: &ProtocolError) -> ExecOutcome {
        let status = if e.code == "not_found" { 404 } else { 400 };
        ExecOutcome {
            status,
            body: e.to_json(),
            cache: None,
        }
    }
}

/// Executes `req` against the shared circuit cache.
pub fn execute(req: &Request, cache: &CircuitCache, limits: Limits) -> ExecOutcome {
    let result = match req {
        Request::Simulate(r) => simulate(r, cache, limits),
        Request::Gradient(r) => gradient(r, cache, limits),
        Request::VarianceScan(r) => variance_scan(r, limits),
        Request::Train(r) => train(r, limits),
    };
    match result {
        Ok(outcome) => outcome,
        Err(e) => ExecOutcome::err(&e),
    }
}

fn check_width(n_qubits: usize, limits: Limits) -> Result<(), ProtocolError> {
    if n_qubits > limits.max_qubits {
        return Err(ProtocolError::invalid(format!(
            "{n_qubits} qubits exceeds this server's limit of {}",
            limits.max_qubits
        )));
    }
    Ok(())
}

/// Fetches (or builds) the cached structure and runs the width check.
fn cached(
    spec: &crate::protocol::CircuitSpec,
    cache: &CircuitCache,
    limits: Limits,
) -> Result<(Arc<CachedCircuit>, bool), ProtocolError> {
    let (entry, hit) = cache.get_or_build(spec)?;
    check_width(entry.circuit.n_qubits(), limits)?;
    Ok((entry, hit))
}

/// Runs the circuit to its final state, preferring the fused compilation.
fn run_state(entry: &CachedCircuit, params: &[f64]) -> Result<State, ProtocolError> {
    match &entry.compiled {
        Some(compiled) => Ok(compiled.run(params)?),
        None => Ok(entry.circuit.run(params)?),
    }
}

fn simulate(
    r: &SimulateRequest,
    cache: &CircuitCache,
    limits: Limits,
) -> Result<ExecOutcome, ProtocolError> {
    let (entry, hit) = cached(&r.circuit, cache, limits)?;
    let n = entry.circuit.n_qubits();
    let obs = r.observable.build(n)?;
    let state = run_state(&entry, &r.params)?;
    let expectation = obs.expectation(&state)?;
    let mut pairs = vec![
        ("expectation".to_string(), Json::Num(expectation)),
        ("n_qubits".to_string(), Json::from(n)),
        ("n_params".to_string(), Json::from(entry.circuit.n_params())),
    ];
    if r.shots > 0 {
        if r.shots > 10_000_000 {
            return Err(ProtocolError::invalid("shots limit is 10000000"));
        }
        let mut rng = plateau_rng::rngs::StdRng::seed_from_u64(r.seed);
        let counts = sample_counts(&state, r.shots as usize, &mut rng);
        // BTreeMap iteration is ascending by basis index, so the counts
        // object has a deterministic key order.
        let counts_json: Vec<(String, Json)> = counts
            .into_iter()
            .map(|(basis, count)| {
                let bits: String = (0..n).rev().map(|q| if basis >> q & 1 == 1 { '1' } else { '0' }).collect();
                (bits, Json::from(count))
            })
            .collect();
        pairs.push(("counts".to_string(), Json::Obj(counts_json)));
    }
    Ok(ExecOutcome::ok(Json::Obj(pairs), Some(hit)))
}

fn gradient(
    r: &GradientRequest,
    cache: &CircuitCache,
    limits: Limits,
) -> Result<ExecOutcome, ProtocolError> {
    let (entry, hit) = cached(&r.circuit, cache, limits)?;
    let n = entry.circuit.n_qubits();
    let obs = r.observable.build(n)?;
    let grad = match (r.engine, &entry.compiled) {
        // The warm adjoint path: differentiate the cached compilation
        // directly, skipping the per-call fusion compile.
        (EngineSpec::Adjoint, Some(compiled)) => {
            plateau_grad::adjoint_gradient_compiled(compiled, &r.params, &obs)?
        }
        (EngineSpec::Adjoint, None) => {
            plateau_grad::Adjoint.gradient(&entry.circuit, &r.params, &obs)?
        }
        (EngineSpec::ParameterShift, _) => {
            plateau_grad::ParameterShift.gradient(&entry.circuit, &r.params, &obs)?
        }
    };
    let state = run_state(&entry, &r.params)?;
    let expectation = obs.expectation(&state)?;
    let body = Json::obj([
        ("expectation", Json::Num(expectation)),
        ("gradient", Json::Arr(grad.into_iter().map(Json::Num).collect())),
    ]);
    Ok(ExecOutcome::ok(body, Some(hit)))
}

fn variance_scan(r: &VarianceRequest, limits: Limits) -> Result<ExecOutcome, ProtocolError> {
    use plateau_core::{AnsatzKind, CostKind, VarianceConfig};
    for &q in &r.qubits {
        check_width(q, limits)?;
    }
    let strategies: Vec<_> = r
        .strategies
        .iter()
        .map(|s| parse_strategy(s))
        .collect::<Result<_, _>>()?;
    let config = VarianceConfig {
        qubit_counts: r.qubits.clone(),
        layers: r.layers,
        n_circuits: r.circuits,
        cost: if r.cost == "local" {
            CostKind::Local
        } else {
            CostKind::Global
        },
        fan_mode: plateau_core::FanMode::TensorShape,
        ansatz: if r.ansatz == "training" {
            AnsatzKind::Training
        } else {
            AnsatzKind::RandomRotations
        },
        engine: plateau_core::GradEngineKind::Adjoint,
        seed: r.seed,
    };
    let scan = plateau_core::variance_scan(&config, &strategies)
        .map_err(|e| ProtocolError::invalid(e.to_string()))?;
    let curves: Vec<Json> = scan
        .curves
        .iter()
        .map(|curve| {
            Json::obj([
                ("strategy", Json::str(curve.strategy.name())),
                (
                    "points",
                    Json::Arr(
                        curve
                            .points
                            .iter()
                            .map(|p| {
                                Json::obj([
                                    ("qubits", Json::from(p.n_qubits)),
                                    ("variance", Json::Num(p.variance)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    Ok(ExecOutcome::ok(
        Json::obj([("strategies", Json::Arr(curves))]),
        None,
    ))
}

fn train(r: &TrainRequest, limits: Limits) -> Result<ExecOutcome, ProtocolError> {
    use plateau_core::{Adam, AdaGrad, CostKind, GradientDescent, Momentum, Optimizer, RmsProp};
    check_width(r.qubits, limits)?;
    let strategy = parse_strategy(&r.strategy)?;
    let fan = parse_fan(&r.fan)?;
    let ansatz = plateau_core::training_ansatz(r.qubits, r.layers)
        .map_err(|e| ProtocolError::invalid(e.to_string()))?;
    let obs: Observable = CostKind::Global.observable(r.qubits);
    let mut rng = plateau_rng::rngs::StdRng::seed_from_u64(r.seed);
    let theta0 = strategy
        .sample_params(&ansatz.shape, fan, &mut rng)
        .map_err(|e| ProtocolError::invalid(e.to_string()))?;
    let mut optimizer: Box<dyn Optimizer> = match r.optimizer.as_str() {
        "gd" => Box::new(GradientDescent::new(r.lr).map_err(|e| ProtocolError::invalid(e.to_string()))?),
        "momentum" => Box::new(Momentum::new(r.lr, 0.9).map_err(|e| ProtocolError::invalid(e.to_string()))?),
        "rmsprop" => Box::new(RmsProp::new(r.lr).map_err(|e| ProtocolError::invalid(e.to_string()))?),
        "adagrad" => Box::new(AdaGrad::new(r.lr).map_err(|e| ProtocolError::invalid(e.to_string()))?),
        _ => Box::new(Adam::new(r.lr).map_err(|e| ProtocolError::invalid(e.to_string()))?),
    };
    let hist = plateau_core::train(
        &ansatz.circuit,
        &obs,
        theta0,
        optimizer.as_mut(),
        r.iterations,
    )
    .map_err(|e| ProtocolError::invalid(e.to_string()))?;
    let body = Json::obj([
        ("initial_loss", Json::Num(hist.initial_loss())),
        ("final_loss", Json::Num(hist.final_loss())),
        (
            "losses",
            Json::Arr(hist.losses().iter().map(|&l| Json::Num(l)).collect()),
        ),
        (
            "grad_norms",
            Json::Arr(hist.grad_norms().iter().map(|&g| Json::Num(g)).collect()),
        ),
    ]);
    Ok(ExecOutcome::ok(body, None))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{CircuitSpec, ObservableSpec};
    use plateau_sim::Circuit;

    fn cache() -> CircuitCache {
        CircuitCache::new(8, true)
    }

    fn ring_spec(n: usize) -> CircuitSpec {
        let mut c = Circuit::new(n).unwrap();
        for q in 0..n {
            c.ry(q).unwrap();
        }
        for q in 0..n - 1 {
            c.cz(q, q + 1).unwrap();
        }
        CircuitSpec::from_circuit(&c)
    }

    #[test]
    fn simulate_is_body_identical_cold_and_warm() {
        let cache = cache();
        let req = Request::Simulate(SimulateRequest {
            circuit: ring_spec(3),
            params: vec![0.4, -1.1, 0.9],
            observable: ObservableSpec::Global,
            seed: 5,
            shots: 200,
        });
        let cold = execute(&req, &cache, Limits::default());
        let warm = execute(&req, &cache, Limits::default());
        assert_eq!(cold.status, 200);
        assert_eq!(cold.cache, Some(false));
        assert_eq!(warm.cache, Some(true));
        assert_eq!(cold.body.to_string(), warm.body.to_string());
    }

    #[test]
    fn gradient_warm_adjoint_matches_engine_gradient() {
        let cache = cache();
        let spec = ring_spec(3);
        let params = vec![0.2, 0.7, -0.3];
        let req = Request::Gradient(GradientRequest {
            circuit: spec.clone(),
            params: params.clone(),
            observable: ObservableSpec::Local,
            engine: EngineSpec::Adjoint,
            seed: 0,
        });
        let cold = execute(&req, &cache, Limits::default());
        let warm = execute(&req, &cache, Limits::default());
        assert_eq!(cold.status, 200);
        assert_eq!(cold.body.to_string(), warm.body.to_string());
        // Cross-check against the raw engine.
        let circuit = spec.build().unwrap();
        let obs = ObservableSpec::Local.build(3).unwrap();
        let expect = plateau_grad::Adjoint.gradient(&circuit, &params, &obs).unwrap();
        let got = warm.body.as_obj().unwrap()[1].1.as_arr().unwrap();
        for (g, e) in got.iter().zip(expect.iter()) {
            assert!((g.as_f64().unwrap() - e).abs() < 1e-10);
        }
    }

    #[test]
    fn parameter_shift_and_adjoint_agree_on_the_wire() {
        let cache = cache();
        let base = GradientRequest {
            circuit: ring_spec(2),
            params: vec![0.3, 1.2],
            observable: ObservableSpec::Global,
            engine: EngineSpec::Adjoint,
            seed: 0,
        };
        let adj = execute(&Request::Gradient(base.clone()), &cache, Limits::default());
        let mut shifted = base;
        shifted.engine = EngineSpec::ParameterShift;
        let ps = execute(&Request::Gradient(shifted), &cache, Limits::default());
        let ga = adj.body.as_obj().unwrap()[1].1.as_arr().unwrap();
        let gs = ps.body.as_obj().unwrap()[1].1.as_arr().unwrap();
        for (a, s) in ga.iter().zip(gs.iter()) {
            assert!((a.as_f64().unwrap() - s.as_f64().unwrap()).abs() < 1e-8);
        }
    }

    #[test]
    fn width_limit_is_enforced() {
        let cache = cache();
        let req = Request::Simulate(SimulateRequest {
            circuit: ring_spec(5),
            params: vec![0.0; 5],
            observable: ObservableSpec::Global,
            seed: 0,
            shots: 0,
        });
        let out = execute(&req, &cache, Limits { max_qubits: 4 });
        assert_eq!(out.status, 400);
        assert!(out.body.to_string().contains("limit"));
    }

    #[test]
    fn wrong_param_count_is_a_structured_400() {
        let cache = cache();
        let req = Request::Simulate(SimulateRequest {
            circuit: ring_spec(3),
            params: vec![0.1],
            observable: ObservableSpec::Global,
            seed: 0,
            shots: 0,
        });
        let out = execute(&req, &cache, Limits::default());
        assert_eq!(out.status, 400);
        let s = out.body.to_string();
        assert!(s.contains("\"error\""), "{s}");
        assert!(s.contains("invalid_request"), "{s}");
    }

    #[test]
    fn variance_scan_returns_one_curve_per_strategy() {
        let req = Request::VarianceScan(VarianceRequest {
            qubits: vec![2, 3],
            layers: 4,
            circuits: 8,
            strategies: vec!["random".into(), "zero".into()],
            cost: "global".into(),
            ansatz: "random".into(),
            seed: 11,
        });
        let out = execute(&req, &cache(), Limits::default());
        assert_eq!(out.status, 200, "{}", out.body);
        let strategies = out.body.as_obj().unwrap()[0].1.as_arr().unwrap();
        assert_eq!(strategies.len(), 2);
        let points = strategies[0].as_obj().unwrap()[1].1.as_arr().unwrap();
        assert_eq!(points.len(), 2);
    }

    #[test]
    fn train_returns_a_monotone_length_history() {
        let req = Request::Train(TrainRequest {
            qubits: 2,
            layers: 1,
            iterations: 4,
            strategy: "xavier_normal".into(),
            optimizer: "adam".into(),
            lr: 0.1,
            fan: "tensor".into(),
            seed: 3,
        });
        let out = execute(&req, &cache(), Limits::default());
        assert_eq!(out.status, 200, "{}", out.body);
        let obj = out.body.as_obj().unwrap();
        let losses = obj[2].1.as_arr().unwrap();
        let norms = obj[3].1.as_arr().unwrap();
        assert_eq!(losses.len(), 5);
        assert_eq!(norms.len(), 4);
    }
}
