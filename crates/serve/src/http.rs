//! A minimal HTTP/1.1 wire layer: incremental request parsing and
//! response serialization over byte buffers.
//!
//! This is not a general web server — it implements exactly the subset
//! the plateau service speaks:
//!
//! - request line + headers + `Content-Length` bodies (no chunked
//!   transfer encoding, no trailers, no multipart);
//! - persistent connections by default (`HTTP/1.1` semantics), honoring
//!   `Connection: close` from either side;
//! - hard limits on the header section ([`MAX_HEADER_BYTES`]) and the
//!   body (caller-supplied, from `PLATEAU_SERVE_MAX_BODY`), mapped to
//!   431/413 by the connection loop.
//!
//! Parsing is **incremental**: [`try_parse`] looks at whatever bytes have
//! arrived so far and either asks for more, fails with a protocol error,
//! or yields a complete [`HttpRequest`] plus the number of bytes it
//! consumed — pipelined requests simply leave their successor in the
//! buffer. The parser never allocates proportionally to anything but the
//! request itself and never panics on adversarial input (the fuzz wire
//! pair in `plateau-fuzz` leans on this).

use std::fmt;
use std::io::{self, Write};

/// Cap on the request line + header section, in bytes. A request whose
/// headers exceed this is answered `431 Request Header Fields Too Large`.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Default cap on request bodies (1 MiB), overridable per server via
/// `PLATEAU_SERVE_MAX_BODY`.
pub const DEFAULT_MAX_BODY_BYTES: usize = 1024 * 1024;

/// A fully received HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method, uppercased as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target (path + optional query), exactly as received.
    pub path: String,
    /// Header `(name, value)` pairs in arrival order; names are kept
    /// verbatim and matched case-insensitively by [`HttpRequest::header`].
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// First header value whose name matches `name` case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to tear the connection down after this
    /// exchange (`Connection: close`, matched case-insensitively).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .map(|v| v.trim().eq_ignore_ascii_case("close"))
            .unwrap_or(false)
    }
}

/// A wire-level parse failure. The connection loop maps each variant to
/// a status code and closes the connection (the byte stream is no longer
/// trustworthy after a framing error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpParseError {
    /// The request line was not `METHOD SP TARGET SP HTTP/1.x`.
    BadRequestLine,
    /// Only HTTP/1.0 and HTTP/1.1 are spoken here.
    BadVersion(String),
    /// A header line had no `:` separator or an empty name.
    BadHeader,
    /// The header section exceeded [`MAX_HEADER_BYTES`].
    HeaderTooLarge,
    /// `Content-Length` was present but not a base-10 integer.
    BadContentLength,
    /// The declared body exceeds the server's cap.
    BodyTooLarge {
        /// The configured cap the request blew through.
        limit: usize,
    },
    /// `Transfer-Encoding` (chunked or otherwise) is not supported.
    UnsupportedTransferEncoding,
}

impl HttpParseError {
    /// The HTTP status this error is answered with.
    pub fn status(&self) -> u16 {
        match self {
            HttpParseError::HeaderTooLarge => 431,
            HttpParseError::BodyTooLarge { .. } => 413,
            HttpParseError::UnsupportedTransferEncoding => 501,
            _ => 400,
        }
    }
}

impl fmt::Display for HttpParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpParseError::BadRequestLine => f.write_str("malformed request line"),
            HttpParseError::BadVersion(v) => write!(f, "unsupported HTTP version {v:?}"),
            HttpParseError::BadHeader => f.write_str("malformed header line"),
            HttpParseError::HeaderTooLarge => {
                write!(f, "header section exceeds {MAX_HEADER_BYTES} bytes")
            }
            HttpParseError::BadContentLength => f.write_str("unparseable Content-Length"),
            HttpParseError::BodyTooLarge { limit } => {
                write!(f, "request body exceeds the {limit}-byte limit")
            }
            HttpParseError::UnsupportedTransferEncoding => {
                f.write_str("Transfer-Encoding is not supported; send Content-Length")
            }
        }
    }
}

impl std::error::Error for HttpParseError {}

/// Outcome of a [`try_parse`] attempt over the bytes received so far.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseStatus {
    /// Not enough bytes yet — read more and call again.
    NeedMore,
    /// One complete request, plus how many buffer bytes it consumed
    /// (pipelined successors start at that offset).
    Complete(HttpRequest, usize),
}

/// Attempts to parse one request from the front of `buf`.
///
/// # Errors
///
/// Returns [`HttpParseError`] on framing violations; the connection
/// should answer with [`HttpParseError::status`] and close.
pub fn try_parse(buf: &[u8], max_body: usize) -> Result<ParseStatus, HttpParseError> {
    let header_end = match find_header_end(buf) {
        Some(end) => end,
        None => {
            if buf.len() > MAX_HEADER_BYTES {
                return Err(HttpParseError::HeaderTooLarge);
            }
            return Ok(ParseStatus::NeedMore);
        }
    };
    if header_end > MAX_HEADER_BYTES {
        return Err(HttpParseError::HeaderTooLarge);
    }
    let head =
        std::str::from_utf8(&buf[..header_end]).map_err(|_| HttpParseError::BadHeader)?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or(HttpParseError::BadRequestLine)?;
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => return Err(HttpParseError::BadRequestLine),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpParseError::BadVersion(version.to_string()));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or(HttpParseError::BadHeader)?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpParseError::BadHeader);
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }

    let request = HttpRequest {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
    };
    if request.header("transfer-encoding").is_some() {
        return Err(HttpParseError::UnsupportedTransferEncoding);
    }
    let content_length = match request.header("content-length") {
        None => 0usize,
        Some(raw) => raw
            .trim()
            .parse::<usize>()
            .map_err(|_| HttpParseError::BadContentLength)?,
    };
    if content_length > max_body {
        return Err(HttpParseError::BodyTooLarge { limit: max_body });
    }
    // +4 for the CRLFCRLF terminator find_header_end excludes.
    let body_start = header_end + 4;
    if buf.len() < body_start + content_length {
        return Ok(ParseStatus::NeedMore);
    }
    let mut request = request;
    request.body = buf[body_start..body_start + content_length].to_vec();
    Ok(ParseStatus::Complete(request, body_start + content_length))
}

/// Byte offset of the `\r\n\r\n` header terminator (exclusive of it).
fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// An HTTP response under construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond the Content-Type/Length/Connection trio the
    /// writer emits itself (`Retry-After`, `X-Plateau-Cache`, …).
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// MIME type for the Content-Type header.
    pub content_type: &'static str,
}

impl HttpResponse {
    /// A JSON response (the service's native content type).
    pub fn json(status: u16, body: &plateau_obs::json::Json) -> HttpResponse {
        HttpResponse {
            status,
            headers: Vec::new(),
            body: body.to_string().into_bytes(),
            content_type: "application/json",
        }
    }

    /// Adds a header, builder-style.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> HttpResponse {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Canonical reason phrase for the status codes this server emits.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            _ => "Response",
        }
    }

    /// Serializes the full response head + body.
    ///
    /// `keep_alive` decides the `Connection` header; the writer always
    /// emits an explicit one so clients never have to guess.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from `w`.
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nServer: plateau-serve\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            Self::reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(text: &str) -> Result<ParseStatus, HttpParseError> {
        try_parse(text.as_bytes(), DEFAULT_MAX_BODY_BYTES)
    }

    #[test]
    fn parses_a_minimal_get() {
        let status = req("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        match status {
            ParseStatus::Complete(r, consumed) => {
                assert_eq!(r.method, "GET");
                assert_eq!(r.path, "/healthz");
                assert_eq!(r.header("host"), Some("x"));
                assert!(r.body.is_empty());
                assert_eq!(consumed, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n".len());
            }
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn parses_a_post_with_body_and_reports_consumed_bytes() {
        let text = "POST /simulate HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"extra";
        match try_parse(text.as_bytes(), DEFAULT_MAX_BODY_BYTES).unwrap() {
            ParseStatus::Complete(r, consumed) => {
                assert_eq!(r.body, b"{\"a\"");
                assert_eq!(&text.as_bytes()[consumed..], b"extra");
            }
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn partial_requests_ask_for_more() {
        assert_eq!(req("GET /x HTTP/1.1\r\nHost").unwrap(), ParseStatus::NeedMore);
        // Headers complete, body still in flight.
        assert_eq!(
            req("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\n12345").unwrap(),
            ParseStatus::NeedMore
        );
        assert_eq!(req("").unwrap(), ParseStatus::NeedMore);
    }

    #[test]
    fn rejects_malformed_request_lines() {
        assert_eq!(req("GARBAGE\r\n\r\n").unwrap_err(), HttpParseError::BadRequestLine);
        assert_eq!(
            req("GET /x HTTP/1.1 extra\r\n\r\n").unwrap_err(),
            HttpParseError::BadRequestLine
        );
        assert_eq!(
            req("GET /x HTTP/2\r\n\r\n").unwrap_err(),
            HttpParseError::BadVersion("HTTP/2".into())
        );
    }

    #[test]
    fn rejects_bad_headers_and_lengths() {
        assert_eq!(req("GET /x HTTP/1.1\r\nNoColon\r\n\r\n").unwrap_err(), HttpParseError::BadHeader);
        assert_eq!(
            req("POST /x HTTP/1.1\r\nContent-Length: twelve\r\n\r\n").unwrap_err(),
            HttpParseError::BadContentLength
        );
        assert_eq!(
            req("POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err(),
            HttpParseError::UnsupportedTransferEncoding
        );
    }

    #[test]
    fn oversized_bodies_and_headers_are_refused() {
        let e = try_parse(b"POST /x HTTP/1.1\r\nContent-Length: 100\r\n\r\n", 10).unwrap_err();
        assert_eq!(e, HttpParseError::BodyTooLarge { limit: 10 });
        assert_eq!(e.status(), 413);

        let huge = format!("GET /x HTTP/1.1\r\nPad: {}\r\n\r\n", "y".repeat(MAX_HEADER_BYTES));
        assert_eq!(req(&huge).unwrap_err(), HttpParseError::HeaderTooLarge);
        // An unterminated flood is caught without waiting for CRLFCRLF.
        let flood = "x".repeat(MAX_HEADER_BYTES + 2);
        assert_eq!(req(&flood).unwrap_err(), HttpParseError::HeaderTooLarge);
    }

    #[test]
    fn connection_close_detection_is_case_insensitive() {
        let r = match req("GET / HTTP/1.1\r\nConnection: Close\r\n\r\n").unwrap() {
            ParseStatus::Complete(r, _) => r,
            other => panic!("{other:?}"),
        };
        assert!(r.wants_close());
        let r = match req("GET / HTTP/1.1\r\n\r\n").unwrap() {
            ParseStatus::Complete(r, _) => r,
            other => panic!("{other:?}"),
        };
        assert!(!r.wants_close());
    }

    #[test]
    fn pipelined_requests_parse_one_at_a_time() {
        let text = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let (first, consumed) = match req(text).unwrap() {
            ParseStatus::Complete(r, c) => (r, c),
            other => panic!("{other:?}"),
        };
        assert_eq!(first.path, "/a");
        match try_parse(&text.as_bytes()[consumed..], DEFAULT_MAX_BODY_BYTES).unwrap() {
            ParseStatus::Complete(second, _) => assert_eq!(second.path, "/b"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn response_serialization_round_trips_the_essentials() {
        let body = plateau_obs::json::Json::obj([("ok", plateau_obs::json::Json::Bool(true))]);
        let mut out = Vec::new();
        HttpResponse::json(200, &body)
            .with_header("X-Plateau-Cache", "hit")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.contains("X-Plateau-Cache: hit\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"), "{text}");

        let mut out = Vec::new();
        HttpResponse::json(503, &body).write_to(&mut out, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
    }

    #[test]
    fn adversarial_bytes_never_panic() {
        // A spread of hostile inputs: binary junk, truncated escapes,
        // interior NULs, absurd lengths.
        let cases: Vec<Vec<u8>> = vec![
            vec![0xff; 64],
            b"POST / HTTP/1.1\r\nContent-Length: 18446744073709551616\r\n\r\n".to_vec(),
            b"\r\n\r\n".to_vec(),
            b"GET  HTTP/1.1\r\n\r\n".to_vec(),
            b"GET / HTTP/1.1\r\n\0: x\r\n\r\n".to_vec(),
        ];
        for c in cases {
            let _ = try_parse(&c, DEFAULT_MAX_BODY_BYTES);
        }
    }
}
