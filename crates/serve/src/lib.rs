//! `plateau-serve` — the multi-tenant HTTP front-end over the plateau
//! simulation/gradient stack.
//!
//! This crate turns the batch library into a traffic-serving system
//! (DESIGN.md §15): a zero-dependency HTTP/1.1 server exposing
//!
//! | endpoint          | verb | work                                      |
//! |-------------------|------|-------------------------------------------|
//! | `/simulate`       | POST | expectation (+ optional shot counts)      |
//! | `/gradient`       | POST | full gradient, adjoint or parameter-shift |
//! | `/variance-scan`  | POST | small Fig-5a-style variance scan          |
//! | `/train`          | POST | training run on the paper's ansatz        |
//! | `/metrics`        | GET  | `plateau-obs` registry snapshot           |
//! | `/healthz`        | GET  | liveness + drain state + queue depth      |
//!
//! Circuits arrive as OpenQASM 2.0 or canonical op-list JSON
//! ([`protocol`]); compiled structures are cached in an LRU keyed on the
//! raw wire form ([`cache`]) so repeat tenants skip parse + build +
//! fusion-compile; compute runs on a bounded worker pool behind a
//! backpressuring job queue ([`queue`], 503 + `Retry-After` when full);
//! and every response body is a deterministic function of the request
//! body — cache state travels in the `X-Plateau-Cache` header, never the
//! body ([`handlers`]).
//!
//! ```no_run
//! use plateau_serve::{ServeConfig, Server};
//!
//! let server = Server::start(ServeConfig::default())?;
//! println!("listening on {}", server.addr());
//! // ... drive traffic ...
//! server.shutdown(); // drains accepted jobs, then stops
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod handlers;
pub mod http;
pub mod protocol;
pub mod queue;
pub mod server;

pub use cache::{CachedCircuit, CircuitCache};
pub use handlers::{execute, ExecOutcome, Limits};
pub use http::{HttpParseError, HttpRequest, HttpResponse, ParseStatus};
pub use protocol::{
    CircuitSpec, EngineSpec, GradientRequest, ObservableSpec, ProtocolError, Request,
    SimulateRequest, TrainRequest, VarianceRequest,
};
pub use queue::{JobQueue, PushError};
pub use server::{ServeConfig, Server};
