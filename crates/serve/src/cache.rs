//! The compiled-circuit LRU cache — why repeat tenants are fast.
//!
//! The service's dominant cost for small requests is not the simulation
//! itself but the per-request setup: parsing QASM (or walking op JSON),
//! building the [`Circuit`], and — with fusion on — running the fusion
//! compiler over it. A tenant polling `/gradient` with fresh parameters
//! every few milliseconds re-pays that setup on every call unless we
//! remember the structure.
//!
//! The cache maps the **raw wire form** of a circuit (the
//! [`CircuitSpec::cache_token`] string — QASM text or canonical op JSON,
//! *before* any parsing) to an [`Arc`] of the built circuit plus its
//! fused compilation. Keying on the raw form means a warm hit skips the
//! QASM parser, the builder, and the fusion compiler entirely; the
//! handler goes straight from HTTP bytes to `CompiledCircuit::run`.
//!
//! Entries are found by FNV-64 hash of the token with a full token
//! equality check behind it, so hash collisions cost a miss, never a
//! wrong circuit. Eviction is exact LRU over a small `Vec` (capacity is
//! tens of entries — a scan beats pointer-chasing at this size).
//! Building happens **outside** the lock: concurrent first requests for
//! the same circuit may both build (duplicated work, bounded by the
//! worker count) but nobody ever waits on a compile while holding the
//! cache.

use std::sync::{Arc, Mutex};

use plateau_sim::{compile, Circuit, CompiledCircuit};

use crate::protocol::{CircuitSpec, ProtocolError};

/// A cached circuit structure: the built circuit and, when fusion was on
/// at insert time, its fused compilation.
#[derive(Debug)]
pub struct CachedCircuit {
    /// The exact token this entry was built from (collision guard).
    token: String,
    /// The built circuit (the parameter-shift path runs this).
    pub circuit: Circuit,
    /// The fused compilation (the simulate/adjoint paths run this).
    /// `None` when the server was configured with fusion off.
    pub compiled: Option<CompiledCircuit>,
}

/// FNV-1a 64-bit — tiny, deterministic, good enough to spread cache
/// tokens; correctness never depends on it (tokens are compared too).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Slot {
    hash: u64,
    entry: Arc<CachedCircuit>,
    /// Monotone use stamp; smallest = least recently used.
    stamp: u64,
}

/// An exact-LRU cache of compiled circuit structures.
pub struct CircuitCache {
    slots: Mutex<(Vec<Slot>, u64)>,
    capacity: usize,
    fuse: bool,
}

impl CircuitCache {
    /// A cache holding at most `capacity` circuits; `fuse` controls
    /// whether entries carry a fused compilation.
    pub fn new(capacity: usize, fuse: bool) -> CircuitCache {
        CircuitCache {
            slots: Mutex::new((Vec::with_capacity(capacity.min(64)), 0)),
            capacity: capacity.max(1),
            fuse,
        }
    }

    /// Looks up `spec`, building and inserting on a miss. Returns the
    /// shared entry and whether this call was a hit.
    ///
    /// Emits `serve.cache.hits` / `serve.cache.misses` and keeps the
    /// `serve.cache.entries` gauge current.
    ///
    /// # Errors
    ///
    /// Propagates [`ProtocolError`] from building the circuit (bad QASM,
    /// invalid ops); failures are not cached.
    pub fn get_or_build(
        &self,
        spec: &CircuitSpec,
    ) -> Result<(Arc<CachedCircuit>, bool), ProtocolError> {
        let token = spec.cache_token();
        let hash = fnv64(token.as_bytes());
        if let Some(entry) = self.lookup(hash, &token) {
            plateau_obs::counter!("serve.cache.hits").inc();
            return Ok((entry, true));
        }
        plateau_obs::counter!("serve.cache.misses").inc();
        // Build outside the lock — compiles can take milliseconds and
        // must not serialize unrelated tenants.
        let circuit = spec.build()?;
        let compiled = self.fuse.then(|| compile(&circuit));
        let entry = Arc::new(CachedCircuit {
            token,
            circuit,
            compiled,
        });
        self.insert(hash, Arc::clone(&entry));
        Ok((entry, false))
    }

    fn lookup(&self, hash: u64, token: &str) -> Option<Arc<CachedCircuit>> {
        let mut guard = self.slots.lock().unwrap();
        let (slots, clock) = &mut *guard;
        let slot = slots
            .iter_mut()
            .find(|s| s.hash == hash && s.entry.token == token)?;
        *clock += 1;
        slot.stamp = *clock;
        Some(Arc::clone(&slot.entry))
    }

    fn insert(&self, hash: u64, entry: Arc<CachedCircuit>) {
        let mut guard = self.slots.lock().unwrap();
        let (slots, clock) = &mut *guard;
        // A racing builder may have inserted the same token meanwhile;
        // keep the existing entry and drop ours.
        if slots
            .iter()
            .any(|s| s.hash == hash && s.entry.token == entry.token)
        {
            return;
        }
        if slots.len() >= self.capacity {
            if let Some((lru, _)) = slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.stamp)
                .map(|(i, s)| (i, s.stamp))
            {
                slots.swap_remove(lru);
                plateau_obs::counter!("serve.cache.evictions").inc();
            }
        }
        *clock += 1;
        slots.push(Slot {
            hash,
            entry,
            stamp: *clock,
        });
        plateau_obs::gauge!("serve.cache.entries").set(slots.len() as f64);
    }

    /// Drops every entry (used by the load generator to re-measure the
    /// cold path).
    pub fn clear(&self) {
        let mut guard = self.slots.lock().unwrap();
        guard.0.clear();
        plateau_obs::gauge!("serve.cache.entries").set(0.0);
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.slots.lock().unwrap().0.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(n: usize, layers: usize) -> CircuitSpec {
        let mut c = Circuit::new(n).unwrap();
        for _ in 0..layers {
            for q in 0..n {
                c.ry(q).unwrap();
            }
            for q in 0..n - 1 {
                c.cz(q, q + 1).unwrap();
            }
        }
        CircuitSpec::from_circuit(&c)
    }

    #[test]
    fn second_lookup_hits_and_shares_the_entry() {
        let cache = CircuitCache::new(4, true);
        let (a, hit_a) = cache.get_or_build(&spec(3, 2)).unwrap();
        let (b, hit_b) = cache.get_or_build(&spec(3, 2)).unwrap();
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.compiled.is_some());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_specs_get_distinct_entries() {
        let cache = CircuitCache::new(4, false);
        let (a, _) = cache.get_or_build(&spec(3, 2)).unwrap();
        let (b, _) = cache.get_or_build(&spec(4, 2)).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(a.compiled.is_none());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let cache = CircuitCache::new(2, false);
        cache.get_or_build(&spec(2, 1)).unwrap();
        cache.get_or_build(&spec(3, 1)).unwrap();
        // Touch the first so the second is LRU.
        cache.get_or_build(&spec(2, 1)).unwrap();
        cache.get_or_build(&spec(4, 1)).unwrap();
        assert_eq!(cache.len(), 2);
        // 2q stayed warm, 3q was evicted.
        let (_, hit) = cache.get_or_build(&spec(2, 1)).unwrap();
        assert!(hit);
        let (_, hit) = cache.get_or_build(&spec(3, 1)).unwrap();
        assert!(!hit);
    }

    #[test]
    fn qasm_and_ops_forms_cache_independently() {
        let cache = CircuitCache::new(4, false);
        let ops_form = spec(2, 1);
        let circuit = ops_form.build().unwrap();
        let qasm = plateau_sim::qasm::to_qasm(&circuit, &vec![0.0; circuit.n_params()]).unwrap();
        cache.get_or_build(&ops_form).unwrap();
        let (_, hit) = cache.get_or_build(&CircuitSpec::Qasm(qasm)).unwrap();
        assert!(!hit, "different wire forms must not collide");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn build_failures_are_not_cached() {
        let cache = CircuitCache::new(4, false);
        let bad = CircuitSpec::Qasm("OPENQASM 2.0; nonsense".into());
        assert!(cache.get_or_build(&bad).is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn clear_forces_cold_rebuild() {
        let cache = CircuitCache::new(4, true);
        cache.get_or_build(&spec(3, 1)).unwrap();
        cache.clear();
        let (_, hit) = cache.get_or_build(&spec(3, 1)).unwrap();
        assert!(!hit);
    }
}
