//! The server: acceptor + connection threads + a bounded worker pool.
//!
//! Thread layout (all `std::thread`, no async runtime):
//!
//! ```text
//! acceptor ──spawns──▶ connection threads (1 per socket, I/O only)
//!                          │  parse HTTP → parse Request
//!                          │  try_push ──▶ JobQueue (bounded) ──▶ workers (N)
//!                          │                  503 when full         │ execute()
//!                          ◀──────────── mpsc reply channel ────────┘
//! ```
//!
//! Connection threads do I/O and protocol work only; every simulation
//! runs on one of the `workers` compute threads, so a slow tenant can
//! occupy at most the queue, never the listener. `/healthz` and
//! `/metrics` are answered inline by the connection thread — they must
//! keep working while the compute pool is saturated, that being the
//! whole point of a health probe.
//!
//! Graceful shutdown ([`Server::shutdown`]): stop accepting, close the
//! queue (rejecting new pushes), let the workers drain every accepted
//! job, then wait for connection threads to flush their responses. An
//! accepted request always gets a complete response; a request that
//! arrives during drain gets a clean 503.

use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use plateau_obs::json::Json;

use crate::cache::CircuitCache;
use crate::handlers::{execute, ExecOutcome, Limits};
use crate::http::{self, HttpResponse, ParseStatus};
use crate::protocol::{ProtocolError, Request};
use crate::queue::{JobQueue, PushError};

/// Server configuration. Every knob has a `PLATEAU_SERVE_*` environment
/// override (see [`ServeConfig::from_env`]).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 asks the OS for an ephemeral port.
    pub addr: String,
    /// Compute worker threads.
    pub workers: usize,
    /// Job-queue bound (backpressure point).
    pub queue_capacity: usize,
    /// Compiled-circuit LRU capacity.
    pub cache_capacity: usize,
    /// Whether cached circuits carry a fused compilation.
    pub fuse: bool,
    /// Largest accepted request body in bytes.
    pub max_body: usize,
    /// Per-request execution limits.
    pub limits: Limits,
    /// How long an idle keep-alive connection is held open.
    pub idle_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 32,
            fuse: true,
            max_body: http::DEFAULT_MAX_BODY_BYTES,
            limits: Limits::default(),
            idle_timeout: Duration::from_secs(5),
        }
    }
}

impl ServeConfig {
    /// The default configuration with `PLATEAU_SERVE_WORKERS`,
    /// `PLATEAU_SERVE_QUEUE`, `PLATEAU_SERVE_CACHE`,
    /// `PLATEAU_SERVE_MAX_BODY`, and `PLATEAU_SERVE_MAX_QUBITS` applied.
    pub fn from_env() -> ServeConfig {
        let mut cfg = ServeConfig::default();
        let read = |name: &str| -> Option<usize> {
            std::env::var(name).ok().and_then(|v| v.parse().ok())
        };
        if let Some(w) = read("PLATEAU_SERVE_WORKERS") {
            cfg.workers = w.max(1);
        }
        if let Some(q) = read("PLATEAU_SERVE_QUEUE") {
            cfg.queue_capacity = q.max(1);
        }
        if let Some(c) = read("PLATEAU_SERVE_CACHE") {
            cfg.cache_capacity = c.max(1);
        }
        if let Some(b) = read("PLATEAU_SERVE_MAX_BODY") {
            cfg.max_body = b.max(1024);
        }
        if let Some(m) = read("PLATEAU_SERVE_MAX_QUBITS") {
            cfg.limits.max_qubits = m.clamp(1, plateau_sim::MAX_QUBITS);
        }
        cfg
    }
}

/// One unit of compute work: the parsed request and where to send the
/// outcome.
struct Job {
    request: Request,
    reply: mpsc::Sender<ExecOutcome>,
}

/// A running server. Dropping it without calling [`Server::shutdown`]
/// leaks the threads until process exit; tests and the CLI always
/// shut down explicitly.
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    queue: Arc<JobQueue<Job>>,
    cache: Arc<CircuitCache>,
    active_connections: Arc<AtomicUsize>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts accepting. Metrics are switched on — a service
    /// without its `/metrics` endpoint reporting would be lying.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        plateau_obs::set_metrics_enabled(true);
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let queue: Arc<JobQueue<Job>> = Arc::new(JobQueue::new(cfg.queue_capacity));
        let cache = Arc::new(CircuitCache::new(cfg.cache_capacity, cfg.fuse));
        let active_connections = Arc::new(AtomicUsize::new(0));

        let workers: Vec<JoinHandle<()>> = (0..cfg.workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let cache = Arc::clone(&cache);
                let limits = cfg.limits;
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || {
                        while let Some(job) = queue.pop() {
                            let outcome = execute(&job.request, &cache, limits);
                            // A dead reply channel means the connection
                            // vanished mid-flight; the work is discarded.
                            let _ = job.reply.send(outcome);
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let queue = Arc::clone(&queue);
            let active = Arc::clone(&active_connections);
            let cfg = cfg.clone();
            std::thread::Builder::new()
                .name("serve-acceptor".to_string())
                .spawn(move || loop {
                    if shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    match listener.accept() {
                        Ok((stream, _)) => {
                            plateau_obs::counter!("serve.connections").inc();
                            active.fetch_add(1, Ordering::SeqCst);
                            let queue = Arc::clone(&queue);
                            let shutdown = Arc::clone(&shutdown);
                            let active = Arc::clone(&active);
                            let cfg = cfg.clone();
                            let _ = std::thread::Builder::new()
                                .name("serve-conn".to_string())
                                .spawn(move || {
                                    serve_connection(stream, &queue, &shutdown, &cfg);
                                    active.fetch_sub(1, Ordering::SeqCst);
                                });
                        }
                        // Poll fine-grained: this sleep bounds the accept
                        // latency floor every fresh connection pays.
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_micros(500));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                })
                .expect("spawn acceptor")
        };

        Ok(Server {
            local_addr,
            shutdown,
            queue,
            cache,
            active_connections,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (with the OS-assigned port when `addr` asked
    /// for port 0).
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared compiled-circuit cache (the load generator clears it
    /// to re-measure the cold path).
    pub fn cache(&self) -> &CircuitCache {
        &self.cache
    }

    /// Current job-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Graceful shutdown: drain accepted work, then stop. Returns once
    /// the workers have exited and connection threads have flushed (or a
    /// 5-second drain deadline passes).
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.active_connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

/// Reads requests off one socket until close, idle timeout, or
/// shutdown. Keep-alive and pipelining come from the buffer-and-consume
/// loop: leftover bytes after one request seed the parse of the next.
fn serve_connection(
    stream: TcpStream,
    queue: &JobQueue<Job>,
    shutdown: &AtomicBool,
    cfg: &ServeConfig,
) {
    let mut stream = stream;
    // Short poll interval so shutdown and the idle deadline are checked
    // even when the peer sends nothing.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut idle_since = Instant::now();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        // Drain every complete request already buffered before reading.
        loop {
            match http::try_parse(&buf, cfg.max_body) {
                Ok(ParseStatus::NeedMore) => break,
                Ok(ParseStatus::Complete(req, consumed)) => {
                    buf.drain(..consumed);
                    idle_since = Instant::now();
                    let close = req.wants_close();
                    let keep_alive = !close && !shutdown.load(Ordering::SeqCst);
                    let response = handle_request(&req, queue, shutdown);
                    if response.write_to(&mut stream, keep_alive).is_err() || !keep_alive {
                        return;
                    }
                }
                Err(e) => {
                    // Protocol-fatal: answer once and close.
                    let body = Json::obj([(
                        "error",
                        Json::obj([
                            ("code", Json::str("bad_request")),
                            ("message", Json::str(e.to_string())),
                        ]),
                    )]);
                    plateau_obs::counter!("serve.responses.4xx").inc();
                    let _ = HttpResponse::json(e.status(), &body).write_to(&mut stream, false);
                    return;
                }
            }
        }
        if shutdown.load(Ordering::SeqCst) && buf.is_empty() {
            return;
        }
        if idle_since.elapsed() > cfg.idle_timeout {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

fn error_body(code: &str, message: &str) -> Json {
    Json::obj([(
        "error",
        Json::obj([
            ("code", Json::str(code.to_string())),
            ("message", Json::str(message.to_string())),
        ]),
    )])
}

fn count_status(status: u16) {
    // Three distinct call sites so the interning macro sees literals.
    match status {
        200..=299 => plateau_obs::counter!("serve.responses.2xx").inc(),
        400..=499 => plateau_obs::counter!("serve.responses.4xx").inc(),
        _ => plateau_obs::counter!("serve.responses.5xx").inc(),
    }
}

/// Routes one parsed HTTP request and produces the response.
fn handle_request(
    req: &http::HttpRequest,
    queue: &JobQueue<Job>,
    shutdown: &AtomicBool,
) -> HttpResponse {
    let started = Instant::now();
    let response = route(req, queue, shutdown, started);
    count_status(response.status);
    response
}

fn route(
    req: &http::HttpRequest,
    queue: &JobQueue<Job>,
    shutdown: &AtomicBool,
    started: Instant,
) -> HttpResponse {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            plateau_obs::counter!("serve.requests.healthz").inc();
            let body = Json::obj([
                ("status", Json::str("ok")),
                (
                    "draining",
                    Json::Bool(shutdown.load(Ordering::SeqCst)),
                ),
                ("queue_depth", Json::from(queue.depth())),
            ]);
            HttpResponse::json(200, &body)
        }
        ("GET", "/metrics") => {
            plateau_obs::counter!("serve.requests.metrics").inc();
            HttpResponse::json(200, &plateau_obs::snapshot().to_json())
        }
        ("POST", path @ ("/simulate" | "/gradient" | "/variance-scan" | "/train")) => {
            let body = match std::str::from_utf8(&req.body) {
                Ok(s) => s,
                Err(_) => {
                    return HttpResponse::json(
                        400,
                        &error_body("bad_json", "body is not valid UTF-8"),
                    )
                }
            };
            let parsed = match Request::parse(path, body) {
                Ok(r) => r,
                Err(e) => {
                    let status = if e.code == "not_found" { 404 } else { 400 };
                    return HttpResponse::json(status, &e.to_json());
                }
            };
            let endpoint = parsed.endpoint();
            // Dynamic name: go through the registry, not the per-call-site
            // interning macro (which would pin the first endpoint seen).
            plateau_obs::metrics::counter(&format!("serve.requests.{endpoint}")).inc();
            dispatch(parsed, queue, started)
        }
        ("POST", _) => HttpResponse::json(
            404,
            &ProtocolError {
                code: "not_found",
                message: format!("no such endpoint {:?}", req.path),
            }
            .to_json(),
        ),
        (_, "/healthz" | "/metrics" | "/simulate" | "/gradient" | "/variance-scan" | "/train") => {
            HttpResponse::json(
                405,
                &error_body("method_not_allowed", "use GET for reads, POST for compute"),
            )
        }
        _ => HttpResponse::json(
            404,
            &error_body("not_found", &format!("no such endpoint {:?}", req.path)),
        ),
    }
}

/// Enqueues a compute request and waits for its outcome.
fn dispatch(request: Request, queue: &JobQueue<Job>, started: Instant) -> HttpResponse {
    let endpoint = request.endpoint();
    let (tx, rx) = mpsc::channel();
    match queue.try_push(Job {
        request,
        reply: tx,
    }) {
        Ok(()) => {}
        Err(PushError::Full) => {
            return HttpResponse::json(
                503,
                &error_body("overloaded", "job queue is full; retry shortly"),
            )
            .with_header("Retry-After", "1");
        }
        Err(PushError::Closed) => {
            return HttpResponse::json(
                503,
                &error_body("shutting_down", "server is draining; retry against a peer"),
            )
            .with_header("Retry-After", "1");
        }
    }
    match rx.recv() {
        Ok(outcome) => {
            let micros = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            plateau_obs::metrics::histogram(&format!("serve.latency_us.{endpoint}")).record(micros);
            let mut response = HttpResponse::json(outcome.status, &outcome.body);
            if let Some(hit) = outcome.cache {
                response =
                    response.with_header("X-Plateau-Cache", if hit { "hit" } else { "miss" });
            }
            response
        }
        // The worker pool died before answering — only reachable if a
        // handler panicked.
        Err(_) => HttpResponse::json(
            500,
            &error_body("internal", "worker failed to produce a response"),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn config_from_env_clamps() {
        // No env set: defaults.
        let cfg = ServeConfig::default();
        assert_eq!(cfg.workers, 2);
        assert!(cfg.fuse);
        assert_eq!(cfg.limits.max_qubits, 16);
    }

    #[test]
    fn server_starts_serves_healthz_and_shuts_down() {
        let server = Server::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 200 OK\r\n"), "{out}");
        assert!(out.contains("\"status\":\"ok\""), "{out}");
        server.shutdown();
        // The port is released: connecting now fails (or is refused).
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }
}
