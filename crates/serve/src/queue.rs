//! The bounded job queue between connection threads and compute workers.
//!
//! Connection threads never simulate; they parse, enqueue, and wait for
//! the worker's reply. The queue is the backpressure point: it holds at
//! most `capacity` jobs, and a full queue rejects immediately
//! ([`PushError::Full`] → HTTP 503 + `Retry-After`) instead of letting
//! latency grow without bound. Workers block on [`JobQueue::pop`] until
//! a job arrives or the queue is closed.
//!
//! Shutdown semantics ("graceful drain"): [`JobQueue::close`] stops new
//! pushes but lets workers keep popping until the queue is **empty** —
//! every accepted job gets a response before the workers exit. This is
//! what the backpressure integration test pins: no torn or dropped
//! responses across shutdown.
//!
//! The implementation is the std-only classic: `Mutex<VecDeque>` +
//! `Condvar`. The `serve.queue_depth` gauge tracks occupancy and
//! `serve.queue.rejected` counts 503s.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — the client should retry later.
    Full,
    /// The queue is closed — the server is shutting down.
    Closed,
}

struct Inner<T> {
    jobs: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue with blocking pop and close-to-drain shutdown.
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// A queue holding at most `capacity` jobs (minimum 1).
    pub fn new(capacity: usize) -> JobQueue<T> {
        JobQueue {
            inner: Mutex::new(Inner {
                jobs: VecDeque::with_capacity(capacity.max(1).min(1024)),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues a job, failing fast when full or closed.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`JobQueue::close`].
    pub fn try_push(&self, job: T) -> Result<(), PushError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.jobs.len() >= self.capacity {
            plateau_obs::counter!("serve.queue.rejected").inc();
            return Err(PushError::Full);
        }
        inner.jobs.push_back(job);
        plateau_obs::gauge!("serve.queue_depth").set(inner.jobs.len() as f64);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a job is available (returning it) or the queue is
    /// closed **and drained** (returning `None` — the worker should
    /// exit).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                plateau_obs::gauge!("serve.queue_depth").set(inner.jobs.len() as f64);
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap();
        }
    }

    /// Stops new pushes; queued jobs continue to be popped until empty,
    /// then every blocked and future [`JobQueue::pop`] returns `None`.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        drop(inner);
        self.ready.notify_all();
    }

    /// Current occupancy.
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().jobs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_within_capacity() {
        let q = JobQueue::new(3);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = JobQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full));
        // Popping frees a slot.
        q.pop();
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_drains_then_wakes_poppers() {
        let q = Arc::new(JobQueue::new(4));
        q.try_push(10).unwrap();
        q.try_push(11).unwrap();
        q.close();
        assert_eq!(q.try_push(12), Err(PushError::Closed));
        // Accepted jobs still come out, in order, before the None.
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), None);

        // A popper blocked on an empty queue is woken by close.
        let q2: Arc<JobQueue<i32>> = Arc::new(JobQueue::new(1));
        let waiter = {
            let q2 = Arc::clone(&q2);
            std::thread::spawn(move || q2.pop())
        };
        std::thread::sleep(Duration::from_millis(20));
        q2.close();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let q = Arc::new(JobQueue::new(8));
        let n_producers = 4;
        let per_producer = 50;
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..n_producers)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..per_producer {
                        let job = p * per_producer + i;
                        // Spin on Full — producers outpace consumers.
                        while q.try_push(job) == Err(PushError::Full) {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..n_producers * per_producer).collect();
        assert_eq!(all, expect);
    }
}
