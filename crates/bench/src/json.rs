//! A tiny JSON writer — the workspace's replacement for `serde`.
//!
//! The bench harness and figure binaries only ever need to *emit*
//! machine-readable reports, never parse them, so a value tree with a
//! `Display` impl covers the whole requirement in ~100 lines. Output is
//! deterministic: object keys keep insertion order, floats are written
//! with enough precision to round-trip (`{:?}` semantics), and strings
//! are escaped per RFC 8259.

use std::fmt;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number. Non-finite floats serialize as `null` (JSON has
    /// no NaN/Inf), matching what the figure post-processing expects.
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience object constructor from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serializes with two-space indentation and a trailing newline —
    /// the format the report files use.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&"  ".repeat(depth + 1));
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&"  ".repeat(depth + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push('}');
            }
            other => {
                use fmt::Write;
                write!(out, "{other}").expect("write to String is infallible");
            }
        }
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                write!(out, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    /// Compact (single-line) serialization.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) if v.is_finite() => {
                if *v == v.trunc() && v.abs() < 1e15 {
                    write!(f, "{}", *v as i64)
                } else {
                    write!(f, "{v:?}")
                }
            }
            Json::Num(_) => write!(f, "null"),
            Json::Str(s) => {
                let mut buf = String::new();
                write_escaped(&mut buf, s);
                write!(f, "{buf}")
            }
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    let mut buf = String::new();
                    write_escaped(&mut buf, k);
                    write!(f, "{buf}:{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip_shapes() {
        let v = Json::obj([
            ("name", Json::str("rx_apply/4")),
            ("median_ns", Json::Num(1234.5)),
            ("iters", Json::from(20usize)),
            ("ok", Json::Bool(true)),
            ("tags", Json::Arr(vec![Json::str("a"), Json::Null])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"rx_apply/4","median_ns":1234.5,"iters":20,"ok":true,"tags":["a",null]}"#
        );
    }

    #[test]
    fn integral_floats_print_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(-3.0).to_string(), "-3");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(
            Json::str("a\"b\\c\nd\u{1}").to_string(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn pretty_output_is_indented_and_newline_terminated() {
        let v = Json::obj([("xs", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)]))]);
        let s = v.to_pretty_string();
        assert!(s.ends_with('\n'));
        assert!(s.contains("  \"xs\": ["));
        assert!(s.contains("\n    1,"));
    }

    #[test]
    fn empty_containers_stay_compact() {
        assert_eq!(Json::Arr(vec![]).to_pretty_string(), "[]\n");
        assert_eq!(Json::Obj(vec![]).to_pretty_string(), "{}\n");
    }
}
