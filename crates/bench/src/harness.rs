//! A hand-rolled micro-benchmark harness — the workspace's replacement
//! for `criterion`.
//!
//! Methodology per benchmark:
//!
//! 1. **Warmup** — the closure runs until [`BenchOptions::warmup`] has
//!    elapsed, so caches, branch predictors, and allocator pools settle.
//! 2. **Calibration** — the warmup's mean iteration time picks a batch
//!    size such that one timed batch lasts at least
//!    [`BenchOptions::min_batch`] (timer quantization stays ≪ 1%).
//! 3. **Measurement** — [`BenchOptions::samples`] batches are timed; each
//!    yields one per-iteration estimate (batch time / batch size).
//! 4. **Statistics** — median, mean, standard deviation, min, and max of
//!    those estimates. The *median* is the headline number: it is robust
//!    to the occasional descheduling spike that contaminates means.
//!
//! Reports print as a table to stdout and, when `PLATEAU_BENCH_JSON` is
//! set to a path, also land there as a JSON document (written by the
//! in-repo [`crate::json`] writer).
//!
//! # Examples
//!
//! ```
//! use plateau_bench::harness::Harness;
//!
//! let mut h = Harness::new("example").quick();
//! h.group("arith").bench("add", || std::hint::black_box(2u64 + 2));
//! let reports = h.finish();
//! assert_eq!(reports[0].name, "arith/add");
//! assert!(reports[0].median_ns >= 0.0);
//! ```

use crate::json::Json;
use std::time::{Duration, Instant};

/// Re-export of the optimizer barrier used by every benchmark closure.
pub use std::hint::black_box;

/// Tunables of the measurement loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchOptions {
    /// Wall-clock spent warming up before calibration.
    pub warmup: Duration,
    /// Number of timed batches (one statistic sample each).
    pub samples: usize,
    /// Minimum duration of one timed batch.
    pub min_batch: Duration,
}

impl Default for BenchOptions {
    fn default() -> BenchOptions {
        BenchOptions {
            warmup: Duration::from_millis(60),
            samples: 20,
            min_batch: Duration::from_millis(5),
        }
    }
}

impl BenchOptions {
    /// Smoke-test scale: minimal warmup, 5 samples, tiny batches. Used by
    /// the test suite and `PLATEAU_SCALE=quick` runs.
    pub fn quick() -> BenchOptions {
        BenchOptions {
            warmup: Duration::from_millis(1),
            samples: 5,
            min_batch: Duration::from_micros(50),
        }
    }
}

/// The measured result of one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// `group/id` label.
    pub name: String,
    /// Total iterations across all timed batches.
    pub iterations: u64,
    /// Median per-iteration time (headline metric).
    pub median_ns: f64,
    /// 90th-percentile per-batch estimate (nearest rank).
    pub p90_ns: f64,
    /// Mean per-iteration time.
    pub mean_ns: f64,
    /// Standard deviation of the per-batch estimates.
    pub stddev_ns: f64,
    /// Fastest batch estimate.
    pub min_ns: f64,
    /// Slowest batch estimate.
    pub max_ns: f64,
}

impl Report {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(self.name.clone())),
            ("iterations", Json::Num(self.iterations as f64)),
            ("median_ns", Json::Num(self.median_ns)),
            ("p90_ns", Json::Num(self.p90_ns)),
            ("mean_ns", Json::Num(self.mean_ns)),
            ("stddev_ns", Json::Num(self.stddev_ns)),
            ("min_ns", Json::Num(self.min_ns)),
            ("max_ns", Json::Num(self.max_ns)),
        ])
    }
}

/// Collects benchmarks, runs them on registration, and emits the report
/// table (and optional JSON file) on [`Harness::finish`].
#[derive(Debug)]
pub struct Harness {
    name: String,
    options: BenchOptions,
    reports: Vec<Report>,
    config: Vec<(String, Json)>,
    notes: Vec<String>,
}

impl Harness {
    /// Creates a harness. `PLATEAU_SCALE=quick` in the environment
    /// switches to [`BenchOptions::quick`] automatically.
    pub fn new(name: &str) -> Harness {
        crate::init_observability(name);
        let options = if std::env::var("PLATEAU_SCALE").as_deref() == Ok("quick") {
            BenchOptions::quick()
        } else {
            BenchOptions::default()
        };
        println!("# bench harness: {name}");
        Harness {
            name: name.to_string(),
            options,
            reports: Vec::new(),
            config: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Switches this harness to smoke-test scale regardless of the
    /// environment.
    pub fn quick(mut self) -> Harness {
        self.options = BenchOptions::quick();
        self
    }

    /// Stamps a workload parameter (qubit count, layer count, thread
    /// count, …) into the JSON report and every perf-ledger record, so
    /// history stays comparable across config changes.
    pub fn config(&mut self, key: &str, value: Json) {
        self.config.push((key.to_string(), value));
    }

    /// Attaches a free-form note to the JSON report (e.g. a measured
    /// crossover point or the reasoning behind a default).
    pub fn note(&mut self, text: &str) {
        self.notes.push(text.to_string());
    }

    /// Opens a named benchmark group; benchmarks registered on it report
    /// as `group/id`.
    pub fn group(&mut self, group: &str) -> Group<'_> {
        Group {
            harness: self,
            group: group.to_string(),
            options: None,
        }
    }

    /// Prints the summary table, writes the JSON report if
    /// `PLATEAU_BENCH_JSON` names a path, and returns the reports.
    pub fn finish(self) -> Vec<Report> {
        println!(
            "\n{:<40} {:>12} {:>12} {:>12} {:>10}",
            "benchmark", "median", "mean", "stddev", "iters"
        );
        for r in &self.reports {
            println!(
                "{:<40} {:>12} {:>12} {:>12} {:>10}",
                r.name,
                format_ns(r.median_ns),
                format_ns(r.mean_ns),
                format_ns(r.stddev_ns),
                r.iterations
            );
        }
        if let Ok(path) = std::env::var("PLATEAU_BENCH_JSON") {
            let mut fields = vec![
                ("harness".to_string(), Json::str(self.name.clone())),
                (
                    "benchmarks".to_string(),
                    Json::Arr(self.reports.iter().map(Report::to_json).collect()),
                ),
            ];
            if !self.config.is_empty() {
                fields.push(("config".to_string(), Json::Obj(self.config.clone())));
            }
            if !self.notes.is_empty() {
                fields.push((
                    "notes".to_string(),
                    Json::Arr(self.notes.iter().cloned().map(Json::str).collect()),
                ));
            }
            let doc = Json::Obj(fields);
            match std::fs::write(&path, doc.to_pretty_string()) {
                Ok(()) => println!("# json report: {path}"),
                Err(e) => plateau_obs::warn!("failed to write {path}: {e}"),
            }
        }
        self.record_perf_ledger();
        plateau_obs::finish_run();
        self.reports
    }

    /// Appends one perf-ledger record per report when `PLATEAU_PERF` is
    /// on. Peak bytes ride along when the counting allocator is live.
    fn record_perf_ledger(&self) {
        if !plateau_obs::perf::perf_enabled() {
            return;
        }
        let peak = match plateau_obs::alloc::profiling_active() {
            true => Some(plateau_obs::alloc::stats().peak_bytes),
            false => None,
        };
        let mut appended_to = None;
        for r in &self.reports {
            let mut rec = plateau_obs::perf::PerfRecord::new(&r.name, r.median_ns, r.p90_ns)
                .config("harness", Json::str(self.name.clone()));
            for (k, v) in &self.config {
                rec = rec.config(k, v.clone());
            }
            if let Some(bytes) = peak {
                rec = rec.peak_bytes(bytes);
            }
            match plateau_obs::perf::record_perf(&rec) {
                Ok(path) => appended_to = path,
                Err(e) => plateau_obs::warn!("perf ledger append failed for {}: {e}", r.name),
            }
        }
        if let Some(path) = appended_to {
            println!(
                "# perf ledger: appended {} record(s) to {}",
                self.reports.len(),
                path.display()
            );
        }
    }

    fn run_one<T>(&mut self, name: String, options: BenchOptions, mut f: impl FnMut() -> T) {
        // Warmup, tracking the mean iteration time for calibration.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < options.warmup || warmup_iters == 0 {
            black_box(f());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;

        // Batch size so a batch lasts at least min_batch.
        let batch = ((options.min_batch.as_secs_f64() / per_iter).ceil() as u64).max(1);

        let mut estimates_ns = Vec::with_capacity(options.samples);
        for _ in 0..options.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            estimates_ns.push(t0.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }

        let report = Report {
            name,
            iterations: batch * options.samples as u64,
            median_ns: median(&estimates_ns),
            p90_ns: percentile(&estimates_ns, 0.9),
            mean_ns: mean(&estimates_ns),
            stddev_ns: stddev(&estimates_ns),
            min_ns: estimates_ns.iter().copied().fold(f64::INFINITY, f64::min),
            max_ns: estimates_ns.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        };
        plateau_obs::debug!(
            "bench {}: median {}",
            report.name,
            format_ns(report.median_ns)
        );
        if plateau_obs::span::jsonl_active() {
            if let Json::Obj(mut pairs) = report.to_json() {
                pairs.insert(0, ("type".to_string(), Json::str("bench")));
                plateau_obs::span::write_jsonl_record(&Json::Obj(pairs));
            }
        }
        self.reports.push(report);
    }
}

/// A benchmark group handle (see [`Harness::group`]).
#[derive(Debug)]
pub struct Group<'a> {
    harness: &'a mut Harness,
    group: String,
    options: Option<BenchOptions>,
}

impl Group<'_> {
    /// Overrides the sample count for this group (criterion's
    /// `sample_size` knob).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        let mut o = self.options.unwrap_or(self.harness.options);
        o.samples = samples.max(2);
        self.options = Some(o);
        self
    }

    /// Runs one benchmark now and records its report as `group/id`.
    pub fn bench<T>(&mut self, id: &str, f: impl FnMut() -> T) {
        let name = format!("{}/{}", self.group, id);
        let options = self.options.unwrap_or(self.harness.options);
        self.harness.run_one(name, options, f);
    }
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn median(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Nearest-rank percentile (matches the perf-ledger read side).
fn percentile(xs: &[f64], q: f64) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let rank = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len());
    v[rank - 1]
}

fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0];
        assert_eq!(percentile(&xs, 0.9), 90.0);
        assert_eq!(percentile(&xs, 0.5), 50.0);
        assert_eq!(percentile(&[7.0], 0.9), 7.0);
    }

    #[test]
    fn stddev_of_constant_is_zero() {
        assert_eq!(stddev(&[5.0, 5.0, 5.0]), 0.0);
        assert_eq!(stddev(&[5.0]), 0.0);
    }

    #[test]
    fn stddev_matches_hand_computation() {
        // Sample stddev of {1, 2, 3, 4} is sqrt(5/3).
        let s = stddev(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn harness_measures_and_labels() {
        let mut h = Harness::new("selftest").quick();
        let mut calls = 0u64;
        h.group("g").bench("noop", || calls += 1);
        let reports = h.finish();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].name, "g/noop");
        assert!(reports[0].iterations > 0);
        assert!(calls >= reports[0].iterations);
        assert!(reports[0].min_ns <= reports[0].median_ns);
        assert!(reports[0].median_ns <= reports[0].max_ns);
    }

    #[test]
    fn sample_size_override_applies() {
        let mut h = Harness::new("selftest2").quick();
        h.group("g").sample_size(3).bench("noop", || ());
        let reports = h.finish();
        assert!(reports[0].iterations >= 3);
    }

    #[test]
    fn format_ns_units() {
        assert_eq!(format_ns(12.3), "12.3 ns");
        assert_eq!(format_ns(12_300.0), "12.30 µs");
        assert_eq!(format_ns(12_300_000.0), "12.30 ms");
        assert_eq!(format_ns(2.5e9), "2.50 s");
    }
}
