//! CI gate for the gradient-dynamics telemetry in the training loop and
//! the allocation profiler's off-path: recording must be cheap when on
//! and invisible when off.
//!
//! Four checks, any failure exits non-zero:
//!
//! 1. **Allocation parity.** Counted through the shared
//!    [`plateau_obs::alloc::CountingAllocator`], `train_instrumented`
//!    with telemetry disabled performs exactly as many heap allocations
//!    as the plain `train` baseline — the disabled telemetry path is
//!    allocation-free.
//! 2. **Steady-state.** With telemetry disabled, the per-iteration
//!    allocation count is constant: growing the iteration budget adds a
//!    fixed number of allocations per extra step, so no per-step telemetry
//!    state accumulates behind the knob.
//! 3. **Wall overhead.** Interleaved repetitions of the same training run
//!    with series recording on and off; the on/off median ratio must stay
//!    below `PLATEAU_TELEMETRY_OVERHEAD_FACTOR` (default 1.02, i.e. < 2%).
//! 4. **Profiler off-path.** Disabled spans allocate exactly zero bytes
//!    even with the counting allocator live, and training with the
//!    profiler enabled vs disabled stays within
//!    `PLATEAU_ALLOC_OVERHEAD_FACTOR` (default 1.05) — the per-allocation
//!    bookkeeping is a handful of relaxed atomics, not a slowdown.

use plateau_core::ansatz::training_ansatz;
use plateau_core::cost::CostKind;
use plateau_core::init::InitStrategy;
use plateau_core::optim::Adam;
use plateau_core::train::{
    train, train_instrumented, BarrenPlateauAlarm, TrainRun, TrainTelemetry,
};
use plateau_grad::Adjoint;
use plateau_obs::alloc::{allocation_count, set_profiling, stats, CountingAllocator};
use plateau_rng::rngs::StdRng;
use plateau_rng::SeedableRng;
use std::time::Instant;

/// The bench *library* forbids `unsafe`; this standalone gate binary is
/// the one place the allocator seam is installed for CI.
#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

struct Workload {
    circuit: plateau_sim::Circuit,
    observable: plateau_sim::Observable,
    theta0: Vec<f64>,
    params_per_layer: usize,
}

fn workload(qubits: usize, layers: usize) -> Workload {
    let ansatz = training_ansatz(qubits, layers).expect("ansatz");
    let mut rng = StdRng::seed_from_u64(7);
    let theta0 = InitStrategy::XavierNormal
        .sample_params(&ansatz.shape, plateau_core::init::FanMode::TensorShape, &mut rng)
        .expect("init");
    Workload {
        circuit: ansatz.circuit,
        observable: CostKind::Global.observable(qubits),
        theta0,
        params_per_layer: ansatz.shape.params_per_layer(),
    }
}

fn run_instrumented(w: &Workload, iterations: usize, record: bool) -> TrainRun {
    let mut adam = Adam::new(0.1).expect("adam");
    let telemetry = TrainTelemetry {
        params_per_layer: Some(w.params_per_layer),
        // No decimation in the measured window: capacity covers every row.
        series_capacity: iterations.max(2),
        record_series: record,
        run: None,
    };
    train_instrumented(
        &w.circuit,
        &w.observable,
        w.theta0.clone(),
        &mut adam,
        iterations,
        &Adjoint,
        &BarrenPlateauAlarm::default(),
        telemetry,
    )
    .expect("train")
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn factor_env(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    // The gate measures the telemetry seam itself: metrics registry off,
    // ledger off, single-threaded so allocation counts are deterministic.
    std::env::remove_var("PLATEAU_METRICS");
    std::env::remove_var("PLATEAU_METRICS_OUT");
    std::env::remove_var("PLATEAU_LEDGER");
    std::env::set_var("PLATEAU_THREADS", "1");
    plateau_obs::set_log_level(plateau_obs::Level::Off);
    plateau_obs::set_metrics_enabled(false);

    assert!(
        set_profiling(true),
        "the counting allocator is installed in this binary; profiling must engage"
    );

    let w = workload(6, 4);

    // Warm up every lazy path (pool, knob caches, allocator pools) at the
    // same iteration counts the checks below measure, so first-use state
    // isn't charged to whichever arm happens to run first.
    for n in [20usize, 40, 60] {
        run_instrumented(&w, n, false);
    }
    run_instrumented(&w, 20, true);
    train(&w.circuit, &w.observable, w.theta0.clone(), &mut Adam::new(0.1).unwrap(), 20)
        .expect("train");

    // Check 1: telemetry-off and the plain baseline allocate identically.
    let count = |f: &dyn Fn()| {
        let before = allocation_count();
        f();
        allocation_count() - before
    };
    let iters = 20usize;
    let plain = count(&|| {
        train(&w.circuit, &w.observable, w.theta0.clone(), &mut Adam::new(0.1).unwrap(), iters)
            .map(|_| ())
            .expect("train");
    });
    let disabled = count(&|| {
        run_instrumented(&w, iters, false);
    });
    println!("# allocations over {iters} iterations: plain {plain}, telemetry-off {disabled}");
    assert_eq!(
        disabled, plain,
        "telemetry-off training must be allocation-free relative to the baseline"
    );

    // Check 2: the disabled path's marginal allocations per iteration are
    // constant — nothing accumulates per step behind the telemetry knob.
    let at = |n: usize| count(&|| {
        run_instrumented(&w, n, false);
    });
    let (a20, a40, a60) = (at(20), at(40), at(60));
    println!("# telemetry-off allocations: 20 iters {a20}, 40 iters {a40}, 60 iters {a60}");
    assert_eq!(
        a40 - a20,
        a60 - a40,
        "per-iteration allocation count must be constant with telemetry off"
    );

    // Check 3: series recording costs < 2% wall time on the training step.
    // Profiling stays on in both arms, so its bookkeeping cancels out —
    // the same state the old always-counting allocator measured in.
    // Each repeat runs both arms back to back and contributes one paired
    // on/off ratio; the median of those ratios is immune to the slow
    // drift (CPU frequency, noisy neighbors) that contaminates a ratio
    // of independent medians on a shared host.
    let factor = factor_env("PLATEAU_TELEMETRY_OVERHEAD_FACTOR", 1.02);
    let (bench_iters, repeats) = (40usize, 21usize);
    let mut ratios = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let t = Instant::now();
        run_instrumented(&w, bench_iters, false);
        let off = t.elapsed().as_nanos() as f64;
        let t = Instant::now();
        run_instrumented(&w, bench_iters, true);
        ratios.push(t.elapsed().as_nanos() as f64 / off);
    }
    let ratio = median(&mut ratios);
    let verdict = if ratio <= factor { "ok" } else { "REGRESSION" };
    println!(
        "# recording-on/off paired median over {repeats} repeats: x{ratio:.4} (limit x{factor:.2}) {verdict}"
    );
    if ratio > factor {
        eprintln!(
            "telemetry overhead gate FAILED: series recording costs {:.2}% (limit {:.2}%)",
            (ratio - 1.0) * 100.0,
            (factor - 1.0) * 100.0
        );
        std::process::exit(1);
    }

    // Check 4a: the span off-path is allocation-free. Metrics and the
    // JSONL sink are off, so these spans take the disabled early-return —
    // which must not touch the heap even while the profiler is counting.
    let before = allocation_count();
    for _ in 0..10_000 {
        let _s = plateau_obs::span!("gate.noop");
    }
    let span_allocs = allocation_count() - before;
    println!("# 10000 disabled spans allocated {span_allocs} time(s)");
    assert_eq!(span_allocs, 0, "disabled spans must not allocate");

    // Check 4b: counting itself (a few relaxed atomics per allocation)
    // must not measurably slow the training step: paired profiler-on /
    // profiler-off ratios, same protocol as check 3.
    let alloc_factor = factor_env("PLATEAU_ALLOC_OVERHEAD_FACTOR", 1.05);
    let mut prof_ratios = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        set_profiling(false);
        let t = Instant::now();
        run_instrumented(&w, bench_iters, false);
        let off = t.elapsed().as_nanos() as f64;
        set_profiling(true);
        let t = Instant::now();
        run_instrumented(&w, bench_iters, false);
        prof_ratios.push(t.elapsed().as_nanos() as f64 / off);
    }
    let prof_ratio = median(&mut prof_ratios);
    let verdict = if prof_ratio <= alloc_factor { "ok" } else { "REGRESSION" };
    println!(
        "# profiler-on/off paired median over {repeats} repeats: x{prof_ratio:.4} (limit x{alloc_factor:.2}) {verdict}"
    );
    if prof_ratio > alloc_factor {
        eprintln!(
            "alloc profiler overhead gate FAILED: counting costs {:.2}% (limit {:.2}%)",
            (prof_ratio - 1.0) * 100.0,
            (alloc_factor - 1.0) * 100.0
        );
        std::process::exit(1);
    }

    let s = stats();
    println!(
        "# profiler totals: {} allocation(s), {} byte(s) cumulative, peak footprint {}",
        s.count,
        s.bytes,
        plateau_obs::alloc::fmt_bytes(s.peak_bytes)
    );
    println!("# telemetry overhead gate passed");
}
