//! CI gate for the gradient-dynamics telemetry in the training loop:
//! recording must be cheap when on and invisible when off.
//!
//! Three checks, any failure exits non-zero:
//!
//! 1. **Allocation parity.** Counted through a wrapping global allocator,
//!    `train_instrumented` with telemetry disabled performs exactly as
//!    many heap allocations as the plain `train` baseline — the disabled
//!    telemetry path is allocation-free.
//! 2. **Steady-state.** With telemetry disabled, the per-iteration
//!    allocation count is constant: growing the iteration budget adds a
//!    fixed number of allocations per extra step, so no per-step telemetry
//!    state accumulates behind the knob.
//! 3. **Wall overhead.** Interleaved repetitions of the same training run
//!    with series recording on and off; the on/off median ratio must stay
//!    below `PLATEAU_TELEMETRY_OVERHEAD_FACTOR` (default 1.02, i.e. < 2%).

use plateau_core::ansatz::training_ansatz;
use plateau_core::cost::CostKind;
use plateau_core::init::InitStrategy;
use plateau_core::optim::Adam;
use plateau_core::train::{
    train, train_instrumented, BarrenPlateauAlarm, TrainRun, TrainTelemetry,
};
use plateau_grad::Adjoint;
use plateau_rng::rngs::StdRng;
use plateau_rng::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Wraps the system allocator with an allocation counter. The bench
/// *library* forbids `unsafe`; this standalone gate binary is the one
/// place the allocator seam is allowed.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

struct Workload {
    circuit: plateau_sim::Circuit,
    observable: plateau_sim::Observable,
    theta0: Vec<f64>,
    params_per_layer: usize,
}

fn workload(qubits: usize, layers: usize) -> Workload {
    let ansatz = training_ansatz(qubits, layers).expect("ansatz");
    let mut rng = StdRng::seed_from_u64(7);
    let theta0 = InitStrategy::XavierNormal
        .sample_params(&ansatz.shape, plateau_core::init::FanMode::TensorShape, &mut rng)
        .expect("init");
    Workload {
        circuit: ansatz.circuit,
        observable: CostKind::Global.observable(qubits),
        theta0,
        params_per_layer: ansatz.shape.params_per_layer(),
    }
}

fn run_instrumented(w: &Workload, iterations: usize, record: bool) -> TrainRun {
    let mut adam = Adam::new(0.1).expect("adam");
    let telemetry = TrainTelemetry {
        params_per_layer: Some(w.params_per_layer),
        // No decimation in the measured window: capacity covers every row.
        series_capacity: iterations.max(2),
        record_series: record,
        run: None,
    };
    train_instrumented(
        &w.circuit,
        &w.observable,
        w.theta0.clone(),
        &mut adam,
        iterations,
        &Adjoint,
        &BarrenPlateauAlarm::default(),
        telemetry,
    )
    .expect("train")
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    // The gate measures the telemetry seam itself: metrics registry off,
    // ledger off, single-threaded so allocation counts are deterministic.
    std::env::remove_var("PLATEAU_METRICS");
    std::env::remove_var("PLATEAU_METRICS_OUT");
    std::env::remove_var("PLATEAU_LEDGER");
    std::env::set_var("PLATEAU_THREADS", "1");
    plateau_obs::set_log_level(plateau_obs::Level::Off);
    plateau_obs::set_metrics_enabled(false);

    let w = workload(6, 4);

    // Warm up every lazy path (pool, knob caches, allocator pools) at the
    // same iteration counts the checks below measure, so first-use state
    // isn't charged to whichever arm happens to run first.
    for n in [20usize, 40, 60] {
        run_instrumented(&w, n, false);
    }
    run_instrumented(&w, 20, true);
    train(&w.circuit, &w.observable, w.theta0.clone(), &mut Adam::new(0.1).unwrap(), 20)
        .expect("train");

    // Check 1: telemetry-off and the plain baseline allocate identically.
    let count = |f: &dyn Fn()| {
        let before = allocations();
        f();
        allocations() - before
    };
    let iters = 20usize;
    let plain = count(&|| {
        train(&w.circuit, &w.observable, w.theta0.clone(), &mut Adam::new(0.1).unwrap(), iters)
            .map(|_| ())
            .expect("train");
    });
    let disabled = count(&|| {
        run_instrumented(&w, iters, false);
    });
    println!("# allocations over {iters} iterations: plain {plain}, telemetry-off {disabled}");
    assert_eq!(
        disabled, plain,
        "telemetry-off training must be allocation-free relative to the baseline"
    );

    // Check 2: the disabled path's marginal allocations per iteration are
    // constant — nothing accumulates per step behind the telemetry knob.
    let at = |n: usize| count(&|| {
        run_instrumented(&w, n, false);
    });
    let (a20, a40, a60) = (at(20), at(40), at(60));
    println!("# telemetry-off allocations: 20 iters {a20}, 40 iters {a40}, 60 iters {a60}");
    assert_eq!(
        a40 - a20,
        a60 - a40,
        "per-iteration allocation count must be constant with telemetry off"
    );

    // Check 3: series recording costs < 2% wall time on the training step.
    let factor: f64 = std::env::var("PLATEAU_TELEMETRY_OVERHEAD_FACTOR")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.02);
    let (bench_iters, repeats) = (40usize, 15usize);
    let mut off_ns = Vec::with_capacity(repeats);
    let mut on_ns = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        // Interleave so drift (thermal, scheduler) hits both arms equally.
        let t = Instant::now();
        run_instrumented(&w, bench_iters, false);
        off_ns.push(t.elapsed().as_nanos() as f64);
        let t = Instant::now();
        run_instrumented(&w, bench_iters, true);
        on_ns.push(t.elapsed().as_nanos() as f64);
    }
    let off = median(&mut off_ns);
    let on = median(&mut on_ns);
    let ratio = on / off;
    let verdict = if ratio <= factor { "ok" } else { "REGRESSION" };
    println!(
        "# recording-on median {on:.0} ns vs off {off:.0} ns (x{ratio:.4}, limit x{factor:.2}) {verdict}"
    );
    if ratio > factor {
        eprintln!(
            "telemetry overhead gate FAILED: series recording costs {:.2}% (limit {:.2}%)",
            (ratio - 1.0) * 100.0,
            (factor - 1.0) * 100.0
        );
        std::process::exit(1);
    }
    println!("# telemetry overhead gate passed");
}
