//! Ablation **A4**: analytic vs finite-shot gradient estimation. The paper
//! (like most barren-plateau studies) uses analytic expectation values;
//! on hardware the gradient is estimated from finite shot counts, and once
//! the true gradient variance falls below the shot-noise floor
//! (`∝ 1/shots`), the plateau becomes *unmeasurable*, not just hard to
//! descend. This binary locates that crossover.

use plateau_bench::{banner, csv_header, csv_row, timed, Scale};
use plateau_core::ansatz::variance_ansatz;
use plateau_core::cost::CostKind;
use plateau_core::init::{FanMode, InitStrategy};
use plateau_stats::variance;
use plateau_sim::estimate_expectation;
use plateau_rng::rngs::StdRng;
use plateau_rng::SeedableRng;
use std::f64::consts::FRAC_PI_2;

/// Parameter-shift estimate of dC/dθ_last from finite shots.
fn shot_gradient(
    circuit: &plateau_sim::Circuit,
    params: &[f64],
    obs: &plateau_sim::Observable,
    shots: usize,
    rng: &mut StdRng,
) -> f64 {
    let last = params.len() - 1;
    let mut shifted = params.to_vec();
    shifted[last] += FRAC_PI_2;
    let plus_state = circuit.run(&shifted).expect("run");
    let plus = estimate_expectation(&plus_state, obs, shots, rng).expect("diagonal obs");
    shifted[last] -= 2.0 * FRAC_PI_2;
    let minus_state = circuit.run(&shifted).expect("run");
    let minus = estimate_expectation(&minus_state, obs, shots, rng).expect("diagonal obs");
    (plus - minus) / 2.0
}

fn main() {
    let scale = Scale::from_env();
    banner("Ablation A4: shot noise vs barren-plateau gradient signal", scale);

    let n_qubits = scale.pick(8, 4);
    let layers = scale.pick(50, 6);
    let n_circuits = scale.pick(100, 16);
    let shot_budgets: &[usize] = &[0, 100, 1000, 10_000]; // 0 = analytic
    println!("# qubits={n_qubits} layers={layers} circuits={n_circuits}");

    println!("\n## Var[dC/dθ_last] per (strategy, shot budget); shots=0 means analytic");
    csv_header(&["strategy", "analytic", "shots_100", "shots_1000", "shots_10000"]);
    for strategy in [InitStrategy::Random, InitStrategy::XavierNormal] {
        let row = timed(&format!("strategy {}", strategy.name()), || {
            let mut cells = Vec::new();
            for &shots in shot_budgets {
                let mut grads = Vec::with_capacity(n_circuits);
                for i in 0..n_circuits {
                    let mut circ_rng = StdRng::seed_from_u64(0xA4_000 + i as u64);
                    let ansatz =
                        variance_ansatz(n_qubits, layers, &mut circ_rng).expect("ansatz");
                    let mut param_rng =
                        StdRng::seed_from_u64((0xA4_100 + i as u64) ^ strategy.name().len() as u64);
                    let params = strategy
                        .sample_params(&ansatz.shape, FanMode::Qubits, &mut param_rng)
                        .expect("params");
                    let obs = CostKind::Global.observable(n_qubits);
                    let g = if shots == 0 {
                        use plateau_grad::GradientEngine;
                        plateau_grad::ParameterShift
                            .partial_last(&ansatz.circuit, &params, &obs)
                            .expect("gradient")
                    } else {
                        let mut shot_rng =
                            StdRng::seed_from_u64(0xA4_200 + i as u64 + shots as u64);
                        shot_gradient(&ansatz.circuit, &params, &obs, shots, &mut shot_rng)
                    };
                    grads.push(g);
                }
                cells.push(variance(&grads));
            }
            cells
        });
        csv_row(strategy.name(), &row);
    }
    println!("# expectation: the measured variance is (true variance + shot-noise floor);");
    println!("# for random init at larger qubit counts the floor dominates, so the");
    println!("# columns converge to ~1/(2·shots) regardless of the true gradient.");
    plateau_bench::finish_observability();
}
