//! Ablation **A7**: the paper's initialization strategies head-to-head
//! with the related-work mitigations it cites — identity-block
//! initialization (§II-a, Grant et al.), quantum natural gradient (§II-b),
//! and layerwise training (§II-c) — plus SPSA as a gradient-free control,
//! all on the 10-qubit identity-learning task of §IV-D.

use plateau_bench::{banner, csv_header, csv_row, timed, Scale};
use plateau_core::ansatz::training_ansatz;
use plateau_core::cost::CostKind;
use plateau_core::init::{FanMode, InitStrategy};
use plateau_core::mitigation::{identity_block_ansatz, identity_block_params, train_layerwise};
use plateau_core::optim::{Adam, Optimizer};
use plateau_core::qng::{train_qng, QngConfig};
use plateau_core::spsa::{train_spsa, SpsaConfig};
use plateau_core::train::{train, TrainingHistory};
use plateau_rng::rngs::StdRng;
use plateau_rng::SeedableRng;

fn summarize(label: &str, hist: &TrainingHistory) {
    let reach = hist
        .iterations_to_reach(0.1)
        .map(|i| i as f64)
        .unwrap_or(f64::NAN);
    csv_row(label, &[hist.initial_loss(), hist.final_loss(), reach]);
}

fn main() {
    let scale = Scale::from_env();
    banner("Ablation A7: initialization vs related-work mitigations", scale);

    let n_qubits = scale.pick(10, 4);
    let layers = 5;
    let iterations = 50;
    let ansatz = training_ansatz(n_qubits, layers).expect("ansatz");
    let obs = CostKind::Global.observable(n_qubits);
    println!("# task: identity learning, {n_qubits} qubits, {layers} layers, {iterations} iterations");

    println!("\n## final cost per method (Adam lr = 0.1 where applicable)");
    csv_header(&["method", "initial_loss", "final_loss", "iters_to_0.1"]);

    // 1–2. The paper's recipe: Xavier vs random baseline, plain Adam.
    for strategy in [InitStrategy::XavierNormal, InitStrategy::Random] {
        let mut rng = StdRng::seed_from_u64(0xA70 + strategy.name().len() as u64);
        let theta0 = strategy
            .sample_params(&ansatz.shape, FanMode::TensorShape, &mut rng)
            .expect("init");
        let mut adam = Adam::new(0.1).expect("adam");
        let hist = timed(&format!("adam + {}", strategy.name()), || {
            train(&ansatz.circuit, &obs, theta0, &mut adam, iterations).expect("train")
        });
        summarize(&format!("adam_{}", strategy.name()), &hist);
    }

    // 3. Identity-block initialization (Grant et al.) on the block ansatz
    //    of equivalent depth (blocks × 2 halves ≈ layers).
    {
        let blocks = (layers / 2).max(1);
        let ib = identity_block_ansatz(n_qubits, blocks, 1).expect("identity-block ansatz");
        let mut rng = StdRng::seed_from_u64(0xA71);
        let theta0 = identity_block_params(&ib, &mut rng).expect("identity-block init");
        let mut adam = Adam::new(0.1).expect("adam");
        let hist = timed("adam + identity-block", || {
            train(&ib.circuit, &obs, theta0, &mut adam, iterations).expect("train")
        });
        summarize("adam_identity_block", &hist);
    }

    // 4. Layerwise training (Skolik et al.) from the random baseline.
    {
        let mut rng = StdRng::seed_from_u64(0xA72);
        let theta0 = InitStrategy::Random
            .sample_params(&ansatz.shape, FanMode::TensorShape, &mut rng)
            .expect("init");
        let per_stage = iterations / layers;
        let hist = timed("layerwise + random", || {
            train_layerwise(
                &ansatz,
                &obs,
                theta0,
                &mut || Box::new(Adam::new(0.1).expect("adam")) as Box<dyn Optimizer>,
                per_stage,
            )
            .expect("layerwise")
        });
        summarize("layerwise_random", &hist);
    }

    // 5. Quantum natural gradient from the random baseline.
    {
        let mut rng = StdRng::seed_from_u64(0xA73);
        let theta0 = InitStrategy::Random
            .sample_params(&ansatz.shape, FanMode::TensorShape, &mut rng)
            .expect("init");
        let hist = timed("qng + random", || {
            train_qng(&ansatz.circuit, &obs, theta0, &QngConfig::default(), iterations)
                .expect("qng")
        });
        summarize("qng_random", &hist);
    }

    // 6. SPSA from the random baseline (gradient-free control).
    {
        let mut rng = StdRng::seed_from_u64(0xA74);
        let theta0 = InitStrategy::Random
            .sample_params(&ansatz.shape, FanMode::TensorShape, &mut rng)
            .expect("init");
        let hist = timed("spsa + random", || {
            train_spsa(
                &ansatz.circuit,
                &obs,
                theta0,
                &SpsaConfig::default(),
                iterations,
                &mut rng,
            )
            .expect("spsa")
        });
        summarize("spsa_random", &hist);
    }

    println!("# expectation: Xavier (simple initialization) competes with the");
    println!("# structurally heavier mitigations; nothing rescues plain random+GD-");
    println!("# family optimizers on the global-cost plateau except a better start");
    println!("# (identity-block also works — it is itself an initialization method).");
    plateau_bench::finish_observability();
}
