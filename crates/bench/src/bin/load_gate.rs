//! Open-loop traffic generator and CI gate for `plateau-serve`.
//!
//! Boots an in-process [`Server`] on an ephemeral port and drives it over
//! raw sockets — the same independent client the integration suites use,
//! so a codec bug symmetric in the server cannot hide. Three phases:
//!
//! 1. **Fixed-seed burst**: a deterministic request mix (simulate /
//!    gradient / variance-scan / train, seeds derived from the request
//!    index) fired from a small pool of generator threads. Every response
//!    must be 200, and the subsequent `/metrics` scrape must report the
//!    **exact** per-endpoint request counts — this binary is the sole
//!    tenant of its process-global registry, so equality (not the
//!    floor-matching the integration tests settle for) is enforceable.
//!    Latencies are reported as p50/p90/p99 and recorded in the bench
//!    JSON.
//! 2. **Backpressure probe**: a second 1-worker/1-slot server is flooded;
//!    every outcome must be a complete 200 or a clean `503 + Retry-After`
//!    — nothing else, and never a torn response.
//! 3. **Cache gate**: the same QASM `/simulate` request measured cold
//!    (cache cleared every iteration) vs LRU-warm. The warm path skips
//!    QASM parse, circuit build, and fusion compile, so the cold median
//!    must exceed `warm × PLATEAU_SERVE_CACHE_TOL` (default 1.2) or the
//!    gate fails (exit 1).
//!
//! Run with `--record` to also write `benchmarks/BENCH_serve.json` (the
//! committed baseline); `PLATEAU_PERF` flows the medians into the perf
//! ledger as usual.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use plateau_bench::harness::{black_box, Harness};
use plateau_bench::json::Json;
use plateau_serve::{ServeConfig, Server};

/// Total burst size and its fixed endpoint mix (must sum to the wave).
const WAVES: usize = 25;
const MIX: [(&str, usize); 4] = [
    ("/simulate", 4),
    ("/gradient", 2),
    ("/variance-scan", 1),
    ("/train", 1),
];
const GENERATORS: usize = 4;

/// Minimal raw-socket client: one request per `Connection: close` socket.
fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: load\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).expect("send");
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("read");
    parse_response(&buf)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let raw = format!("GET {path} HTTP/1.1\r\nHost: load\r\nConnection: close\r\n\r\n");
    stream.write_all(raw.as_bytes()).expect("send");
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("read");
    parse_response(&buf)
}

/// Parses status + body, panicking on a torn or malformed response — the
/// exact failure the backpressure probe is hunting.
fn parse_response(bytes: &[u8]) -> (u16, String) {
    let head_end = bytes
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("complete response head");
    let head = std::str::from_utf8(&bytes[..head_end]).expect("ASCII head");
    let status: u16 = head[9..12].parse().expect("numeric status");
    let len: usize = head
        .split("\r\n")
        .find(|l| l.to_ascii_lowercase().starts_with("content-length"))
        .and_then(|l| l.split(':').nth(1))
        .expect("Content-Length header")
        .trim()
        .parse()
        .expect("numeric length");
    let body_start = head_end + 4;
    assert!(
        bytes.len() == body_start + len,
        "torn response: promised {len} body bytes, got {}",
        bytes.len() - body_start
    );
    let body = String::from_utf8(bytes[body_start..].to_vec()).expect("UTF-8 body");
    (status, body)
}

/// A persistent keep-alive connection for the cache bench: keeps TCP
/// connect + accept out of the measured path so the cold-vs-warm delta
/// isolates the work the LRU cache elides.
struct KeepAlive {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl KeepAlive {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        stream.set_nodelay(true).ok();
        KeepAlive {
            stream,
            buf: Vec::new(),
        }
    }

    fn post(&mut self, path: &str, body: &str) -> (u16, String) {
        let raw = format!(
            "POST {path} HTTP/1.1\r\nHost: load\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.write_all(raw.as_bytes()).expect("send");
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some(head_end) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = std::str::from_utf8(&self.buf[..head_end]).expect("ASCII head");
                let len: usize = head
                    .split("\r\n")
                    .find(|l| l.to_ascii_lowercase().starts_with("content-length"))
                    .and_then(|l| l.split(':').nth(1))
                    .expect("Content-Length header")
                    .trim()
                    .parse()
                    .expect("numeric length");
                if self.buf.len() >= head_end + 4 + len {
                    let status: u16 = head[9..12].parse().expect("numeric status");
                    let body = String::from_utf8(self.buf[head_end + 4..head_end + 4 + len].to_vec())
                        .expect("UTF-8 body");
                    self.buf.drain(..head_end + 4 + len);
                    return (status, body);
                }
            }
            let n = self.stream.read(&mut chunk).expect("read");
            assert!(n > 0, "peer closed mid-response");
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

/// Deterministic body for burst request `i` on `path` — the seed is a
/// pure function of the index, so reruns replay the identical campaign.
fn burst_body(path: &str, i: usize) -> String {
    let seed = 0xfeedu64 + i as u64;
    match path {
        "/simulate" => format!(
            "{{\"circuit\":{{\"qubits\":4,\"ops\":[\
             {{\"gate\":\"ry\",\"qubits\":[0]}},{{\"gate\":\"ry\",\"qubits\":[1]}},\
             {{\"gate\":\"ry\",\"qubits\":[2]}},{{\"gate\":\"ry\",\"qubits\":[3]}},\
             {{\"gate\":\"cz\",\"qubits\":[0,1]}},{{\"gate\":\"cz\",\"qubits\":[2,3]}}]}},\
             \"params\":[0.1,0.2,0.3,0.{}],\"observable\":\"global\",\"seed\":{seed},\"shots\":64}}",
            1 + i % 9
        ),
        "/gradient" => format!(
            "{{\"circuit\":{{\"qubits\":3,\"ops\":[\
             {{\"gate\":\"ry\",\"qubits\":[0]}},{{\"gate\":\"rx\",\"qubits\":[1]}},\
             {{\"gate\":\"ry\",\"qubits\":[2]}},{{\"gate\":\"cz\",\"qubits\":[0,1]}}]}},\
             \"params\":[0.{},0.5,-0.2],\"observable\":\"local\",\"engine\":\"adjoint\",\"seed\":{seed}}}",
            1 + i % 9
        ),
        "/variance-scan" => format!(
            "{{\"qubits\":[2],\"layers\":2,\"circuits\":4,\"strategies\":[\"random\"],\
             \"cost\":\"global\",\"ansatz\":\"random\",\"seed\":{seed}}}"
        ),
        "/train" => format!(
            "{{\"qubits\":2,\"layers\":1,\"iterations\":2,\"strategy\":\"xavier_normal\",\
             \"optimizer\":\"adam\",\"lr\":0.1,\"fan\":\"tensor\",\"seed\":{seed}}}"
        ),
        other => panic!("no body template for {other}"),
    }
}

/// A parse/compile-heavy QASM simulate request: 6 qubits × 30 layers of
/// baked-angle rotations. The run itself touches only 64 amplitudes, so
/// the cold-vs-warm gap is dominated by the work the LRU cache elides
/// (QASM parse + circuit build + fusion compile).
fn cache_gate_body() -> String {
    let n = 6usize;
    let layers: usize = std::env::var("PLATEAU_SERVE_GATE_LAYERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);
    let mut c = plateau_sim::Circuit::new(n).expect("circuit");
    for _ in 0..layers {
        for q in 0..n {
            c.ry(q).expect("ry");
            c.rx(q).expect("rx");
        }
        for q in 0..n - 1 {
            c.cz(q, q + 1).expect("cz");
        }
    }
    let params: Vec<f64> = (0..c.n_params()).map(|p| 0.01 * p as f64).collect();
    let qasm = plateau_sim::qasm::to_qasm(&c, &params).expect("qasm");
    plateau_obs::json::Json::obj([
        (
            "circuit",
            plateau_obs::json::Json::obj([("qasm", plateau_obs::json::Json::str(qasm))]),
        ),
        ("observable", plateau_obs::json::Json::str("global")),
    ])
    .to_string()
}

fn percentile_us(sorted: &[u64], q: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn counter_value(metrics_body: &str, name: &str) -> f64 {
    let snap = plateau_obs::json::Json::parse(metrics_body).expect("metrics JSON");
    snap.as_obj()
        .and_then(|o| o.iter().find(|(k, _)| k == "counters"))
        .and_then(|(_, v)| v.as_obj())
        .and_then(|c| c.iter().find(|(k, _)| k == name))
        .and_then(|(_, v)| v.as_f64())
        .unwrap_or(0.0)
}

fn main() {
    if std::env::args().any(|a| a == "--record") {
        std::env::set_var("PLATEAU_BENCH_JSON", "benchmarks/BENCH_serve.json");
    }

    let server = Server::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.addr();

    // Phase 1: fixed-seed burst. The schedule is a flat, deterministic
    // list; generator threads race down it via an atomic cursor (open
    // loop: nothing waits on anything but its own socket).
    let schedule: Vec<(&'static str, usize)> = (0..WAVES)
        .flat_map(|w| {
            MIX.iter().flat_map(move |&(path, count)| {
                (0..count).map(move |k| (path, w * 8 + k))
            })
        })
        .collect();
    let total = schedule.len();
    let schedule = Arc::new(schedule);
    let cursor = Arc::new(AtomicUsize::new(0));

    println!(
        "# load_gate: {total}-request burst ({} waves of {:?}) from {GENERATORS} generators",
        WAVES,
        MIX.iter().map(|&(p, c)| format!("{c}x{p}")).collect::<Vec<_>>()
    );
    let burst_started = Instant::now();
    let generators: Vec<_> = (0..GENERATORS)
        .map(|_| {
            let schedule = Arc::clone(&schedule);
            let cursor = Arc::clone(&cursor);
            std::thread::spawn(move || {
                let mut latencies_us = Vec::new();
                let mut failures = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&(path, body_idx)) = schedule.get(i) else {
                        break;
                    };
                    let body = burst_body(path, body_idx);
                    let started = Instant::now();
                    let (status, resp) = post(addr, path, &body);
                    latencies_us.push(started.elapsed().as_micros() as u64);
                    if status != 200 {
                        failures.push(format!("{path} -> {status}: {resp}"));
                    }
                }
                (latencies_us, failures)
            })
        })
        .collect();
    let mut latencies_us = Vec::with_capacity(total);
    let mut failures = Vec::new();
    for g in generators {
        let (lat, fail) = g.join().expect("generator thread");
        latencies_us.extend(lat);
        failures.extend(fail);
    }
    let burst_elapsed = burst_started.elapsed();
    if !failures.is_empty() {
        eprintln!("load gate FAILED: {} unexpected non-2xx responses:", failures.len());
        for f in failures.iter().take(5) {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    latencies_us.sort_unstable();
    let (p50, p90, p99) = (
        percentile_us(&latencies_us, 0.50),
        percentile_us(&latencies_us, 0.90),
        percentile_us(&latencies_us, 0.99),
    );
    println!(
        "# burst: {total}/{total} ok in {:.1} ms ({:.0} req/s) — latency p50 {p50} us, \
         p90 {p90} us, p99 {p99} us",
        burst_elapsed.as_secs_f64() * 1e3,
        total as f64 / burst_elapsed.as_secs_f64()
    );

    // Exact-count metrics scrape: sole tenant of the registry, so the
    // counters must equal the schedule — not merely bound it.
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200, "metrics scrape failed");
    for &(path, per_wave) in &MIX {
        let endpoint = path.trim_start_matches('/').replace('-', "_");
        let name = format!("serve.requests.{endpoint}");
        let got = counter_value(&metrics, &name);
        let want = (per_wave * WAVES) as f64;
        if got != want {
            eprintln!("load gate FAILED: {name} = {got}, expected exactly {want}");
            std::process::exit(1);
        }
    }
    for (name, want) in [
        ("serve.responses.2xx", total as f64),
        ("serve.responses.4xx", 0.0),
        ("serve.responses.5xx", 0.0),
    ] {
        let got = counter_value(&metrics, name);
        if got != want {
            eprintln!("load gate FAILED: {name} = {got}, expected exactly {want}");
            std::process::exit(1);
        }
    }
    println!("# metrics scrape: per-endpoint request counts exact, 0 non-2xx");

    // Phase 2: backpressure probe on a deliberately starved server.
    let tiny = Server::start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    })
    .expect("bind probe server");
    let tiny_addr = tiny.addr();
    let slow = "{\"qubits\":[5],\"layers\":16,\"circuits\":16,\"strategies\":[\"random\"],\
                \"cost\":\"global\",\"ansatz\":\"training\",\"seed\":3}";
    let probes: Vec<_> = (0..8)
        .map(|_| std::thread::spawn(move || post(tiny_addr, "/variance-scan", slow).0))
        .collect();
    let statuses: Vec<u16> = probes.into_iter().map(|p| p.join().expect("probe")).collect();
    let rejected = statuses.iter().filter(|&&s| s == 503).count();
    if statuses.iter().any(|&s| s != 200 && s != 503) {
        eprintln!("load gate FAILED: backpressure probe saw statuses {statuses:?}");
        std::process::exit(1);
    }
    println!(
        "# backpressure probe: {} served, {rejected} cleanly rejected (all 200/503)",
        statuses.len() - rejected
    );
    tiny.shutdown();

    // Phase 3: cold vs LRU-warm /simulate through the harness.
    let body = cache_gate_body();
    let mut h = Harness::new("load_gate");
    h.config("burst_requests", Json::from(total));
    h.config("burst_p50_us", Json::from(p50 as usize));
    h.config("burst_p90_us", Json::from(p90 as usize));
    h.config("burst_p99_us", Json::from(p99 as usize));
    h.config("probe_rejected", Json::from(rejected));
    h.note(
        "simulate_cold clears the compiled-circuit LRU every iteration, so each \
         request repays QASM parse + build + fusion compile; simulate_warm hits \
         the cache and goes straight to execution",
    );
    let mut conn = KeepAlive::connect(addr);
    let mut group = h.group("simulate");
    group.sample_size(30);
    group.bench("cold", || {
        server.cache().clear();
        let (status, _) = conn.post("/simulate", black_box(&body));
        assert_eq!(status, 200);
    });
    // Prime once, then measure pure hits.
    let (status, _) = conn.post("/simulate", &body);
    assert_eq!(status, 200);
    group.bench("warm", || {
        let (status, _) = conn.post("/simulate", black_box(&body));
        assert_eq!(status, 200);
    });
    drop(conn);
    let reports = h.finish();
    server.shutdown();

    let median_of = |id: &str| {
        reports
            .iter()
            .find(|r| r.name == format!("simulate/{id}"))
            .unwrap_or_else(|| panic!("missing report {id}"))
            .median_ns
    };
    let (cold, warm) = (median_of("cold"), median_of("warm"));
    let tol: f64 = std::env::var("PLATEAU_SERVE_CACHE_TOL")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.2);
    println!(
        "# cold {:.0} us vs warm {:.0} us per request: x{:.2} (required >= x{tol})",
        cold / 1e3,
        warm / 1e3,
        cold / warm
    );
    if cold < warm * tol {
        eprintln!(
            "load gate FAILED: cold median {cold:.0} ns is not {tol}x the warm \
             median {warm:.0} ns — the LRU warm path is not paying for itself"
        );
        std::process::exit(1);
    }
    println!("# serve cache gate passed");
}
