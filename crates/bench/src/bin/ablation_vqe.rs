//! Ablation **A11**: the initialization effect on a real variational task —
//! VQE ground-state search on the critical transverse-field Ising chain.
//! The identity-learning task of Fig 5b/c has a trivial solution; this
//! ablation confirms the same ordering on a problem with a nontrivial
//! entangled ground state.

use plateau_bench::{banner, csv_header, csv_row, paper_strategies, timed, Scale};
use plateau_vqe::hamiltonian::{ground_state_energy, transverse_field_ising};
use plateau_vqe::solver::{solve, VqeConfig};

fn main() {
    let scale = Scale::from_env();
    banner("Ablation A11: VQE on the critical TFIM chain per initializer", scale);

    let n_qubits = scale.pick(8, 4);
    let cfg = VqeConfig {
        layers: scale.pick(5, 2),
        iterations: scale.pick(150, 30),
        seed: 0xA11,
        ..VqeConfig::default()
    };
    let h = transverse_field_ising(n_qubits, 1.0, 1.0).expect("hamiltonian");
    let exact = ground_state_energy(&h).expect("diagonalization");
    println!("# {n_qubits} sites, layers={}, iterations={}, exact E0 = {exact:.6}", cfg.layers, cfg.iterations);

    println!("\n## per-strategy VQE outcome");
    csv_header(&["strategy", "initial_energy", "final_energy", "abs_error", "rel_error_pct"]);
    for strategy in paper_strategies() {
        let r = timed(strategy.name(), || {
            solve(&h, strategy, &cfg).expect("vqe run")
        });
        csv_row(
            strategy.name(),
            &[
                r.history.initial_loss(),
                r.energy(),
                r.absolute_error(),
                100.0 * r.relative_error().expect("nonzero ground energy"),
            ],
        );
    }
    println!("# expectation: the Fig 5 ordering carries over — bounded initializers");
    println!("# reach a few-percent relative error; random converges slowest.");
    plateau_bench::finish_observability();
}
