//! CI gate for the batched ensemble engine: sweeping a 200-member
//! parameter ensemble through `BatchExecutor` must be decisively faster
//! than the pre-executor per-circuit loop.
//!
//! The workload is the paper's ensemble configuration — 200 parameter
//! vectors over the 10-qubit / 5-layer RX·RY + CZ-chain training ansatz
//! with gate fusion **on**, the exact shape of one variance-scan cell.
//! The per-circuit loop pays a fresh fusion compile and a fresh `2^10`
//! statevector for every member; the executor compiles once and reuses
//! one scratch state per worker.
//!
//! Three variants share the harness: `per_circuit` is the old loop
//! (one `expectation` call per member), `batched_serial` pins
//! `PLATEAU_THREADS=1`, and `batched` lets the pool size itself from the
//! machine. The headline unit is **circuits/sec** (members ÷ median sweep
//! time). On a multi-core machine the gate fails (exit 1) unless the
//! batched sweep clears `per_circuit × PLATEAU_BATCH_TOL` (default 3.0)
//! in circuits/sec. On a single-core machine the multi-core comparison is
//! vacuous and passes with a note; the serial-batched sweep must still
//! never fall behind the loop it replaced (`PLATEAU_BATCH_SERIAL_TOL`,
//! default 1.10 — compile-once plus scratch reuse cannot lose).
//!
//! Run with `--record` to also write the measurement to
//! `benchmarks/BENCH_batch_throughput.json` (the committed baseline).

use plateau_bench::harness::{black_box, Harness};
use plateau_core::ansatz::training_ansatz;
use plateau_core::cost::CostKind;
use plateau_grad::BatchExecutor;

fn main() {
    if std::env::args().any(|a| a == "--record") {
        std::env::set_var("PLATEAU_BENCH_JSON", "benchmarks/BENCH_batch_throughput.json");
    }

    let (n_qubits, layers, members) = (10usize, 5usize, 200usize);
    let ansatz = training_ansatz(n_qubits, layers).expect("training ansatz");
    let obs = CostKind::Global.observable(n_qubits);
    // Fixed, structured ensemble: parameter values only move amplitudes,
    // not work, so any deterministic spread measures the same thing.
    let sets: Vec<Vec<f64>> = (0..members)
        .map(|m| {
            (0..ansatz.circuit.n_params())
                .map(|p| 0.01 * m as f64 + 0.001 * p as f64)
                .collect()
        })
        .collect();

    println!(
        "# workload: {members}-member ensemble, {n_qubits} qubits, {layers} layers, \
         {} params, fusion on",
        ansatz.circuit.n_params()
    );

    let prior_threads = std::env::var("PLATEAU_THREADS").ok();
    plateau_sim::set_fuse(true);

    let mut h = Harness::new("batch_throughput_gate");
    h.config("qubits", plateau_bench::json::Json::from(n_qubits));
    h.config("layers", plateau_bench::json::Json::from(layers));
    h.config("members", plateau_bench::json::Json::from(members));
    h.config(
        "workers",
        plateau_bench::json::Json::from(plateau_par::worker_count(usize::MAX)),
    );
    h.note(
        "per_circuit re-compiles the fusion segments and allocates a fresh \
         2^10 statevector per member; BatchExecutor compiles once and reuses \
         one scratch state per worker (grad.batch.* counters)",
    );
    let mut group = h.group("ensemble_sweep");
    group.sample_size(10);
    group.bench("per_circuit", || {
        for set in black_box(&sets) {
            plateau_grad::expectation(black_box(&ansatz.circuit), set, &obs).expect("expectation");
        }
    });
    std::env::set_var("PLATEAU_THREADS", "1");
    group.bench("batched_serial", || {
        BatchExecutor::new(black_box(&ansatz.circuit))
            .expectation_many(black_box(&sets), &obs)
            .expect("batched sweep")
    });
    match &prior_threads {
        Some(v) => std::env::set_var("PLATEAU_THREADS", v),
        None => std::env::remove_var("PLATEAU_THREADS"),
    }
    group.bench("batched", || {
        BatchExecutor::new(black_box(&ansatz.circuit))
            .expectation_many(black_box(&sets), &obs)
            .expect("batched sweep")
    });
    let reports = h.finish();
    plateau_sim::reset_fuse();

    let median_of = |id: &str| {
        reports
            .iter()
            .find(|r| r.name == format!("ensemble_sweep/{id}"))
            .unwrap_or_else(|| panic!("missing report {id}"))
            .median_ns
    };
    let throughput = |median_ns: f64| members as f64 / (median_ns / 1e9);
    let per_circuit = median_of("per_circuit");
    let batched_serial = median_of("batched_serial");
    let batched = median_of("batched");
    let workers = plateau_par::worker_count(usize::MAX);
    println!(
        "# per_circuit {:.0} circuits/s vs batched_serial {:.0} circuits/s: x{:.2}",
        throughput(per_circuit),
        throughput(batched_serial),
        per_circuit / batched_serial
    );
    println!(
        "# per_circuit {:.0} circuits/s vs batched {:.0} circuits/s on {workers} worker(s): x{:.2}",
        throughput(per_circuit),
        throughput(batched),
        per_circuit / batched
    );

    // Serial gate: runs on any machine. Compile-once plus scratch reuse
    // must never lose to the loop it replaced.
    let serial_tol: f64 = std::env::var("PLATEAU_BATCH_SERIAL_TOL")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.10);
    if batched_serial > per_circuit * serial_tol {
        eprintln!(
            "batch throughput gate FAILED: serial batched sweep {batched_serial:.0} ns \
             is slower than the per-circuit loop {per_circuit:.0} ns x tolerance {serial_tol}"
        );
        std::process::exit(1);
    }
    println!("# batch serial gate passed (required <= x{serial_tol} of per-circuit)");

    if workers < 2 {
        println!(
            "# batch throughput gate skipped: single worker, multi-core \
             speedup not measurable"
        );
        return;
    }
    let tol: f64 = std::env::var("PLATEAU_BATCH_TOL")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);
    if throughput(batched) < throughput(per_circuit) * tol {
        eprintln!(
            "batch throughput gate FAILED: batched sweep at {:.0} circuits/s is less \
             than {tol}x the per-circuit loop's {:.0} circuits/s",
            throughput(batched),
            throughput(per_circuit)
        );
        std::process::exit(1);
    }
    println!("# batch throughput gate passed (required x{tol} circuits/sec)");
}
