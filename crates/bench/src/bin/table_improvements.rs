//! Regenerates the paper's **headline numbers** (abstract / §VI-A): the
//! percentage improvement of each strategy's variance decay rate over the
//! random baseline. The paper reports Xavier ≈ 62.3%, He ≈ 32%,
//! LeCun ≈ 28.3%, Orthogonal ≈ 26.4%.

use plateau_bench::{banner, csv_header, csv_row, env_fan_mode, env_usize, paper_strategies, timed, Scale};
use plateau_core::init::{FanMode, InitStrategy};
use plateau_core::variance::{variance_scan, VarianceConfig};

/// The paper's reported improvements, for side-by-side comparison.
fn paper_reported(strategy: InitStrategy) -> Option<f64> {
    match strategy {
        InitStrategy::XavierNormal | InitStrategy::XavierUniform => Some(62.3),
        InitStrategy::He => Some(32.0),
        InitStrategy::LeCun => Some(28.3),
        InitStrategy::Orthogonal { .. } => Some(26.4),
        _ => None,
    }
}

fn main() {
    let scale = Scale::from_env();
    banner("Headline table: decay-rate improvement vs random initialization", scale);

    // The paper specifies only "substantial depth" for the variance
    // circuits; depth and the fan convention are the two under-specified
    // knobs (see EXPERIMENTS.md). Defaults reproduce the headline shape;
    // override with PLATEAU_LAYERS / PLATEAU_FAN to explore.
    let config = VarianceConfig {
        qubit_counts: vec![2, 4, 6, 8, 10],
        layers: env_usize("PLATEAU_LAYERS", scale.pick(50, 8)),
        n_circuits: env_usize("PLATEAU_CIRCUITS", scale.pick(200, 24)),
        fan_mode: env_fan_mode(FanMode::TensorShape),
        ..VarianceConfig::default()
    };
    println!(
        "# layers={} circuits={} fan_mode={:?}",
        config.layers, config.n_circuits, config.fan_mode
    );
    let strategies = paper_strategies();
    let scan = timed("variance scan", || {
        variance_scan(&config, &strategies).expect("variance scan")
    });

    let baseline_fit = scan
        .curve_of(InitStrategy::Random)
        .expect("baseline present")
        .decay_fit()
        .expect("baseline fit");
    println!(
        "# random baseline decay rate b = {:.4} (R² = {:.3})",
        baseline_fit.rate, baseline_fit.r_squared
    );

    let improvements = scan
        .improvements_vs(InitStrategy::Random)
        .expect("improvement table");

    println!("\n## improvement in variance decay rate vs random (percent)");
    csv_header(&["strategy", "decay_rate", "r_squared", "measured_improvement_pct", "paper_reported_pct"]);
    for imp in &improvements {
        let reported = paper_reported(imp.strategy).unwrap_or(f64::NAN);
        csv_row(
            imp.strategy.name(),
            &[imp.decay_rate, imp.r_squared, imp.improvement_percent, reported],
        );
    }

    // Shape checks the reproduction is expected to satisfy.
    let all_positive = improvements.iter().all(|i| i.improvement_percent > 0.0);
    println!("\n# shape check: every bounded strategy improves on random = {all_positive}");
    let xavier = improvements
        .iter()
        .find(|i| i.strategy == InitStrategy::XavierNormal)
        .map(|i| i.improvement_percent)
        .unwrap_or(f64::NAN);
    let he = improvements
        .iter()
        .find(|i| i.strategy == InitStrategy::He)
        .map(|i| i.improvement_percent)
        .unwrap_or(f64::NAN);
    println!("# shape check: xavier_normal ({xavier:.1}%) vs he ({he:.1}%) — the paper ranks Xavier first");
    plateau_bench::finish_observability();
}
