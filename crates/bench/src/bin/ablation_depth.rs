//! Ablation **A2**: how circuit depth interacts with the initialization
//! effect. The paper fixes "substantial depth"; this sweep shows the decay
//! rates at 25/50/100/200 layers, checking that the random baseline's
//! plateau saturates with depth (2-design onset) while bounded
//! initializations stay trainable.

use plateau_bench::{banner, csv_header, csv_row, timed, Scale};
use plateau_core::init::InitStrategy;
use plateau_core::variance::{variance_scan, VarianceConfig};

fn main() {
    let scale = Scale::from_env();
    banner("Ablation A2: depth sweep of variance decay", scale);

    let depths: Vec<usize> = match scale {
        Scale::Paper => vec![25, 50, 100, 200],
        Scale::Quick => vec![4, 8],
    };
    let strategies = [
        InitStrategy::Random,
        InitStrategy::XavierNormal,
        InitStrategy::He,
    ];

    println!("\n## decay rate b per (depth, strategy)");
    csv_header(&["depth", "random", "xavier_normal", "he"]);
    for &layers in &depths {
        let config = VarianceConfig {
            qubit_counts: vec![2, 4, 6, 8],
            layers,
            n_circuits: scale.pick(120, 24),
            ..VarianceConfig::default()
        };
        let scan = timed(&format!("scan depth={layers}"), || {
            variance_scan(&config, &strategies).expect("variance scan")
        });
        let rates: Vec<f64> = scan
            .curves
            .iter()
            .map(|c| c.decay_fit().expect("fit").rate)
            .collect();
        csv_row(&layers.to_string(), &rates);
    }
    println!("# expectation: the random-baseline rate saturates near the 2-design");
    println!("# limit as depth grows; bounded initializations keep shallower rates.");
    plateau_bench::finish_observability();
}
