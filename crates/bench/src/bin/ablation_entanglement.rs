//! Ablation **A8**: the *mechanism* behind the paper's effect. Holmes et
//! al. bound gradient variance by ensemble expressibility; entanglement
//! growth tracks 2-design onset. This ablation measures, per
//! initialization strategy, the Meyer–Wallach entanglement and the
//! expressibility KL divergence of the prepared ensemble — the quantities
//! that *explain* the Fig 5a ordering.

use plateau_bench::{banner, csv_header, csv_row, env_fan_mode, paper_strategies, timed, Scale};
use plateau_core::analysis::{average_entanglement, expressibility_kl};
use plateau_core::ansatz::training_ansatz;
use plateau_core::init::FanMode;

fn main() {
    let scale = Scale::from_env();
    banner("Ablation A8: entanglement & expressibility per initialization", scale);

    let n_qubits = scale.pick(6, 3);
    let layers = scale.pick(8, 3);
    let ent_samples = scale.pick(60, 10);
    let expr_pairs = scale.pick(500, 60);
    let fan_mode = env_fan_mode(FanMode::TensorShape);
    let ansatz = training_ansatz(n_qubits, layers).expect("ansatz");
    println!("# qubits={n_qubits} layers={layers} fan_mode={fan_mode:?}");

    println!("\n## per-strategy ensemble diagnostics");
    csv_header(&[
        "strategy",
        "meyer_wallach_q",
        "expressibility_kl_vs_haar",
    ]);
    for strategy in paper_strategies() {
        let (q, kl) = timed(strategy.name(), || {
            let q = average_entanglement(&ansatz, strategy, fan_mode, ent_samples, 0xA8)
                .expect("entanglement");
            let kl = expressibility_kl(&ansatz, strategy, fan_mode, expr_pairs, 24, 0xA8)
                .expect("expressibility");
            (q, kl)
        });
        csv_row(strategy.name(), &[q, kl]);
    }

    println!("\n## entanglement growth with depth (random vs xavier)");
    csv_header(&["layers", "random_q", "xavier_q"]);
    for depth in [1usize, 2, 4, 8, 16] {
        if scale == Scale::Quick && depth > 4 {
            break;
        }
        let a = training_ansatz(n_qubits, depth).expect("ansatz");
        let rq = average_entanglement(
            &a,
            plateau_core::InitStrategy::Random,
            fan_mode,
            ent_samples,
            0xA8,
        )
        .expect("entanglement");
        let xq = average_entanglement(
            &a,
            plateau_core::InitStrategy::XavierNormal,
            fan_mode,
            ent_samples,
            0xA8,
        )
        .expect("entanglement");
        csv_row(&depth.to_string(), &[rq, xq]);
    }
    println!("# expectation: random saturates Q quickly (2-design onset = plateau);");
    println!("# bounded initializations keep both Q and expressibility low, which is");
    println!("# exactly why their gradients survive (Holmes et al.).");
    plateau_bench::finish_observability();
}
