//! Ablation **A6**: noise-induced barren plateaus (Wang et al. 2021). The
//! paper's experiments are noiseless; this ablation injects a depolarizing
//! channel after every gate and shows (1) how noise lifts the achievable
//! cost floor of a *trained* circuit, and (2) that noise flattens the
//! cost landscape even where initialization keeps parameter gradients
//! alive — a mitigation boundary the initialization strategies cannot
//! cross.

use plateau_bench::{banner, csv_header, csv_row, timed, Scale};
use plateau_core::ansatz::training_ansatz;
use plateau_core::cost::CostKind;
use plateau_core::init::{FanMode, InitStrategy};
use plateau_core::optim::Adam;
use plateau_core::train::train;
use plateau_sim::NoiseModel;
use plateau_rng::rngs::StdRng;
use plateau_rng::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    banner("Ablation A6: depolarizing noise vs trained cost floor", scale);

    let n_qubits = scale.pick(6, 3);
    let layers = scale.pick(5, 2);
    let trajectories = scale.pick(600, 60);
    let noise_levels = [0.0, 0.001, 0.005, 0.02, 0.05];

    // Train noiselessly from a Xavier start (the paper's winning recipe)…
    let ansatz = training_ansatz(n_qubits, layers).expect("ansatz");
    let obs = CostKind::Global.observable(n_qubits);
    let mut rng = StdRng::seed_from_u64(0xA6);
    let theta0 = InitStrategy::XavierNormal
        .sample_params(&ansatz.shape, FanMode::TensorShape, &mut rng)
        .expect("init");
    let mut adam = Adam::new(0.1).expect("adam");
    let hist = timed("noiseless training", || {
        train(&ansatz.circuit, &obs, theta0, &mut adam, 50).expect("train")
    });
    println!("# trained noiseless cost: {:.3e}", hist.final_loss());

    // …then evaluate the trained parameters under increasing noise.
    println!("\n## cost of the trained circuit under depolarizing noise");
    csv_header(&["noise_p", "trained_cost", "cost_floor_minus_noiseless"]);
    for &p in &noise_levels {
        let noise = NoiseModel::depolarizing(p).expect("valid p");
        let mut rng = StdRng::seed_from_u64(0xA61 + (p * 1e6) as u64);
        let noisy = noise
            .expectation(&ansatz.circuit, hist.final_params(), &obs, trajectories, &mut rng)
            .expect("noisy expectation");
        csv_row(&format!("{p}"), &[noisy, noisy - hist.final_loss()]);
    }

    // Gradient variance under noise: the initialization signal survives
    // weak noise but drowns as the channel mixes the state.
    println!("\n## |dC/dθ_last| (trajectory estimate) vs noise, Xavier init");
    csv_header(&["noise_p", "grad_estimate"]);
    let eps = std::f64::consts::FRAC_PI_2;
    for &p in &noise_levels {
        let noise = NoiseModel::depolarizing(p).expect("valid p");
        let mut rng = StdRng::seed_from_u64(0xA62);
        let theta = InitStrategy::XavierNormal
            .sample_params(&ansatz.shape, FanMode::TensorShape, &mut rng)
            .expect("init");
        let last = theta.len() - 1;
        let mut plus = theta.clone();
        plus[last] += eps;
        let mut minus = theta.clone();
        minus[last] -= eps;
        let mut traj_rng = StdRng::seed_from_u64(0xA63);
        let f_plus = noise
            .expectation(&ansatz.circuit, &plus, &obs, trajectories, &mut traj_rng)
            .expect("plus");
        let f_minus = noise
            .expectation(&ansatz.circuit, &minus, &obs, trajectories, &mut traj_rng)
            .expect("minus");
        csv_row(&format!("{p}"), &[((f_plus - f_minus) / 2.0).abs()]);
    }
    println!("# expectation: the cost floor rises roughly linearly in p·(gate count),");
    println!("# and the parameter-shift signal shrinks as noise mixes the state —");
    println!("# initialization cannot mitigate noise-induced plateaus.");
    plateau_bench::finish_observability();
}
