//! CI gate for the observability stack: disabled instrumentation must be
//! invisible, both in the metrics registry and on the benchmark clock.
//!
//! Two checks, either failure exits non-zero:
//!
//! 1. **Zero-recording.** With the registry off, a full variance scan
//!    (which crosses every instrumented layer: par → core → grad → sim)
//!    must leave the metrics snapshot empty.
//! 2. **Zero-overhead.** The `variance_scan_cell` workloads from the
//!    `variance_harness` bench are re-measured and their medians compared
//!    against the recorded baseline in
//!    `benchmarks/BENCH_variance_harness.json` (override with
//!    `PLATEAU_BASELINE`). A median more than `PLATEAU_OVERHEAD_FACTOR`
//!    (default 3.0, generous because CI machines differ from the baseline
//!    recorder) times the baseline fails the gate.

use plateau_bench::harness::{black_box, Harness};
use plateau_bench::json::Json;
use plateau_core::init::InitStrategy;
use plateau_core::variance::{variance_scan, VarianceConfig};
use std::collections::BTreeMap;

fn baseline_medians(path: &str) -> BTreeMap<String, f64> {
    let raw = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let doc = Json::parse(&raw).expect("baseline is valid JSON");
    let mut out = BTreeMap::new();
    for bench in doc.get("benchmarks").and_then(Json::as_arr).expect("benchmarks array") {
        let name = bench.get("name").and_then(Json::as_str).expect("name");
        let median = bench.get("median_ns").and_then(Json::as_f64).expect("median_ns");
        out.insert(name.to_string(), median);
    }
    out
}

fn main() {
    // Force every subscriber off, whatever the environment says — this
    // gate measures the disabled path.
    std::env::remove_var("PLATEAU_METRICS_OUT");
    plateau_obs::set_log_level(plateau_obs::Level::Off);
    plateau_obs::set_metrics_enabled(false);
    plateau_obs::metrics::reset();

    // Check 1: a scan through every instrumented layer records nothing.
    let cfg = VarianceConfig {
        qubit_counts: vec![2, 3],
        layers: 8,
        n_circuits: 8,
        ..VarianceConfig::default()
    };
    variance_scan(&cfg, &[InitStrategy::Random, InitStrategy::XavierNormal]).expect("scan");
    let snap = plateau_obs::snapshot();
    assert!(
        snap.is_empty(),
        "disabled observability still recorded metrics:\n{}",
        snap.to_json().to_pretty_string()
    );
    println!("# disabled-path check: metrics snapshot empty");

    // Check 2: medians of the variance_harness cell workloads against the
    // recorded baseline.
    let baseline_path = std::env::var("PLATEAU_BASELINE")
        .unwrap_or_else(|_| "benchmarks/BENCH_variance_harness.json".to_string());
    let baseline = baseline_medians(&baseline_path);
    let factor: f64 = std::env::var("PLATEAU_OVERHEAD_FACTOR")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);

    let mut h = Harness::new("obs_overhead_gate");
    let mut group = h.group("variance_scan_cell");
    group.sample_size(10);
    for &q in &[4usize, 6] {
        let config = VarianceConfig {
            qubit_counts: vec![q],
            layers: 20,
            n_circuits: 16,
            ..VarianceConfig::default()
        };
        group.bench(&q.to_string(), || {
            variance_scan(black_box(&config), &[InitStrategy::Random]).expect("scan")
        });
    }
    let reports = h.finish();

    let mut failed = false;
    for r in &reports {
        let Some(&base) = baseline.get(&r.name) else {
            println!("# {}: no baseline entry, skipping", r.name);
            continue;
        };
        let ratio = r.median_ns / base;
        let verdict = if ratio <= factor { "ok" } else { "REGRESSION" };
        println!(
            "# {}: median {:.0} ns vs baseline {:.0} ns (x{:.2}, limit x{:.1}) {}",
            r.name, r.median_ns, base, ratio, factor, verdict
        );
        if ratio > factor {
            failed = true;
        }
    }
    // The snapshot must *still* be empty after benchmarking — the harness
    // itself may not turn metrics on behind the gate's back.
    assert!(
        plateau_obs::snapshot().is_empty(),
        "benchmark pass re-enabled metrics recording"
    );
    if failed {
        eprintln!("obs overhead gate FAILED: disabled-path median exceeded baseline envelope");
        std::process::exit(1);
    }
    println!("# obs overhead gate passed");
}
