//! Regenerates **Fig 1**: optimization landscapes demonstrating barren
//! plateaus at (a) 2, (b) 5, (c) 10 qubits with a constant depth of 100
//! layers (RX+RY per qubit + CZ chain, matching the paper's motivational
//! setup).
//!
//! For each qubit count the binary scans the cost over the last two
//! parameters on a [−π, π]² grid with all other parameters drawn from the
//! random baseline, and reports the grid plus its peak-to-peak amplitude —
//! the number that collapses as the plateau sets in.

use plateau_bench::{banner, csv_header, csv_row, timed, Scale};
use plateau_core::ansatz::training_ansatz;
use plateau_core::cost::CostKind;
use plateau_core::init::{FanMode, InitStrategy};
use plateau_core::landscape::{landscape_grid, LandscapeConfig};
use plateau_rng::rngs::StdRng;
use plateau_rng::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    banner("Fig 1: optimization landscape vs qubit count (depth 100)", scale);

    let layers = scale.pick(100, 10);
    let resolution = scale.pick(25, 9);
    let qubit_counts: &[usize] = &[2, 5, 10];
    let cfg = LandscapeConfig::default()
        .with_resolution(resolution)
        .expect("resolution >= 2");

    let mut amplitudes = Vec::new();
    for &q in qubit_counts {
        let ansatz = training_ansatz(q, layers).expect("valid ansatz");
        let mut rng = StdRng::seed_from_u64(0xF161 + q as u64);
        let base = InitStrategy::Random
            .sample_params(&ansatz.shape, FanMode::Qubits, &mut rng)
            .expect("random init");
        let n_params = ansatz.circuit.n_params();
        let obs = CostKind::Global.observable(q);

        let grid = timed(&format!("scan q={q}"), || {
            landscape_grid(&ansatz.circuit, &obs, &base, n_params - 2, n_params - 1, &cfg)
                .expect("landscape scan")
        });

        println!("\n## {q} qubits: cost over (θ_a, θ_b), row = θ_a");
        let mut header = vec!["theta_a".to_string()];
        header.extend(grid.ys.iter().map(|y| format!("{y:.3}")));
        csv_header(&header.iter().map(String::as_str).collect::<Vec<_>>());
        for (i, row) in grid.values.iter().enumerate() {
            csv_row(&format!("{:.3}", grid.xs[i]), row);
        }
        amplitudes.push((q, grid.amplitude(), grid.min_value(), grid.max_value()));
    }

    println!("\n## landscape amplitude (flatness) summary");
    csv_header(&["qubits", "amplitude", "min_cost", "max_cost"]);
    for (q, amp, lo, hi) in amplitudes {
        csv_row(&q.to_string(), &[amp, lo, hi]);
    }
    println!("# expectation from the paper: amplitude shrinks sharply with qubit count");
    plateau_bench::finish_observability();
}
