//! Ablation **A9**: measured statistics against closed-form references —
//! the random baseline's decay rate against McClean et al.'s 2-design
//! asymptote (`−2·ln 2` per qubit), and the bounded initializers' gradient
//! variance against the near-identity perturbative prediction.

use plateau_bench::{banner, csv_header, csv_row, timed, Scale};
use plateau_core::init::{FanMode, InitStrategy, LayerShape};
use plateau_core::theory::{near_identity_gradient_variance, two_design_decay_rate};
use plateau_core::variance::{variance_scan, VarianceConfig};

fn main() {
    let scale = Scale::from_env();
    banner("Ablation A9: measured vs closed-form references", scale);

    // 1. Random baseline vs the 2-design decay asymptote.
    let cfg = VarianceConfig {
        qubit_counts: vec![2, 4, 6, 8],
        layers: scale.pick(60, 8),
        n_circuits: scale.pick(200, 24),
        ..VarianceConfig::default()
    };
    let scan = timed("random-baseline scan", || {
        variance_scan(&cfg, &[InitStrategy::Random]).expect("scan")
    });
    let fit = scan.curves[0].decay_fit().expect("fit");
    println!("\n## 2-design regime");
    csv_header(&["quantity", "measured", "predicted"]);
    csv_row("decay_rate_per_qubit", &[fit.rate, two_design_decay_rate()]);
    csv_row(
        "bits_lost_per_qubit",
        &[fit.rate_log2(), -2.0],
    );

    // 2. Bounded initializers vs the near-identity prediction.
    let layers = 2;
    let near_cfg = VarianceConfig {
        qubit_counts: vec![4, 6, 8],
        layers,
        n_circuits: scale.pick(300, 40),
        ..VarianceConfig::default()
    };
    let strategies = [
        InitStrategy::BetaInit { alpha: 100.0, beta: 100.0 },
        InitStrategy::BetaInit { alpha: 200.0, beta: 200.0 },
        InitStrategy::LeCun,
    ];
    let near_scan = timed("near-identity scan", || {
        variance_scan(&near_cfg, &strategies).expect("scan")
    });
    println!("\n## near-identity regime (Var[dC/dθ_last], layers = {layers})");
    csv_header(&["strategy", "qubits", "measured", "predicted_sigma2_over"]);
    for curve in &near_scan.curves {
        for point in &curve.points {
            let shape = LayerShape::new(point.n_qubits, point.n_qubits, layers)
                .expect("valid shape");
            let s2 = curve
                .strategy
                .nominal_variance(&shape, FanMode::Qubits)
                .expect("analytic variance");
            let predicted = near_identity_gradient_variance(s2, layers);
            csv_row(
                &format!("{}_q{}", curve.strategy.name(), point.n_qubits),
                &[point.variance, predicted],
            );
        }
    }
    println!("# expectation: random tracks −2·ln2 ≈ −1.386 from above; small-angle");
    println!("# ensembles sit within a factor ~2 of (2/3)(σ²/4)(1+(L−1)/3).");
    plateau_bench::finish_observability();
}
