//! Ablation **A5** (DESIGN.md §5): the fan-in/fan-out convention. The
//! classical initializers need a PQC notion of "fan"; this ablation runs
//! the variance scan under both conventions to show how much the headline
//! numbers depend on that modelling choice.

use plateau_bench::{banner, csv_header, csv_row, timed, Scale};
use plateau_core::init::{FanMode, InitStrategy};
use plateau_core::variance::{variance_scan, AnsatzKind, VarianceConfig};

fn main() {
    let scale = Scale::from_env();
    banner("Ablation A5: fan-mode convention (qubits vs params-per-layer)", scale);

    let strategies = [
        InitStrategy::Random,
        InitStrategy::XavierNormal,
        InitStrategy::He,
        InitStrategy::LeCun,
    ];

    for fan_mode in [FanMode::Qubits, FanMode::ParamsPerLayer] {
        let config = VarianceConfig {
            qubit_counts: vec![2, 4, 6, 8],
            layers: scale.pick(50, 6),
            n_circuits: scale.pick(150, 24),
            fan_mode,
            // The training ansatz has params_per_layer = 2·n_qubits, so the
            // two fan conventions genuinely differ (2× in variance).
            ansatz: AnsatzKind::Training,
            ..VarianceConfig::default()
        };
        let scan = timed(&format!("scan fan_mode={fan_mode:?}"), || {
            variance_scan(&config, &strategies).expect("variance scan")
        });
        println!("\n## fan_mode = {fan_mode:?}: improvements vs random");
        csv_header(&["strategy", "decay_rate", "improvement_pct"]);
        for imp in scan.improvements_vs(InitStrategy::Random).expect("table") {
            csv_row(imp.strategy.name(), &[imp.decay_rate, imp.improvement_percent]);
        }
    }
    println!("# note: the scan uses the training ansatz (params_per_layer = 2·qubits),");
    println!("# where ParamsPerLayer halves every Gaussian initializer's variance");
    println!("# relative to Qubits — bounding the headline table's sensitivity to");
    println!("# the fan convention.");
    plateau_bench::finish_observability();
}
