//! Regenerates **Fig 5c**: loss convergence of the 10-qubit, 5-layer QNN
//! on the identity task under each initialization strategy, optimized with
//! **Adam** at step size 0.1 for 50 iterations (paper §V).

use plateau_bench::{run_training_figure, Scale};
use plateau_core::{Adam, Optimizer};

fn main() {
    run_training_figure(
        "Fig 5c: training convergence with Adam (lr = 0.1)",
        Scale::from_env(),
        &mut || Box::new(Adam::new(0.1).expect("valid lr")) as Box<dyn Optimizer>,
    );
    plateau_bench::finish_observability();
}
