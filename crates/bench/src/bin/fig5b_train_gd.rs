//! Regenerates **Fig 5b**: loss convergence of the 10-qubit, 5-layer QNN
//! on the identity task under each initialization strategy, optimized with
//! **gradient descent** at step size 0.1 for 50 iterations (paper §V).

use plateau_bench::{run_training_figure, Scale};
use plateau_core::{GradientDescent, Optimizer};

fn main() {
    run_training_figure(
        "Fig 5b: training convergence with Gradient Descent (lr = 0.1)",
        Scale::from_env(),
        &mut || Box::new(GradientDescent::new(0.1).expect("valid lr")) as Box<dyn Optimizer>,
    );
    plateau_bench::finish_observability();
}
