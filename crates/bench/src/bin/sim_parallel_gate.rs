//! CI gate for the parallel execution layer: the multi-threaded
//! parameter-shift training step must not be slower than the serial one.
//!
//! The workload is the paper's training configuration — a 10-qubit,
//! 5-layer RX·RY + CZ-chain ansatz (100 parameters), whose full
//! parameter-shift gradient costs 200 independent shifted-circuit
//! evaluations. Those evaluations are exactly what
//! `plateau_grad::expectation_many` fans across the `plateau_par` pool,
//! so this one number captures the gradient-level parallel speedup.
//!
//! Three variants are measured by the shared harness: `serial` pins
//! `PLATEAU_THREADS=1`, `parallel` lets the pool size itself from the
//! machine, and `fused` reruns the serial configuration through the
//! gate-fusion compiler (`PLATEAU_SIM_FUSE` semantics via `set_fuse`).
//! On a multi-core machine the parallel gate fails (exit 1) when the
//! parallel median exceeds `serial × PLATEAU_SIM_PAR_TOL` (default 1.10
//! — parallel must at least break even, with a 10% jitter allowance).
//! On a single-core machine that comparison is vacuous and passes with a
//! note. The fusion gate runs on any machine: the fused median must beat
//! `serial / PLATEAU_SIM_FUSE_TOL` (default 2.0 — fused must be at least
//! twice as fast as raw serial at the paper's own workload).
//!
//! Run with `--record` to also write the measurement to
//! `benchmarks/BENCH_sim_parallel.json` (the committed baseline).

use plateau_bench::harness::{black_box, Harness};
use plateau_core::ansatz::training_ansatz;
use plateau_core::cost::CostKind;
use plateau_grad::{GradientEngine, ParameterShift};

fn main() {
    if std::env::args().any(|a| a == "--record") {
        std::env::set_var("PLATEAU_BENCH_JSON", "benchmarks/BENCH_sim_parallel.json");
    }

    let (n_qubits, layers) = (10usize, 5usize);
    let ansatz = training_ansatz(n_qubits, layers).expect("training ansatz");
    let obs = CostKind::Global.observable(n_qubits);
    // Fixed, structured parameters: values only move the amplitudes, not
    // the work, so any deterministic vector measures the same thing.
    let params: Vec<f64> = (0..ansatz.circuit.n_params())
        .map(|i| 0.1 + 0.01 * i as f64)
        .collect();

    println!(
        "# workload: {n_qubits} qubits, {layers} layers, {} params -> {} shifted evaluations",
        ansatz.circuit.n_params(),
        2 * ansatz.circuit.n_params()
    );

    let prior_threads = std::env::var("PLATEAU_THREADS").ok();
    let mut h = Harness::new("sim_parallel_gate");
    h.config("qubits", plateau_bench::json::Json::from(n_qubits));
    h.config("layers", plateau_bench::json::Json::from(layers));
    h.config(
        "workers",
        plateau_bench::json::Json::from(plateau_par::worker_count(usize::MAX)),
    );
    h.note(
        "per-gate threading crossover (par_crossover bin): at the paper's 10q \
         workload forced-parallel kernels ran at 0.06x serial, 0.42x at 14q, \
         0.63x at 16q on this host — DEFAULT_PAR_THRESHOLD=17 keeps every \
         measured size serial; the parallel arm here fans whole shifted \
         evaluations across the pool instead",
    );
    let mut group = h.group("training_step");
    group.sample_size(10);
    std::env::set_var("PLATEAU_THREADS", "1");
    group.bench("serial", || {
        ParameterShift
            .gradient(black_box(&ansatz.circuit), black_box(&params), &obs)
            .expect("gradient")
    });
    // Fused serial: same one-worker configuration, but the gradient's
    // shifted evaluations run through the fusion compiler's segments
    // (compiled once per gradient, reused across all 200 evaluations).
    plateau_sim::set_fuse(true);
    group.bench("fused", || {
        ParameterShift
            .gradient(black_box(&ansatz.circuit), black_box(&params), &obs)
            .expect("gradient")
    });
    plateau_sim::set_fuse(false);
    match &prior_threads {
        Some(v) => std::env::set_var("PLATEAU_THREADS", v),
        None => std::env::remove_var("PLATEAU_THREADS"),
    }
    group.bench("parallel", || {
        ParameterShift
            .gradient(black_box(&ansatz.circuit), black_box(&params), &obs)
            .expect("gradient")
    });
    let reports = h.finish();

    let median_of = |id: &str| {
        reports
            .iter()
            .find(|r| r.name == format!("training_step/{id}"))
            .unwrap_or_else(|| panic!("missing report {id}"))
            .median_ns
    };
    let serial = median_of("serial");
    let fused = median_of("fused");
    let parallel = median_of("parallel");
    let workers = plateau_par::worker_count(usize::MAX);
    println!(
        "# serial {:.0} ns vs parallel {:.0} ns on {workers} worker(s): speedup x{:.2}",
        serial,
        parallel,
        serial / parallel
    );
    println!(
        "# serial {:.0} ns vs fused {:.0} ns (1 worker): speedup x{:.2}",
        serial,
        fused,
        serial / fused
    );

    // Fusion gate: independent of worker count — both sides run on one
    // worker, so this measures pure per-gate arithmetic and dispatch.
    let fuse_tol: f64 = std::env::var("PLATEAU_SIM_FUSE_TOL")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    if fused * fuse_tol > serial {
        eprintln!(
            "sim fusion gate FAILED: fused median {fused:.0} ns is less than \
             {fuse_tol}x faster than serial {serial:.0} ns"
        );
        std::process::exit(1);
    }
    println!("# sim fusion gate passed (required x{fuse_tol})");

    if workers < 2 {
        println!("# sim parallel gate skipped: single worker, nothing to compare");
        return;
    }
    let tol: f64 = std::env::var("PLATEAU_SIM_PAR_TOL")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.10);
    if parallel > serial * tol {
        eprintln!(
            "sim parallel gate FAILED: parallel median {parallel:.0} ns exceeds \
             serial {serial:.0} ns x tolerance {tol}"
        );
        std::process::exit(1);
    }
    println!("# sim parallel gate passed");
}
