//! Regenerates **Fig 5a**: variance of `∂C/∂θ_last` versus qubit count for
//! the six initialization strategies, 200 random PQCs per cell (Eq. 2
//! ansatz), together with the fitted exponential decay rates.

use plateau_bench::{banner, csv_header, csv_row, env_fan_mode, env_usize, paper_strategies, timed, Scale};
use plateau_core::init::FanMode;
use plateau_core::variance::{variance_scan, VarianceConfig};
use plateau_core::init::InitStrategy;
use plateau_stats::{bootstrap_ci, variance as var_stat, welch_t_test};
use plateau_rng::rngs::StdRng;
use plateau_rng::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    banner("Fig 5a: gradient-variance decay per initialization strategy", scale);

    let config = VarianceConfig {
        qubit_counts: vec![2, 4, 6, 8, 10],
        layers: env_usize("PLATEAU_LAYERS", scale.pick(50, 8)),
        n_circuits: env_usize("PLATEAU_CIRCUITS", scale.pick(200, 24)),
        fan_mode: env_fan_mode(FanMode::TensorShape),
        ..VarianceConfig::default()
    };
    println!(
        "# layers={} circuits_per_cell={} cost={} fan_mode={:?} seed={:#x}",
        config.layers, config.n_circuits, config.cost, config.fan_mode, config.seed
    );

    let strategies = paper_strategies();
    let scan = timed("variance scan", || {
        variance_scan(&config, &strategies).expect("variance scan")
    });

    println!("\n## Var[dC/dθ_last] per (strategy, qubits)");
    let mut header = vec!["strategy".to_string()];
    header.extend(config.qubit_counts.iter().map(|q| format!("q{q}")));
    csv_header(&header.iter().map(String::as_str).collect::<Vec<_>>());
    for curve in &scan.curves {
        let vars: Vec<f64> = curve.points.iter().map(|p| p.variance).collect();
        csv_row(curve.strategy.name(), &vars);
    }

    println!("\n## ln-variance (plotted series of Fig 5a)");
    csv_header(&header.iter().map(String::as_str).collect::<Vec<_>>());
    for curve in &scan.curves {
        let lns: Vec<f64> = curve.points.iter().map(|p| p.variance.ln()).collect();
        csv_row(curve.strategy.name(), &lns);
    }

    println!("\n## fitted decay: Var(q) = A·exp(b·q)");
    csv_header(&["strategy", "rate_b", "rate_per_qubit_log2", "amplitude_A", "r_squared"]);
    for curve in &scan.curves {
        let fit = curve.decay_fit().expect("decay fit");
        csv_row(
            curve.strategy.name(),
            &[fit.rate, fit.rate_log2(), fit.amplitude, fit.r_squared],
        );
    }

    println!("\n## bootstrap 95% CI of the 10-qubit variance (sampling error at n={})", config.n_circuits);
    csv_header(&["strategy", "estimate", "ci_low", "ci_high"]);
    let mut rng = StdRng::seed_from_u64(0xB007);
    for curve in &scan.curves {
        let last = curve.points.last().expect("non-empty curve");
        let ci = bootstrap_ci(&last.gradients, var_stat, 1000, 0.95, &mut rng)
            .expect("bootstrap");
        csv_row(curve.strategy.name(), &[ci.estimate, ci.low, ci.high]);
    }
    // Which pairwise differences are resolvable at n = 200? Test the
    // squared gradients (whose means are the variances being compared).
    println!("\n## Welch t-test on 10-qubit squared gradients (pairwise vs random)");
    csv_header(&["pair", "t_statistic", "p_value"]);
    let squared = |s: InitStrategy| -> Vec<f64> {
        scan.curve_of(s)
            .expect("strategy present")
            .points
            .last()
            .expect("non-empty curve")
            .gradients
            .iter()
            .map(|g| g * g)
            .collect()
    };
    let random_sq = squared(InitStrategy::Random);
    for s in strategies.iter().skip(1) {
        let t = welch_t_test(&squared(*s), &random_sq).expect("well-posed test");
        csv_row(&format!("{}_vs_random", s.name()), &[t.t_statistic, t.p_value]);
    }
    let xavier_sq = squared(InitStrategy::XavierNormal);
    let he_sq = squared(InitStrategy::He);
    let t = welch_t_test(&xavier_sq, &he_sq).expect("well-posed test");
    csv_row("xavier_normal_vs_he", &[t.t_statistic, t.p_value]);
    let lecun_sq = squared(InitStrategy::LeCun);
    let t = welch_t_test(&he_sq, &lecun_sq).expect("well-posed test");
    csv_row("he_vs_lecun", &[t.t_statistic, t.p_value]);

    println!("# expectation from the paper: random has the steepest negative slope;");
    println!("# all bounded initializations decay visibly slower. The Welch tests");
    println!("# show which orderings are resolvable at the paper's 200-circuit");
    println!("# budget — the He-vs-LeCun gap typically is not.");
    plateau_bench::finish_observability();
}
