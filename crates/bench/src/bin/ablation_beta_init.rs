//! Ablation **A3** (paper §II-e): the BeInit beta-distribution strategy of
//! Kulshrestha & Safro as an extra baseline next to the paper's six, at a
//! few `(α, β)` settings.

use plateau_bench::{banner, csv_header, csv_row, paper_strategies, timed, Scale};
use plateau_core::init::InitStrategy;
use plateau_core::variance::{variance_scan, VarianceConfig};

fn main() {
    let scale = Scale::from_env();
    banner("Ablation A3: BeInit (beta-distribution) vs the paper's six", scale);

    let mut strategies = paper_strategies();
    strategies.push(InitStrategy::BetaInit { alpha: 2.0, beta: 2.0 });
    strategies.push(InitStrategy::BetaInit { alpha: 4.0, beta: 4.0 });
    strategies.push(InitStrategy::BetaInit { alpha: 8.0, beta: 8.0 });

    let config = VarianceConfig {
        qubit_counts: vec![2, 4, 6, 8],
        layers: scale.pick(50, 6),
        n_circuits: scale.pick(150, 24),
        ..VarianceConfig::default()
    };
    let scan = timed("variance scan", || {
        variance_scan(&config, &strategies).expect("variance scan")
    });

    println!("\n## decay fits");
    csv_header(&["strategy_variant", "rate_b", "r_squared"]);
    for curve in &scan.curves {
        let fit = curve.decay_fit().expect("fit");
        let label = match curve.strategy {
            InitStrategy::BetaInit { alpha, beta } => format!("beta_a{alpha}_b{beta}"),
            s => s.name().to_string(),
        };
        csv_row(&label, &[fit.rate, fit.r_squared]);
    }

    println!("\n## improvements vs random");
    csv_header(&["strategy_variant", "improvement_pct"]);
    let improvements = scan
        .improvements_vs(InitStrategy::Random)
        .expect("improvements");
    for imp in &improvements {
        let label = match imp.strategy {
            InitStrategy::BetaInit { alpha, beta } => format!("beta_a{alpha}_b{beta}"),
            s => s.name().to_string(),
        };
        csv_row(&label, &[imp.improvement_percent]);
    }
    println!("# expectation: larger (α, β) concentrates angles near 0 and behaves");
    println!("# increasingly like the narrow Gaussian initializers.");
    plateau_bench::finish_observability();
}
