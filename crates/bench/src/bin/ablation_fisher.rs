//! Ablation **A12**: the information-geometric view (after Abbas et al.
//! 2021). This binary reports the classical Fisher trace and the
//! participation ratio `tr(F)² / tr(F²)` — the effective number of
//! informative parameter directions — per strategy and width.
//!
//! Measured structure (see EXPERIMENTS.md): the *full-measurement* Fisher
//! trace does **not** collapse on the plateau — scrambled ensembles keep
//! plenty of per-outcome information. What distinguishes the ensembles is
//! the spectrum's *shape*: bounded initializations concentrate information
//! into a few strong directions (low participation ratio — a low-rank,
//! optimizable model), while random initialization spreads it uniformly
//! thin across all directions, none of which aligns with the global cost
//! whose single-outcome probability is exponentially small.

use plateau_bench::{banner, csv_header, csv_row, env_fan_mode, timed, Scale};
use plateau_core::ansatz::training_ansatz;
use plateau_core::init::{FanMode, InitStrategy};
use plateau_grad::classical_fisher_information;
use plateau_rng::rngs::StdRng;
use plateau_rng::SeedableRng;

/// Trace and participation ratio of a symmetric matrix.
fn fisher_stats(f: &plateau_linalg::RMatrix) -> (f64, f64) {
    let p = f.rows();
    let trace: f64 = (0..p).map(|i| f[(i, i)]).sum();
    let mut frob_sq = 0.0;
    for i in 0..p {
        for j in 0..p {
            frob_sq += f[(i, j)] * f[(i, j)];
        }
    }
    // tr(F²) = ‖F‖²_F for symmetric F.
    let pr = if frob_sq > 0.0 { trace * trace / frob_sq } else { 0.0 };
    (trace, pr)
}

fn main() {
    let scale = Scale::from_env();
    banner("Ablation A12: classical Fisher information per initialization", scale);

    let layers = scale.pick(20, 3);
    let seeds = scale.pick(4u64, 2u64);
    let qubit_counts: Vec<usize> = match scale {
        Scale::Paper => vec![4, 6, 8],
        Scale::Quick => vec![2, 3],
    };
    let fan_mode = env_fan_mode(FanMode::TensorShape);
    println!("# layers={layers} seeds={seeds} fan_mode={fan_mode:?}");

    println!("\n## Fisher trace and participation ratio (averaged over seeds)");
    csv_header(&[
        "cell",
        "params",
        "trace",
        "participation_ratio",
        "pr_per_param",
    ]);
    for &q in &qubit_counts {
        let ansatz = training_ansatz(q, layers).expect("ansatz");
        let p = ansatz.circuit.n_params();
        for strategy in [InitStrategy::Random, InitStrategy::XavierNormal] {
            let row = timed(&format!("q={q} {}", strategy.name()), || {
                let mut trace_avg = 0.0;
                let mut pr_avg = 0.0;
                for k in 0..seeds {
                    let mut rng = StdRng::seed_from_u64(0xA12 + k);
                    let theta = strategy
                        .sample_params(&ansatz.shape, fan_mode, &mut rng)
                        .expect("init");
                    let f = classical_fisher_information(&ansatz.circuit, &theta)
                        .expect("fisher");
                    let (trace, pr) = fisher_stats(&f);
                    trace_avg += trace;
                    pr_avg += pr;
                }
                let n = seeds as f64;
                vec![p as f64, trace_avg / n, pr_avg / n, pr_avg / n / p as f64]
            });
            csv_row(&format!("q{q}_{}", strategy.name()), &row);
        }
    }
    println!("# expectation: Xavier's participation ratio stays low and roughly");
    println!("# width-independent (few strong, usable directions) while random's");
    println!("# grows toward uniformity — information spread too thin to align");
    println!("# with any single cost direction.");
    plateau_bench::finish_observability();
}
