//! Measures the per-gate threading crossover: the qubit count at which
//! the chunked multi-threaded amplitude kernels start beating the serial
//! loops on this machine.
//!
//! For each register width the same training-ansatz forward run is timed
//! twice — once with `set_par_threshold(usize::MAX)` (serial kernels)
//! and once with `set_par_threshold(0)` (parallel kernels) — and the
//! serial/parallel median ratio is printed. The crossover is the first
//! width where that ratio exceeds 1. The result backs the
//! `DEFAULT_PAR_THRESHOLD` constant in `plateau-sim` and the notes field
//! of `benchmarks/BENCH_sim_parallel.json`.

use plateau_bench::harness::{black_box, Harness};
use plateau_core::ansatz::training_ansatz;

fn main() {
    let layers = 5usize;
    let widths: Vec<usize> = (8..=16).collect();
    let workers = plateau_par::worker_count(usize::MAX);
    println!("# per-gate threading crossover scan: {layers} layers, {workers} worker(s)");

    let mut h = Harness::new("par_crossover");
    for &n in &widths {
        let ansatz = training_ansatz(n, layers).expect("ansatz");
        let params: Vec<f64> = (0..ansatz.circuit.n_params())
            .map(|i| 0.1 + 0.01 * i as f64)
            .collect();
        let mut group = h.group(&format!("forward_{n}q"));
        group.sample_size(10);
        plateau_sim::set_par_threshold(usize::MAX);
        group.bench("serial", || {
            black_box(ansatz.circuit.run(black_box(&params)).expect("run"))
        });
        plateau_sim::set_par_threshold(0);
        group.bench("parallel", || {
            black_box(ansatz.circuit.run(black_box(&params)).expect("run"))
        });
        plateau_sim::reset_par_threshold();
    }
    let reports = h.finish();

    println!("\n# {:>6}  {:>12}  {:>12}  {:>8}", "qubits", "serial", "parallel", "ratio");
    let mut crossover = None;
    for &n in &widths {
        let median = |id: &str| {
            reports
                .iter()
                .find(|r| r.name == format!("forward_{n}q/{id}"))
                .expect("report")
                .median_ns
        };
        let (s, p) = (median("serial"), median("parallel"));
        let ratio = s / p;
        println!("# {n:>6}  {s:>10.0}ns  {p:>10.0}ns  {ratio:>7.2}x");
        if ratio > 1.0 && crossover.is_none() {
            crossover = Some(n);
        }
    }
    match crossover {
        Some(n) => println!("# crossover: parallel kernels first win at {n} qubits"),
        None => println!("# crossover: parallel kernels never won on this scan"),
    }
}
