//! Ablation **A1** (paper §II-d discussion): global vs local cost
//! functions. Cerezo et al. showed global costs plateau at any depth while
//! local costs keep polynomially large gradients at modest depth; this
//! ablation verifies our substrate reproduces that contrast and shows how
//! it interacts with the initialization strategies.

use plateau_bench::{banner, csv_header, csv_row, timed, Scale};
use plateau_core::cost::CostKind;
use plateau_core::init::InitStrategy;
use plateau_core::variance::{variance_scan, VarianceConfig};

fn main() {
    let scale = Scale::from_env();
    banner("Ablation A1: global vs local cost gradient variance", scale);

    let strategies = [InitStrategy::Random, InitStrategy::XavierNormal];
    for cost in [CostKind::Global, CostKind::Local] {
        let config = VarianceConfig {
            qubit_counts: vec![2, 4, 6, 8, 10],
            layers: scale.pick(50, 6),
            n_circuits: scale.pick(200, 24),
            cost,
            ..VarianceConfig::default()
        };
        let scan = timed(&format!("scan cost={cost}"), || {
            variance_scan(&config, &strategies).expect("variance scan")
        });

        println!("\n## cost = {cost}: Var[dC/dθ_last] per qubit count");
        let mut header = vec!["strategy".to_string()];
        header.extend(config.qubit_counts.iter().map(|q| format!("q{q}")));
        csv_header(&header.iter().map(String::as_str).collect::<Vec<_>>());
        for curve in &scan.curves {
            let vars: Vec<f64> = curve.points.iter().map(|p| p.variance).collect();
            csv_row(curve.strategy.name(), &vars);
        }
        for curve in &scan.curves {
            let fit = curve.decay_fit().expect("fit");
            println!(
                "# {} decay rate b = {:.4} (R² = {:.3})",
                curve.strategy.name(),
                fit.rate,
                fit.r_squared
            );
        }
    }
    println!("\n# expectation: the local cost decays markedly slower than the global");
    println!("# cost under random initialization (Cerezo et al.), while bounded");
    println!("# initialization flattens the contrast.");
    plateau_bench::finish_observability();
}
