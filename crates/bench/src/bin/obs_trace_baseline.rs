//! Records the span-trace baseline consumed by the `plateau obs diff` CI
//! regression gate.
//!
//! Runs the canonical gate workload — a paper-strategy variance scan at
//! `--qubits 2,3 --circuits 8 --layers 10`, the same parameters
//! `scripts/ci.sh` uses for its fresh trace — with the JSONL sink enabled,
//! then aggregates the trace and writes a `trace_baseline` document.
//!
//! Fusion is pinned ON (the production configuration since the gate-fusion
//! compiler landed), matching the `PLATEAU_SIM_FUSE=1` environment of the
//! CI obs-diff gate, so the baseline carries the `sim.fuse.*` span names.
//!
//! Usage: `cargo run -p plateau-bench --bin obs_trace_baseline -- \
//!         [benchmarks/OBS_trace_baseline.json]`
//! (default output path shown). Re-record whenever the gate workload or
//! the span instrumentation changes; CI compares structure exactly and
//! wall time within a generous factor, so a faster/slower machine is fine.

use plateau_core::init::InitStrategy;
use plateau_core::variance::{variance_scan, VarianceConfig};
use plateau_obs::analyze::{Analysis, Trace};

/// The gate workload. Keep in lock-step with the `plateau variance`
/// invocation in `scripts/ci.sh`.
fn gate_config() -> VarianceConfig {
    VarianceConfig {
        qubit_counts: vec![2, 3],
        layers: 10,
        n_circuits: 8,
        ..VarianceConfig::default()
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "benchmarks/OBS_trace_baseline.json".to_string());

    let trace_path =
        std::env::temp_dir().join(format!("plateau_obs_baseline_{}.jsonl", std::process::id()));
    plateau_sim::set_fuse(true);
    plateau_obs::set_log_level(plateau_obs::Level::Warn);
    plateau_obs::init(None, Some(&trace_path)).expect("open trace sink");
    plateau_obs::emit_manifest(
        "plateau-bench obs_trace_baseline (variance --qubits 2,3 --circuits 8 --layers 10)",
        vec![],
        None,
    );
    variance_scan(&gate_config(), &InitStrategy::PAPER_SET).expect("gate workload");
    plateau_obs::finish_run();

    let trace = Trace::read(&trace_path).expect("re-read recorded trace");
    std::fs::remove_file(&trace_path).ok();
    for w in &trace.warnings {
        eprintln!("warning: {w}");
    }
    let analysis = Analysis::of(&trace);
    std::fs::write(&out_path, analysis.to_baseline_json().to_pretty_string())
        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!(
        "# wrote {out_path}: {} span names, {} spans, total wall {} ns",
        analysis.stats.len(),
        analysis.span_count,
        analysis.total_wall_ns
    );
    print!("{}", analysis.render_report(0));
}
