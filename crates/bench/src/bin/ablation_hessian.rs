//! Ablation **A10**: curvature flattening (Cerezo & Coles 2021). Barren
//! plateaus suppress not only gradients but the entire Hessian spectrum —
//! so second-order optimizers cannot rescue a random start either. This
//! binary tracks the Hessian spectral norm of the training ansatz across
//! qubit counts for random vs Xavier initialization.

use plateau_bench::{banner, csv_header, csv_row, timed, Scale};
use plateau_core::ansatz::training_ansatz;
use plateau_core::cost::CostKind;
use plateau_core::init::{FanMode, InitStrategy};
use plateau_grad::{hessian, spectral_norm};
use plateau_rng::rngs::StdRng;
use plateau_rng::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    banner("Ablation A10: Hessian spectral norm vs qubit count", scale);

    let qubit_counts: Vec<usize> = match scale {
        Scale::Paper => vec![2, 4, 6, 8],
        Scale::Quick => vec![2, 3],
    };
    let layers = scale.pick(4, 2);
    let seeds = scale.pick(5u64, 2u64);
    println!("# layers={layers} seeds_per_cell={seeds}");

    println!("\n## mean Hessian spectral norm (averaged over init seeds)");
    csv_header(&["qubits", "random", "xavier_normal"]);
    for &q in &qubit_counts {
        let ansatz = training_ansatz(q, layers).expect("ansatz");
        let obs = CostKind::Global.observable(q);
        let row = timed(&format!("q={q}"), || {
            let mut cells = Vec::new();
            for strategy in [InitStrategy::Random, InitStrategy::XavierNormal] {
                let mut total = 0.0;
                for k in 0..seeds {
                    let mut rng = StdRng::seed_from_u64(0xA10 + k);
                    let theta = strategy
                        .sample_params(&ansatz.shape, FanMode::TensorShape, &mut rng)
                        .expect("init");
                    let h = hessian(&ansatz.circuit, &theta, &obs).expect("hessian");
                    total += spectral_norm(&h).expect("spectral norm");
                }
                cells.push(total / seeds as f64);
            }
            cells
        });
        csv_row(&q.to_string(), &row);
    }
    println!("# expectation: the random column decays exponentially (flat in every");
    println!("# direction, not just along the gradient); the Xavier column stays O(1).");
    plateau_bench::finish_observability();
}
