//! # plateau-bench
//!
//! Shared harness code for the figure-regeneration binaries. Each binary in
//! `src/bin/` reproduces one artifact of the paper (see DESIGN.md's
//! experiment index):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig1_landscape` | Fig 1 (a–c): landscape flattening with qubit count |
//! | `fig5a_variance` | Fig 5a: gradient-variance decay per initializer |
//! | `table_improvements` | headline decay-rate improvement percentages |
//! | `fig5b_train_gd` | Fig 5b: training curves, gradient descent |
//! | `fig5c_train_adam` | Fig 5c: training curves, Adam |
//! | `ablation_*` | design-choice ablations from DESIGN.md §5 |
//!
//! Every binary prints a self-describing CSV-like report to stdout and
//! honors the `PLATEAU_SCALE` environment variable:
//! `PLATEAU_SCALE=quick` shrinks ensembles/depths for smoke runs (used by
//! `cargo bench` wrappers and CI), anything else runs at paper scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

/// The JSON value tree + parser (moved to `plateau-obs`; re-exported so
/// `plateau_bench::json::Json` keeps working for the figure binaries).
pub use plateau_obs::json;

use plateau_core::init::InitStrategy;
use std::time::Instant;

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Full paper-scale parameters.
    Paper,
    /// Shrunk parameters for smoke testing.
    Quick,
}

impl Scale {
    /// Reads the scale from `PLATEAU_SCALE` (`quick` → [`Scale::Quick`],
    /// anything else → [`Scale::Paper`]).
    pub fn from_env() -> Scale {
        match std::env::var("PLATEAU_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            _ => Scale::Paper,
        }
    }

    /// Picks `paper` or `quick` value by scale.
    pub fn pick<T>(self, paper: T, quick: T) -> T {
        match self {
            Scale::Paper => paper,
            Scale::Quick => quick,
        }
    }
}

/// Reads a `usize` override from the environment, falling back to
/// `default`. Used by the figure binaries to expose knobs like
/// `PLATEAU_LAYERS` without per-binary CLI parsing.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads the fan-mode override from `PLATEAU_FAN`
/// (`qubits` / `params` / `tensor`), defaulting to the given mode.
pub fn env_fan_mode(default: plateau_core::FanMode) -> plateau_core::FanMode {
    use plateau_core::FanMode;
    match std::env::var("PLATEAU_FAN").as_deref() {
        Ok("qubits") => FanMode::Qubits,
        Ok("params") => FanMode::ParamsPerLayer,
        Ok("tensor") => FanMode::TensorShape,
        _ => default,
    }
}

/// Prints a report header with a title and the run scale, and (first call
/// only) initializes observability: opens the JSONL sink named by
/// `PLATEAU_METRICS_OUT` and emits the run manifest.
pub fn banner(title: &str, scale: Scale) {
    init_observability(title);
    println!("# {title}");
    println!("# scale: {scale:?}");
}

/// Idempotent observability setup for figure binaries and benches. The
/// stderr level comes from `PLATEAU_LOG` (handled inside `plateau-obs`);
/// this adds the `PLATEAU_METRICS_OUT` JSONL sink and stamps the run
/// manifest.
pub fn init_observability(command: &str) {
    static INIT: std::sync::Once = std::sync::Once::new();
    INIT.call_once(|| {
        if let Ok(path) = std::env::var("PLATEAU_METRICS_OUT") {
            plateau_obs::set_metrics_enabled(true);
            if let Err(e) = plateau_obs::span::set_jsonl_path(std::path::Path::new(&path)) {
                plateau_obs::warn!("failed to open metrics sink {path}: {e}");
            }
        }
        plateau_obs::emit_manifest(
            command,
            vec![
                (
                    "scale".to_string(),
                    json::Json::str(format!("{:?}", Scale::from_env())),
                ),
                ("kind".to_string(), json::Json::str("bench")),
            ],
            None,
        );
    });
}

/// Ends the run: appends the final metrics snapshot to the JSONL sink
/// (if one is open) and closes it. Call at the end of `main`.
pub fn finish_observability() {
    plateau_obs::finish_run();
}

/// Prints a CSV header row.
pub fn csv_header(cols: &[&str]) {
    println!("{}", cols.join(","));
}

/// Prints one CSV row of float values after a string key column.
pub fn csv_row(key: &str, values: &[f64]) {
    let mut line = String::from(key);
    for v in values {
        line.push(',');
        line.push_str(&format!("{v:.6e}"));
    }
    println!("{line}");
}

/// The six paper strategies in reporting order.
pub fn paper_strategies() -> Vec<InitStrategy> {
    InitStrategy::PAPER_SET.to_vec()
}

/// Times a closure inside a `bench_step` span, logging the elapsed
/// wall-clock seconds at `info` (so `PLATEAU_LOG=info` shows per-stage
/// progress and the default stays quiet).
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let _span = plateau_obs::span::Span::enter_with("bench_step", || {
        vec![plateau_obs::Field::new("label", label)]
    });
    let start = Instant::now();
    let out = f();
    plateau_obs::info!("{label}: {:.2}s", start.elapsed().as_secs_f64());
    out
}

/// Shared driver for Fig 5b/5c: trains the paper's 10-qubit, 5-layer
/// ansatz on the identity task for every strategy, printing the loss
/// trajectories as CSV (one column per strategy).
///
/// `make_optimizer` builds a fresh optimizer per strategy so no state
/// leaks between runs.
pub fn run_training_figure(
    title: &str,
    scale: Scale,
    make_optimizer: &mut dyn FnMut() -> Box<dyn plateau_core::Optimizer>,
) {
    use plateau_core::ansatz::training_ansatz;
    use plateau_core::cost::CostKind;
    use plateau_core::init::FanMode;
    use plateau_core::train::train;
    use plateau_rng::rngs::StdRng;
    use plateau_rng::SeedableRng;

    banner(title, scale);
    let n_qubits = scale.pick(10, 4);
    let layers = 5;
    let iterations = 50;
    let fan_mode = env_fan_mode(FanMode::TensorShape);
    println!(
        "# qubits={n_qubits} layers={layers} iterations={iterations} cost=global lr=0.1 fan_mode={fan_mode:?}"
    );

    let ansatz = training_ansatz(n_qubits, layers).expect("valid ansatz");
    println!(
        "# ansatz: {} gates, {} parameters",
        ansatz.circuit.gate_count(),
        ansatz.circuit.n_params()
    );
    let obs = CostKind::Global.observable(n_qubits);

    let strategies = paper_strategies();
    let mut histories = Vec::new();
    for &strategy in &strategies {
        let mut rng = StdRng::seed_from_u64(0x71241 ^ strategy.name().len() as u64);
        let theta0 = strategy
            .sample_params(&ansatz.shape, fan_mode, &mut rng)
            .expect("init params");
        let mut opt = make_optimizer();
        let hist = timed(&format!("train {}", strategy.name()), || {
            train(&ansatz.circuit, &obs, theta0, opt.as_mut(), iterations).expect("training")
        });
        histories.push((strategy, hist));
    }

    println!("\n## loss per iteration (column per strategy)");
    let mut header = vec!["iteration".to_string()];
    header.extend(strategies.iter().map(|s| s.name().to_string()));
    csv_header(&header.iter().map(String::as_str).collect::<Vec<_>>());
    for it in 0..=iterations {
        let row: Vec<f64> = histories.iter().map(|(_, h)| h.losses()[it]).collect();
        csv_row(&it.to_string(), &row);
    }

    println!("\n## summary");
    csv_header(&["strategy", "initial_loss", "final_loss", "iters_to_0.1"]);
    for (strategy, hist) in &histories {
        let reach = hist
            .iterations_to_reach(0.1)
            .map(|i| i as f64)
            .unwrap_or(f64::NAN);
        csv_row(strategy.name(), &[hist.initial_loss(), hist.final_loss(), reach]);
    }
    println!("# expectation from the paper: Xavier variants converge fastest;");
    println!("# He/LeCun/Orthogonal follow; random stalls on the plateau.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Paper.pick(200, 20), 200);
        assert_eq!(Scale::Quick.pick(200, 20), 20);
    }

    #[test]
    fn strategies_are_the_paper_set() {
        let s = paper_strategies();
        assert_eq!(s.len(), 6);
        assert_eq!(s[0], InitStrategy::Random);
    }

    #[test]
    fn timed_returns_value() {
        assert_eq!(timed("noop", || 42), 42);
    }
}
