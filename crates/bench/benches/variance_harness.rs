//! Criterion benchmark of the end-to-end variance harness throughput —
//! the cost of one Fig 5a cell (circuit generation + initialization +
//! last-parameter gradient) at small scale, which bounds the wall-clock of
//! the paper-scale scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use plateau_core::init::InitStrategy;
use plateau_core::variance::{variance_scan, VarianceConfig};
use std::hint::black_box;

fn bench_variance_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("variance_scan_cell");
    group.sample_size(10);
    for &q in &[4usize, 6, 8] {
        let config = VarianceConfig {
            qubit_counts: vec![q],
            layers: 20,
            n_circuits: 16,
            ..VarianceConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, _| {
            b.iter(|| {
                variance_scan(black_box(&config), &[InitStrategy::Random]).expect("scan")
            });
        });
    }
    group.finish();
}

fn bench_strategy_overhead(c: &mut Criterion) {
    // Orthogonal pays a QR per draw; check it stays negligible next to the
    // gradient evaluation.
    let mut group = c.benchmark_group("variance_scan_strategy");
    group.sample_size(10);
    let config = VarianceConfig {
        qubit_counts: vec![6],
        layers: 20,
        n_circuits: 16,
        ..VarianceConfig::default()
    };
    for strategy in [
        InitStrategy::Random,
        InitStrategy::XavierNormal,
        InitStrategy::Orthogonal { gain: 1.0 },
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &strategy,
            |b, s| {
                b.iter(|| variance_scan(black_box(&config), &[*s]).expect("scan"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_variance_cell, bench_strategy_overhead);
criterion_main!(benches);
