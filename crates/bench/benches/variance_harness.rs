//! Benchmark of the end-to-end variance harness throughput — the cost of
//! one Fig 5a cell (circuit generation + initialization + last-parameter
//! gradient) at small scale, which bounds the wall-clock of the
//! paper-scale scan. The scan fans out over the in-repo thread pool
//! (`plateau-par`), so this also exercises the parallel path.

use plateau_bench::harness::{black_box, Harness};
use plateau_core::init::InitStrategy;
use plateau_core::variance::{variance_scan, VarianceConfig};

fn bench_variance_cell(h: &mut Harness) {
    let mut group = h.group("variance_scan_cell");
    group.sample_size(10);
    for &q in &[4usize, 6, 8] {
        let config = VarianceConfig {
            qubit_counts: vec![q],
            layers: 20,
            n_circuits: 16,
            ..VarianceConfig::default()
        };
        group.bench(&q.to_string(), || {
            variance_scan(black_box(&config), &[InitStrategy::Random]).expect("scan")
        });
    }
}

fn bench_strategy_overhead(h: &mut Harness) {
    // Orthogonal pays a QR per draw; check it stays negligible next to the
    // gradient evaluation.
    let mut group = h.group("variance_scan_strategy");
    group.sample_size(10);
    let config = VarianceConfig {
        qubit_counts: vec![6],
        layers: 20,
        n_circuits: 16,
        ..VarianceConfig::default()
    };
    for strategy in [
        InitStrategy::Random,
        InitStrategy::XavierNormal,
        InitStrategy::Orthogonal { gain: 1.0 },
    ] {
        group.bench(strategy.name(), || {
            variance_scan(black_box(&config), &[strategy]).expect("scan")
        });
    }
}

fn main() {
    let mut h = Harness::new("variance_harness");
    bench_variance_cell(&mut h);
    bench_strategy_overhead(&mut h);
    h.finish();
}
