//! Criterion benchmarks comparing the three gradient engines on the
//! paper's training ansatz: adjoint differentiation should scale as one
//! backward sweep for all parameters, parameter shift as two evaluations
//! per parameter, finite differences likewise — the crossover justifies
//! the harness's engine choices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use plateau_core::ansatz::training_ansatz;
use plateau_core::cost::CostKind;
use plateau_grad::{Adjoint, FiniteDifference, GradientEngine, ParameterShift};
use std::hint::black_box;

fn bench_engines_full_gradient(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_gradient");
    group.sample_size(20);
    for &n in &[4usize, 6, 8] {
        let ansatz = training_ansatz(n, 3).expect("valid ansatz");
        let params: Vec<f64> = (0..ansatz.circuit.n_params())
            .map(|i| (i as f64 * 0.7).sin())
            .collect();
        let obs = CostKind::Global.observable(n);

        group.bench_with_input(BenchmarkId::new("adjoint", n), &n, |b, _| {
            b.iter(|| {
                Adjoint
                    .gradient(black_box(&ansatz.circuit), black_box(&params), &obs)
                    .expect("gradient")
            });
        });
        group.bench_with_input(BenchmarkId::new("parameter_shift", n), &n, |b, _| {
            b.iter(|| {
                ParameterShift
                    .gradient(black_box(&ansatz.circuit), black_box(&params), &obs)
                    .expect("gradient")
            });
        });
        group.bench_with_input(BenchmarkId::new("finite_difference", n), &n, |b, _| {
            b.iter(|| {
                FiniteDifference::default()
                    .gradient(black_box(&ansatz.circuit), black_box(&params), &obs)
                    .expect("gradient")
            });
        });
    }
    group.finish();
}

fn bench_partial_last(c: &mut Criterion) {
    let mut group = c.benchmark_group("partial_last");
    group.sample_size(20);
    let n = 8;
    let ansatz = training_ansatz(n, 5).expect("valid ansatz");
    let params: Vec<f64> = (0..ansatz.circuit.n_params())
        .map(|i| (i as f64 * 0.3).cos())
        .collect();
    let obs = CostKind::Global.observable(n);

    group.bench_function("parameter_shift", |b| {
        b.iter(|| {
            ParameterShift
                .partial_last(black_box(&ansatz.circuit), black_box(&params), &obs)
                .expect("partial")
        });
    });
    group.bench_function("adjoint", |b| {
        b.iter(|| {
            Adjoint
                .partial_last(black_box(&ansatz.circuit), black_box(&params), &obs)
                .expect("partial")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_engines_full_gradient, bench_partial_last);
criterion_main!(benches);
