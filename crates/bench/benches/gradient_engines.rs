//! Benchmarks comparing the three gradient engines on the paper's
//! training ansatz: adjoint differentiation should scale as one backward
//! sweep for all parameters, parameter shift as two evaluations per
//! parameter, finite differences likewise — the crossover justifies the
//! harness's engine choices.

use plateau_bench::harness::{black_box, Harness};
use plateau_core::ansatz::training_ansatz;
use plateau_core::cost::CostKind;
use plateau_grad::{Adjoint, FiniteDifference, GradientEngine, ParameterShift};

fn bench_engines_full_gradient(h: &mut Harness) {
    let mut group = h.group("full_gradient");
    group.sample_size(20);
    for &n in &[4usize, 6, 8] {
        let ansatz = training_ansatz(n, 3).expect("valid ansatz");
        let params: Vec<f64> = (0..ansatz.circuit.n_params())
            .map(|i| (i as f64 * 0.7).sin())
            .collect();
        let obs = CostKind::Global.observable(n);

        group.bench(&format!("adjoint/{n}"), || {
            Adjoint
                .gradient(black_box(&ansatz.circuit), black_box(&params), &obs)
                .expect("gradient")
        });
        group.bench(&format!("parameter_shift/{n}"), || {
            ParameterShift
                .gradient(black_box(&ansatz.circuit), black_box(&params), &obs)
                .expect("gradient")
        });
        group.bench(&format!("finite_difference/{n}"), || {
            FiniteDifference::default()
                .gradient(black_box(&ansatz.circuit), black_box(&params), &obs)
                .expect("gradient")
        });
    }
}

fn bench_partial_last(h: &mut Harness) {
    let mut group = h.group("partial_last");
    group.sample_size(20);
    let n = 8;
    let ansatz = training_ansatz(n, 5).expect("valid ansatz");
    let params: Vec<f64> = (0..ansatz.circuit.n_params())
        .map(|i| (i as f64 * 0.3).cos())
        .collect();
    let obs = CostKind::Global.observable(n);

    group.bench("parameter_shift", || {
        ParameterShift
            .partial_last(black_box(&ansatz.circuit), black_box(&params), &obs)
            .expect("partial")
    });
    group.bench("adjoint", || {
        Adjoint
            .partial_last(black_box(&ansatz.circuit), black_box(&params), &obs)
            .expect("partial")
    });
}

fn main() {
    let mut h = Harness::new("gradient_engines");
    bench_engines_full_gradient(&mut h);
    bench_partial_last(&mut h);
    h.finish();
}
