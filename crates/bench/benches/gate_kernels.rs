//! Criterion benchmarks of the statevector gate kernels: single-qubit
//! rotation application, the CZ diagonal fast path, and full HEA layers
//! across register sizes. These time the substrate itself — the per-gate
//! costs that every experiment in the paper multiplies by thousands.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use plateau_sim::{Circuit, RotationGate, State};
use std::hint::black_box;

fn bench_single_qubit_rotation(c: &mut Criterion) {
    let mut group = c.benchmark_group("rx_apply");
    for &n in &[4usize, 8, 12, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut state = State::zero(n);
            b.iter(|| {
                state
                    .apply_rotation(RotationGate::Rx, black_box(n / 2), black_box(0.37))
                    .expect("valid qubit");
            });
        });
    }
    group.finish();
}

fn bench_cz_fast_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("cz_apply");
    for &n in &[4usize, 8, 12, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut state = State::zero(n);
            b.iter(|| {
                state.apply_cz(black_box(0), black_box(n - 1)).expect("valid qubits");
            });
        });
    }
    group.finish();
}

fn bench_hea_layer(c: &mut Criterion) {
    let mut group = c.benchmark_group("hea_full_run");
    for &n in &[4usize, 8, 10] {
        let mut circuit = Circuit::new(n).expect("valid register");
        for _ in 0..5 {
            for q in 0..n {
                circuit.rx(q).expect("valid qubit");
                circuit.ry(q).expect("valid qubit");
            }
            for q in 0..n - 1 {
                circuit.cz(q, q + 1).expect("valid qubits");
            }
        }
        let params: Vec<f64> = (0..circuit.n_params()).map(|i| i as f64 * 0.01).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| circuit.run(black_box(&params)).expect("run"));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_qubit_rotation,
    bench_cz_fast_path,
    bench_hea_layer
);
criterion_main!(benches);
