//! Benchmarks of the statevector gate kernels: single-qubit rotation
//! application, the CZ diagonal fast path, and full HEA layers across
//! register sizes. These time the substrate itself — the per-gate costs
//! that every experiment in the paper multiplies by thousands.

use plateau_bench::harness::{black_box, Harness};
use plateau_sim::{Circuit, RotationGate, State};

fn bench_single_qubit_rotation(h: &mut Harness) {
    let mut group = h.group("rx_apply");
    for &n in &[4usize, 8, 12, 16] {
        let mut state = State::zero(n);
        group.bench(&n.to_string(), || {
            state
                .apply_rotation(RotationGate::Rx, black_box(n / 2), black_box(0.37))
                .expect("valid qubit");
        });
    }
}

fn bench_cz_fast_path(h: &mut Harness) {
    let mut group = h.group("cz_apply");
    for &n in &[4usize, 8, 12, 16] {
        let mut state = State::zero(n);
        group.bench(&n.to_string(), || {
            state.apply_cz(black_box(0), black_box(n - 1)).expect("valid qubits");
        });
    }
}

fn bench_hea_layer(h: &mut Harness) {
    let mut group = h.group("hea_full_run");
    for &n in &[4usize, 8, 10] {
        let mut circuit = Circuit::new(n).expect("valid register");
        for _ in 0..5 {
            for q in 0..n {
                circuit.rx(q).expect("valid qubit");
                circuit.ry(q).expect("valid qubit");
            }
            for q in 0..n - 1 {
                circuit.cz(q, q + 1).expect("valid qubits");
            }
        }
        let params: Vec<f64> = (0..circuit.n_params()).map(|i| i as f64 * 0.01).collect();
        group.bench(&n.to_string(), || circuit.run(black_box(&params)).expect("run"));
    }
}

fn main() {
    let mut h = Harness::new("gate_kernels");
    bench_single_qubit_rotation(&mut h);
    bench_cz_fast_path(&mut h);
    bench_hea_layer(&mut h);
    h.finish();
}
