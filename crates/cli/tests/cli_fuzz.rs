//! End-to-end acceptance for `plateau fuzz`: a clean differential
//! campaign over the engine matrix, the mutation self-test (including
//! artifact emission), replay of a written reproducer, and flag
//! validation — all through the real binary.

use std::process::Command;

fn plateau() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_plateau"));
    // Isolate from the invoking environment.
    cmd.env_remove("PLATEAU_LOG")
        .env_remove("PLATEAU_METRICS")
        .env_remove("PLATEAU_METRICS_OUT")
        .env_remove("PLATEAU_CHECK_CASES")
        .env_remove("PLATEAU_SIM_FUSE");
    cmd
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("plateau-cli-fuzz-{tag}-{}", std::process::id()))
}

#[test]
fn clean_campaign_prints_the_pair_matrix_and_summary() {
    let dir = temp_dir("clean");
    let output = plateau()
        .args(["fuzz", "--cases", "25", "--seed", "0xfeed", "--artifacts"])
        .arg(&dir)
        .output()
        .expect("spawn plateau");
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("# plateau fuzz: 25 cases, seed 0xfeed"), "stdout: {stdout}");
    assert!(stdout.contains("pair,comparisons,max_delta,tolerance"), "stdout: {stdout}");
    // Every always-on pair shows up with a full comparison count.
    for pair in ["serial-vs-parallel", "raw-vs-optimized", "qasm-roundtrip"] {
        assert!(stdout.contains(&format!("{pair},25,")), "missing {pair} row: {stdout}");
    }
    assert!(stdout.contains("comparisons, all clean"), "stdout: {stdout}");
}

#[test]
fn mutation_self_test_detects_writes_artifact_and_replays() {
    let dir = temp_dir("mutate");
    let output = plateau()
        .args(["fuzz", "--cases", "25", "--seed", "1", "--mutate", "true", "--artifacts"])
        .arg(&dir)
        .output()
        .expect("spawn plateau");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("# mutation self-test passed"), "stdout: {stdout}");

    // Pull a reproducer path out of a MISMATCH line and replay it: the
    // injected bug must still reproduce, so replay exits nonzero.
    let artifact = stdout
        .lines()
        .find_map(|l| l.split("reproducer: ").nth(1))
        .expect("self-test must report at least one reproducer path");
    let replay = plateau()
        .args(["fuzz", "--replay", artifact])
        .output()
        .expect("spawn plateau");
    let replay_out = String::from_utf8_lossy(&replay.stdout);
    let replay_err = String::from_utf8_lossy(&replay.stderr);
    assert!(!replay.status.success(), "replay of a live bug must fail");
    assert!(replay_out.contains("# replaying"), "stdout: {replay_out}");
    assert!(
        replay_err.contains("mismatch still reproduces"),
        "stderr: {replay_err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_seed_is_rejected() {
    let output = plateau()
        .args(["fuzz", "--cases", "1", "--seed", "0xzz"])
        .output()
        .expect("spawn plateau");
    assert!(!output.status.success());
    assert!(
        String::from_utf8_lossy(&output.stderr).contains("seed"),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn unknown_flag_is_rejected() {
    let output = plateau()
        .args(["fuzz", "--bogus", "1"])
        .output()
        .expect("spawn plateau");
    assert!(!output.status.success());
}
