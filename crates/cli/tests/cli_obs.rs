//! End-to-end observability acceptance for the `plateau` binary: the
//! `--log` / `--metrics-out` flags, the run manifest, per-cell spans, and
//! analytic gate-count verification — everything parsed back through the
//! in-repo JSON parser. Also checks that a run with no log flag and no
//! `PLATEAU_LOG` keeps stderr completely silent.

use plateau_obs::json::Json;
use std::process::Command;

fn plateau() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_plateau"));
    // Isolate from the invoking environment.
    cmd.env_remove("PLATEAU_LOG")
        .env_remove("PLATEAU_METRICS")
        .env_remove("PLATEAU_METRICS_OUT")
        .env_remove("PLATEAU_SIM_FUSE");
    cmd
}

#[test]
fn variance_run_emits_manifest_spans_and_exact_gate_counts() {
    let out_path = std::env::temp_dir().join(format!("plateau-cli-obs-{}.jsonl", std::process::id()));
    let output = plateau()
        .args([
            "variance",
            "--qubits",
            "2,3",
            "--circuits",
            "8",
            "--layers",
            "10",
            // Pin the paper's differentiation method: the analytic
            // execution counts below assume two-term parameter shift,
            // and this exercises the --engine flag end to end.
            "--engine",
            "parameter-shift",
            "--log",
            "info",
            "--metrics-out",
        ])
        .arg(&out_path)
        .output()
        .expect("spawn plateau");
    assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));
    // --log info puts the per-cell progress lines on stderr.
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("variance cell"), "stderr was: {stderr}");

    let raw = std::fs::read_to_string(&out_path).expect("metrics sink written");
    std::fs::remove_file(&out_path).ok();
    let records: Vec<Json> = raw
        .lines()
        .map(|l| Json::parse(l).expect("every line is valid JSON"))
        .collect();
    let kind = |r: &Json| r.get("type").and_then(|t| t.as_str().map(String::from));

    // Record 1: the run manifest, stamped with command, git, and config.
    let manifest = &records[0];
    assert_eq!(kind(manifest).as_deref(), Some("manifest"));
    let command = manifest.get("command").unwrap().as_str().unwrap();
    assert!(command.starts_with("plateau variance"), "command: {command}");
    assert!(manifest.get("git").unwrap().as_str().is_some());
    assert_eq!(
        manifest
            .get("config")
            .and_then(|c| c.get("circuits"))
            .and_then(|v| v.as_str()),
        Some("8")
    );

    // One span per (qubit, strategy) cell: 6 paper strategies × 2 counts,
    // each with a positive wall time, plus the enclosing scan span.
    let spans: Vec<&Json> = records.iter().filter(|r| kind(r).as_deref() == Some("span")).collect();
    let cells: Vec<&&Json> = spans
        .iter()
        .filter(|s| s.get("name").unwrap().as_str() == Some("variance_cell"))
        .collect();
    assert_eq!(cells.len(), 12);
    for cell in &cells {
        assert!(cell.get("duration_ns").unwrap().as_f64().unwrap() > 0.0);
        let fields = cell.get("fields").unwrap();
        assert!(fields.get("strategy").unwrap().as_str().is_some());
        assert!(fields.get("q").unwrap().as_f64().is_some());
    }
    assert!(spans.iter().any(|s| s.get("name").unwrap().as_str() == Some("variance_scan")));

    // Final record: the metrics snapshot. Gate counters must match the
    // analytic count: each of the 6 strategies × 8 circuits × 2 shift
    // evaluations executes a circuit with layers × q rotations and
    // layers × (q − 1) CZs, for q ∈ {2, 3}.
    let metrics = records.last().unwrap();
    assert_eq!(kind(metrics).as_deref(), Some("metrics"));
    let counter = |name: &str| {
        metrics
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|| panic!("counter {name} missing"))
    };
    let per_exec: f64 = 6.0 * 8.0 * 2.0 * 10.0; // strategies × circuits × evals × layers
    assert_eq!(counter("sim.gate.rotation"), per_exec * (2.0 + 3.0));
    assert_eq!(counter("sim.gate.fixed"), per_exec * (1.0 + 2.0));
    // Circuit executions per gradient engine: the scan differentiates the
    // last parameter by two-term parameter shift only.
    let executions = 6.0 * 2.0 * 8.0 * 2.0; // strategies × qubit counts × circuits × evals
    assert_eq!(counter("grad.executions.parameter_shift"), executions);
    assert_eq!(counter("grad.expectation_evals"), executions);
    assert_eq!(counter("core.variance.cells"), 12.0);
    assert!(counter("par.tasks") >= 6.0 * 8.0 * 2.0);
}

#[test]
fn variance_with_fuse_flag_emits_compression_counters() {
    let out_path =
        std::env::temp_dir().join(format!("plateau-cli-fuse-{}.jsonl", std::process::id()));
    let output = plateau()
        .args([
            "variance",
            "--qubits",
            "2,3",
            "--circuits",
            "4",
            "--layers",
            "5",
            "--fuse",
            "true",
            "--metrics-out",
        ])
        .arg(&out_path)
        .output()
        .expect("spawn plateau");
    assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));
    let raw = std::fs::read_to_string(&out_path).expect("metrics sink written");
    std::fs::remove_file(&out_path).ok();
    let metrics = raw
        .lines()
        .map(|l| Json::parse(l).expect("valid JSON"))
        .filter(|r| r.get("type").and_then(|t| t.as_str().map(String::from)).as_deref() == Some("metrics"))
        .next_back()
        .expect("metrics snapshot present");
    let counter = |name: &str| {
        metrics
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|| panic!("counter {name} missing"))
    };
    // The fusion compiler ran and compressed: fewer segments out than
    // gates in. (Exact counts are pinned by unit tests; here we assert
    // the counters are wired end to end through the binary.)
    assert!(counter("sim.fuse.gates_in") > 0.0);
    assert!(counter("sim.fuse.gates_out") > 0.0);
    assert!(counter("sim.fuse.gates_out") < counter("sim.fuse.gates_in"));
}

#[test]
fn silent_by_default_with_no_log_flag_or_env() {
    let output = plateau()
        .args(["variance", "--qubits", "2,3", "--circuits", "4", "--layers", "3"])
        .output()
        .expect("spawn plateau");
    assert!(output.status.success());
    assert!(
        output.stderr.is_empty(),
        "expected silent stderr, got: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    // stdout still carries the data table.
    assert!(String::from_utf8_lossy(&output.stdout).contains("strategy,"));
}

#[test]
fn bad_log_level_is_rejected() {
    let output = plateau()
        .args(["variance", "--qubits", "2,3", "--circuits", "4", "--layers", "3", "--log", "blah"])
        .output()
        .expect("spawn plateau");
    assert!(!output.status.success());
}
