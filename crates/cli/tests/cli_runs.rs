//! End-to-end acceptance for the experiment ledger read side: `plateau
//! train --ledger` registering runs, then `plateau obs runs
//! list|show|compare` over the resulting registry, plus the
//! `obs report --filter` prefix view. Everything is parsed back through
//! the in-repo JSON parser — no external test dependencies.

use plateau_obs::json::Json;
use std::path::PathBuf;
use std::process::Command;

fn plateau() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_plateau"));
    // Isolate from the invoking environment.
    cmd.env_remove("PLATEAU_LOG")
        .env_remove("PLATEAU_METRICS")
        .env_remove("PLATEAU_METRICS_OUT")
        .env_remove("PLATEAU_SIM_FUSE")
        .env_remove("PLATEAU_LEDGER");
    cmd
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("plateau_cli_runs_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Runs `plateau train` against `ledger_dir` and returns the ledger run id
/// echoed on stdout as `# ledger run: <id>`.
fn train_into_ledger(ledger_dir: &PathBuf, strategy: &str) -> String {
    let output = plateau()
        .args([
            "train",
            "--qubits",
            "3",
            "--layers",
            "2",
            "--iterations",
            "10",
            "--strategy",
            strategy,
            "--seed",
            "1",
            "--ledger",
        ])
        .arg(ledger_dir)
        .output()
        .expect("spawn plateau train");
    assert!(
        output.status.success(),
        "train --strategy {strategy} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    stdout
        .lines()
        .find_map(|l| l.strip_prefix("# ledger run: "))
        .unwrap_or_else(|| panic!("no `# ledger run:` line in stdout:\n{stdout}"))
        .trim()
        .to_string()
}

#[test]
fn train_registers_runs_and_obs_runs_lists_shows_compares() {
    let dir = temp_dir("e2e");
    let id_random = train_into_ledger(&dir, "random");
    let id_xavier = train_into_ledger(&dir, "xavier_uniform");
    assert_ne!(id_random, id_xavier);

    // The ledger file itself is well-formed JSONL with one record per run,
    // each pointing at a parseable per-run series file.
    let raw = std::fs::read_to_string(dir.join("ledger.jsonl")).expect("ledger written");
    let records: Vec<Json> = raw
        .lines()
        .map(|l| Json::parse(l).expect("ledger line parses"))
        .collect();
    assert_eq!(records.len(), 2);
    for rec in &records {
        assert_eq!(rec.get("command").unwrap().as_str(), Some("train"));
        let rel = rec.get("series").unwrap().as_str().unwrap();
        let series = plateau_obs::TimeSeries::read_jsonl(&dir.join(rel)).expect("series parses");
        assert_eq!(series.len(), 10, "one row per iteration");
        for col in ["loss", "grad_norm", "bp_score", "layer_var_0"] {
            assert!(
                series.columns().iter().any(|c| c == col),
                "missing column {col}"
            );
        }
    }

    // `obs runs list` shows both runs with their strategies.
    let list = plateau()
        .args(["obs", "runs", "list", "--dir"])
        .arg(&dir)
        .output()
        .expect("spawn obs runs list");
    assert!(list.status.success(), "stderr: {}", String::from_utf8_lossy(&list.stderr));
    let list_out = String::from_utf8_lossy(&list.stdout);
    for id in [&id_random, &id_xavier] {
        assert!(list_out.contains(id.as_str()), "list missing {id}:\n{list_out}");
    }
    assert!(list_out.contains("final_loss"), "list was:\n{list_out}");

    // `obs runs show <unique-prefix>` resolves the id and prints config,
    // metrics, and per-column decay slopes from the attached series.
    let prefix = &id_random[..id_random.len() - 4];
    let show = plateau()
        .args(["obs", "runs", "show", prefix, "--dir"])
        .arg(&dir)
        .output()
        .expect("spawn obs runs show");
    assert!(show.status.success(), "stderr: {}", String::from_utf8_lossy(&show.stderr));
    let show_out = String::from_utf8_lossy(&show.stdout);
    assert!(show_out.contains(&format!("id       {id_random}")), "show was:\n{show_out}");
    assert!(show_out.contains("strategy = random"), "show was:\n{show_out}");
    assert!(show_out.contains("final_loss"), "show was:\n{show_out}");
    assert!(show_out.contains("log-slope"), "show was:\n{show_out}");

    // `obs runs compare` with no ids picks the two most recent runs,
    // prints metric deltas plus per-column decay slopes, and renders a
    // standalone SVG with one curve per (run, column) pair.
    let svg_path = dir.join("compare.svg");
    let compare = plateau()
        .args(["obs", "runs", "compare", "--dir"])
        .arg(&dir)
        .arg("--svg")
        .arg(&svg_path)
        .output()
        .expect("spawn obs runs compare");
    assert!(
        compare.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&compare.stderr)
    );
    let cmp_out = String::from_utf8_lossy(&compare.stdout);
    assert!(cmp_out.contains(&format!("# A: {id_random}")), "compare was:\n{cmp_out}");
    assert!(cmp_out.contains(&format!("# B: {id_xavier}")), "compare was:\n{cmp_out}");
    assert!(cmp_out.contains("final_loss"), "compare was:\n{cmp_out}");
    assert!(cmp_out.contains("exponential decay"), "compare was:\n{cmp_out}");
    let svg = std::fs::read_to_string(&svg_path).expect("svg written");
    assert!(svg.starts_with("<?xml"), "svg head: {}", &svg[..svg.len().min(80)]);
    assert!(svg.contains("A:grad_norm"), "svg missing A curve label");
    assert!(svg.contains("B:grad_norm"), "svg missing B curve label");
    assert!(svg.trim_end().ends_with("</svg>"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn obs_runs_errors_without_ledger_mention_how_to_enable_it() {
    let dir = temp_dir("missing");
    let out = plateau()
        .args(["obs", "runs", "list", "--dir"])
        .arg(&dir)
        .output()
        .expect("spawn obs runs list");
    assert!(!out.status.success(), "expected failure on missing ledger");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("PLATEAU_LEDGER") || stderr.contains("--ledger"),
        "error should point at the enable switch, was:\n{stderr}"
    );
}

#[test]
fn obs_runs_compare_needs_two_runs() {
    let dir = temp_dir("single");
    train_into_ledger(&dir, "random");
    let out = plateau()
        .args(["obs", "runs", "compare", "--dir"])
        .arg(&dir)
        .output()
        .expect("spawn obs runs compare");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("two runs"), "stderr was:\n{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn obs_report_filter_restricts_to_prefix() {
    let trace = std::env::temp_dir().join(format!(
        "plateau_cli_runs_trace_{}.jsonl",
        std::process::id()
    ));
    std::fs::remove_file(&trace).ok();
    let run = plateau()
        .args([
            "variance",
            "--qubits",
            "2,3",
            "--circuits",
            "4",
            "--layers",
            "3",
            "--metrics-out",
        ])
        .arg(&trace)
        .output()
        .expect("spawn plateau variance");
    assert!(run.status.success(), "stderr: {}", String::from_utf8_lossy(&run.stderr));

    let report = |extra: &[&str]| {
        let mut cmd = plateau();
        cmd.args(["obs", "report", "--trace"]).arg(&trace);
        cmd.args(extra);
        let out = cmd.output().expect("spawn obs report");
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8_lossy(&out.stdout).into_owned()
    };

    let full = report(&[]);
    assert!(full.contains("variance_cell"), "full report was:\n{full}");

    let filtered = report(&["--filter", "variance_"]);
    assert!(filtered.contains("variance_cell"), "filtered report was:\n{filtered}");
    assert!(filtered.contains("variance_scan"), "filtered report was:\n{filtered}");
    // Every table row (non-comment line) must carry the prefix.
    for line in filtered.lines().skip_while(|l| l.starts_with('#')) {
        let Some(name) = line.split_whitespace().next() else { continue };
        if name == "name" {
            continue; // table header
        }
        assert!(
            name.starts_with("variance_"),
            "unfiltered row {name:?} in:\n{filtered}"
        );
    }

    // A prefix that matches nothing still exits cleanly with an empty table.
    let none = report(&["--filter", "no_such_prefix."]);
    assert!(none.contains("0 spans"), "empty-filter report was:\n{none}");

    std::fs::remove_file(&trace).ok();
}
