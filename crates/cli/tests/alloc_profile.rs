//! End-to-end acceptance for span-attributed allocation profiling: with a
//! [`CountingAllocator`] installed in this test binary, a span wrapped
//! around one forward pass of the paper's 10-qubit / 5-layer training
//! ansatz must be charged *exactly* the bytes that pass allocates — and
//! `obs flame --by alloc` (both the library call and the `plateau` CLI
//! subprocess) must render that exact count in the top frame's tooltip.

use plateau_core::ansatz::training_ansatz;
use plateau_obs::alloc::{set_profiling, thread_allocated, CountingAllocator};
use plateau_obs::analyze::{Analysis, RankBy, Trace};
use plateau_obs::flame::flamegraph_svg_by;
use std::path::PathBuf;
use std::process::Command;

/// The cli *library* path stays safe; this integration test binary is
/// where the allocator seam gets installed.
#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("plateau_alloc_profile_{}_{name}", std::process::id()))
}

fn plateau() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_plateau"));
    cmd.env_remove("PLATEAU_LOG")
        .env_remove("PLATEAU_METRICS")
        .env_remove("PLATEAU_METRICS_OUT")
        .env_remove("PLATEAU_SIM_FUSE")
        .env_remove("PLATEAU_LEDGER");
    cmd
}

/// One test function: the span attribution, flame rendering, and CLI
/// checks share global profiler/tracer state, so they must run in one
/// deterministic sequence rather than as parallel `#[test]`s.
#[test]
fn span_alloc_attribution_is_exact_and_flame_by_alloc_renders_it() {
    let _guard = plateau_obs::test_lock();
    plateau_obs::set_log_level(plateau_obs::Level::Off);
    plateau_obs::set_metrics_enabled(false);
    // Deterministic allocation stream: serial kernels, no fusion spans.
    plateau_sim::set_par_threshold(usize::MAX);
    plateau_sim::set_fuse(false);

    let trace_path = temp_path("trace.jsonl");
    plateau_obs::span::set_jsonl_path(&trace_path).expect("open trace sink");
    assert!(
        set_profiling(true),
        "counting allocator is installed in this binary; profiling must engage"
    );

    // The paper's training workload: 10 qubits, 5 layers.
    let ansatz = training_ansatz(10, 5).expect("training ansatz");
    let params: Vec<f64> = (0..ansatz.circuit.n_params())
        .map(|i| 0.1 + 0.01 * i as f64)
        .collect();

    // Warm every lazy path (knob caches, span-stack capacity, sink
    // buffer) so first-use allocations are not charged to the measured
    // window below.
    ansatz.circuit.run(&params).expect("warm-up run");
    {
        let _s = plateau_obs::span!("warmup.run");
        ansatz.circuit.run(&params).expect("warm-up span run");
    }

    // Reference measurement: the exact thread-local (bytes, count) cost
    // of one bare forward pass. Measured twice — the serial, unfused
    // simulator must allocate deterministically or exact attribution is
    // meaningless.
    let delta = |f: &dyn Fn()| {
        let (b0, c0) = thread_allocated();
        f();
        let (b1, c1) = thread_allocated();
        (b1 - b0, c1 - c0)
    };
    let run = || {
        ansatz.circuit.run(&params).expect("run");
    };
    let (bytes, count) = delta(&run);
    assert_eq!(
        (bytes, count),
        delta(&run),
        "serial unfused forward pass must allocate deterministically"
    );
    assert!(bytes > 0, "a 10q forward pass allocates its state vector");

    // The same pass wrapped in a span: attribution must charge the span
    // those exact bytes (snapshots close before the record is built, so
    // the span's own JSONL serialization is not counted). The warm-up
    // already set the process high-water mark, so drop it back to the
    // live footprint to give the span a peak of its own to claim.
    plateau_obs::alloc::reset_peak();
    {
        let _s = plateau_obs::span!("ansatz.run");
        run();
    }
    plateau_obs::span::close_jsonl();
    set_profiling(false);

    let trace = Trace::read(&trace_path).expect("trace parses");
    let span = trace
        .spans
        .iter()
        .find(|s| s.name == "ansatz.run")
        .expect("measured span in trace");
    assert_eq!(span.alloc_bytes, bytes, "span must carry the exact byte count");
    assert_eq!(span.alloc_count, count, "span must carry the exact allocation count");
    assert!(span.peak_bytes > 0, "the state vector raises the high-water mark");

    // The analysis ranks by memory and reports the byte columns.
    let mut analysis = Analysis::of(&trace);
    assert!(analysis.has_alloc_data());
    analysis.rank_by(RankBy::Alloc);
    let report = analysis.render_report(10);
    assert!(report.contains("ansatz.run"), "report lists the span:\n{report}");
    assert!(report.contains("self-alloc"), "report shows memory columns:\n{report}");

    // Library-level flame: the leaf span ansatz.run owns 100% of its own
    // bytes, so its tooltip carries the exact measured count.
    let svg = flamegraph_svg_by(&trace, "alloc test", RankBy::Alloc);
    let tooltip = format!("ansatz.run — {bytes} B");
    assert!(
        svg.contains(&tooltip),
        "flame --by alloc must carry the exact byte count {tooltip:?}"
    );

    // CLI-level flame over the same trace: well-formed SVG, same exact
    // top-frame byte count.
    let svg_path = temp_path("flame.svg");
    let output = plateau()
        .args(["obs", "flame", "--trace"])
        .arg(&trace_path)
        .args(["--by", "alloc", "--out"])
        .arg(&svg_path)
        .output()
        .expect("spawn plateau obs flame");
    assert!(
        output.status.success(),
        "obs flame --by alloc failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let svg = std::fs::read_to_string(&svg_path).expect("svg written");
    assert!(svg.starts_with("<svg") || svg.starts_with("<?xml"), "well-formed SVG root");
    assert!(svg.trim_end().ends_with("</svg>"), "well-formed SVG close");
    assert!(
        svg.contains(&tooltip),
        "CLI flame top frame must match the exact-count measurement {tooltip:?}"
    );

    std::fs::remove_file(&trace_path).ok();
    std::fs::remove_file(&svg_path).ok();
}
