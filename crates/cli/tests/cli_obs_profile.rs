//! End-to-end acceptance for the trace profiler: a real `--metrics-out`
//! run produces a trace with span/parent ids that `plateau obs report`
//! summarizes with a self-time ranking and percentiles, `obs flame`
//! renders as a standalone SVG, and `obs diff` passes on identical traces
//! but exits nonzero on an injected slowdown beyond the threshold.

use plateau_obs::json::Json;
use std::path::PathBuf;
use std::process::Command;

fn plateau() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_plateau"));
    cmd.env_remove("PLATEAU_LOG")
        .env_remove("PLATEAU_METRICS")
        .env_remove("PLATEAU_METRICS_OUT")
        .env_remove("PLATEAU_SIM_FUSE");
    cmd
}

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("plateau-cli-profile-{}-{tag}", std::process::id()))
}

/// Records the shared trace once per test that needs it.
fn record_trace(tag: &str) -> PathBuf {
    let path = tmp(&format!("{tag}.jsonl"));
    let output = plateau()
        .args(["variance", "--qubits", "2,3", "--circuits", "4", "--layers", "5", "--metrics-out"])
        .arg(&path)
        .output()
        .expect("spawn plateau variance");
    assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));
    path
}

#[test]
fn report_ranks_spans_by_self_time_with_percentiles() {
    let trace = record_trace("report");

    // The raw trace carries monotonic ids and parent links.
    let raw = std::fs::read_to_string(&trace).unwrap();
    let spans: Vec<Json> = raw
        .lines()
        .map(|l| Json::parse(l).unwrap())
        .filter(|r| r.get("type").and_then(Json::as_str) == Some("span"))
        .collect();
    assert!(!spans.is_empty());
    for s in &spans {
        assert!(s.get("id").unwrap().as_f64().unwrap() >= 1.0);
        assert!(s.get("parent").is_some(), "span records carry a parent field");
    }

    let output = plateau()
        .args(["obs", "report", "--top", "5", "--trace"])
        .arg(&trace)
        .output()
        .expect("spawn obs report");
    std::fs::remove_file(&trace).ok();
    assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));
    let stdout = String::from_utf8_lossy(&output.stdout);
    for needle in ["variance_cell", "variance_scan", "self%", "p50", "p90", "p99", "total wall"] {
        assert!(stdout.contains(needle), "missing {needle:?} in:\n{stdout}");
    }
    // Cells dominate self time, so they rank above the scan wrapper.
    let cell_at = stdout.find("variance_cell").unwrap();
    let scan_at = stdout.find("variance_scan").unwrap();
    assert!(cell_at < scan_at, "expected variance_cell ranked first:\n{stdout}");
}

#[test]
fn flame_writes_a_standalone_svg_and_collapsed_stacks() {
    let trace = record_trace("flame");
    let svg_path = tmp("flame.svg");
    let collapsed_path = tmp("flame.collapsed");
    let output = plateau()
        .args(["obs", "flame", "--trace"])
        .arg(&trace)
        .arg("--out")
        .arg(&svg_path)
        .arg("--collapsed")
        .arg(&collapsed_path)
        .output()
        .expect("spawn obs flame");
    std::fs::remove_file(&trace).ok();
    assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));

    let svg = std::fs::read_to_string(&svg_path).unwrap();
    std::fs::remove_file(&svg_path).ok();
    assert!(svg.starts_with("<?xml version=\"1.0\""));
    assert!(svg.trim_end().ends_with("</svg>"));
    assert_eq!(svg.matches("<svg").count(), 1);
    assert_eq!(svg.matches("<g>").count(), svg.matches("</g>").count());
    assert!(svg.contains("variance_scan"));
    assert!(!svg.contains("<script"), "SVG must not need JavaScript");

    let collapsed = std::fs::read_to_string(&collapsed_path).unwrap();
    std::fs::remove_file(&collapsed_path).ok();
    assert!(collapsed.contains("variance_scan;variance_cell "), "collapsed: {collapsed}");
}

#[test]
fn diff_passes_on_identical_traces_and_fails_on_injected_slowdown() {
    let trace = record_trace("diff");

    // Identical sides: exit 0, PASS verdict.
    let same = plateau()
        .args(["obs", "diff"])
        .arg(&trace)
        .arg(&trace)
        .args(["--threshold", "0.2"])
        .output()
        .expect("spawn obs diff");
    assert!(same.status.success(), "stderr: {}", String::from_utf8_lossy(&same.stderr));
    assert!(String::from_utf8_lossy(&same.stdout).contains("# PASS"));

    // Inject a 10× slowdown into every variance_cell span and re-diff:
    // the gate must fail with a nonzero exit.
    let slow_path = tmp("diff-slow.jsonl");
    let slowed: String = std::fs::read_to_string(&trace)
        .unwrap()
        .lines()
        .map(|line| {
            let rec = Json::parse(line).unwrap();
            if rec.get("type").and_then(Json::as_str) == Some("span")
                && rec.get("name").and_then(Json::as_str) == Some("variance_cell")
            {
                let ns = rec.get("duration_ns").unwrap().as_f64().unwrap();
                let Json::Obj(fields) = rec else { unreachable!() };
                let patched: Vec<(String, Json)> = fields
                    .into_iter()
                    .map(|(k, v)| {
                        if k == "duration_ns" {
                            (k, Json::Num(ns * 10.0))
                        } else {
                            (k, v)
                        }
                    })
                    .collect();
                format!("{}\n", Json::Obj(patched))
            } else {
                format!("{line}\n")
            }
        })
        .collect();
    std::fs::write(&slow_path, slowed).unwrap();

    let slow = plateau()
        .args(["obs", "diff"])
        .arg(&trace)
        .arg(&slow_path)
        .args(["--threshold", "0.2"])
        .output()
        .expect("spawn obs diff (slow)");
    std::fs::remove_file(&trace).ok();
    std::fs::remove_file(&slow_path).ok();
    assert!(!slow.status.success(), "a 10x slowdown must fail the 20% gate");
    let stdout = String::from_utf8_lossy(&slow.stdout);
    assert!(stdout.contains("REGRESSION"), "stdout: {stdout}");
    assert!(stdout.contains("# FAIL"), "stdout: {stdout}");
}

#[test]
fn obs_usage_errors_are_actionable() {
    // Unknown subcommand.
    let output = plateau().args(["obs", "nonsense"]).output().unwrap();
    assert!(!output.status.success());
    // diff needs exactly two positionals.
    let output = plateau().args(["obs", "diff", "only-one.jsonl"]).output().unwrap();
    assert!(!output.status.success());
    // A non-obs command still rejects stray positionals.
    let output = plateau().args(["variance", "oops"]).output().unwrap();
    assert!(!output.status.success());
    // Missing trace file is an error, not a panic.
    let output = plateau()
        .args(["obs", "report", "--trace", "/nonexistent/trace.jsonl"])
        .output()
        .unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("cannot read trace"), "stderr: {stderr}");
}
