//! End-to-end acceptance for the perf-ledger read side (`plateau obs perf
//! list|trend|regress`) and the stdout/stderr contract of the listing
//! commands: tables and SVG go to stdout / `--svg`, warnings go to stderr
//! only, and `regress` is a real gate (nonzero exit on an injected
//! slowdown, zero on replayed steady history).

use std::path::PathBuf;
use std::process::Command;

fn plateau() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_plateau"));
    cmd.env_remove("PLATEAU_LOG")
        .env_remove("PLATEAU_METRICS")
        .env_remove("PLATEAU_METRICS_OUT")
        .env_remove("PLATEAU_SIM_FUSE")
        .env_remove("PLATEAU_LEDGER")
        .env_remove("PLATEAU_PERF");
    cmd
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("plateau_cli_perf_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Appends synthetic perf records (one per median) for `bench`.
fn record(dir: &PathBuf, bench: &str, medians: &[f64]) {
    std::fs::create_dir_all(dir).unwrap();
    let mut text = String::new();
    for (i, m) in medians.iter().enumerate() {
        text.push_str(&format!(
            "{{\"type\":\"perf\",\"ts_unix\":{},\"bench\":\"{bench}\",\"git\":\"deadbee\",\
             \"config\":{{\"qubits\":10}},\"median_ns\":{m},\"p90_ns\":{},\
             \"peak_bytes\":null,\"cores\":1}}\n",
            1000 + i,
            m * 1.1
        ));
    }
    let path = dir.join("perf.jsonl");
    let prior = std::fs::read_to_string(&path).unwrap_or_default();
    std::fs::write(&path, prior + &text).unwrap();
}

#[test]
fn perf_list_trend_and_regress_gate() {
    let dir = temp_dir("gate");
    // Steady history for two benches.
    record(&dir, "training_step/serial", &[100e6, 102e6, 98e6, 101e6]);
    record(&dir, "training_step/fused", &[40e6, 41e6, 39e6, 40e6]);

    // list: one row per record, header names the directory.
    let output = plateau()
        .args(["obs", "perf", "list", "--dir"])
        .arg(&dir)
        .output()
        .expect("spawn obs perf list");
    assert!(output.status.success(), "{}", String::from_utf8_lossy(&output.stderr));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("8 record(s), 2 bench(es)"), "{stdout}");
    assert!(stdout.contains("training_step/serial"), "{stdout}");

    // trend --svg: a table on stdout and a well-formed plot on disk.
    let svg_path = dir.join("trend.svg");
    let output = plateau()
        .args(["obs", "perf", "trend", "--dir"])
        .arg(&dir)
        .arg("--svg")
        .arg(&svg_path)
        .output()
        .expect("spawn obs perf trend");
    assert!(output.status.success(), "{}", String::from_utf8_lossy(&output.stderr));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("slope/run"), "{stdout}");
    let svg = std::fs::read_to_string(&svg_path).expect("svg written");
    assert!(
        svg.starts_with("<svg") || svg.starts_with("<?xml"),
        "svg root: {}",
        &svg[..svg.len().min(60)]
    );
    assert!(svg.trim_end().ends_with("</svg>"));
    assert!(svg.contains("training_step/serial"), "legend names the bench");

    // regress on replayed steady history: clean pass, exit 0.
    let output = plateau()
        .args(["obs", "perf", "regress", "--dir"])
        .arg(&dir)
        .args(["--threshold", "0.5"])
        .output()
        .expect("spawn obs perf regress");
    assert!(
        output.status.success(),
        "steady history must pass: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("# no regressions"), "{stdout}");

    // Inject a 10x slowdown into one bench: regress must exit nonzero and
    // name the offender.
    record(&dir, "training_step/serial", &[1000e6]);
    let output = plateau()
        .args(["obs", "perf", "regress", "--dir"])
        .arg(&dir)
        .args(["--threshold", "0.5"])
        .output()
        .expect("spawn obs perf regress");
    assert!(!output.status.success(), "injected slowdown must fail the gate");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("REGRESSION training_step/serial"), "{stdout}");
    assert!(!stdout.contains("REGRESSION training_step/fused"), "{stdout}");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("regression"), "{stderr}");

    // The untouched bench still passes under --bench filtering.
    let output = plateau()
        .args(["obs", "perf", "regress", "--dir"])
        .arg(&dir)
        .args(["--threshold", "0.5", "--bench", "training_step/fused"])
        .output()
        .expect("spawn obs perf regress --bench");
    assert!(output.status.success());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn listing_stdout_stays_machine_parseable_with_warnings_on_stderr() {
    // A run ledger whose final line is torn (crashed writer): `obs runs
    // list` must keep stdout strictly table-shaped — the warning goes to
    // stderr, so piping stdout into a parser keeps working.
    let dir = temp_dir("torn");
    std::fs::create_dir_all(&dir).unwrap();
    let mut text = String::new();
    for id in ["run-aaa", "run-bbb"] {
        text.push_str(&format!(
            "{{\"type\":\"run\",\"id\":\"{id}\",\"ts_unix\":1000,\"command\":\"train\",\
             \"git\":\"deadbee\",\"seed\":1,\"config\":{{}},\"metrics\":{{}},\"series\":null}}\n"
        ));
    }
    text.push_str("{\"type\":\"run\",\"id\":\"run-ccc\",\"ts_un");
    std::fs::write(dir.join("ledger.jsonl"), text).unwrap();

    let output = plateau()
        .args(["obs", "runs", "list", "--dir"])
        .arg(&dir)
        .output()
        .expect("spawn obs runs list");
    assert!(output.status.success(), "{}", String::from_utf8_lossy(&output.stderr));
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);

    // Warning reaches the user, but on stderr only.
    assert!(stderr.contains("truncated final line"), "stderr: {stderr}");
    assert!(!stdout.contains("truncated final line"), "stdout: {stdout}");

    // Every stdout line is one of: comment, column header, or a row
    // starting with a listed run id — nothing interleaved.
    for line in stdout.lines().filter(|l| !l.trim().is_empty()) {
        let ok = line.starts_with('#')
            || line.starts_with("id ")
            || line.starts_with("run-aaa")
            || line.starts_with("run-bbb");
        assert!(ok, "unexpected stdout line: {line:?}");
    }
    assert!(stdout.contains("2 run(s)"), "{stdout}");

    // Same contract for the perf ledger listing.
    record(&dir, "bench/x", &[10e6, 11e6]);
    let mut perf = std::fs::read_to_string(dir.join("perf.jsonl")).unwrap();
    perf.push_str("{\"type\":\"perf\",\"bench\":\"bench/x\",\"median_n");
    std::fs::write(dir.join("perf.jsonl"), perf).unwrap();
    let output = plateau()
        .args(["obs", "perf", "list", "--dir"])
        .arg(&dir)
        .output()
        .expect("spawn obs perf list");
    assert!(output.status.success(), "{}", String::from_utf8_lossy(&output.stderr));
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("torn final record"), "stderr: {stderr}");
    assert!(!stdout.contains("torn final record"), "stdout: {stdout}");
    assert!(stdout.contains("2 record(s)"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}
