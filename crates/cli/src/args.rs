//! Minimal dependency-free flag parsing: `--key value` pairs plus a
//! leading subcommand. Only what the `plateau` binary needs — not a
//! general-purpose parser.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Error raised while parsing command-line arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand was supplied.
    MissingCommand,
    /// A flag was supplied without a value.
    MissingValue(String),
    /// A value failed to parse.
    BadValue {
        /// The flag name.
        flag: String,
        /// The raw value.
        value: String,
    },
    /// An argument didn't look like `--flag`.
    UnexpectedToken(String),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingCommand => f.write_str("missing subcommand (try `plateau help`)"),
            ArgError::MissingValue(flag) => write!(f, "flag --{flag} needs a value"),
            ArgError::BadValue { flag, value } => {
                write!(f, "flag --{flag} got unparseable value {value:?}")
            }
            ArgError::UnexpectedToken(tok) => write!(f, "unexpected argument {tok:?}"),
        }
    }
}

impl Error for ArgError {}

/// A parsed command line: the subcommand, `--key value` options, and any
/// bare positional arguments (used by command families like `plateau obs
/// report` / `plateau obs diff a.jsonl b.jsonl`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedArgs {
    /// The subcommand (first positional argument).
    pub command: String,
    options: BTreeMap<String, String>,
    positionals: Vec<String>,
}

impl ParsedArgs {
    /// Parses an iterator of arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] on malformed input.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<ParsedArgs, ArgError> {
        let mut iter = args.into_iter();
        let command = iter.next().ok_or(ArgError::MissingCommand)?;
        let mut options = BTreeMap::new();
        let mut positionals = Vec::new();
        while let Some(tok) = iter.next() {
            match tok.strip_prefix("--") {
                Some(flag) => {
                    let value =
                        iter.next().ok_or_else(|| ArgError::MissingValue(flag.to_string()))?;
                    options.insert(flag.to_string(), value);
                }
                None => positionals.push(tok),
            }
        }
        Ok(ParsedArgs {
            command,
            options,
            positionals,
        })
    }

    /// Bare (non-flag) arguments after the subcommand, in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// Rejects stray positionals — commands that take only `--key value`
    /// options call this to keep typos like `plateau train oops` fatal.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::UnexpectedToken`] naming the first stray token.
    pub fn expect_no_positionals(&self) -> Result<(), ArgError> {
        match self.positionals.first() {
            None => Ok(()),
            Some(tok) => Err(ArgError::UnexpectedToken(tok.clone())),
        }
    }

    /// Fetches a typed option, falling back to `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] when the value fails to parse.
    pub fn get<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(flag) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::BadValue {
                flag: flag.to_string(),
                value: raw.clone(),
            }),
        }
    }

    /// Fetches a string option with a default.
    pub fn get_str(&self, flag: &str, default: &str) -> String {
        self.options
            .get(flag)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Fetches a string option when it was supplied, `None` otherwise —
    /// for flags with no meaningful default (e.g. `--metrics-out`).
    pub fn opt_str(&self, flag: &str) -> Option<String> {
        self.options.get(flag).cloned()
    }

    /// All supplied `--key value` options, in sorted key order.
    pub fn options(&self) -> impl Iterator<Item = (&str, &str)> {
        self.options.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Lists option keys that were supplied but not in `known` — catching
    /// typos like `--qubit` for `--qubits`.
    pub fn unknown_flags(&self, known: &[&str]) -> Vec<String> {
        self.options
            .keys()
            .filter(|k| !known.contains(&k.as_str()))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<ParsedArgs, ArgError> {
        ParsedArgs::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_and_options() {
        let p = parse(&["variance", "--qubits", "8", "--layers", "50"]).unwrap();
        assert_eq!(p.command, "variance");
        assert_eq!(p.get("qubits", 0usize).unwrap(), 8);
        assert_eq!(p.get("layers", 0usize).unwrap(), 50);
        assert_eq!(p.get("circuits", 200usize).unwrap(), 200); // default
    }

    #[test]
    fn string_options() {
        let p = parse(&["train", "--strategy", "he"]).unwrap();
        assert_eq!(p.get_str("strategy", "random"), "he");
        assert_eq!(p.get_str("optimizer", "adam"), "adam");
    }

    #[test]
    fn error_cases() {
        assert_eq!(parse(&[]).unwrap_err(), ArgError::MissingCommand);
        assert_eq!(
            parse(&["train", "--lr"]).unwrap_err(),
            ArgError::MissingValue("lr".into())
        );
        // A stray positional parses, but commands that take none reject it.
        let stray = parse(&["train", "oops"]).unwrap();
        assert!(matches!(
            stray.expect_no_positionals().unwrap_err(),
            ArgError::UnexpectedToken(tok) if tok == "oops"
        ));
        let p = parse(&["train", "--lr", "abc"]).unwrap();
        assert!(matches!(
            p.get("lr", 0.1f64).unwrap_err(),
            ArgError::BadValue { .. }
        ));
    }

    #[test]
    fn opt_str_distinguishes_absent_from_default() {
        let p = parse(&["variance", "--metrics-out", "run.jsonl"]).unwrap();
        assert_eq!(p.opt_str("metrics-out").as_deref(), Some("run.jsonl"));
        assert_eq!(p.opt_str("log"), None);
        let opts: Vec<(&str, &str)> = p.options().collect();
        assert_eq!(opts, vec![("metrics-out", "run.jsonl")]);
    }

    #[test]
    fn positionals_are_collected_in_order() {
        let p = parse(&["obs", "diff", "a.jsonl", "b.jsonl", "--threshold", "0.2"]).unwrap();
        assert_eq!(p.command, "obs");
        assert_eq!(p.positionals(), ["diff", "a.jsonl", "b.jsonl"]);
        assert_eq!(p.get_str("threshold", "0.5"), "0.2");
        assert!(parse(&["obs", "report"]).unwrap().expect_no_positionals().is_err());
        assert!(parse(&["variance"]).unwrap().expect_no_positionals().is_ok());
    }

    #[test]
    fn unknown_flags_are_reported() {
        let p = parse(&["train", "--qubit", "4"]).unwrap();
        assert_eq!(p.unknown_flags(&["qubits", "layers"]), vec!["qubit".to_string()]);
        let ok = parse(&["train", "--qubits", "4"]).unwrap();
        assert!(ok.unknown_flags(&["qubits"]).is_empty());
    }

    #[test]
    fn error_display() {
        assert!(ArgError::MissingCommand.to_string().contains("subcommand"));
        assert!(ArgError::MissingValue("x".into()).to_string().contains("--x"));
    }
}
