//! `plateau` — command-line interface to the barren-plateau experiment
//! suite.
//!
//! ```text
//! plateau variance  [--qubits 2,4,6,8,10] [--layers 50] [--circuits 200]
//!                   [--cost global|local] [--fan qubits|params|tensor] [--seed N]
//!                   [--fuse true]
//! plateau train     [--qubits 10] [--layers 5] [--iterations 50]
//!                   [--strategy xavier_normal|…] [--optimizer adam|gd|momentum|rmsprop|adagrad]
//!                   [--lr 0.1] [--seed N] [--fuse true]
//! plateau landscape [--qubits 5] [--layers 100] [--resolution 25] [--seed N]
//! plateau analyze   [--qubits 6] [--layers 8] [--samples 50] [--pairs 400] [--seed N]
//! plateau export    [--qubits 4] [--layers 2] [--strategy xavier_normal] [--seed N]
//! plateau diagram   [--qubits 4] [--layers 1]
//! plateau vqe       [--qubits 6] [--layers 4] [--iterations 120] [--strategy S] [--j 1] [--h 1]
//! plateau classify  [--qubits 3] [--layers 3] [--samples 120] [--epochs 60] [--strategy S]
//! plateau fuzz      [--cases 200] [--seed 0xfeed] [--max-qubits 8]
//!                   [--artifacts target/fuzz] [--mutate true] [--replay PATH]
//! plateau obs report --trace run.jsonl [--top N] [--filter prefix] [--by time|alloc|peak]
//! plateau obs flame  --trace run.jsonl --out flame.svg [--collapsed stacks.txt]
//!                    [--by time|alloc|peak]
//! plateau obs diff   <base> <new> [--threshold 0.2]   (sides: traces or baselines)
//! plateau obs baseline --trace run.jsonl [--out baseline.json]
//! plateau obs runs   list | show [ID] | compare [A B]
//!                    [--dir target/obs] [--svg plot.svg]
//! plateau obs perf   list | trend | regress
//!                    [--dir target/obs] [--bench PREFIX] [--svg plot.svg] [--threshold 0.25]
//! plateau help
//! ```
//!
//! Every subcommand also accepts `--ledger DIR|on|off`: with the ledger
//! on, experiments (train, vqe, classify, variance) append a run record
//! plus a gradient-dynamics time series under the ledger directory, which
//! `plateau obs runs` then lists, shows, and compares.

mod args;

use args::{ArgError, ParsedArgs};
use plateau_core::analysis::{average_entanglement, expressibility_kl};
use plateau_core::ansatz::training_ansatz;
use plateau_core::cost::CostKind;
use plateau_core::init::{FanMode, InitStrategy};
use plateau_core::landscape::{landscape_grid, LandscapeConfig};
use plateau_core::optim::{Adam, AdaGrad, GradientDescent, Momentum, Optimizer, RmsProp};
use plateau_core::train::{train_instrumented, TrainTelemetry};
use plateau_core::variance::{variance_scan, GradEngineKind, VarianceConfig};
use std::error::Error;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            plateau_obs::error!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// Global flags accepted by every subcommand, on top of its own list.
const GLOBAL_FLAGS: &[&str] = &["log", "metrics-out", "ledger"];

/// Applies `--log` / `--metrics-out` and stamps the run manifest. Must run
/// before the subcommand so its spans and counters are recorded.
fn init_observability(parsed: &ParsedArgs, argv: &[String]) -> Result<(), Box<dyn Error>> {
    let level = match parsed.opt_str("log") {
        Some(raw) => Some(plateau_obs::Level::parse(&raw).ok_or_else(|| {
            format!("unknown log level {raw:?} (off|error|warn|info|debug|trace)")
        })?),
        None => None,
    };
    let metrics_out = parsed.opt_str("metrics-out").map(std::path::PathBuf::from);
    plateau_obs::init(level, metrics_out.as_deref())
        .map_err(|e| format!("failed to open --metrics-out sink: {e}"))?;

    // --ledger mirrors the PLATEAU_LEDGER grammar and wins over it.
    if let Some(raw) = parsed.opt_str("ledger") {
        match raw.trim() {
            "" | "0" | "false" | "off" | "no" => plateau_obs::set_ledger_dir(None),
            "1" | "true" | "on" | "yes" => plateau_obs::set_ledger_dir(Some(
                std::path::Path::new(plateau_obs::ledger::DEFAULT_DIR),
            )),
            dir => plateau_obs::set_ledger_dir(Some(std::path::Path::new(dir))),
        }
    }

    let command = format!("plateau {}", argv.join(" "));
    let config = parsed
        .options()
        .map(|(k, v)| (k.to_string(), plateau_obs::json::Json::str(v)))
        .collect();
    let seed = parsed.opt_str("seed").and_then(|s| s.parse::<u64>().ok());
    plateau_obs::emit_manifest(&command, config, seed);
    Ok(())
}

fn run(argv: Vec<String>) -> Result<(), Box<dyn Error>> {
    let parsed = match ParsedArgs::parse(argv.clone()) {
        Err(ArgError::MissingCommand) => {
            print_help();
            return Ok(());
        }
        other => other?,
    };
    init_observability(&parsed, &argv)?;
    // Only the `obs` family takes positional arguments; everywhere else a
    // bare token is a typo and must stay fatal.
    if parsed.command != "obs" {
        parsed.expect_no_positionals()?;
    }
    let result = match parsed.command.as_str() {
        "variance" => cmd_variance(&parsed),
        "obs" => cmd_obs(&parsed),
        "train" => cmd_train(&parsed),
        "landscape" => cmd_landscape(&parsed),
        "analyze" => cmd_analyze(&parsed),
        "export" => cmd_export(&parsed),
        "diagram" => cmd_diagram(&parsed),
        "vqe" => cmd_vqe(&parsed),
        "classify" => cmd_classify(&parsed),
        "fuzz" => cmd_fuzz(&parsed),
        "serve" => cmd_serve(&parsed),
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?} (try `plateau help`)").into()),
    };
    // Flush the metrics snapshot and close the JSONL sink even when the
    // subcommand failed — a partial trace is still a trace.
    plateau_obs::finish_run();
    result
}

fn print_help() {
    println!(
        "plateau — barren-plateau initialization experiments\n\
         \n\
         subcommands:\n\
         \x20 variance   gradient-variance scan across qubit counts and strategies\n\
         \x20            [--fuse true] runs gradients through the gate-fusion\n\
         \x20            compiler (same as PLATEAU_SIM_FUSE=1)\n\
         \x20 train      identity-task training with a chosen strategy and optimizer\n\
         \x20            [--fuse true] as above\n\
         \x20 landscape  2-D cost-surface scan over the last two parameters\n\
         \x20 analyze    entanglement / expressibility diagnostics per strategy\n\
         \x20 export     emit the initialized training ansatz as OpenQASM 2.0\n\
         \x20 diagram    ASCII wire diagram of the training ansatz\n\
         \x20 vqe        ground-state search on the transverse-field Ising chain\n\
         \x20 classify   two-moons classification with the re-uploading model\n\
         \x20 fuzz       differential fuzzing: cross-check every engine pair on\n\
         \x20            random circuits; mismatches are shrunk and written as\n\
         \x20            replayable reproducers under target/fuzz/\n\
         \x20            [--cases N] [--seed S (hex ok)] [--max-qubits N]\n\
         \x20            [--artifacts DIR] [--mutate true] [--replay PATH]\n\
         \x20 serve      multi-tenant HTTP simulation/gradient service\n\
         \x20            POST /simulate /gradient /variance-scan /train\n\
         \x20            (QASM or op-JSON circuits), GET /metrics /healthz\n\
         \x20            [--addr 127.0.0.1:8080] [--workers N] [--queue N]\n\
         \x20            [--cache N] [--fuse true] [--max-qubits N]\n\
         \x20            [--duration SECS (0 = run until killed)]\n\
         \x20 obs        trace profiler + experiment ledger\n\
         \x20            report   --trace run.jsonl [--top N] [--filter PREFIX]\n\
         \x20                     [--by time|alloc|peak]\n\
         \x20                     self-time ranking (optionally restricted to one\n\
         \x20                     span-name prefix, e.g. --filter sim.); --by ranks\n\
         \x20                     by memory when the trace was recorded with\n\
         \x20                     PLATEAU_ALLOC_PROFILE=1\n\
         \x20            flame    --trace run.jsonl --out f.svg    SVG flamegraph\n\
         \x20                     [--by time|alloc|peak] weights frames by bytes\n\
         \x20            diff     BASE NEW [--threshold 0.2]       regression gate\n\
         \x20            baseline --trace run.jsonl [--out b.json] committable baseline\n\
         \x20            runs     list | show [ID] | compare [A B]\n\
         \x20                     [--dir target/obs] [--svg plot.svg]\n\
         \x20                     registry of ledger-recorded experiments: run-to-run\n\
         \x20                     metric deltas, gradient-decay slopes, SVG overlays\n\
         \x20            perf     list | trend | regress\n\
         \x20                     [--dir target/obs] [--bench PREFIX] [--svg plot.svg]\n\
         \x20                     [--threshold 0.25]\n\
         \x20                     bench-perf ledger (PLATEAU_PERF=1 while running a\n\
         \x20                     bench bin records history): per-bench trend fits\n\
         \x20                     and a history-based regression gate\n\
         \x20 help       this message\n\
         \n\
         run `plateau <subcommand> --flag value …`; see crate docs for flags.\n\
         \n\
         global flags (every subcommand):\n\
         \x20 --log LEVEL         stderr verbosity: off|error|warn|info|debug|trace\n\
         \x20                     (defaults to the PLATEAU_LOG environment variable)\n\
         \x20 --metrics-out PATH  write spans, events, the run manifest, and a final\n\
         \x20                     metrics snapshot as JSON lines to PATH\n\
         \x20 --ledger DIR|on|off append experiment run records + gradient-dynamics\n\
         \x20                     series under DIR (on = target/obs; same grammar as\n\
         \x20                     the PLATEAU_LEDGER environment variable)"
    );
}

fn parse_fan(raw: &str) -> Result<FanMode, Box<dyn Error>> {
    match raw {
        "qubits" => Ok(FanMode::Qubits),
        "params" => Ok(FanMode::ParamsPerLayer),
        "tensor" => Ok(FanMode::TensorShape),
        other => Err(format!("unknown fan mode {other:?} (qubits|params|tensor)").into()),
    }
}

fn parse_cost(raw: &str) -> Result<CostKind, Box<dyn Error>> {
    match raw {
        "global" => Ok(CostKind::Global),
        "local" => Ok(CostKind::Local),
        other => Err(format!("unknown cost {other:?} (global|local)").into()),
    }
}

fn parse_strategy(raw: &str) -> Result<InitStrategy, Box<dyn Error>> {
    InitStrategy::PAPER_SET
        .iter()
        .copied()
        .find(|s| s.name() == raw)
        .ok_or_else(|| {
            let names: Vec<&str> = InitStrategy::PAPER_SET.iter().map(|s| s.name()).collect();
            format!("unknown strategy {raw:?} (one of {})", names.join("|")).into()
        })
}

fn parse_engine(raw: &str) -> Result<GradEngineKind, Box<dyn Error>> {
    match raw {
        "adjoint" => Ok(GradEngineKind::Adjoint),
        "parameter-shift" => Ok(GradEngineKind::ParameterShift),
        other => Err(format!("unknown engine {other:?} (adjoint|parameter-shift)").into()),
    }
}

fn check_flags(parsed: &ParsedArgs, known: &[&str]) -> Result<(), Box<dyn Error>> {
    let mut known: Vec<&str> = known.to_vec();
    known.extend_from_slice(GLOBAL_FLAGS);
    let unknown = parsed.unknown_flags(&known);
    if unknown.is_empty() {
        Ok(())
    } else {
        Err(format!("unknown flag(s): {}", unknown.join(", ")).into())
    }
}

fn cmd_variance(parsed: &ParsedArgs) -> Result<(), Box<dyn Error>> {
    check_flags(
        parsed,
        &["qubits", "layers", "circuits", "cost", "fan", "engine", "seed", "fuse", "strategies"],
    )?;
    if parsed.get("fuse", false)? {
        plateau_sim::set_fuse(true);
    }
    let qubits_raw = parsed.get_str("qubits", "2,4,6,8,10");
    let qubit_counts: Vec<usize> = qubits_raw
        .split(',')
        .map(|s| s.trim().parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|_| format!("bad --qubits list {qubits_raw:?}"))?;
    let config = VarianceConfig {
        qubit_counts,
        layers: parsed.get("layers", 50usize)?,
        n_circuits: parsed.get("circuits", 200usize)?,
        cost: parse_cost(&parsed.get_str("cost", "global"))?,
        fan_mode: parse_fan(&parsed.get_str("fan", "tensor"))?,
        engine: parse_engine(&parsed.get_str("engine", "adjoint"))?,
        seed: parsed.get("seed", 0x706c6174u64)?,
        ..VarianceConfig::default()
    };

    let strategies: Vec<InitStrategy> = match parsed.opt_str("strategies") {
        Some(raw) => raw
            .split(',')
            .map(|s| parse_strategy(s.trim()))
            .collect::<Result<_, _>>()?,
        None => InitStrategy::PAPER_SET.to_vec(),
    };

    let scan = variance_scan(&config, &strategies)?;
    println!("strategy,{}", config.qubit_counts.iter().map(|q| format!("q{q}")).collect::<Vec<_>>().join(","));
    for curve in &scan.curves {
        let vars: Vec<String> = curve.points.iter().map(|p| format!("{:.6e}", p.variance)).collect();
        println!("{},{}", curve.strategy.name(), vars.join(","));
    }
    // The improvement table needs the random baseline in the scan; a
    // --strategies subset without it still gets the variance rows above.
    if scan.curve_of(InitStrategy::Random).is_some() {
        println!("\nstrategy,decay_rate,improvement_vs_random_pct");
        let base = scan.curve_of(InitStrategy::Random).expect("checked above").decay_fit()?;
        println!("random,{:.4},0.0", base.rate);
        for imp in scan.improvements_vs(InitStrategy::Random)? {
            println!("{},{:.4},{:.1}", imp.strategy.name(), imp.decay_rate, imp.improvement_percent);
        }
    }
    Ok(())
}

fn cmd_train(parsed: &ParsedArgs) -> Result<(), Box<dyn Error>> {
    check_flags(
        parsed,
        &["qubits", "layers", "iterations", "strategy", "optimizer", "lr", "fan", "seed", "fuse"],
    )?;
    if parsed.get("fuse", false)? {
        plateau_sim::set_fuse(true);
    }
    let n_qubits = parsed.get("qubits", 10usize)?;
    let layers = parsed.get("layers", 5usize)?;
    let iterations = parsed.get("iterations", 50usize)?;
    let lr = parsed.get("lr", 0.1f64)?;
    let strategy = parse_strategy(&parsed.get_str("strategy", "xavier_normal"))?;
    let fan = parse_fan(&parsed.get_str("fan", "tensor"))?;
    let seed = parsed.get("seed", 7u64)?;

    let ansatz = training_ansatz(n_qubits, layers)?;
    let obs = CostKind::Global.observable(n_qubits);
    use plateau_rng::SeedableRng;
    let mut rng = plateau_rng::rngs::StdRng::seed_from_u64(seed);
    let theta0 = strategy.sample_params(&ansatz.shape, fan, &mut rng)?;

    let opt_name = parsed.get_str("optimizer", "adam");
    let mut optimizer: Box<dyn Optimizer> = match opt_name.as_str() {
        "adam" => Box::new(Adam::new(lr)?),
        "gd" => Box::new(GradientDescent::new(lr)?),
        "momentum" => Box::new(Momentum::new(lr, 0.9)?),
        "rmsprop" => Box::new(RmsProp::new(lr)?),
        "adagrad" => Box::new(AdaGrad::new(lr)?),
        other => return Err(format!("unknown optimizer {other:?}").into()),
    };

    println!(
        "# {n_qubits} qubits, {layers} layers ({} gates, {} params), {strategy}, {opt_name} lr={lr}",
        ansatz.circuit.gate_count(),
        ansatz.circuit.n_params()
    );
    // With the ledger on, run the instrumented loop so the run is
    // registered with its gradient-dynamics series; otherwise this is
    // exactly `train`.
    let telemetry = if plateau_obs::ledger_enabled() {
        use plateau_obs::json::Json;
        let rec = plateau_obs::RunRecord::new("train")
            .config("qubits", Json::from(n_qubits))
            .config("layers", Json::from(layers))
            .config("iterations", Json::from(iterations))
            .config("strategy", Json::str(strategy.name()))
            .config("optimizer", Json::str(opt_name.as_str()))
            .config("lr", Json::from(lr))
            .seed(seed);
        TrainTelemetry::for_run(rec, ansatz.shape.params_per_layer())
    } else {
        TrainTelemetry::default()
    };
    let run = train_instrumented(
        &ansatz.circuit,
        &obs,
        theta0,
        optimizer.as_mut(),
        iterations,
        &plateau_grad::Adjoint,
        &plateau_core::train::BarrenPlateauAlarm::default(),
        telemetry,
    )?;
    let hist = &run.history;
    println!("iteration,loss,grad_norm");
    for (i, loss) in hist.losses().iter().enumerate() {
        let g = if i == 0 {
            String::from("")
        } else {
            format!("{:.6e}", hist.grad_norms()[i - 1])
        };
        println!("{i},{loss:.6e},{g}");
    }
    println!("# final cost: {:.6e}", hist.final_loss());
    if let Some(id) = &run.run_id {
        println!("# ledger run: {id}");
    }
    Ok(())
}

fn cmd_landscape(parsed: &ParsedArgs) -> Result<(), Box<dyn Error>> {
    check_flags(parsed, &["qubits", "layers", "resolution", "seed"])?;
    let n_qubits = parsed.get("qubits", 5usize)?;
    let layers = parsed.get("layers", 100usize)?;
    let resolution = parsed.get("resolution", 25usize)?;
    let seed = parsed.get("seed", 0u64)?;

    let ansatz = training_ansatz(n_qubits, layers)?;
    use plateau_rng::SeedableRng;
    let mut rng = plateau_rng::rngs::StdRng::seed_from_u64(seed);
    let base = InitStrategy::Random.sample_params(&ansatz.shape, FanMode::Qubits, &mut rng)?;
    let cfg = LandscapeConfig::default().with_resolution(resolution)?;
    let n = ansatz.circuit.n_params();
    let grid = landscape_grid(
        &ansatz.circuit,
        &CostKind::Global.observable(n_qubits),
        &base,
        n - 2,
        n - 1,
        &cfg,
    )?;
    println!("# amplitude = {:.6e}", grid.amplitude());
    print!("theta_a\\theta_b");
    for y in &grid.ys {
        print!(",{y:.4}");
    }
    println!();
    for (i, row) in grid.values.iter().enumerate() {
        print!("{:.4}", grid.xs[i]);
        for v in row {
            print!(",{v:.6e}");
        }
        println!();
    }
    Ok(())
}

fn cmd_export(parsed: &ParsedArgs) -> Result<(), Box<dyn Error>> {
    check_flags(parsed, &["qubits", "layers", "strategy", "fan", "seed"])?;
    let n_qubits = parsed.get("qubits", 4usize)?;
    let layers = parsed.get("layers", 2usize)?;
    let strategy = parse_strategy(&parsed.get_str("strategy", "xavier_normal"))?;
    let fan = parse_fan(&parsed.get_str("fan", "tensor"))?;
    let seed = parsed.get("seed", 0u64)?;

    let ansatz = training_ansatz(n_qubits, layers)?;
    use plateau_rng::SeedableRng;
    let mut rng = plateau_rng::rngs::StdRng::seed_from_u64(seed);
    let theta = strategy.sample_params(&ansatz.shape, fan, &mut rng)?;
    print!("{}", plateau_sim::qasm::to_qasm(&ansatz.circuit, &theta)?);
    Ok(())
}

fn cmd_diagram(parsed: &ParsedArgs) -> Result<(), Box<dyn Error>> {
    check_flags(parsed, &["qubits", "layers"])?;
    let n_qubits = parsed.get("qubits", 4usize)?;
    let layers = parsed.get("layers", 1usize)?;
    let ansatz = training_ansatz(n_qubits, layers)?;
    print!("{}", plateau_sim::diagram::draw(&ansatz.circuit));
    Ok(())
}

fn cmd_vqe(parsed: &ParsedArgs) -> Result<(), Box<dyn Error>> {
    check_flags(parsed, &["qubits", "layers", "iterations", "strategy", "j", "h", "seed"])?;
    let n_qubits = parsed.get("qubits", 6usize)?;
    let strategy = parse_strategy(&parsed.get_str("strategy", "xavier_normal"))?;
    let hamiltonian = plateau_vqe::transverse_field_ising(
        n_qubits,
        parsed.get("j", 1.0f64)?,
        parsed.get("h", 1.0f64)?,
    )?;
    let cfg = plateau_vqe::VqeConfig {
        layers: parsed.get("layers", 4usize)?,
        iterations: parsed.get("iterations", 120usize)?,
        seed: parsed.get("seed", 0u64)?,
        ..plateau_vqe::VqeConfig::default()
    };
    let r = plateau_vqe::solve(&hamiltonian, strategy, &cfg)?;
    println!("iteration,energy");
    for (i, e) in r.history.losses().iter().enumerate() {
        println!("{i},{e:.8}");
    }
    println!("# exact E0 = {:.8}", r.exact_energy);
    println!("# final relative error = {:.4}%", 100.0 * r.relative_error()?);
    Ok(())
}

fn cmd_classify(parsed: &ParsedArgs) -> Result<(), Box<dyn Error>> {
    check_flags(parsed, &["qubits", "layers", "samples", "epochs", "strategy", "noise", "seed"])?;
    let n_qubits = parsed.get("qubits", 3usize)?;
    let layers = parsed.get("layers", 3usize)?;
    let n_samples = parsed.get("samples", 120usize)?;
    let epochs = parsed.get("epochs", 60usize)?;
    let noise = parsed.get("noise", 0.05f64)?;
    let strategy = parse_strategy(&parsed.get_str("strategy", "xavier_normal"))?;
    let seed = parsed.get("seed", 42u64)?;

    use plateau_rng::SeedableRng;
    let mut rng = plateau_rng::rngs::StdRng::seed_from_u64(seed);
    let data = plateau_qml::two_moons(n_samples, noise, &mut rng);
    let (train_set, test_set) = plateau_qml::train_test_split(data, 0.75);
    let model = plateau_qml::Classifier::new(n_qubits, layers, 2)?;
    let w0 = model.init_weights(strategy, FanMode::TensorShape, &mut rng)?;
    let mut adam = Adam::new(0.1)?;
    let fit = model.fit(w0, &train_set, &mut adam, epochs)?;
    println!("epoch,train_mse");
    for (i, l) in fit.losses.iter().enumerate() {
        println!("{i},{l:.6}");
    }
    println!("# train accuracy = {:.1}%", 100.0 * model.accuracy(&fit.weights, &train_set)?);
    println!("# test accuracy  = {:.1}%", 100.0 * model.accuracy(&fit.weights, &test_set)?);
    Ok(())
}

/// The `plateau fuzz` subcommand: differential fuzzing across the engine
/// matrix (see `plateau-fuzz` crate docs and DESIGN.md §10). Without
/// `--replay` it runs a seeded campaign and fails on any divergence;
/// `--mutate true` flips into the mutation self-test, which *succeeds*
/// only when the deliberately broken kernel is caught and shrunk to a
/// small reproducer; `--replay PATH` re-runs a written artifact and
/// fails while the recorded divergence still reproduces.
fn cmd_serve(parsed: &ParsedArgs) -> Result<(), Box<dyn Error>> {
    check_flags(
        parsed,
        &["addr", "workers", "queue", "cache", "fuse", "max-qubits", "duration"],
    )?;
    let mut cfg = plateau_serve::ServeConfig::from_env();
    cfg.addr = parsed.get_str("addr", "127.0.0.1:8080");
    cfg.workers = parsed.get("workers", cfg.workers)?;
    cfg.queue_capacity = parsed.get("queue", cfg.queue_capacity)?;
    cfg.cache_capacity = parsed.get("cache", cfg.cache_capacity)?;
    cfg.fuse = parsed.get("fuse", cfg.fuse)?;
    cfg.limits.max_qubits = parsed
        .get("max-qubits", cfg.limits.max_qubits)?
        .clamp(1, plateau_sim::MAX_QUBITS);
    let duration = parsed.get("duration", 0u64)?;

    let server = plateau_serve::Server::start(cfg.clone())?;
    println!(
        "# plateau-serve listening on http://{} ({} workers, queue {}, cache {}, fuse {})",
        server.addr(),
        cfg.workers,
        cfg.queue_capacity,
        cfg.cache_capacity,
        cfg.fuse
    );
    println!("# endpoints: POST /simulate /gradient /variance-scan /train · GET /metrics /healthz");
    if duration == 0 {
        // Run until the process is killed; the OS reclaims the socket.
        loop {
            std::thread::park();
        }
    }
    std::thread::sleep(std::time::Duration::from_secs(duration));
    println!("# duration elapsed; draining");
    server.shutdown();
    Ok(())
}

fn cmd_fuzz(parsed: &ParsedArgs) -> Result<(), Box<dyn Error>> {
    check_flags(parsed, &["cases", "seed", "max-qubits", "artifacts", "mutate", "replay"])?;
    if let Some(path) = parsed.opt_str("replay") {
        let outcome = plateau_fuzz::replay(std::path::Path::new(&path))?;
        let a = &outcome.artifact;
        println!(
            "# replaying {path}: pair {}, seed {:#x} case {}, {} gate(s), recorded delta {:e}",
            a.pair,
            a.seed,
            a.case_index,
            a.case.gate_count(),
            a.delta
        );
        return match outcome.mismatch {
            Some(m) => Err(format!(
                "mismatch still reproduces: {} (delta {:e}, tolerance {:e})",
                m.detail,
                m.delta,
                a.pair.tolerance()
            )
            .into()),
            None => {
                println!("# pair agrees within tolerance {:e} — divergence no longer reproduces", a.pair.tolerance());
                Ok(())
            }
        };
    }

    let seed_raw = parsed.get_str("seed", "0xfeed");
    let config = plateau_fuzz::FuzzConfig {
        cases: parsed.get("cases", 200usize)?,
        seed: plateau_fuzz::parse_seed(&seed_raw)?,
        max_qubits: parsed.get("max-qubits", 8usize)?,
        artifact_dir: Some(std::path::PathBuf::from(
            parsed.get_str("artifacts", "target/fuzz"),
        )),
        mutate: parsed.get("mutate", false)?,
    };
    let report = plateau_fuzz::run(&config);
    println!(
        "# plateau fuzz: {} cases, seed {}, max {} qubits{}",
        report.cases,
        seed_raw,
        config.max_qubits,
        if config.mutate { " (mutation self-test)" } else { "" }
    );
    println!("pair,comparisons,max_delta,tolerance");
    for (name, stats) in &report.stats {
        let pair = plateau_fuzz::EnginePair::parse(name).expect("stats keys are pair names");
        println!(
            "{name},{},{:e},{:e}",
            stats.comparisons,
            stats.max_delta,
            pair.tolerance()
        );
    }
    for m in &report.mismatches {
        println!(
            "# MISMATCH case {}: {} — {} (shrunk {} -> {} gate(s)){}",
            m.case_index,
            m.pair,
            m.detail,
            m.original_gates,
            m.shrunk.gate_count(),
            match &m.artifact {
                Some(p) => format!(", reproducer: {}", p.display()),
                None => String::new(),
            }
        );
    }

    if config.mutate {
        // Self-test semantics: the injected bug MUST be found and MUST
        // shrink small, or the harness itself is broken.
        let smallest = report
            .mismatches
            .iter()
            .map(|m| m.shrunk.gate_count())
            .min();
        return match smallest {
            None => Err("mutation self-test FAILED: injected kernel bug was never detected".into()),
            Some(gates) if gates > 8 => Err(format!(
                "mutation self-test FAILED: smallest reproducer has {gates} gates (want ≤ 8)"
            )
            .into()),
            Some(gates) => {
                println!(
                    "# mutation self-test passed: {} detection(s), smallest reproducer {} gate(s)",
                    report.mismatches.len(),
                    gates
                );
                Ok(())
            }
        };
    }
    if report.clean() {
        println!("# {} comparisons, all clean", report.comparisons());
        Ok(())
    } else {
        Err(format!(
            "{} mismatch(es) across {} comparisons — reproducers under {}",
            report.mismatches.len(),
            report.comparisons(),
            config
                .artifact_dir
                .as_deref()
                .map(|p| p.display().to_string())
                .unwrap_or_else(|| "<disabled>".into())
        )
        .into())
    }
}

/// The `plateau obs` family: the read side of the observability stack.
/// `report` ranks span names by self time, `flame` renders an SVG
/// flamegraph (and optionally collapsed stacks), `diff` compares two
/// traces/baselines and fails on regressions, `baseline` freezes a trace's
/// aggregation into a committable document.
fn cmd_obs(parsed: &ParsedArgs) -> Result<(), Box<dyn Error>> {
    use plateau_obs::analyze::{Analysis, Trace};

    let required_trace = || -> Result<Trace, Box<dyn Error>> {
        let path = parsed
            .opt_str("trace")
            .ok_or("missing --trace PATH (a JSONL file from --metrics-out)")?;
        let trace = Trace::read(std::path::Path::new(&path))?;
        for w in &trace.warnings {
            plateau_obs::warn!("{path}: {w}");
        }
        Ok(trace)
    };

    let rank_by = || -> Result<plateau_obs::analyze::RankBy, Box<dyn Error>> {
        match parsed.opt_str("by") {
            None => Ok(plateau_obs::analyze::RankBy::Time),
            Some(s) => plateau_obs::analyze::RankBy::parse(&s)
                .ok_or_else(|| format!("unknown --by {s:?} (time|alloc|peak)").into()),
        }
    };

    let sub = parsed
        .positionals()
        .first()
        .ok_or("obs needs a subcommand: report|flame|diff|baseline|runs|perf")?;
    match sub.as_str() {
        "report" => {
            check_flags(parsed, &["trace", "top", "filter", "by"])?;
            let top = parsed.get("top", 20usize)?;
            let by = rank_by()?;
            let mut analysis = Analysis::of(&required_trace()?);
            if let Some(prefix) = parsed.opt_str("filter") {
                analysis = analysis.filter_prefix(&prefix);
            }
            analysis.rank_by(by);
            print!("{}", analysis.render_report(top));
            Ok(())
        }
        "runs" => cmd_obs_runs(parsed),
        "perf" => cmd_obs_perf(parsed),
        "flame" => {
            check_flags(parsed, &["trace", "out", "collapsed", "by"])?;
            let out = parsed.get_str("out", "flame.svg");
            let by = rank_by()?;
            let trace = required_trace()?;
            let title = trace.command.clone().unwrap_or_else(|| "plateau trace".into());
            std::fs::write(
                &out,
                plateau_obs::flame::flamegraph_svg_by(&trace, &title, by),
            )
            .map_err(|e| format!("cannot write {out}: {e}"))?;
            println!(
                "# wrote {out}: {} spans, {} roots, max depth {}",
                trace.spans.len(),
                trace.roots.len(),
                trace.max_depth()
            );
            if let Some(collapsed) = parsed.opt_str("collapsed") {
                std::fs::write(&collapsed, plateau_obs::flame::collapsed_stacks(&trace))
                    .map_err(|e| format!("cannot write {collapsed}: {e}"))?;
                println!("# wrote {collapsed} (collapsed stacks)");
            }
            Ok(())
        }
        "diff" => {
            check_flags(parsed, &["threshold"])?;
            let [_, base, new] = parsed.positionals() else {
                return Err("obs diff needs two paths: <base> <new> (traces or baselines)".into());
            };
            let threshold = parsed.get("threshold", 0.2f64)?;
            if threshold <= 0.0 {
                return Err("--threshold must be positive".into());
            }
            let base_side = plateau_obs::diff::load_side(std::path::Path::new(base))
                .map_err(|e| format!("{base}: {e}"))?;
            let new_side = plateau_obs::diff::load_side(std::path::Path::new(new))
                .map_err(|e| format!("{new}: {e}"))?;
            let report = plateau_obs::diff::diff_entries(&base_side, &new_side, threshold);
            print!("{}", report.render());
            match report.regressions() {
                0 => Ok(()),
                n => Err(format!("{n} span regression(s) beyond +{:.0}%", 100.0 * threshold).into()),
            }
        }
        "baseline" => {
            check_flags(parsed, &["trace", "out"])?;
            let analysis = Analysis::of(&required_trace()?);
            let doc = analysis.to_baseline_json().to_pretty_string();
            match parsed.opt_str("out") {
                Some(out) => {
                    std::fs::write(&out, doc).map_err(|e| format!("cannot write {out}: {e}"))?;
                    println!("# wrote {out} ({} span names)", analysis.stats.len());
                }
                None => print!("{doc}"),
            }
            Ok(())
        }
        other => Err(format!(
            "unknown obs subcommand {other:?} (report|flame|diff|baseline|runs|perf)"
        )
        .into()),
    }
}

/// `plateau obs perf` — the bench-perf ledger read side. `list` tables
/// every recorded bench run, `trend` fits a per-bench regression line over
/// run history (optionally plotted with `--svg`), `regress` compares the
/// latest run of each bench against the median of its recorded history
/// and exits nonzero beyond `--threshold`.
fn cmd_obs_perf(parsed: &ParsedArgs) -> Result<(), Box<dyn Error>> {
    use plateau_obs::perf::{regress, render_trend, trend_svg, trends, PerfLedger};
    check_flags(parsed, &["dir", "svg", "threshold", "bench"])?;

    let dir = std::path::PathBuf::from(match parsed.opt_str("dir") {
        Some(d) => d,
        None => plateau_obs::perf::perf_dir()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| plateau_obs::ledger::DEFAULT_DIR.to_string()),
    });
    let ledger = PerfLedger::load(&dir)?;
    for w in &ledger.warnings {
        plateau_obs::warn!("{}: {w}", dir.display());
    }
    let bench = parsed.opt_str("bench");

    let action = parsed.positionals().get(1).map_or("list", String::as_str);
    match action {
        "list" => {
            print!("{}", ledger.render_list());
            Ok(())
        }
        "trend" => {
            let fits = trends(&ledger, bench.as_deref());
            print!("{}", render_trend(&fits));
            if let Some(out) = parsed.opt_str("svg") {
                std::fs::write(&out, trend_svg(&ledger, bench.as_deref()))
                    .map_err(|e| format!("cannot write {out}: {e}"))?;
                println!("# wrote {out}");
            }
            Ok(())
        }
        "regress" => {
            let threshold = parsed.get("threshold", 0.25f64)?;
            if threshold <= 0.0 {
                return Err("--threshold must be positive".into());
            }
            let report = regress(&ledger, threshold, bench.as_deref());
            print!("{}", report.render(threshold));
            match report.regressions.len() {
                0 => Ok(()),
                n => Err(format!(
                    "{n} perf regression(s) beyond +{:.0}% of recorded history",
                    100.0 * threshold
                )
                .into()),
            }
        }
        other => Err(format!("unknown obs perf action {other:?} (list|trend|regress)").into()),
    }
}

/// `plateau obs runs` — the run registry. `list` tables every ledger
/// record, `show` details one run (default: latest), `compare` prints
/// metric deltas and per-column gradient-decay slopes between two runs
/// (default: the two most recent). `--svg` additionally renders the
/// series as a self-contained SVG line plot.
fn cmd_obs_runs(parsed: &ParsedArgs) -> Result<(), Box<dyn Error>> {
    use plateau_obs::runs::{render_show, series_svg, Ledger, RunComparison};
    check_flags(parsed, &["dir", "svg"])?;

    let dir = std::path::PathBuf::from(match parsed.opt_str("dir") {
        Some(d) => d,
        None => plateau_obs::ledger::ledger_dir()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| plateau_obs::ledger::DEFAULT_DIR.to_string()),
    });
    let ledger = Ledger::load(&dir)?;
    for w in &ledger.warnings {
        plateau_obs::warn!("{}: {w}", dir.display());
    }

    let action = parsed.positionals().get(1).map_or("list", String::as_str);
    match action {
        "list" => {
            print!("{}", ledger.render_list());
            Ok(())
        }
        "show" => {
            let run = match parsed.positionals().get(2) {
                Some(id) => ledger.find(id)?,
                None => ledger.latest(),
            };
            print!("{}", render_show(run));
            if let Some(out) = parsed.opt_str("svg") {
                let series = match run.load_series() {
                    Some(Ok(s)) => s,
                    Some(Err(e)) => return Err(format!("run {}: {e}", run.id).into()),
                    None => {
                        return Err(format!("run {} has no series for --svg", run.id).into())
                    }
                };
                let curves: Vec<(String, Vec<(f64, f64)>)> = series
                    .columns()
                    .iter()
                    .filter_map(|c| series.column(c).map(|pts| (c.clone(), pts)))
                    .filter(|(_, pts)| !pts.is_empty())
                    .collect();
                std::fs::write(&out, series_svg(&format!("run {}", run.id), &curves))
                    .map_err(|e| format!("cannot write {out}: {e}"))?;
                println!("# wrote {out}");
            }
            Ok(())
        }
        "compare" => {
            let (a, b) = match (parsed.positionals().get(2), parsed.positionals().get(3)) {
                (Some(a), Some(b)) => (ledger.find(a)?, ledger.find(b)?),
                (None, None) => {
                    let n = ledger.runs.len();
                    if n < 2 {
                        return Err("obs runs compare needs two runs in the ledger".into());
                    }
                    (&ledger.runs[n - 2], &ledger.runs[n - 1])
                }
                _ => return Err("obs runs compare takes zero or two run ids".into()),
            };
            let cmp = RunComparison::of(a, b);
            print!("{}", cmp.render());
            if let Some(out) = parsed.opt_str("svg") {
                std::fs::write(&out, cmp.to_svg())
                    .map_err(|e| format!("cannot write {out}: {e}"))?;
                println!("# wrote {out}");
            }
            Ok(())
        }
        other => Err(format!("unknown obs runs action {other:?} (list|show|compare)").into()),
    }
}

fn cmd_analyze(parsed: &ParsedArgs) -> Result<(), Box<dyn Error>> {
    check_flags(parsed, &["qubits", "layers", "samples", "pairs", "fan", "seed"])?;
    let n_qubits = parsed.get("qubits", 6usize)?;
    let layers = parsed.get("layers", 8usize)?;
    let samples = parsed.get("samples", 50usize)?;
    let pairs = parsed.get("pairs", 400usize)?;
    let fan = parse_fan(&parsed.get_str("fan", "tensor"))?;
    let seed = parsed.get("seed", 0xA11A)?;

    let ansatz = training_ansatz(n_qubits, layers)?;
    println!("strategy,meyer_wallach_q,expressibility_kl");
    for strategy in InitStrategy::PAPER_SET {
        let q = average_entanglement(&ansatz, strategy, fan, samples, seed)?;
        let kl = expressibility_kl(&ansatz, strategy, fan, pairs, 24, seed)?;
        println!("{},{q:.6},{kl:.6}", strategy.name());
    }
    Ok(())
}
